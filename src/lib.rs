//! # harl-repro — reproduction of HARL (ICPP 2015)
//!
//! *"A Heterogeneity-Aware Region-Level Data Layout for Hybrid Parallel
//! File Systems"*, He, Sun, Wang, Kougkas, Haider.
//!
//! This facade crate re-exports the whole workspace so examples and
//! downstream users need a single dependency:
//!
//! * [`simcore`] — discrete-event simulation kernel
//! * [`devices`] — HDD/SSD/network performance models + calibration
//! * [`pfs`] — the simulated hybrid parallel file system
//! * [`harl`] — the paper's contribution (trace, regions, cost model,
//!   optimizer, RST, policies, migration, K-profile extension)
//! * [`middleware`] — the MPI-IO-like layer (R2F, two-phase collective I/O)
//! * [`workloads`] — IOR- and BTIO-like generators
//! * [`scenario`] — declarative experiment specs ([`scenario::Scenario`])
//!   shared by the CLI, CI and programmatic callers
//!
//! Every pipeline entry point takes a [`SimContext`](prelude::SimContext)
//! first — the carrier for the metrics recorder, the seed and thread
//! overrides, and an injected fault plan:
//!
//! ```
//! use harl_repro::prelude::*;
//!
//! let cluster = ClusterConfig::paper_default();
//! let workload = IorConfig::paper_default(OpKind::Read, 256 << 20).build();
//! let policy = HarlPolicy::new(CostModelParams::from_cluster(&cluster));
//! let (rst, report) = trace_plan_run(
//!     &SimContext::new(), &cluster, &policy, &workload,
//!     &CollectiveConfig::default());
//! assert!(!rst.is_empty());
//! assert!(report.throughput_mib_s() > 0.0);
//! ```

// missing_docs / rust_2018_idioms come from [workspace.lints]. The
// cfg_attr tier mirrors harl-lint's panic-hygiene rule at compile time
// for library code; unit tests compile under cfg(test) and stay exempt.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub use harl_core as harl;
pub use harl_devices as devices;
pub use harl_middleware as middleware;
pub use harl_pfs as pfs;
pub use harl_simcore as simcore;
pub use harl_workloads as workloads;

pub mod scenario;

/// The names most programs need, in one import.
pub mod prelude {
    pub use crate::scenario::{
        ClusterSpec, FaultSpec, HybridCluster, PolicySpec, Scenario, ScenarioReport, ServeReport,
        ServeSpec, TierSpec, TieredCluster, WorkloadSpec,
    };
    pub use harl_core::{
        CostModelParams, FixedPolicy, HarlPolicy, LayoutPolicy, LoadError, MultiProfileModel,
        MultiProfileOptimizer, OptimizerConfig, RandomPolicy, RegionDivisionConfig,
        RegionStripeTable, RstEntry, SegmentPolicy, ServerLevelPolicy, SpaceBalancer, Trace,
        TraceRecord,
    };
    pub use harl_devices::{
        calibrate_network, calibrate_storage, hdd_2015_preset, nvme_2020_preset,
        object_store_preset, ssd_2015_preset, CalibrationConfig, CostProfile, DeviceKind,
        NetworkProfile, OpKind, StorageProfile,
    };
    pub use harl_middleware::{
        collect_trace, collect_trace_lowered, run_shared, run_workload, trace_plan_run,
        CollectiveConfig, LogicalRequest, PlanOutcome, PlanningService, RankProgram, ServeConfig,
        ServeStats, Workload,
    };
    pub use harl_pfs::{
        simulate, ClientProgram, ClusterConfig, Degradation, FileLayout, PhysRequest, SimReport,
    };
    pub use harl_simcore::{
        ByteSize, MemoryRecorder, NoopRecorder, Recorder, SimContext, SimNanos, SpanHop,
        SpanRecord, GIB, KIB, MIB,
    };
    pub use harl_workloads::{
        replay, AccessOrder, BtioConfig, IorConfig, MultiRegionIorConfig, Phase, PhasedConfig,
    };
    pub use harl_workloads::{TrafficConfig, TrafficJob};
}
