//! Declarative experiment scenarios: one JSON file describes the cluster,
//! the workload, the layout policy, a fault schedule and the determinism
//! knobs, and [`Scenario::run`] executes the full paper pipeline
//! (trace → plan → place → simulate) under a [`SimContext`].
//!
//! The spec is the single entry point the CLI (`harl-cli run --scenario`),
//! the smoke stage of `ci.sh` and programmatic callers share, so an
//! experiment is reproducible from one committed file:
//!
//! ```
//! use harl_repro::scenario::{Scenario, WorkloadSpec, PolicySpec};
//! use harl_repro::prelude::*;
//!
//! let s = Scenario::new(WorkloadSpec::Ior(IorConfig::paper_default(
//!         OpKind::Read, 64 << 20)))
//!     .named("doc-example")
//!     .with_policy(PolicySpec::Fixed(64 * 1024))
//!     .with_seed(7);
//! let report = s.run(&SimContext::new()).unwrap();
//! assert!(report.throughput_mib_s > 0.0);
//! ```
//!
//! Scenarios round-trip through JSON ([`Scenario::to_json_pretty`] /
//! [`Scenario::from_json`]) and are validated before running: a file that
//! parses but describes an impossible experiment (zero-size requests, a
//! fault on a server that does not exist, …) is rejected with a reason.

use harl_core::errors::LoadError;
use harl_core::{
    FixedPolicy, HarlPolicy, LayoutPolicy, MultiProfileModel, RandomPolicy, RegionStripeTable,
    SegmentPolicy, ServerLevelPolicy, Trace, TraceRecord,
};
use harl_devices::{
    hdd_2015_preset, nvme_2020_preset, object_store_preset, ssd_2015_preset, OpKind, StorageProfile,
};
use harl_middleware::{
    collect_trace, trace_plan_run, CollectiveConfig, PlanOutcome, PlanningService, ServeConfig,
    Workload,
};
use harl_pfs::{ClusterConfig, ServerClass, SimReport};
use harl_simcore::{registry, Degradation, SimContext, SimNanos};
use harl_workloads::{
    replay, BtioConfig, IorConfig, MultiRegionIorConfig, PhasedConfig, TrafficConfig,
};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// The cluster a scenario runs on.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub enum ClusterSpec {
    /// The paper's testbed: 6 HServers + 2 SServers (JSON: `"Paper"`).
    #[default]
    Paper,
    /// A hybrid cluster with the paper's device presets but custom counts
    /// (JSON: `{"Hybrid": {...}}`).
    Hybrid(HybridCluster),
    /// A fully explicit [`ClusterConfig`] (JSON: `{"Explicit": {...}}`).
    Explicit(ClusterConfig),
    /// A cluster of named device-preset tiers, any class count
    /// (JSON: `{"Tiered": {"tiers": [{"count": 4, "preset": "hdd-2015"}, ...]}}`).
    Tiered(TieredCluster),
}

/// Geometry knobs for [`ClusterSpec::Hybrid`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HybridCluster {
    /// Number of HDD-backed HServers.
    pub hservers: usize,
    /// Number of SSD-backed SServers.
    pub sservers: usize,
    /// Compute nodes (defaults to the paper's count when omitted).
    #[serde(default)]
    pub compute_nodes: Option<usize>,
    /// Base RNG seed baked into the cluster (the scenario-level `seed`
    /// field overrides this at run time).
    #[serde(default)]
    pub seed: Option<u64>,
}

/// Geometry knobs for [`ClusterSpec::Tiered`]: server classes in id order,
/// each resolved from a named device preset. This is how three-tier (and
/// K-tier) clusters are expressed from JSON without spelling out full
/// device profiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TieredCluster {
    /// Server classes in server-id order.
    pub tiers: Vec<TierSpec>,
    /// Compute nodes (defaults to the paper's count when omitted).
    #[serde(default)]
    pub compute_nodes: Option<usize>,
    /// Base RNG seed baked into the cluster (the scenario-level `seed`
    /// field overrides this at run time).
    #[serde(default)]
    pub seed: Option<u64>,
}

/// One server class of a [`ClusterSpec::Tiered`] cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierSpec {
    /// Number of servers in this class.
    pub count: usize,
    /// Device preset name: `"hdd-2015"`, `"ssd-2015"`, `"nvme-2020"` or
    /// `"object-store"` (the priced cloud tier).
    pub preset: String,
}

impl TierSpec {
    /// Resolve the preset name to a device profile.
    pub fn profile(&self) -> Result<StorageProfile, String> {
        match self.preset.as_str() {
            "hdd-2015" => Ok(hdd_2015_preset()),
            "ssd-2015" => Ok(ssd_2015_preset()),
            "nvme-2020" => Ok(nvme_2020_preset()),
            "object-store" => Ok(object_store_preset()),
            other => Err(format!(
                "unknown device preset {other:?} \
                 (expected hdd-2015, ssd-2015, nvme-2020 or object-store)"
            )),
        }
    }
}

/// The application driving I/O.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// IOR-style uniform requests (JSON: `{"Ior": {...}}`).
    Ior(IorConfig),
    /// IOR with per-region request sizes — the paper's Fig. 11 workload.
    MultiRegionIor(MultiRegionIorConfig),
    /// NAS BTIO-style collective checkpointing.
    Btio(BtioConfig),
    /// Explicit multi-phase workload.
    Phased(PhasedConfig),
    /// Replay a trace file previously saved with
    /// [`Trace::save_to_path`](harl_core::Trace::save_to_path).
    ReplayTrace(String),
}

/// The layout policy under test.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub enum PolicySpec {
    /// Traditional fixed striping with this stripe size on every server
    /// (JSON: `{"Fixed": 65536}`).
    Fixed(u64),
    /// Random per-region stripes drawn from this seed.
    Random(u64),
    /// Segment-level optimisation with this segment size (`h == s`).
    Segment(u64),
    /// Server-level: one optimised `(h, s)` pair for the whole file.
    ServerLevel,
    /// The paper's contribution: region-level HARL (JSON: `"Harl"`).
    #[default]
    Harl,
}

impl PolicySpec {
    /// Stable label used in reports.
    pub fn label(&self) -> String {
        match self {
            PolicySpec::Fixed(stripe) => format!("fixed-{stripe}"),
            PolicySpec::Random(_) => "random".into(),
            PolicySpec::Segment(size) => format!("segment-{size}"),
            PolicySpec::ServerLevel => "server-level".into(),
            PolicySpec::Harl => "harl".into(),
        }
    }
}

/// One injected server degradation, in human units (seconds, multiplier).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Server index (0-based, HServers first).
    pub server: usize,
    /// Service-time multiplier while active (2.0 = half speed).
    pub slowdown: f64,
    /// Start of the window in simulated seconds (default 0).
    #[serde(default)]
    pub from_s: f64,
    /// End of the window in simulated seconds; `None` = permanent.
    #[serde(default)]
    pub until_s: Option<f64>,
}

impl FaultSpec {
    fn to_degradation(&self) -> Degradation {
        Degradation {
            server: self.server,
            from: SimNanos::from_secs_f64(self.from_s),
            until: self.until_s.map_or(SimNanos::MAX, SimNanos::from_secs_f64),
            slowdown: self.slowdown,
        }
    }
}

/// A complete, serialisable experiment description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable name, echoed into the report.
    #[serde(default)]
    pub name: String,
    /// The cluster (default: the paper's testbed).
    #[serde(default)]
    pub cluster: ClusterSpec,
    /// The workload — the only mandatory field.
    pub workload: WorkloadSpec,
    /// The layout policy (default: HARL).
    #[serde(default)]
    pub policy: PolicySpec,
    /// Injected server degradations, on top of any the cluster bakes in.
    #[serde(default)]
    pub faults: Vec<FaultSpec>,
    /// Master RNG seed override (default: the cluster's own seed).
    #[serde(default)]
    pub seed: Option<u64>,
    /// Planner thread budget override (default: the policy's own).
    #[serde(default)]
    pub threads: Option<usize>,
    /// Collective-I/O tuning (default: ROMIO-like defaults).
    #[serde(default)]
    pub collective: Option<CollectiveConfig>,
}

impl Scenario {
    /// A scenario running `workload` under HARL on the paper's cluster.
    pub fn new(workload: WorkloadSpec) -> Self {
        Scenario {
            name: String::new(),
            cluster: ClusterSpec::default(),
            workload,
            policy: PolicySpec::default(),
            faults: Vec::new(),
            seed: None,
            threads: None,
            collective: None,
        }
    }

    /// Set the name.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Set the cluster.
    pub fn with_cluster(mut self, cluster: ClusterSpec) -> Self {
        self.cluster = cluster;
        self
    }

    /// Set the policy.
    pub fn with_policy(mut self, policy: PolicySpec) -> Self {
        self.policy = policy;
        self
    }

    /// Add one fault to the schedule.
    pub fn with_fault(mut self, fault: FaultSpec) -> Self {
        self.faults.push(fault);
        self
    }

    /// Set the master seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Set the planner thread budget.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Serialise as pretty JSON.
    pub fn to_json_pretty(&self) -> String {
        // The vendored serialiser is infallible; Err is unreachable.
        serde_json::to_string_pretty(self).unwrap_or_default()
    }

    /// Parse from JSON and validate.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let s: Scenario = serde_json::from_str(json).map_err(|e| e.to_string())?;
        s.validate()?;
        Ok(s)
    }

    /// Load from a JSON file and validate, with descriptive errors.
    pub fn from_path(path: &Path) -> Result<Self, LoadError> {
        let s: Scenario = harl_core::errors::read_json(path)?;
        s.validate()
            .map_err(|reason| LoadError::whole_file(path, reason))?;
        Ok(s)
    }

    /// Check the scenario describes a runnable experiment.
    pub fn validate(&self) -> Result<(), String> {
        match &self.cluster {
            ClusterSpec::Paper => {}
            ClusterSpec::Hybrid(h) => {
                if h.hservers + h.sservers == 0 {
                    return Err("cluster must have at least one server".into());
                }
                if h.compute_nodes == Some(0) {
                    return Err("cluster must have at least one compute node".into());
                }
            }
            ClusterSpec::Explicit(c) => {
                if c.server_count() == 0 {
                    return Err("cluster must have at least one server".into());
                }
                if c.compute_nodes == 0 {
                    return Err("cluster must have at least one compute node".into());
                }
            }
            ClusterSpec::Tiered(t) => {
                if t.tiers.iter().map(|c| c.count).sum::<usize>() == 0 {
                    return Err("cluster must have at least one server".into());
                }
                if t.compute_nodes == Some(0) {
                    return Err("cluster must have at least one compute node".into());
                }
                for tier in &t.tiers {
                    tier.profile()?;
                }
            }
        }
        match &self.workload {
            WorkloadSpec::Ior(c) => {
                if c.processes == 0 {
                    return Err("Ior workload needs at least one process".into());
                }
                if c.request_size == 0 {
                    return Err("Ior request_size must be > 0".into());
                }
                if c.file_size < c.request_size {
                    return Err("Ior file_size must be >= request_size".into());
                }
            }
            WorkloadSpec::MultiRegionIor(c) => {
                if c.processes == 0 {
                    return Err("MultiRegionIor workload needs at least one process".into());
                }
                if c.regions.is_empty() {
                    return Err("MultiRegionIor needs at least one region".into());
                }
                if c.regions.iter().any(|&(len, req)| len == 0 || req == 0) {
                    return Err(
                        "MultiRegionIor regions need non-zero length and request size".into(),
                    );
                }
            }
            WorkloadSpec::Btio(c) => {
                if c.processes == 0 || c.grid == 0 || c.steps == 0 {
                    return Err("Btio needs non-zero processes, grid and steps".into());
                }
            }
            WorkloadSpec::Phased(c) => {
                if c.processes == 0 {
                    return Err("Phased workload needs at least one process".into());
                }
                if c.phases.is_empty() {
                    return Err("Phased workload needs at least one phase".into());
                }
                if c.phases.iter().any(|p| p.request_size == 0) {
                    return Err("Phased phases need non-zero request sizes".into());
                }
            }
            WorkloadSpec::ReplayTrace(path) => {
                if path.is_empty() {
                    return Err("ReplayTrace needs a trace file path".into());
                }
            }
        }
        match self.policy {
            PolicySpec::Fixed(0) => return Err("Fixed policy stripe must be > 0".into()),
            PolicySpec::Segment(0) => return Err("Segment policy segment must be > 0".into()),
            _ => {}
        }
        let servers = self.build_cluster().server_count();
        for (i, f) in self.faults.iter().enumerate() {
            if f.server >= servers {
                return Err(format!(
                    "fault {i} targets server {} but the cluster has {servers}",
                    f.server
                ));
            }
            if !(f.slowdown > 0.0 && f.slowdown.is_finite()) {
                return Err(format!("fault {i} slowdown must be finite and > 0"));
            }
            if let Some(until) = f.until_s {
                if until <= f.from_s {
                    return Err(format!("fault {i} window is empty or inverted"));
                }
            }
        }
        if self.threads == Some(0) {
            return Err("threads must be >= 1 when set".into());
        }
        Ok(())
    }

    /// Materialise the cluster.
    pub fn build_cluster(&self) -> ClusterConfig {
        match &self.cluster {
            ClusterSpec::Paper => ClusterConfig::paper_default(),
            ClusterSpec::Hybrid(h) => {
                let mut c = ClusterConfig::hybrid(h.hservers, h.sservers);
                if let Some(nodes) = h.compute_nodes {
                    c = c.with_compute_nodes(nodes);
                }
                if let Some(seed) = h.seed {
                    c = c.with_seed(seed);
                }
                c
            }
            ClusterSpec::Explicit(c) => c.clone(),
            ClusterSpec::Tiered(t) => {
                let classes = t
                    .tiers
                    .iter()
                    .map(|tier| {
                        // Documented precondition: validate() resolves every
                        // preset first, so an unknown name cannot reach here
                        // through the JSON entry points.
                        #[allow(clippy::panic)]
                        let profile = match tier.profile() {
                            Ok(p) => p,
                            Err(reason) => panic!("{reason}"),
                        };
                        ServerClass {
                            count: tier.count,
                            profile,
                        }
                    })
                    .collect();
                let mut c = ClusterConfig::tiered(classes);
                if let Some(nodes) = t.compute_nodes {
                    c = c.with_compute_nodes(nodes);
                }
                if let Some(seed) = t.seed {
                    c = c.with_seed(seed);
                }
                c
            }
        }
    }

    /// Materialise the workload (replay scenarios read their trace here).
    pub fn build_workload(&self) -> Result<Workload, String> {
        Ok(match &self.workload {
            WorkloadSpec::Ior(c) => c.build(),
            WorkloadSpec::MultiRegionIor(c) => c.build(),
            WorkloadSpec::Btio(c) => c.build(),
            WorkloadSpec::Phased(c) => c.build(),
            WorkloadSpec::ReplayTrace(path) => {
                let trace = Trace::load_from_path(Path::new(path)).map_err(|e| e.to_string())?;
                replay(&trace)
            }
        })
    }

    /// Materialise the layout policy for `cluster`.
    pub fn build_policy(&self, cluster: &ClusterConfig) -> Box<dyn LayoutPolicy> {
        let model = || MultiProfileModel::from_cluster(cluster);
        let classes = cluster.classes.len();
        match self.policy {
            PolicySpec::Fixed(stripe) => Box::new(FixedPolicy::uniform(stripe, classes)),
            PolicySpec::Random(seed) => Box::new(RandomPolicy::for_classes(seed, classes)),
            PolicySpec::Segment(segment_size) => Box::new(SegmentPolicy {
                model: model(),
                segment_size,
                optimizer: Default::default(),
            }),
            PolicySpec::ServerLevel => Box::new(ServerLevelPolicy::new(model())),
            PolicySpec::Harl => Box::new(HarlPolicy::new(model())),
        }
    }

    /// Fold the scenario's determinism knobs and fault plan into `base`.
    ///
    /// Explicit settings on `base` win over the scenario's (a caller that
    /// pins a seed keeps it); scenario faults are appended to the base
    /// plan.
    pub fn context(&self, base: &SimContext) -> SimContext {
        let mut ctx = base.clone();
        if ctx.seed.is_none() {
            ctx.seed = self.seed;
        }
        if ctx.threads.is_none() {
            ctx.threads = self.threads;
        }
        ctx.faults
            .extend(self.faults.iter().map(FaultSpec::to_degradation));
        ctx
    }

    /// Run the full pipeline and summarise the outcome.
    ///
    /// The report is deterministic: the same scenario and seed produce
    /// byte-identical JSON, independent of the thread budget.
    pub fn run(&self, base: &SimContext) -> Result<ScenarioReport, String> {
        self.validate()?;
        let cluster = self.build_cluster();
        let workload = self.build_workload()?;
        let policy = self.build_policy(&cluster);
        let ccfg = self.collective.unwrap_or_default();
        let ctx = self.context(base);
        let (rst, report) = trace_plan_run(&ctx, &cluster, policy.as_ref(), &workload, &ccfg);
        let plan_cost_usd = plan_dollar_cost(&cluster, &rst, &report);
        if let Some(usd) = plan_cost_usd {
            let recorder = ctx.recorder();
            if recorder.is_enabled() {
                recorder.gauge_set(registry::HARL_PLAN_COST_USD.name, &[], usd);
            }
        }
        Ok(ScenarioReport {
            name: self.name.clone(),
            policy: self.policy.label(),
            seed: ctx.seed_or(cluster.seed),
            regions: rst.len(),
            file_size: rst.file_size(),
            makespan_ns: report.makespan.as_nanos(),
            throughput_mib_s: report.throughput_mib_s(),
            bytes_read: report.bytes_read,
            bytes_written: report.bytes_written,
            requests_completed: report.requests_completed,
            plan_cost_usd,
            rst,
        })
    }
}

/// One month's dollar cost of holding and serving the planned layout, or
/// `None` when every tier is free (the paper's on-prem two-tier setup).
///
/// Capacity rent charges each priced server for the bytes the RST maps
/// onto it (`usd_per_gb_month`, held for one month); request fees charge
/// each priced server's simulated sub-requests at the GET/PUT price, with
/// the read/write split taken from the workload's byte totals. See
/// DESIGN.md Appendix G for the break-even arithmetic.
fn plan_dollar_cost(
    cluster: &ClusterConfig,
    rst: &RegionStripeTable,
    report: &SimReport,
) -> Option<f64> {
    if cluster.classes.iter().all(|c| c.profile.cost.is_free()) {
        return None;
    }
    let stored = harl_middleware::bytes_per_server(cluster, rst, rst.file_size());
    let total_io = report.bytes_read + report.bytes_written;
    let read_frac = if total_io == 0 {
        0.0
    } else {
        report.bytes_read as f64 / total_io as f64
    };
    const GB: f64 = 1_000_000_000.0;
    let mut usd = 0.0;
    for (idx, class) in cluster.classes.iter().enumerate() {
        let cost = &class.profile.cost;
        if cost.is_free() {
            continue;
        }
        for sid in cluster.class_servers(idx) {
            usd += stored.get(sid).copied().unwrap_or(0) as f64 / GB * cost.usd_per_gb_month;
            let jobs = report.servers.get(sid).map_or(0, |s| s.disk_jobs) as f64;
            usd += jobs * read_frac * cost.usd_per_get;
            usd += jobs * (1.0 - read_frac) * cost.usd_per_put;
        }
    }
    Some(usd)
}

/// Deterministic summary of one scenario run.
///
/// Serialisation is hand-written: `plan_cost_usd` is omitted when `None`,
/// so reports from all-free clusters stay byte-identical to the pre-pricing
/// format (and to `scenarios/smoke.golden.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name, echoed from the spec.
    pub name: String,
    /// Policy label (see [`PolicySpec::label`]).
    pub policy: String,
    /// The seed the simulation actually used.
    pub seed: u64,
    /// Number of RST regions planned.
    pub regions: usize,
    /// Logical file size covered by the RST.
    pub file_size: u64,
    /// Simulated makespan in nanoseconds.
    pub makespan_ns: u64,
    /// End-to-end throughput.
    pub throughput_mib_s: f64,
    /// Bytes read by the workload.
    pub bytes_read: u64,
    /// Bytes written by the workload.
    pub bytes_written: u64,
    /// Physical requests completed by the PFS.
    pub requests_completed: u64,
    /// One month's dollar cost of the plan on priced tiers; `None` when
    /// every tier is free. See [`CostProfile`](harl_devices::CostProfile).
    pub plan_cost_usd: Option<f64>,
    /// The planned layout itself.
    pub rst: RegionStripeTable,
}

impl Serialize for ScenarioReport {
    fn serialize(&self) -> serde::Value {
        let mut map = serde::Map::new();
        map.insert("name".to_string(), self.name.serialize());
        map.insert("policy".to_string(), self.policy.serialize());
        map.insert("seed".to_string(), self.seed.serialize());
        map.insert("regions".to_string(), self.regions.serialize());
        map.insert("file_size".to_string(), self.file_size.serialize());
        map.insert("makespan_ns".to_string(), self.makespan_ns.serialize());
        map.insert(
            "throughput_mib_s".to_string(),
            self.throughput_mib_s.serialize(),
        );
        map.insert("bytes_read".to_string(), self.bytes_read.serialize());
        map.insert("bytes_written".to_string(), self.bytes_written.serialize());
        map.insert(
            "requests_completed".to_string(),
            self.requests_completed.serialize(),
        );
        if let Some(usd) = self.plan_cost_usd {
            map.insert("plan_cost_usd".to_string(), usd.serialize());
        }
        map.insert("rst".to_string(), self.rst.serialize());
        serde::Value::Object(map)
    }
}

impl Deserialize for ScenarioReport {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        let map = v
            .as_object()
            .ok_or_else(|| serde::Error::expected("object", "ScenarioReport"))?;
        let field = |name: &'static str| -> Result<&serde::Value, serde::Error> {
            map.get(name)
                .ok_or_else(|| serde::Error::missing_field(name, "ScenarioReport"))
        };
        Ok(ScenarioReport {
            name: String::deserialize(field("name")?)?,
            policy: String::deserialize(field("policy")?)?,
            seed: u64::deserialize(field("seed")?)?,
            regions: usize::deserialize(field("regions")?)?,
            file_size: u64::deserialize(field("file_size")?)?,
            makespan_ns: u64::deserialize(field("makespan_ns")?)?,
            throughput_mib_s: f64::deserialize(field("throughput_mib_s")?)?,
            bytes_read: u64::deserialize(field("bytes_read")?)?,
            bytes_written: u64::deserialize(field("bytes_written")?)?,
            requests_completed: u64::deserialize(field("requests_completed")?)?,
            plan_cost_usd: match map.get("plan_cost_usd") {
                Some(v) => Some(f64::deserialize(v)?),
                None => None,
            },
            rst: RegionStripeTable::deserialize(field("rst")?)?,
        })
    }
}

impl ScenarioReport {
    /// Serialise as pretty JSON (the CLI/CI output format).
    pub fn to_json_pretty(&self) -> String {
        // The vendored serialiser is infallible; Err is unreachable.
        serde_json::to_string_pretty(self).unwrap_or_default()
    }

    /// Parse a report back from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

/// A multi-tenant planning-service experiment: seeded heavy-tailed
/// traffic ([`TrafficConfig`]) replayed through a
/// [`PlanningService`], one spec file per fleet. This is what
/// `harl-cli serve --scenario` runs and what
/// `scenarios/multiapp.json` pins in CI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeSpec {
    /// Human-readable name, echoed into the report.
    #[serde(default)]
    pub name: String,
    /// The cluster whose model the service plans against (default: the
    /// paper's testbed).
    #[serde(default)]
    pub cluster: ClusterSpec,
    /// The arrival schedule — the only mandatory field.
    pub traffic: TrafficConfig,
    /// Service tuning (cache capacities, division/optimizer/online).
    #[serde(default)]
    pub serve: ServeConfig,
    /// Planner thread budget override.
    #[serde(default)]
    pub threads: Option<usize>,
}

impl ServeSpec {
    /// A spec running `traffic` with default service tuning on the
    /// paper's cluster.
    pub fn new(traffic: TrafficConfig) -> Self {
        ServeSpec {
            name: String::new(),
            cluster: ClusterSpec::default(),
            traffic,
            serve: ServeConfig::default(),
            threads: None,
        }
    }

    /// Serialise as pretty JSON.
    pub fn to_json_pretty(&self) -> String {
        // The vendored serialiser is infallible; Err is unreachable.
        serde_json::to_string_pretty(self).unwrap_or_default()
    }

    /// Parse from JSON and validate.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let s: ServeSpec = serde_json::from_str(json).map_err(|e| e.to_string())?;
        s.validate()?;
        Ok(s)
    }

    /// Load from a JSON file and validate, with descriptive errors.
    pub fn from_path(path: &Path) -> Result<Self, LoadError> {
        let s: ServeSpec = harl_core::errors::read_json(path)?;
        s.validate()
            .map_err(|reason| LoadError::whole_file(path, reason))?;
        Ok(s)
    }

    /// Check the spec describes a runnable fleet.
    pub fn validate(&self) -> Result<(), String> {
        if self.traffic.tenants == 0 {
            return Err("traffic needs at least one tenant".into());
        }
        if self.traffic.templates == 0 {
            return Err("traffic needs at least one template".into());
        }
        if self.traffic.processes == 0 {
            return Err("traffic needs at least one process per job".into());
        }
        if self.traffic.drift_pct > 100 {
            return Err("drift_pct is a percentage (0-100)".into());
        }
        if self.serve.online.window == 0 {
            return Err("online window must be positive".into());
        }
        Ok(())
    }

    /// Build the cluster the service models.
    pub fn build_cluster(&self) -> ClusterConfig {
        // Reuse the Scenario materialisation (same ClusterSpec).
        Scenario {
            name: String::new(),
            cluster: self.cluster.clone(),
            workload: WorkloadSpec::Ior(IorConfig::paper_default(OpKind::Read, 1 << 20)),
            policy: PolicySpec::default(),
            faults: Vec::new(),
            seed: None,
            threads: None,
            collective: None,
        }
        .build_cluster()
    }

    /// Replay the full arrival schedule through a fresh service.
    ///
    /// Deterministic: the same spec produces a byte-identical report at
    /// any thread budget. Drifted arrivals additionally stream a probe of
    /// off-plan requests through the tenant's monitor so the online path
    /// (adaptation → batched tick apply → stale refresh) is exercised.
    pub fn run(&self, base: &SimContext) -> Result<ServeReport, String> {
        self.validate()?;
        let cluster = self.build_cluster();
        let model = MultiProfileModel::from_cluster(&cluster);
        let mut svc = PlanningService::new(model, self.serve.clone());
        let mut ctx = base.clone();
        if ctx.threads.is_none() {
            ctx.threads = self.threads;
        }
        let jobs = self.traffic.jobs();
        let (mut hit, mut stale, mut miss) = (0u64, 0u64, 0u64);
        let mut current_tick = 0usize;
        for job in &jobs {
            while current_tick < job.tick {
                svc.tick(&ctx);
                current_tick += 1;
            }
            let (workload, file_size) = self.traffic.build_workload(job);
            let trace = collect_trace(&workload);
            let ticket = svc.submit(&ctx, job.tenant, &trace, file_size);
            match ticket.outcome {
                PlanOutcome::CacheHit => hit += 1,
                PlanOutcome::StaleRefresh => stale += 1,
                PlanOutcome::Miss => miss += 1,
            }
            if job.drifted {
                // Observed behaviour diverging from plan: a burst of small
                // off-plan requests with punishing latencies. Enough to
                // close two monitor windows.
                for i in 0..(2 * self.serve.online.window as u64) {
                    svc.observe_served(
                        job.tenant,
                        TraceRecord {
                            rank: 0,
                            fd: 0,
                            op: OpKind::Read,
                            offset: (i % 16) * 4096,
                            size: 4096,
                            timestamp: SimNanos::from_nanos(i),
                        },
                        0.5,
                    );
                }
            }
        }
        // Close the final tick so every pending update lands.
        svc.tick(&ctx);
        let stats = svc.stats();
        Ok(ServeReport {
            name: self.name.clone(),
            jobs: jobs.len() as u64,
            tenants: stats.tenants as u64,
            plans_hit: hit,
            plans_stale: stale,
            plans_miss: miss,
            cache_hits: stats.cache.hits,
            cache_misses: stats.cache.misses,
            cache_stale: stats.cache.stale,
            cache_evictions: stats.cache.evictions,
            cache_hit_rate: stats.cache.hit_rate(),
            regions_reused: stats.regions_reused,
            regions_planned: stats.regions_planned,
            region_pool_hits: stats.region_pool.0,
            region_pool_misses: stats.region_pool.1,
            adaptations: stats.adaptations,
            batch_enqueued: stats.batch_enqueued,
            batch_applied: stats.batch_applied,
            batch_coalesced: stats.batch_coalesced,
            ticks: stats.ticks,
        })
    }
}

/// Deterministic summary of one [`ServeSpec`] replay. Golden-diffed in CI
/// (`scenarios/multiapp.golden.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Spec name, echoed.
    pub name: String,
    /// Plan submissions replayed.
    pub jobs: u64,
    /// Tenants resident when the replay finished.
    pub tenants: u64,
    /// Submissions answered straight from the plan cache.
    pub plans_hit: u64,
    /// Submissions that refreshed a stale (adapted-over) cached plan.
    pub plans_stale: u64,
    /// Submissions planned from scratch (with region-level reuse).
    pub plans_miss: u64,
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Plan-cache misses.
    pub cache_misses: u64,
    /// Plan-cache stale lookups.
    pub cache_stale: u64,
    /// Plans evicted by LRU pressure.
    pub cache_evictions: u64,
    /// hits / (hits + misses + stale).
    pub cache_hit_rate: f64,
    /// Regions answered from recycled grid results.
    pub regions_reused: u64,
    /// Regions whose grid search ran.
    pub regions_planned: u64,
    /// Cross-tenant region-pool hits.
    pub region_pool_hits: u64,
    /// Cross-tenant region-pool misses.
    pub region_pool_misses: u64,
    /// Online-drift adaptation events.
    pub adaptations: u64,
    /// Width updates enqueued by adaptations.
    pub batch_enqueued: u64,
    /// Width updates applied at ticks.
    pub batch_applied: u64,
    /// Updates coalesced away before apply.
    pub batch_coalesced: u64,
    /// Service ticks executed.
    pub ticks: u64,
}

impl ServeReport {
    /// Serialise as pretty JSON (the CLI/CI output format).
    pub fn to_json_pretty(&self) -> String {
        // The vendored serialiser is infallible; Err is unreachable.
        serde_json::to_string_pretty(self).unwrap_or_default()
    }

    /// Parse a report back from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}
