//! Round-robin varied-size striping geometry.
//!
//! A parallel file is distributed over servers in *stripe groups*: one
//! group is a sequence of segments, one per participating server, where
//! segment `i` has that server's stripe width. Groups repeat round-robin
//! down the file address space. In the paper's two-class notation a group is
//! `M` segments of width `h` (the HServers) followed by `N` segments of
//! width `s` (the SServers) and the group size is `S = M·h + N·s`; this
//! module implements the general K-class form and offers closed-form
//! per-server byte accounting so the HARL optimizer can cost a request in
//! `O(M + N)` instead of walking stripes.

use serde::{Deserialize, Serialize};

/// The per-group segment widths of a striped file.
///
/// `widths[i]` is the stripe size of the i-th participating server slot.
/// Zero widths are allowed for any slot (the paper's `h = 0` case, Fig. 9,
/// generalises to "this class holds no data" at any class count): a slot
/// with zero width simply does not participate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupLayout {
    widths: Vec<u64>,
    /// Prefix sums of `widths`: `starts[i]` is segment i's offset within a
    /// group; `starts[len]` is the group size `S`.
    starts: Vec<u64>,
}

impl GroupLayout {
    /// Build a layout from per-slot widths.
    ///
    /// # Panics
    /// Panics if all widths are zero — a file must live somewhere. Layouts
    /// arriving from outside the process (scenario files, tables loaded
    /// from disk) should go through [`Self::try_new`] instead.
    pub fn new(widths: Vec<u64>) -> Self {
        #[allow(clippy::panic)]
        match Self::try_new(widths) {
            Ok(l) => l,
            Err(reason) => panic!("{reason}"),
        }
    }

    /// Build a layout from per-slot widths, reporting a validation failure
    /// as a descriptive error instead of panicking — the entry point for
    /// layouts parsed from scenario files or loaded from disk.
    pub fn try_new(widths: Vec<u64>) -> Result<Self, String> {
        if widths.is_empty() {
            return Err("group layout has no slots".into());
        }
        let total: u64 = widths.iter().sum();
        if total == 0 {
            return Err(format!(
                "group layout with no capacity (all {} widths zero)",
                widths.len()
            ));
        }
        let mut starts = Vec::with_capacity(widths.len() + 1);
        let mut acc = 0;
        starts.push(0);
        for &w in &widths {
            acc += w;
            starts.push(acc);
        }
        Ok(GroupLayout { widths, starts })
    }

    /// The paper's two-class layout: `m` slots of width `h` then `n` slots
    /// of width `s`.
    pub fn two_class(m: usize, h: u64, n: usize, s: u64) -> Self {
        let mut widths = Vec::with_capacity(m + n);
        widths.extend(std::iter::repeat_n(h, m));
        widths.extend(std::iter::repeat_n(s, n));
        GroupLayout::new(widths)
    }

    /// A homogeneous fixed-stripe layout over `k` slots.
    pub fn fixed(k: usize, stripe: u64) -> Self {
        GroupLayout::new(vec![stripe; k])
    }

    /// Stripe group size `S` (sum of widths).
    #[inline]
    pub fn group_size(&self) -> u64 {
        // `starts` always begins with 0, so `last()` never misses; the 0
        // arm only documents the total order for an impossible state.
        self.starts.last().map_or(0, |&s| s)
    }

    /// Number of slots (including zero-width ones).
    #[inline]
    pub fn slots(&self) -> usize {
        self.widths.len()
    }

    /// The width of slot `i`.
    #[inline]
    pub fn width(&self, i: usize) -> u64 {
        self.widths[i]
    }

    /// All widths.
    #[inline]
    pub fn widths(&self) -> &[u64] {
        &self.widths
    }

    /// Bytes of the file range `[0, x)` that land on slot `i`.
    ///
    /// Closed form: `x` covers `x / S` complete groups (each contributing
    /// `width` bytes to the slot) plus a partial group of `x % S` bytes, of
    /// which the slot's segment `[start, start + width)` holds the clamped
    /// overlap.
    #[inline]
    pub fn bytes_below(&self, slot: usize, x: u64) -> u64 {
        let s = self.group_size();
        let w = self.widths[slot];
        if w == 0 {
            return 0;
        }
        let full = x / s;
        let rem = x % s;
        let b = self.starts[slot];
        full * w + rem.saturating_sub(b).min(w)
    }

    /// Bytes of the request `[offset, offset + len)` that land on slot `i`.
    #[inline]
    pub fn bytes_in_range(&self, slot: usize, offset: u64, len: u64) -> u64 {
        self.bytes_below(slot, offset + len) - self.bytes_below(slot, offset)
    }

    /// Per-slot byte counts for a request — the request's *sub-requests*.
    ///
    /// Returns `(slot, bytes)` for every slot receiving at least one byte.
    /// The sum of the byte counts always equals `len` (conservation — see
    /// the property tests).
    pub fn split(&self, offset: u64, len: u64) -> Vec<(usize, u64)> {
        if len == 0 {
            return Vec::new();
        }
        let s = self.group_size();
        if len >= s {
            // The request covers at least one full group: every non-empty
            // slot is touched, so the all-slots scan is already
            // proportional to the output.
            let mut out = Vec::with_capacity(self.widths.len());
            for slot in 0..self.widths.len() {
                let b = self.bytes_in_range(slot, offset, len);
                if b > 0 {
                    out.push((slot, b));
                }
            }
            return out;
        }
        // Narrow request (< one group): it touches one contiguous arc of
        // segments, wrapping the group boundary at most once. Binary
        // search locates the arc so the cost is O(log slots + touched)
        // instead of a full-slot scan — the MDS split of a single-stripe
        // request on a 4096-server file must not walk 4096 slots.
        let rem = offset % s;
        let end = rem + len; // < 2S
        let slot_of = |x: u64| self.starts.partition_point(|&b| b <= x) - 1;
        let i0 = slot_of(rem);
        let i1 = slot_of(end.min(s) - 1);
        let mut out = Vec::with_capacity(i1 - i0 + 2);
        let mut emit = |slot: usize| {
            let b = self.bytes_in_range(slot, offset, len);
            if b > 0 {
                out.push((slot, b));
            }
        };
        if end > s {
            // Wrapped tail `[0, end - s)`; since `len < S` its last slot
            // `j` never passes `i0`, so emitting `0..=j` first and then
            // `max(i0, j + 1)..=i1` keeps ascending order without
            // duplicates (a slot in both arcs aggregates both fragments
            // in one `bytes_in_range` call).
            let j = slot_of(end - s - 1);
            for slot in 0..=j {
                emit(slot);
            }
            for slot in i0.max(j + 1)..=i1 {
                emit(slot);
            }
        } else {
            for slot in i0..=i1 {
                emit(slot);
            }
        }
        out
    }

    /// The *contiguous-fragment* sub-request sizes for a request, per slot.
    ///
    /// Where [`split`](Self::split) aggregates all of a slot's bytes, this
    /// returns the size of the largest single stripe fragment the slot must
    /// serve — the quantity the paper's cost model calls `s_m`/`s_n` is the
    /// *total* per-server load in our reading (each server serves its
    /// fragments back to back), so the aggregate is what the cost model
    /// uses; the fragment view is provided for diagnostics and tests.
    pub fn largest_fragment(&self, slot: usize, offset: u64, len: u64) -> u64 {
        let w = self.widths[slot];
        if w == 0 || len == 0 {
            return 0;
        }
        let s = self.group_size();
        let b = self.starts[slot];
        let end = offset + len;
        // Scan the groups the request touches; bounded by len/S + 2 groups.
        let first_group = offset / s;
        let last_group = (end - 1) / s;
        let mut best = 0;
        for g in first_group..=last_group {
            let seg_lo = g * s + b;
            let seg_hi = seg_lo + w;
            let lo = seg_lo.max(offset);
            let hi = seg_hi.min(end);
            if hi > lo {
                best = best.max(hi - lo);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force byte accounting for cross-checking the closed form.
    fn brute_bytes(layout: &GroupLayout, slot: usize, offset: u64, len: u64) -> u64 {
        let s = layout.group_size();
        let b: u64 = layout.starts[slot];
        let w = layout.width(slot);
        (offset..offset + len)
            .filter(|&x| {
                let r = x % s;
                r >= b && r < b + w
            })
            .count() as u64
    }

    #[test]
    fn two_class_group_size() {
        let l = GroupLayout::two_class(6, 32 * 1024, 2, 160 * 1024);
        assert_eq!(l.group_size(), 6 * 32 * 1024 + 2 * 160 * 1024);
        assert_eq!(l.slots(), 8);
    }

    #[test]
    fn fixed_layout_splits_evenly() {
        // 512 KiB request over 8 servers with 64 KiB stripes: one stripe each.
        let l = GroupLayout::fixed(8, 64 * 1024);
        let split = l.split(0, 512 * 1024);
        assert_eq!(split.len(), 8);
        for (_, bytes) in split {
            assert_eq!(bytes, 64 * 1024);
        }
    }

    #[test]
    fn split_conserves_bytes() {
        let l = GroupLayout::two_class(6, 32 * 1024, 2, 160 * 1024);
        for (o, r) in [
            (0u64, 512 * 1024u64),
            (12_345, 512 * 1024),
            (1_000_000, 777),
            (0, 1),
            (65_535, 2),
        ] {
            let total: u64 = l.split(o, r).iter().map(|&(_, b)| b).sum();
            assert_eq!(total, r, "offset {o} len {r}");
        }
    }

    #[test]
    fn closed_form_matches_brute_force() {
        let l = GroupLayout::two_class(3, 4096, 2, 10_240);
        for slot in 0..l.slots() {
            for &(o, r) in &[(0u64, 30_000u64), (5_000, 12_345), (40_000, 1), (4095, 2)] {
                assert_eq!(
                    l.bytes_in_range(slot, o, r),
                    brute_bytes(&l, slot, o, r),
                    "slot {slot} offset {o} len {r}"
                );
            }
        }
    }

    #[test]
    fn zero_width_slot_gets_nothing() {
        // Paper Fig. 9: optimal layout {0KB, 64KB} stores nothing on HServers.
        let l = GroupLayout::two_class(6, 0, 2, 64 * 1024);
        let split = l.split(0, 128 * 1024);
        assert_eq!(split, vec![(6, 64 * 1024), (7, 64 * 1024)]);
    }

    #[test]
    #[should_panic(expected = "no capacity")]
    fn all_zero_widths_rejected() {
        GroupLayout::two_class(4, 0, 2, 0);
    }

    #[test]
    fn try_new_reports_descriptive_errors() {
        let err = GroupLayout::try_new(vec![0, 0, 0]).unwrap_err();
        assert!(err.contains("no capacity"), "got: {err}");
        assert!(err.contains('3'), "should name the slot count: {err}");
        let err = GroupLayout::try_new(Vec::new()).unwrap_err();
        assert!(err.contains("no slots"), "got: {err}");
        assert!(GroupLayout::try_new(vec![0, 64]).is_ok());
    }

    #[test]
    fn request_inside_single_stripe() {
        let l = GroupLayout::fixed(4, 64 * 1024);
        // Entirely within server 1's first stripe.
        let split = l.split(64 * 1024 + 100, 1000);
        assert_eq!(split, vec![(1, 1000)]);
    }

    #[test]
    fn request_spanning_group_boundary() {
        let l = GroupLayout::fixed(2, 100);
        // Group size 200. Request [150, 260): 50 bytes on slot 1 (first
        // group), 100 on slot 0 (second group... byte 200..260 -> slot 0
        // holds 200..300) so 60 bytes.
        let split = l.split(150, 110);
        assert_eq!(split, vec![(0, 60), (1, 50)]);
    }

    #[test]
    fn multi_group_request() {
        let l = GroupLayout::two_class(2, 100, 1, 300);
        // S = 500. Request [0, 1250) covers 2 full groups + 250 bytes.
        let split = l.split(0, 1250);
        let total: u64 = split.iter().map(|&(_, b)| b).sum();
        assert_eq!(total, 1250);
        // slot0 segments [0,100),[500,600),[1000,1100): all inside => 300.
        assert_eq!(l.bytes_in_range(0, 0, 1250), 300);
        // slot1 segments [100,200),[600,700),[1100,1200): all inside => 300.
        assert_eq!(l.bytes_in_range(1, 0, 1250), 300);
        // slot2 segments [200,500),[700,1000),[1200,1500): 300+300+50 = 650.
        assert_eq!(l.bytes_in_range(2, 0, 1250), 650);
    }

    #[test]
    fn largest_fragment_simple() {
        let l = GroupLayout::fixed(2, 100);
        // Request [50, 350): slot0 gets [50,100) and [200,300): largest 100.
        assert_eq!(l.largest_fragment(0, 50, 300), 100);
        // slot1 gets [100,200) and [300,350): largest 100.
        assert_eq!(l.largest_fragment(1, 50, 300), 100);
        // Small request in one stripe.
        assert_eq!(l.largest_fragment(0, 10, 20), 20);
        assert_eq!(l.largest_fragment(1, 10, 20), 0);
    }

    #[test]
    fn largest_fragment_zero_cases() {
        let l = GroupLayout::two_class(1, 0, 1, 100);
        assert_eq!(l.largest_fragment(0, 0, 1000), 0);
        assert_eq!(l.largest_fragment(1, 0, 0), 0);
    }

    #[test]
    fn k_class_layout() {
        // Three device classes — the paper's future-work extension.
        let l = GroupLayout::new(vec![100, 100, 200, 400]);
        assert_eq!(l.group_size(), 800);
        let split = l.split(0, 800);
        assert_eq!(split, vec![(0, 100), (1, 100), (2, 200), (3, 400)]);
    }
}
