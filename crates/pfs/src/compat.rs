//! Legacy two-tier `(h, s)` surface — the designated compat module.
//!
//! The canonical layout constructor is [`FileLayout::for_classes`], which
//! takes one stripe width per server class. The paper's two-tier pair form
//! lives here so harl-lint's `two-tier-hygiene` rule can forbid the shape
//! everywhere else.

use crate::cluster::ClusterConfig;
use crate::layout::FileLayout;

impl FileLayout {
    /// The paper's two-class varied-size striping: width `h` on every
    /// HDD-class server, `s` on every SSD-class server — exactly
    /// [`FileLayout::for_classes`] with `widths = [h, s]`.
    ///
    /// # Panics
    /// Panics unless `cluster` has exactly two classes, or if both widths
    /// are zero.
    pub fn two_class(cluster: &ClusterConfig, h: u64, s: u64) -> Self {
        assert_eq!(
            cluster.classes.len(),
            2,
            "two_class layout needs a two-class cluster; use for_classes() for K classes"
        );
        FileLayout::for_classes(cluster, &[h, s])
    }
}
