//! Fault and straggler injection — re-exported from `harl-simcore`.
//!
//! [`Degradation`] moved into `harl_simcore::faults` so that
//! [`harl_simcore::SimContext`] can carry a fault plan without a dependency
//! cycle; this module keeps the PFS-side path (`harl_pfs::faults`) working.
//! See `harl_simcore::faults` for the full documentation and tests.

pub use harl_simcore::faults::{slowdown_at, Degradation};
