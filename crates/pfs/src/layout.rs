//! File layouts: which servers hold a file and with what stripe widths.
//!
//! A [`FileLayout`] binds a [`GroupLayout`]
//! to concrete [`ServerId`]s. The three shapes the paper evaluates:
//!
//! * **fixed-size stripe** over all servers (the traditional scheme,
//!   Fig. 2(a)) — [`FileLayout::fixed`];
//! * **varied-size stripe**: one width for HServers, another for SServers
//!   (one HARL region, Fig. 2(b)) — [`FileLayout::two_class`];
//! * arbitrary per-server widths for the K-profile extension —
//!   [`FileLayout::custom`].

use crate::cluster::{ClusterConfig, ServerId};
use crate::geometry::GroupLayout;
use serde::{Deserialize, Serialize};

/// A physical file's placement: participating servers plus group geometry.
///
/// Servers with zero stripe width are dropped at construction, so
/// `servers()` lists exactly the servers that hold data — the paper's
/// `{0 KB, 64 KB}` layout (Fig. 9) yields a layout whose server list
/// contains only the SServers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FileLayout {
    servers: Vec<ServerId>,
    group: GroupLayout,
}

impl FileLayout {
    /// Build from explicit `(server, width)` pairs, dropping zero widths.
    ///
    /// # Panics
    /// Panics if every width is zero, or a server id repeats.
    pub fn custom(pairs: Vec<(ServerId, u64)>) -> Self {
        let kept: Vec<(ServerId, u64)> = pairs.into_iter().filter(|&(_, w)| w > 0).collect();
        assert!(!kept.is_empty(), "file layout with no capacity");
        let mut ids: Vec<ServerId> = kept.iter().map(|&(id, _)| id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), kept.len(), "duplicate server in file layout");
        let servers = kept.iter().map(|&(id, _)| id).collect();
        let group = GroupLayout::new(kept.iter().map(|&(_, w)| w).collect());
        FileLayout { servers, group }
    }

    /// Fixed-size striping over all servers of `cluster`, round-robin from
    /// server 0 — the PFS default the paper compares against.
    pub fn fixed(cluster: &ClusterConfig, stripe: u64) -> Self {
        assert!(stripe > 0, "fixed stripe must be positive");
        FileLayout::custom(cluster.all_servers().map(|id| (id, stripe)).collect())
    }

    /// The paper's two-class varied-size striping: width `h` on every
    /// HDD-class server, `s` on every SSD-class server (class order is the
    /// cluster's class order, matching the paper's "0 to M+N-1 round-robin").
    ///
    /// Either width may be zero (that class then holds no data); both zero
    /// panics.
    pub fn two_class(cluster: &ClusterConfig, h: u64, s: u64) -> Self {
        assert_eq!(
            cluster.classes.len(),
            2,
            "two_class layout needs a two-class cluster; use custom() for K classes"
        );
        let mut pairs = Vec::with_capacity(cluster.server_count());
        pairs.extend(cluster.class_servers(0).map(|id| (id, h)));
        pairs.extend(cluster.class_servers(1).map(|id| (id, s)));
        FileLayout::custom(pairs)
    }

    /// The servers holding data, in group order.
    #[inline]
    pub fn servers(&self) -> &[ServerId] {
        &self.servers
    }

    /// The group geometry.
    #[inline]
    pub fn group(&self) -> &GroupLayout {
        &self.group
    }

    /// Stripe group size `S`.
    #[inline]
    pub fn group_size(&self) -> u64 {
        self.group.group_size()
    }

    /// Split a byte range into per-server sub-requests `(server, bytes)`.
    pub fn split(&self, offset: u64, len: u64) -> Vec<(ServerId, u64)> {
        self.group
            .split(offset, len)
            .into_iter()
            .map(|(slot, bytes)| (self.servers[slot], bytes))
            .collect()
    }

    /// The stripe width assigned to `server`, 0 if it holds nothing.
    pub fn width_of(&self, server: ServerId) -> u64 {
        self.servers
            .iter()
            .position(|&id| id == server)
            .map_or(0, |slot| self.group.width(slot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_uses_all_servers() {
        let c = ClusterConfig::paper_default();
        let l = FileLayout::fixed(&c, 64 * 1024);
        assert_eq!(l.servers(), (0..8).collect::<Vec<_>>().as_slice());
        assert_eq!(l.group_size(), 8 * 64 * 1024);
    }

    #[test]
    fn two_class_widths() {
        let c = ClusterConfig::paper_default();
        let l = FileLayout::two_class(&c, 32 * 1024, 160 * 1024);
        assert_eq!(l.width_of(0), 32 * 1024);
        assert_eq!(l.width_of(5), 32 * 1024);
        assert_eq!(l.width_of(6), 160 * 1024);
        assert_eq!(l.width_of(7), 160 * 1024);
        assert_eq!(l.group_size(), 6 * 32 * 1024 + 2 * 160 * 1024);
    }

    #[test]
    fn zero_h_drops_hservers() {
        let c = ClusterConfig::paper_default();
        let l = FileLayout::two_class(&c, 0, 64 * 1024);
        assert_eq!(l.servers(), &[6, 7]);
        assert_eq!(l.width_of(0), 0);
        // A 128 KiB request is served entirely by the two SServers.
        let split = l.split(0, 128 * 1024);
        assert_eq!(split, vec![(6, 64 * 1024), (7, 64 * 1024)]);
    }

    #[test]
    fn zero_s_drops_sservers() {
        let c = ClusterConfig::paper_default();
        let l = FileLayout::two_class(&c, 64 * 1024, 0);
        assert_eq!(l.servers(), &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "no capacity")]
    fn both_zero_rejected() {
        let c = ClusterConfig::paper_default();
        FileLayout::two_class(&c, 0, 0);
    }

    #[test]
    #[should_panic(expected = "duplicate server")]
    fn duplicate_server_rejected() {
        FileLayout::custom(vec![(0, 10), (0, 20)]);
    }

    #[test]
    fn split_conservation_two_class() {
        let c = ClusterConfig::hybrid(6, 2);
        let l = FileLayout::two_class(&c, 36 * 1024, 148 * 1024);
        for (o, r) in [(0u64, 512 * 1024u64), (123_456, 512 * 1024), (7, 1)] {
            let total: u64 = l.split(o, r).iter().map(|&(_, b)| b).sum();
            assert_eq!(total, r);
        }
    }

    #[test]
    fn custom_k_class() {
        let l = FileLayout::custom(vec![(0, 100), (3, 200), (9, 400)]);
        assert_eq!(l.servers(), &[0, 3, 9]);
        assert_eq!(l.width_of(3), 200);
        assert_eq!(l.width_of(1), 0);
        let split = l.split(0, 700);
        assert_eq!(split, vec![(0, 100), (3, 200), (9, 400)]);
    }
}
