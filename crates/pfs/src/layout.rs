//! File layouts: which servers hold a file and with what stripe widths.
//!
//! A [`FileLayout`] binds a [`GroupLayout`]
//! to concrete [`ServerId`]s. The three shapes the paper evaluates:
//!
//! * **fixed-size stripe** over all servers (the traditional scheme,
//!   Fig. 2(a)) — [`FileLayout::fixed`];
//! * **varied-size stripe**: one width per server class in class order
//!   (one HARL region; the paper's two-class Fig. 2(b) at `K = 2`) —
//!   [`FileLayout::for_classes`] (the legacy `(h, s)` entry point
//!   [`FileLayout::two_class`] lives in [`crate::compat`]);
//! * arbitrary per-server widths — [`FileLayout::custom`].

use crate::cluster::{ClusterConfig, ServerId};
use crate::geometry::GroupLayout;
use serde::{Deserialize, Serialize};

/// A physical file's placement: participating servers plus group geometry.
///
/// Servers with zero stripe width are dropped at construction, so
/// `servers()` lists exactly the servers that hold data — the paper's
/// `{0 KB, 64 KB}` layout (Fig. 9) yields a layout whose server list
/// contains only the SServers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FileLayout {
    servers: Vec<ServerId>,
    group: GroupLayout,
}

impl FileLayout {
    /// Build from explicit `(server, width)` pairs, dropping zero widths.
    ///
    /// # Panics
    /// Panics if every width is zero, or a server id repeats. Layouts
    /// arriving from outside the process should go through
    /// [`Self::try_custom`].
    pub fn custom(pairs: Vec<(ServerId, u64)>) -> Self {
        #[allow(clippy::panic)]
        match Self::try_custom(pairs) {
            Ok(l) => l,
            Err(reason) => panic!("{reason}"),
        }
    }

    /// [`Self::custom`] with a descriptive error instead of a panic — the
    /// entry point for layouts parsed from scenario files or loaded from
    /// disk.
    pub fn try_custom(pairs: Vec<(ServerId, u64)>) -> Result<Self, String> {
        let kept: Vec<(ServerId, u64)> = pairs.into_iter().filter(|&(_, w)| w > 0).collect();
        if kept.is_empty() {
            return Err("file layout with no capacity (every stripe width is zero)".into());
        }
        let mut ids: Vec<ServerId> = kept.iter().map(|&(id, _)| id).collect();
        ids.sort_unstable();
        ids.dedup();
        if ids.len() != kept.len() {
            return Err(format!(
                "duplicate server in file layout ({} pairs, {} distinct ids)",
                kept.len(),
                ids.len()
            ));
        }
        let servers = kept.iter().map(|&(id, _)| id).collect();
        let group = GroupLayout::try_new(kept.iter().map(|&(_, w)| w).collect())?;
        Ok(FileLayout { servers, group })
    }

    /// Fixed-size striping over all servers of `cluster`, round-robin from
    /// server 0 — the PFS default the paper compares against.
    pub fn fixed(cluster: &ClusterConfig, stripe: u64) -> Self {
        assert!(stripe > 0, "fixed stripe must be positive");
        FileLayout::custom(cluster.all_servers().map(|id| (id, stripe)).collect())
    }

    /// Per-class varied-size striping: `widths[k]` on every server of
    /// class `k`, in the cluster's class order (matching the paper's
    /// "0 to M+N-1 round-robin"; `widths = [h, s]` reproduces the
    /// two-class Fig. 2(b) layout exactly).
    ///
    /// Any width may be zero (that class then holds no data); all zero
    /// panics.
    ///
    /// # Panics
    /// Panics unless `widths` has exactly one entry per cluster class.
    pub fn for_classes(cluster: &ClusterConfig, widths: &[u64]) -> Self {
        assert_eq!(
            widths.len(),
            cluster.classes.len(),
            "one stripe width per server class"
        );
        let mut pairs = Vec::with_capacity(cluster.server_count());
        for (k, &w) in widths.iter().enumerate() {
            pairs.extend(cluster.class_servers(k).map(|id| (id, w)));
        }
        FileLayout::custom(pairs)
    }

    /// The servers holding data, in group order.
    #[inline]
    pub fn servers(&self) -> &[ServerId] {
        &self.servers
    }

    /// The group geometry.
    #[inline]
    pub fn group(&self) -> &GroupLayout {
        &self.group
    }

    /// Stripe group size `S`.
    #[inline]
    pub fn group_size(&self) -> u64 {
        self.group.group_size()
    }

    /// Split a byte range into per-server sub-requests `(server, bytes)`.
    pub fn split(&self, offset: u64, len: u64) -> Vec<(ServerId, u64)> {
        self.group
            .split(offset, len)
            .into_iter()
            .map(|(slot, bytes)| (self.servers[slot], bytes))
            .collect()
    }

    /// The stripe width assigned to `server`, 0 if it holds nothing.
    pub fn width_of(&self, server: ServerId) -> u64 {
        self.servers
            .iter()
            .position(|&id| id == server)
            .map_or(0, |slot| self.group.width(slot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_uses_all_servers() {
        let c = ClusterConfig::paper_default();
        let l = FileLayout::fixed(&c, 64 * 1024);
        assert_eq!(l.servers(), (0..8).collect::<Vec<_>>().as_slice());
        assert_eq!(l.group_size(), 8 * 64 * 1024);
    }

    #[test]
    fn two_class_widths() {
        let c = ClusterConfig::paper_default();
        let l = FileLayout::two_class(&c, 32 * 1024, 160 * 1024);
        assert_eq!(l.width_of(0), 32 * 1024);
        assert_eq!(l.width_of(5), 32 * 1024);
        assert_eq!(l.width_of(6), 160 * 1024);
        assert_eq!(l.width_of(7), 160 * 1024);
        assert_eq!(l.group_size(), 6 * 32 * 1024 + 2 * 160 * 1024);
    }

    #[test]
    fn zero_h_drops_hservers() {
        let c = ClusterConfig::paper_default();
        let l = FileLayout::two_class(&c, 0, 64 * 1024);
        assert_eq!(l.servers(), &[6, 7]);
        assert_eq!(l.width_of(0), 0);
        // A 128 KiB request is served entirely by the two SServers.
        let split = l.split(0, 128 * 1024);
        assert_eq!(split, vec![(6, 64 * 1024), (7, 64 * 1024)]);
    }

    #[test]
    fn zero_s_drops_sservers() {
        let c = ClusterConfig::paper_default();
        let l = FileLayout::two_class(&c, 64 * 1024, 0);
        assert_eq!(l.servers(), &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "no capacity")]
    fn both_zero_rejected() {
        let c = ClusterConfig::paper_default();
        FileLayout::two_class(&c, 0, 0);
    }

    #[test]
    #[should_panic(expected = "duplicate server")]
    fn duplicate_server_rejected() {
        FileLayout::custom(vec![(0, 10), (0, 20)]);
    }

    #[test]
    fn split_conservation_two_class() {
        let c = ClusterConfig::hybrid(6, 2);
        let l = FileLayout::two_class(&c, 36 * 1024, 148 * 1024);
        for (o, r) in [(0u64, 512 * 1024u64), (123_456, 512 * 1024), (7, 1)] {
            let total: u64 = l.split(o, r).iter().map(|&(_, b)| b).sum();
            assert_eq!(total, r);
        }
    }

    #[test]
    fn for_classes_matches_two_class_at_k2() {
        let c = ClusterConfig::paper_default();
        let a = FileLayout::for_classes(&c, &[32 * 1024, 160 * 1024]);
        let b = FileLayout::two_class(&c, 32 * 1024, 160 * 1024);
        assert_eq!(a, b);
    }

    #[test]
    fn for_classes_three_tier() {
        let c =
            ClusterConfig::hybrid(2, 2).with_extra_class(1, harl_devices::object_store_preset());
        let l = FileLayout::for_classes(&c, &[16 * 1024, 64 * 1024, 1024 * 1024]);
        assert_eq!(l.width_of(0), 16 * 1024);
        assert_eq!(l.width_of(2), 64 * 1024);
        assert_eq!(l.width_of(4), 1024 * 1024);
        assert_eq!(l.group_size(), 2 * 16 * 1024 + 2 * 64 * 1024 + 1024 * 1024);
    }

    #[test]
    fn try_custom_reports_errors() {
        let err = FileLayout::try_custom(vec![(0, 0), (1, 0)]).unwrap_err();
        assert!(err.contains("no capacity"), "got: {err}");
        let err = FileLayout::try_custom(vec![(0, 10), (0, 20)]).unwrap_err();
        assert!(err.contains("duplicate server"), "got: {err}");
    }

    #[test]
    fn custom_k_class() {
        let l = FileLayout::custom(vec![(0, 100), (3, 200), (9, 400)]);
        assert_eq!(l.servers(), &[0, 3, 9]);
        assert_eq!(l.width_of(3), 200);
        assert_eq!(l.width_of(1), 0);
        let split = l.split(0, 700);
        assert_eq!(split, vec![(0, 100), (3, 200), (9, 400)]);
    }
}
