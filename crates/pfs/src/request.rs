//! Requests and client programs.
//!
//! A client process interacts with the PFS through an ordered program of
//! steps. Each [`Step::Io`] is a *batch* of file requests issued
//! concurrently and completed when all finish — a singleton batch models
//! synchronous POSIX-style I/O (IOR's behaviour), a wider batch models a
//! collective-I/O aggregator flushing several file-domain chunks at once.
//! [`Step::Compute`] models computation between I/O phases (BTIO's
//! interleaved compute).

use harl_devices::OpKind;
use harl_simcore::SimNanos;
use serde::{Deserialize, Serialize};

/// Identifier of a physical file within one simulation.
pub type FileId = usize;

/// One file request against a physical file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhysRequest {
    /// Target file.
    pub file: FileId,
    /// Read or write.
    pub op: OpKind,
    /// Byte offset within the file.
    pub offset: u64,
    /// Request size in bytes.
    pub size: u64,
}

impl PhysRequest {
    /// Convenience constructor for a read.
    pub fn read(file: FileId, offset: u64, size: u64) -> Self {
        PhysRequest {
            file,
            op: OpKind::Read,
            offset,
            size,
        }
    }

    /// Convenience constructor for a write.
    pub fn write(file: FileId, offset: u64, size: u64) -> Self {
        PhysRequest {
            file,
            op: OpKind::Write,
            offset,
            size,
        }
    }
}

/// One step of a client program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Step {
    /// A batch of requests issued concurrently; the step completes when all
    /// requests complete. Must be non-empty.
    Io(Vec<PhysRequest>),
    /// Local computation for the given duration.
    Compute(SimNanos),
    /// Synchronise with every other client (MPI_Barrier over all clients).
    ///
    /// Barriers are matched by occurrence index: every client's k-th
    /// `Barrier` step is the same barrier. All clients must execute the
    /// same number of barriers or the simulation reports a deadlock.
    Barrier,
}

/// The full I/O behaviour of one client process.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClientProgram {
    /// Steps executed strictly in order.
    pub steps: Vec<Step>,
}

impl ClientProgram {
    /// An empty program (a client that does nothing).
    pub fn new() -> Self {
        ClientProgram::default()
    }

    /// Append a synchronous (singleton) request.
    pub fn push_request(&mut self, req: PhysRequest) {
        self.steps.push(Step::Io(vec![req]));
    }

    /// Append a concurrent batch.
    ///
    /// # Panics
    /// Panics on an empty batch — it would stall the client state machine.
    pub fn push_batch(&mut self, reqs: Vec<PhysRequest>) {
        assert!(!reqs.is_empty(), "empty I/O batch");
        self.steps.push(Step::Io(reqs));
    }

    /// Append a compute phase.
    pub fn push_compute(&mut self, d: SimNanos) {
        self.steps.push(Step::Compute(d));
    }

    /// Append a barrier.
    pub fn push_barrier(&mut self) {
        self.steps.push(Step::Barrier);
    }

    /// Number of barriers in the program.
    pub fn barrier_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, Step::Barrier))
            .count()
    }

    /// Total bytes this program reads and writes, `(read, written)`.
    pub fn total_bytes(&self) -> (u64, u64) {
        let mut read = 0;
        let mut written = 0;
        for step in &self.steps {
            if let Step::Io(reqs) = step {
                for r in reqs {
                    match r.op {
                        OpKind::Read => read += r.size,
                        OpKind::Write => written += r.size,
                    }
                }
            }
        }
        (read, written)
    }

    /// Number of individual file requests in the program.
    pub fn request_count(&self) -> usize {
        self.steps
            .iter()
            .map(|s| match s {
                Step::Io(reqs) => reqs.len(),
                Step::Compute(_) | Step::Barrier => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_accounting() {
        let mut p = ClientProgram::new();
        p.push_request(PhysRequest::write(0, 0, 100));
        p.push_compute(SimNanos::from_millis(5));
        p.push_batch(vec![
            PhysRequest::read(0, 0, 30),
            PhysRequest::read(0, 30, 70),
        ]);
        assert_eq!(p.total_bytes(), (100, 100));
        assert_eq!(p.request_count(), 3);
        assert_eq!(p.steps.len(), 3);
    }

    #[test]
    #[should_panic(expected = "empty I/O batch")]
    fn empty_batch_rejected() {
        ClientProgram::new().push_batch(vec![]);
    }

    #[test]
    fn constructors_set_op() {
        assert_eq!(PhysRequest::read(1, 2, 3).op, OpKind::Read);
        assert_eq!(PhysRequest::write(1, 2, 3).op, OpKind::Write);
    }
}
