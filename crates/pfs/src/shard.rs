//! Sharded server-disk state and the deterministic fanout worker pool.
//!
//! The simulator's hottest operation is the read fanout: one request
//! touching every server in its layout, each touch drawing a service time,
//! booking the device [`Timeline`] and recording per-server statistics.
//! All of that state is *per-server*, so it can be partitioned: servers are
//! split into `G` contiguous **groups** (`G = min(threads, servers)`), each
//! group owned by one [`Mutex`], and a fanout batch is processed per group
//! — on scoped worker threads when a [`ShardPool`] is attached, inline
//! otherwise.
//!
//! # Determinism argument
//!
//! The result of a fanout is, per sub-request, one [`Grant`]. Every
//! per-server side effect (RNG draw order, timeline bookings, byte
//! counters, histograms) depends only on the order of that server's own
//! sub-requests, and every worker scans the batch in sub-request order, so
//! per-server effects are identical no matter how groups map to threads.
//! Cross-server effects (event scheduling, span hops, sampling counters)
//! are applied by the *simulation thread* after the barrier, iterating the
//! collected grants in canonical sub-request order. Same seed ⇒ the same
//! grants in the same order at any thread count, hence byte-identical
//! reports, and the engine never observes that threads were involved.
//!
//! The pool communicates over plain [`mpsc`] channels and never outlives
//! the [`std::thread::scope`] it is spawned in; output buffers are
//! recycled between batches so a fanout allocates nothing in steady state.

use crate::cluster::ClusterConfig;
use crate::faults::{slowdown_at, Degradation};
use crate::report::BusyBuckets;
use harl_devices::OpKind;
use harl_simcore::timeline::Grant;
use harl_simcore::{Histogram, SimNanos, SimRng, Timeline};
use std::sync::mpsc;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Width of the per-server utilisation buckets in reports.
pub(crate) const BUSY_BUCKET_WIDTH: SimNanos = SimNanos(100_000_000); // 100 ms
/// Bucket count (the last bucket absorbs longer runs).
pub(crate) const BUSY_BUCKETS: usize = 1024;

/// Minimum batch size before a fanout is worth shipping to the pool: below
/// this the per-batch channel round-trips cost more than the disk math.
pub(crate) const PAR_FANOUT_MIN: usize = 256;

/// Disk-side state of one server: everything a fanout touches. The NIC
/// timeline deliberately lives elsewhere — NIC traffic is driven by
/// per-sub-request events on the simulation thread and never shards.
pub(crate) struct ServerDisk {
    pub disk: Timeline,
    pub rng: SimRng,
    pub bytes: u64,
    pub busy_series: BusyBuckets,
    /// Local queue-wait/service histograms, merged into the recorder once
    /// at the end of the run. Recording into a local [`Histogram`] is
    /// alloc- and lock-free, which keeps the recorded hot path within a
    /// few percent of the silent one.
    pub queue_wait: Histogram,
    pub service: Histogram,
}

impl ServerDisk {
    pub(crate) fn new(id: usize, seed: u64) -> Self {
        ServerDisk {
            disk: Timeline::new(),
            rng: SimRng::derived(seed, &format!("server-{id}")),
            bytes: 0,
            busy_series: BusyBuckets::new(BUSY_BUCKET_WIDTH, BUSY_BUCKETS),
            queue_wait: Histogram::new(),
            service: Histogram::new(),
        }
    }
}

/// Shared read-only context of a fanout: the sharded disks plus everything
/// needed to price one sub-request on one server.
pub(crate) struct FanoutEnv<'a> {
    pub disks: &'a [Mutex<Vec<ServerDisk>>],
    pub cluster: &'a ClusterConfig,
    pub degradations: &'a [Degradation],
    /// Servers per group; group `g` owns ids `[g*group_size, ...)`.
    pub group_size: usize,
    pub rec_on: bool,
}

/// Lock a shard group, shrugging off poison: groups hold plain counters
/// and timelines whose invariants hold after any partial batch, and a
/// panicked worker propagates its panic at scope exit anyway.
pub(crate) fn lock_group<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Serve one sub-request at one server's disk: service-time draw, fault
/// slowdown, FIFO booking, and per-server accounting. This is *the* datum
/// of the determinism argument: it touches only `d` (plus read-only
/// context), so calling it per server in sub-request order yields the same
/// grants regardless of which thread runs it.
#[inline]
pub(crate) fn disk_acquire(
    d: &mut ServerDisk,
    env: &FanoutEnv<'_>,
    server: usize,
    now: SimNanos,
    z: u64,
    op: OpKind,
) -> Grant {
    let mut service = env
        .cluster
        .profile_of(server)
        .service_time(op, z, &mut d.rng);
    // Injected stragglers/degradation windows (crate::faults), from the
    // cluster schedule and the context's fault plan.
    let slow = slowdown_at(env.degradations, server, now);
    if slow != 1.0 {
        service = SimNanos::from_secs_f64(service.as_secs_f64() * slow);
    }
    let grant = d.disk.acquire(now, service);
    d.bytes += z;
    d.busy_series.record(grant.start, grant.end);
    if env.rec_on {
        d.queue_wait.record(grant.queued.as_nanos());
        d.service.record((grant.end - grant.start).as_nanos());
    }
    grant
}

/// Run group `g`'s share of a fanout batch: scan `subs` in order, serve
/// the ones this group owns, and hand each `(index, grant)` to `sink`.
pub(crate) fn acquire_group(
    env: &FanoutEnv<'_>,
    g: usize,
    now: SimNanos,
    op: OpKind,
    subs: &[(usize, u64)],
    mut sink: impl FnMut(usize, Grant),
) {
    let lo = g * env.group_size;
    let mut guard = lock_group(&env.disks[g]);
    let hi = lo + guard.len();
    for (i, &(server, z)) in subs.iter().enumerate() {
        if (lo..hi).contains(&server) {
            let grant = disk_acquire(&mut guard[server - lo], env, server, now, z, op);
            sink(i, grant);
        }
    }
}

/// One fanout batch shipped to a worker. Owns an [`std::sync::Arc`] of the
/// sub-request list (cheap to clone per worker, keeps the channel
/// `'static`) and a recycled output buffer.
struct Job {
    now: SimNanos,
    op: OpKind,
    subs: std::sync::Arc<[(usize, u64)]>,
    out: Vec<(u32, Grant)>,
}

/// Persistent fanout workers for groups `1..G`; the simulation thread
/// keeps group 0 for itself so `G` cores stay busy. Dropping the pool
/// closes the job channels and the scoped workers exit.
pub(crate) struct ShardPool {
    jobs: Vec<mpsc::Sender<Job>>,
    results: mpsc::Receiver<Vec<(u32, Grant)>>,
    spare: Vec<Vec<(u32, Grant)>>,
}

impl ShardPool {
    /// Spawn one worker per group `1..G` inside `scope`. The workers
    /// borrow `env` for the scope's lifetime, which is exactly why the
    /// engine run is wrapped in a [`std::thread::scope`].
    pub(crate) fn spawn<'scope, 'env>(
        scope: &'scope std::thread::Scope<'scope, 'env>,
        env: &'env FanoutEnv<'env>,
    ) -> ShardPool {
        let (results_tx, results) = mpsc::channel();
        let mut jobs = Vec::new();
        for g in 1..env.disks.len() {
            let (tx, rx) = mpsc::channel::<Job>();
            let rtx = results_tx.clone();
            scope.spawn(move || {
                while let Ok(job) = rx.recv() {
                    let Job {
                        now,
                        op,
                        subs,
                        mut out,
                    } = job;
                    acquire_group(env, g, now, op, &subs, |i, grant| {
                        // Each pushed pair is keyed by sub-request index
                        // `i`; the consumer (`fanout_grants`) stores it at
                        // `grants[i]`, so per-batch arrival order cannot
                        // leak into the result.
                        out.push((i as u32, grant)); // lint: audited-order
                    });
                    if rtx.send(out).is_err() {
                        break;
                    }
                }
            });
            jobs.push(tx);
        }
        ShardPool {
            jobs,
            results,
            spare: Vec::new(),
        }
    }
}

/// Collect the grants of one fanout batch into `grants`, indexed by
/// sub-request position. With a pool and a large enough batch the groups
/// run on the scoped workers (simulation thread serves group 0, then
/// blocks on the barrier); otherwise the groups run inline, in group
/// order. Either way every server serves its sub-requests in sub order,
/// so the grants are identical — see the module-level determinism notes.
pub(crate) fn fanout_grants(
    pool: Option<&mut ShardPool>,
    env: &FanoutEnv<'_>,
    now: SimNanos,
    op: OpKind,
    subs: &std::sync::Arc<[(usize, u64)]>,
    grants: &mut Vec<Grant>,
) {
    grants.clear();
    grants.resize(
        subs.len(),
        Grant {
            start: SimNanos::ZERO,
            end: SimNanos::ZERO,
            queued: SimNanos::ZERO,
        },
    );
    match pool {
        Some(pool) if subs.len() >= PAR_FANOUT_MIN && !pool.jobs.is_empty() => {
            let mut sent = 0usize;
            for tx in &pool.jobs {
                let out = pool.spare.pop().unwrap_or_default();
                let job = Job {
                    now,
                    op,
                    subs: subs.clone(),
                    out,
                };
                if tx.send(job).is_ok() {
                    sent += 1;
                }
            }
            acquire_group(env, 0, now, op, subs, |i, grant| grants[i] = grant);
            for _ in 0..sent {
                // A worker that dies mid-batch (it can only die by panic)
                // closes the channel; the missing grants surface as
                // zero-time bookings and the worker's own panic resurfaces
                // when the thread scope joins.
                let Ok(mut out) = pool.results.recv() else {
                    break;
                };
                for &(i, grant) in &out {
                    grants[i as usize] = grant;
                }
                out.clear();
                pool.spare.push(out);
            }
        }
        _ => {
            for g in 0..env.disks.len() {
                acquire_group(env, g, now, op, subs, |i, grant| grants[i] = grant);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn env_of<'a>(
        cluster: &'a ClusterConfig,
        disks: &'a [Mutex<Vec<ServerDisk>>],
    ) -> FanoutEnv<'a> {
        FanoutEnv {
            disks,
            cluster,
            degradations: &[],
            group_size: 0,
            rec_on: false,
        }
    }

    fn build_disks(n: usize, group_size: usize) -> Vec<Mutex<Vec<ServerDisk>>> {
        let n_groups = n.div_ceil(group_size);
        (0..n_groups)
            .map(|g| {
                let lo = g * group_size;
                let hi = ((g + 1) * group_size).min(n);
                Mutex::new((lo..hi).map(|id| ServerDisk::new(id, 7)).collect())
            })
            .collect()
    }

    fn subs_round(n: usize, z: u64) -> Arc<[(usize, u64)]> {
        (0..n).map(|s| (s, z)).collect::<Vec<_>>().into()
    }

    /// Inline grouped fanout must equal the single-group (sequential)
    /// fanout grant-for-grant: per-server order is sub order in both.
    #[test]
    fn grouped_fanout_matches_single_group() {
        let cluster = ClusterConfig::paper_default();
        let subs = subs_round(8, 64 * 1024);
        let mut grants_1 = Vec::new();
        let mut grants_4 = Vec::new();
        {
            let disks = build_disks(8, 8);
            let mut env = env_of(&cluster, &disks);
            env.group_size = 8;
            fanout_grants(None, &env, SimNanos(5), OpKind::Read, &subs, &mut grants_1);
        }
        {
            let disks = build_disks(8, 2);
            let mut env = env_of(&cluster, &disks);
            env.group_size = 2;
            fanout_grants(None, &env, SimNanos(5), OpKind::Read, &subs, &mut grants_4);
        }
        assert_eq!(grants_1, grants_4);
    }

    /// Pooled fanout (scoped workers) must equal the inline fanout.
    #[test]
    fn pooled_fanout_matches_inline() {
        let cluster = ClusterConfig::paper_default();
        // Three sub-requests per server so timelines queue up.
        let mut subs: Vec<(usize, u64)> = Vec::new();
        for round in 0..3 {
            for s in 0..8 {
                subs.push((s, 64 * 1024 + round * 4096));
            }
        }
        let subs: Arc<[(usize, u64)]> = subs.into();

        let mut inline_grants = Vec::new();
        {
            let disks = build_disks(8, 2);
            let mut env = env_of(&cluster, &disks);
            env.group_size = 2;
            fanout_grants(
                None,
                &env,
                SimNanos(9),
                OpKind::Write,
                &subs,
                &mut inline_grants,
            );
        }

        let mut pooled_grants = Vec::new();
        {
            let disks = build_disks(8, 2);
            let mut env = env_of(&cluster, &disks);
            env.group_size = 2;
            std::thread::scope(|s| {
                let pool = ShardPool::spawn(s, &env);
                // Force the pooled path regardless of PAR_FANOUT_MIN by
                // batching through it directly.
                let sent: usize = {
                    let mut sent = 0;
                    for tx in &pool.jobs {
                        let job = Job {
                            now: SimNanos(9),
                            op: OpKind::Write,
                            subs: subs.clone(),
                            out: Vec::new(),
                        };
                        if tx.send(job).is_ok() {
                            sent += 1;
                        }
                    }
                    sent
                };
                pooled_grants.resize(
                    subs.len(),
                    Grant {
                        start: SimNanos::ZERO,
                        end: SimNanos::ZERO,
                        queued: SimNanos::ZERO,
                    },
                );
                acquire_group(&env, 0, SimNanos(9), OpKind::Write, &subs, |i, grant| {
                    pooled_grants[i] = grant;
                });
                for _ in 0..sent {
                    let out = pool.results.recv().unwrap();
                    for &(i, grant) in &out {
                        pooled_grants[i as usize] = grant;
                    }
                }
                drop(pool);
            });
        }
        assert_eq!(inline_grants, pooled_grants);
    }
}
