//! The event-driven hybrid-PFS simulator.
//!
//! Client programs run against a set of striped files on a cluster of
//! heterogeneous servers. Every file request goes through the stages a real
//! PFS request goes through:
//!
//! ```text
//! client ──MDS lookup──▶ split into per-server sub-requests
//!   write:  client NIC ▷ server NIC ▷ disk ▷ (ack)
//!   read :  (request msg) ▷ disk ▷ server NIC ▷ client NIC
//! ```
//!
//! Every box is a FIFO [`Timeline`] resource, so contention (many clients
//! hammering one SServer, aggregators sharing a node NIC) emerges naturally.
//! The request completes when its last sub-request completes; a synchronous
//! client then issues its next request — exactly IOR's behaviour.
//!
//! The simulator deliberately models *more* than the paper's analytical
//! cost model (queueing, per-message latency): the model is an
//! approximation of this system just as it is an approximation of the
//! authors' real cluster.

use crate::cluster::ClusterConfig;
use crate::layout::FileLayout;
use crate::report::{ServerReport, SimReport};
use crate::request::{ClientProgram, FileId, Step};
use crate::shard::{self, FanoutEnv, ServerDisk, ShardPool};
use harl_devices::OpKind;
use harl_simcore::metrics::{SpanHop, SpanRecord};
use harl_simcore::timeline::Grant;
use harl_simcore::{registry, Engine, OnlineStats, Phase, SimContext, SimNanos, Timeline};
use std::sync::Arc;
use std::sync::Mutex;

/// Everything a payload event needs to move one sub-request through the
/// pipeline without touching the request table: the owning request, the
/// target server, the client's node NIC, the transfer size, and the
/// direction. Request state (`reqs`) is only consulted at fan-out and
/// completion — the per-sub hot path runs on this 24-byte capsule, which
/// spares two dependent cache misses per device hop at cluster scale.
#[derive(Debug, Clone, Copy)]
struct SubRef {
    req: u32,
    server: u32,
    node: u32,
    z: u64,
    op: OpKind,
}

/// Events of the PFS simulation.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Client begins its next program step.
    StartStep { client: u32 },
    /// MDS lookup finished; request fans out into sub-requests.
    MdsDone { req: u32 },
    /// Read request messages reached every server: serve the whole batch
    /// of disk arrivals in one pass. All sub-requests of a read arrive at
    /// the same instant (`mds grant + latency`), so one batched event is
    /// observationally identical to the per-sub events it replaces — and
    /// it is the unit of sharded parallelism (see [`crate::shard`]).
    DiskFanout { req: u32 },
    /// Write payload for one sub-request reached the server's NIC queue.
    ArriveServerNic(SubRef),
    /// Sub-request reached the storage device queue (write path; reads
    /// arrive via [`Ev::DiskFanout`]).
    ArriveDisk(SubRef),
    /// Storage device finished serving the sub-request.
    DiskDone(SubRef),
    /// Read payload arrived back at the client's NIC queue.
    ReturnAtClient(SubRef),
    /// Sub-request fully complete at the client. (The sub index is not
    /// needed for completion accounting; only the request id is.)
    SubDone { req: u32 },
    /// Compute phase finished.
    ComputeDone { client: u32 },
    /// Flight-recorder sampling tick (only scheduled when
    /// `ctx.sample_interval` is set and the recorder is enabled).
    Sample,
}

/// Which profiler bucket an event's handler bills to. Sub-requests moving
/// through device queues are `DeviceService`; client control flow and
/// completion accounting are `QueueDrain`; sampling ticks are pure
/// recorder work.
fn phase_of(ev: &Ev) -> Phase {
    match ev {
        Ev::MdsDone { .. }
        | Ev::DiskFanout { .. }
        | Ev::ArriveServerNic(_)
        | Ev::ArriveDisk(_)
        | Ev::DiskDone(_)
        | Ev::ReturnAtClient(_) => Phase::DeviceService,
        Ev::StartStep { .. } | Ev::ComputeDone { .. } | Ev::SubDone { .. } => Phase::QueueDrain,
        Ev::Sample => Phase::Recorder,
    }
}

/// Memoised payload-transfer time: `z * t_s_per_byte` as [`SimNanos`].
/// Striped workloads send the same `z` through three NIC hops per
/// sub-request, so a one-entry cache removes nearly every float round-trip.
#[inline]
fn nic_service(t_s_per_byte: f64, memo: &mut (u64, SimNanos), z: u64) -> SimNanos {
    if memo.0 != z {
        *memo = (z, SimNanos::from_secs_f64(z as f64 * t_s_per_byte));
    }
    memo.1
}

struct ReqState {
    client: usize,
    op: OpKind,
    size: u64,
    file: FileId,
    offset: u64,
    /// Shared so a fanout batch can be shipped to shard workers without
    /// borrowing the request table.
    subs: Arc<[(usize, u64)]>,
    pending: usize,
    issued: SimNanos,
    /// Lifecycle hops, collected only when a recorder is enabled.
    hops: Vec<SpanHop>,
}

struct ClientState {
    next_step: usize,
    batch_pending: usize,
    finished_at: SimNanos,
}

/// Run `programs` against `files` on `cluster` and report the outcome.
///
/// `files[i]` is the layout of [`FileId`] `i`; every request must reference
/// a valid file id (panics otherwise — that is a harness bug, not a
/// simulated failure).
///
/// The [`SimContext`] carries the cross-cutting state:
///
/// * **Observability** — with an enabled recorder, the run emits per-server
///   queue-wait and service-time histograms (`pfs.server.queue_wait_ns` /
///   `pfs.server.service_ns`, labelled by server id and device kind),
///   request counters, engine-level metrics, and one [`SpanRecord`] per
///   completed request capturing its lifecycle (issue → queue → service →
///   complete, per hop). With the default no-op recorder every
///   instrumentation site short-circuits on one boolean, so a silent
///   context costs nothing measurable.
/// * **Seed** — `ctx.seed` (when set) overrides `cluster.seed` for the
///   per-server device RNG streams.
/// * **Faults** — `ctx.faults` windows apply *in addition to*
///   `cluster.degradations` (overlapping windows multiply).
/// * **Sampling** — with `ctx.sample_interval` set (and a recorder
///   enabled), a sampling tick fires every interval of simulated time and
///   records three time-series per server: `pfs.server.queue_depth`
///   (sub-requests in flight at the device), `pfs.server.util`
///   (device busy fraction over the last window, exact — derived from the
///   analytic [`Timeline`]), and `pfs.server.inflight_bytes`. Samples read
///   state but never change it, so makespans and reports are identical
///   with sampling on or off, and the sampled values are a pure function
///   of the scenario and seed — same seed + interval ⇒ byte-identical
///   series at any thread count.
/// * **Profiling** — with `ctx.profiler()` attached, the run is driven by
///   [`Engine::run_profiled`] and each handler bills its wall time to a
///   [`Phase`] bucket (recorder work is carved out into its own bucket by
///   nested scopes).
pub fn simulate(
    ctx: &SimContext,
    cluster: &ClusterConfig,
    files: &[FileLayout],
    programs: &[ClientProgram],
) -> SimReport {
    let recorder = ctx.recorder();
    let rec_on = recorder.is_enabled();
    // Span assembly (label formatting) and per-hop queueing detail are
    // the expensive parts of the instrumented path; recorders opt out of
    // them independently (see `TraceDetail`).
    let rec_spans = rec_on && recorder.wants_spans();
    let rec_hops = rec_on && recorder.wants_hops();
    let prof = ctx.profiler();
    let seed = ctx.seed_or(cluster.seed);
    let degradations: Vec<crate::faults::Degradation> = cluster
        .degradations
        .iter()
        .chain(ctx.faults.iter())
        .copied()
        .collect();
    let n_servers = cluster.server_count();
    // Disk-side server state is sharded into contiguous groups so read
    // fanouts can run per group — on scoped workers when `ctx.threads`
    // asks for them, inline otherwise. With one thread there is exactly
    // one group and the Mutex is uncontended ceremony.
    let threads = ctx.threads_or(1);
    let group_size = n_servers.div_ceil(threads.min(n_servers)).max(1);
    let n_groups = n_servers.div_ceil(group_size);
    let disk_groups: Vec<Mutex<Vec<ServerDisk>>> = (0..n_groups)
        .map(|g| {
            let lo = g * group_size;
            let hi = ((g + 1) * group_size).min(n_servers);
            Mutex::new((lo..hi).map(|id| ServerDisk::new(id, seed)).collect())
        })
        .collect();
    let mut server_nics: Vec<Timeline> = (0..n_servers).map(|_| Timeline::new()).collect();
    let mut client_nics: Vec<Timeline> = (0..cluster.compute_nodes)
        .map(|_| Timeline::new())
        .collect();
    let mut mds = Timeline::new();
    let env = FanoutEnv {
        disks: &disk_groups,
        cluster,
        degradations: &degradations,
        group_size,
        rec_on,
    };

    let mut clients: Vec<ClientState> = programs
        .iter()
        .map(|_| ClientState {
            next_step: 0,
            batch_pending: 0,
            finished_at: SimNanos::ZERO,
        })
        .collect();

    // Barrier bookkeeping: barriers are matched by occurrence index, and
    // every client participates in every barrier. `barrier_waiting[g]` holds
    // the clients parked at barrier generation g.
    let total_clients = programs.len();
    let mut barrier_waiting: Vec<Vec<usize>> = Vec::new();
    let mut client_barrier_gen: Vec<usize> = vec![0; total_clients];

    let mut reqs: Vec<ReqState> = Vec::new();
    let mut read_latency = OnlineStats::new();
    let mut write_latency = OnlineStats::new();
    let mut bytes_read = 0u64;
    let mut bytes_written = 0u64;
    let mut completed = 0u64;
    let mut last_completion = SimNanos::ZERO;

    let net = cluster.network;
    let latency = SimNanos::from_secs_f64(net.latency_s);

    // Flight-recorder sampling state: in-flight work is tracked by the
    // event handlers (exactly, not estimated), and per-window utilisation
    // falls out of the Timeline analytically — at sample time `t` every
    // arrival so far is `<= t`, so any booked busy time beyond `t` is the
    // contiguous run ending at `next_free`, and busy-up-to-t is
    // `busy_time - (next_free - t)`.
    let sample_dt = ctx.sample_interval.filter(|_| rec_on);
    let sampling = sample_dt.is_some();
    // Request counters batched out of the hot loop: indexed by op
    // (read = 0, write = 1), flushed once after the run.
    let mut issued_by_op = [0u64; 2];
    let mut completed_by_op = [0u64; 2];
    let op_index = |op: OpKind| usize::from(op == OpKind::Write);
    let mut inflight_subs: Vec<u64> = vec![0; n_servers];
    let mut inflight_bytes: Vec<u64> = vec![0; n_servers];
    let mut prev_busy: Vec<SimNanos> = vec![SimNanos::ZERO; n_servers];
    let mut last_sample = SimNanos::ZERO;

    let mut engine: Engine<Ev> = Engine::new();
    for c in 0..programs.len() {
        engine.schedule(SimNanos::ZERO, Ev::StartStep { client: c as u32 });
    }
    if let Some(dt) = sample_dt {
        engine.schedule(dt, Ev::Sample);
    }

    // Hot-path scratch shared across events: the fanout grant buffer, the
    // one-entry NIC service memo, and the empty-subs sentinel.
    let mut fan_grants: Vec<Grant> = Vec::new();
    let mut nic_memo: (u64, SimNanos) = (u64::MAX, SimNanos::ZERO);
    let empty_subs: Arc<[(usize, u64)]> = Vec::new().into();

    // The engine run is wrapped in a closure so the sharded variant can
    // drive the exact same handler inside a `std::thread::scope` with a
    // worker pool attached. The handler never branches on thread count
    // except to pick who *executes* a fanout group — see `crate::shard`
    // for why the results are bit-identical either way.
    let mut run_engine = |engine: &mut Engine<Ev>, pool: &mut Option<ShardPool>| {
        let handler = |sched: &mut harl_simcore::Scheduler<Ev>, now: SimNanos, ev: Ev| {
            let _phase = prof.map(|p| p.scope(phase_of(&ev)));
            match ev {
                Ev::StartStep { client } => {
                    let ci = client as usize;
                    let state = &mut clients[ci];
                    match programs[ci].steps.get(state.next_step) {
                        None => {
                            state.finished_at = now;
                        }
                        Some(Step::Compute(d)) => {
                            state.next_step += 1;
                            sched.schedule(now + *d, Ev::ComputeDone { client });
                        }
                        Some(Step::Barrier) => {
                            state.next_step += 1;
                            let gen = client_barrier_gen[ci];
                            client_barrier_gen[ci] += 1;
                            if barrier_waiting.len() <= gen {
                                barrier_waiting.resize_with(gen + 1, Vec::new);
                            }
                            barrier_waiting[gen].push(ci);
                            if barrier_waiting[gen].len() == total_clients {
                                // Last arrival releases everyone.
                                for c in barrier_waiting[gen].drain(..) {
                                    sched.schedule(now, Ev::StartStep { client: c as u32 });
                                }
                            }
                        }
                        Some(Step::Io(batch)) => {
                            state.next_step += 1;
                            state.batch_pending = batch.len();
                            for pr in batch {
                                assert!(
                                    pr.file < files.len(),
                                    "request targets unknown file {}",
                                    pr.file
                                );
                                let req = reqs.len() as u32;
                                reqs.push(ReqState {
                                    client: ci,
                                    op: pr.op,
                                    size: pr.size,
                                    file: pr.file,
                                    offset: pr.offset,
                                    subs: empty_subs.clone(),
                                    pending: 0,
                                    issued: now,
                                    hops: Vec::new(),
                                });
                                let grant = mds.acquire(now, cluster.mds_service);
                                if rec_on {
                                    let _rec = prof.map(|p| p.scope(Phase::Recorder));
                                    issued_by_op[op_index(pr.op)] += 1;
                                    if rec_hops {
                                        reqs[req as usize].hops.push(SpanHop {
                                            stage: "mds",
                                            server: None,
                                            arrive: now.as_nanos(),
                                            start: grant.start.as_nanos(),
                                            end: grant.end.as_nanos(),
                                        });
                                    }
                                }
                                sched.schedule(grant.end, Ev::MdsDone { req });
                            }
                        }
                    }
                }
                Ev::ComputeDone { client } => {
                    sched.schedule(now, Ev::StartStep { client });
                }
                Ev::MdsDone { req } => {
                    let ri = req as usize;
                    let (file, offset, size, op, client) = {
                        let r = &reqs[ri];
                        (r.file, r.offset, r.size, r.op, r.client)
                    };
                    let subs: Arc<[(usize, u64)]> = if size == 0 {
                        empty_subs.clone()
                    } else {
                        files[file].split(offset, size).into()
                    };
                    if subs.is_empty() {
                        // Zero-byte request: completes at the MDS.
                        reqs[ri].pending = 0;
                        sched.schedule(now, Ev::SubDone { req });
                        return;
                    }
                    reqs[ri].pending = subs.len();
                    let node = cluster.node_of(client) as u32;
                    match op {
                        OpKind::Write => {
                            // Payload leaves through the client NIC, serialised
                            // with the client's other outbound sub-requests.
                            for &(server, z) in subs.iter() {
                                let service =
                                    nic_service(net.t_s_per_byte, &mut nic_memo, z) + latency;
                                let grant = client_nics[node as usize].acquire(now, service);
                                if rec_hops {
                                    reqs[ri].hops.push(SpanHop {
                                        stage: "client_nic",
                                        server: None,
                                        arrive: now.as_nanos(),
                                        start: grant.start.as_nanos(),
                                        end: grant.end.as_nanos(),
                                    });
                                }
                                sched.schedule(
                                    grant.end,
                                    Ev::ArriveServerNic(SubRef {
                                        req,
                                        server: server as u32,
                                        node,
                                        z,
                                        op,
                                    }),
                                );
                            }
                        }
                        OpKind::Read => {
                            // The read request messages are tiny (latency
                            // only) and reach every server at the same
                            // instant: one batched fanout event.
                            sched.schedule(now + latency, Ev::DiskFanout { req });
                        }
                    }
                    reqs[ri].subs = subs;
                }
                Ev::DiskFanout { req } => {
                    let ri = req as usize;
                    let (subs, op, node) = {
                        let r = &reqs[ri];
                        (r.subs.clone(), r.op, cluster.node_of(r.client) as u32)
                    };
                    // Serve every disk arrival of this request in one pass
                    // (sharded across the pool when one is attached), then
                    // apply the cross-server effects in sub order.
                    shard::fanout_grants(pool.as_mut(), &env, now, op, &subs, &mut fan_grants);
                    for (i, &(server, z)) in subs.iter().enumerate() {
                        let grant = fan_grants[i];
                        if sampling {
                            inflight_subs[server] += 1;
                            inflight_bytes[server] += z;
                        }
                        if rec_hops {
                            reqs[ri].hops.push(SpanHop {
                                stage: "disk",
                                server: Some(server),
                                arrive: now.as_nanos(),
                                start: grant.start.as_nanos(),
                                end: grant.end.as_nanos(),
                            });
                        }
                        sched.schedule(
                            grant.end,
                            Ev::DiskDone(SubRef {
                                req,
                                server: server as u32,
                                node,
                                z,
                                op,
                            }),
                        );
                    }
                }
                Ev::ArriveServerNic(sr) => {
                    let service = nic_service(net.t_s_per_byte, &mut nic_memo, sr.z);
                    let grant = server_nics[sr.server as usize].acquire(now, service);
                    if rec_hops {
                        reqs[sr.req as usize].hops.push(SpanHop {
                            stage: "server_nic",
                            server: Some(sr.server as usize),
                            arrive: now.as_nanos(),
                            start: grant.start.as_nanos(),
                            end: grant.end.as_nanos(),
                        });
                    }
                    sched.schedule(grant.end, Ev::ArriveDisk(sr));
                }
                Ev::ArriveDisk(sr) => {
                    let server = sr.server as usize;
                    let g = server / group_size;
                    let grant = {
                        let mut guard = shard::lock_group(&disk_groups[g]);
                        let d = &mut guard[server - g * group_size];
                        shard::disk_acquire(d, &env, server, now, sr.z, sr.op)
                    };
                    if sampling {
                        inflight_subs[server] += 1;
                        inflight_bytes[server] += sr.z;
                    }
                    if rec_hops {
                        reqs[sr.req as usize].hops.push(SpanHop {
                            stage: "disk",
                            server: Some(server),
                            arrive: now.as_nanos(),
                            start: grant.start.as_nanos(),
                            end: grant.end.as_nanos(),
                        });
                    }
                    sched.schedule(grant.end, Ev::DiskDone(sr));
                }
                Ev::DiskDone(sr) => {
                    let server = sr.server as usize;
                    if sampling {
                        inflight_subs[server] -= 1;
                        inflight_bytes[server] -= sr.z;
                    }
                    match sr.op {
                        OpKind::Write => {
                            // Acknowledgement back to the client: latency only.
                            sched.schedule(now + latency, Ev::SubDone { req: sr.req });
                        }
                        OpKind::Read => {
                            let service = nic_service(net.t_s_per_byte, &mut nic_memo, sr.z);
                            let grant = server_nics[server].acquire(now, service);
                            if rec_hops {
                                reqs[sr.req as usize].hops.push(SpanHop {
                                    stage: "server_nic",
                                    server: Some(server),
                                    arrive: now.as_nanos(),
                                    start: grant.start.as_nanos(),
                                    end: grant.end.as_nanos(),
                                });
                            }
                            sched.schedule(grant.end + latency, Ev::ReturnAtClient(sr));
                        }
                    }
                }
                Ev::ReturnAtClient(sr) => {
                    let service = nic_service(net.t_s_per_byte, &mut nic_memo, sr.z);
                    let grant = client_nics[sr.node as usize].acquire(now, service);
                    if rec_hops {
                        reqs[sr.req as usize].hops.push(SpanHop {
                            stage: "client_nic",
                            server: None,
                            arrive: now.as_nanos(),
                            start: grant.start.as_nanos(),
                            end: grant.end.as_nanos(),
                        });
                    }
                    sched.schedule(grant.end, Ev::SubDone { req: sr.req });
                }
                Ev::SubDone { req } => {
                    let ri = req as usize;
                    let done = {
                        let r = &mut reqs[ri];
                        r.pending = r.pending.saturating_sub(1);
                        r.pending == 0
                    };
                    if done {
                        if rec_on {
                            let _rec = prof.map(|p| p.scope(Phase::Recorder));
                            completed_by_op[op_index(reqs[ri].op)] += 1;
                        }
                        if rec_spans {
                            let _rec = prof.map(|p| p.scope(Phase::Recorder));
                            let hops = std::mem::take(&mut reqs[ri].hops);
                            let r = &reqs[ri];
                            recorder.span(SpanRecord {
                                id: req as u64,
                                kind: "request",
                                labels: vec![
                                    ("client", r.client.to_string()),
                                    ("op", r.op.to_string()),
                                    ("file", r.file.to_string()),
                                    ("size", r.size.to_string()),
                                    ("offset", r.offset.to_string()),
                                ],
                                issued: r.issued.as_nanos(),
                                completed: now.as_nanos(),
                                hops,
                            });
                        }
                        let r = &reqs[ri];
                        let lat = (now - r.issued).as_secs_f64();
                        match r.op {
                            OpKind::Read => {
                                read_latency.push(lat);
                                bytes_read += r.size;
                            }
                            OpKind::Write => {
                                write_latency.push(lat);
                                bytes_written += r.size;
                            }
                        }
                        completed += 1;
                        last_completion = last_completion.max(now);
                        let client = r.client;
                        let c = &mut clients[client];
                        c.batch_pending -= 1;
                        if c.batch_pending == 0 {
                            sched.schedule(
                                now,
                                Ev::StartStep {
                                    client: client as u32,
                                },
                            );
                        }
                    }
                }
                Ev::Sample => {
                    // Read-only: sampling must not perturb the simulation. The
                    // tick re-arms itself only while real work remains queued, so
                    // it never extends the run past the last completion.
                    let window = now - last_sample;
                    let mut id = 0usize;
                    for m in disk_groups.iter() {
                        let ds = shard::lock_group(m);
                        for s in ds.iter() {
                            let labels = [
                                ("server", id.to_string()),
                                ("kind", cluster.profile_of(id).kind.to_string()),
                            ];
                            let next_free = s.disk.next_free();
                            let booked = s.disk.busy_time();
                            let busy_to_now = if next_free > now {
                                booked - (next_free - now)
                            } else {
                                booked
                            };
                            let window_busy = busy_to_now - prev_busy[id];
                            prev_busy[id] = busy_to_now;
                            let util = if window.is_zero() {
                                0.0
                            } else {
                                window_busy.as_nanos() as f64 / window.as_nanos() as f64
                            };
                            let t = now.as_nanos();
                            recorder.series_point(
                                registry::PFS_SERVER_QUEUE_DEPTH.name,
                                &labels,
                                t,
                                inflight_subs[id] as f64,
                            );
                            recorder.series_point(registry::PFS_SERVER_UTIL.name, &labels, t, util);
                            recorder.series_point(
                                registry::PFS_SERVER_INFLIGHT_BYTES.name,
                                &labels,
                                t,
                                inflight_bytes[id] as f64,
                            );
                            id += 1;
                        }
                    }
                    last_sample = now;
                    if sched.pending() > 0 {
                        if let Some(dt) = sample_dt {
                            sched.schedule(now + dt, Ev::Sample);
                        }
                    }
                }
            }
        };

        match prof {
            Some(p) => engine.run_profiled(p, handler),
            None => engine.run(handler),
        }
    };

    if n_groups > 1 {
        // Deterministic sharded execution: fanout batches fork to the
        // scoped workers and join before the next event dispatches, so
        // the engine itself stays strictly sequential.
        std::thread::scope(|s| {
            let mut pool = Some(ShardPool::spawn(s, &env));
            run_engine(&mut engine, &mut pool);
        });
    } else {
        run_engine(&mut engine, &mut None);
    }

    if rec_on {
        engine.record_metrics(recorder);
        for (op, i) in [(OpKind::Read, 0usize), (OpKind::Write, 1)] {
            if issued_by_op[i] > 0 {
                recorder.counter_add(
                    registry::PFS_REQUESTS_ISSUED.name,
                    &[("op", op.to_string())],
                    issued_by_op[i],
                );
            }
            if completed_by_op[i] > 0 {
                recorder.counter_add(
                    registry::PFS_REQUESTS_COMPLETED.name,
                    &[("op", op.to_string())],
                    completed_by_op[i],
                );
            }
        }
        let mut id = 0usize;
        for m in disk_groups.iter() {
            let ds = shard::lock_group(m);
            for s in ds.iter() {
                let labels = [
                    ("server", id.to_string()),
                    ("kind", cluster.profile_of(id).kind.to_string()),
                ];
                recorder.counter_add(registry::PFS_SERVER_BYTES.name, &labels, s.bytes);
                recorder.counter_add(
                    registry::PFS_SERVER_SUB_REQUESTS.name,
                    &labels,
                    s.disk.jobs_served(),
                );
                recorder.merge_histogram(
                    registry::PFS_SERVER_QUEUE_WAIT_NS.name,
                    &labels,
                    &s.queue_wait,
                );
                recorder.merge_histogram(registry::PFS_SERVER_SERVICE_NS.name, &labels, &s.service);
                id += 1;
            }
        }
        if let Some(p) = prof {
            p.record_metrics(recorder);
        }
    }

    let stuck: Vec<usize> = barrier_waiting.iter().flatten().copied().collect();
    assert!(
        stuck.is_empty(),
        "collective deadlock: clients {stuck:?} never released from a barrier \
         (programs disagree on barrier counts)"
    );

    let mut server_reports = Vec::with_capacity(n_servers);
    for m in disk_groups.iter() {
        let ds = shard::lock_group(m);
        for s in ds.iter() {
            let id = server_reports.len();
            server_reports.push(ServerReport {
                id,
                kind: cluster.profile_of(id).kind,
                disk_busy: s.disk.busy_time(),
                nic_busy: server_nics[id].busy_time(),
                disk_jobs: s.disk.jobs_served(),
                disk_queued: s.disk.total_queued(),
                bytes: s.bytes,
                busy_series: s.busy_series.clone(),
            });
        }
    }

    SimReport {
        makespan: last_completion.max(
            clients
                .iter()
                .map(|c| c.finished_at)
                .max()
                .unwrap_or(SimNanos::ZERO),
        ),
        bytes_read,
        bytes_written,
        read_latency,
        write_latency,
        servers: server_reports,
        requests_completed: completed,
        client_finish: clients.iter().map(|c| c.finished_at).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::PhysRequest;
    use harl_devices::NetworkProfile;
    use harl_simcore::Histogram;

    fn one_file_cluster(stripe: u64) -> (ClusterConfig, Vec<FileLayout>) {
        let cluster = ClusterConfig::paper_default();
        let file = FileLayout::fixed(&cluster, stripe);
        (cluster, vec![file])
    }

    /// [`simulate`] under a silent default context.
    fn run(cluster: &ClusterConfig, files: &[FileLayout], programs: &[ClientProgram]) -> SimReport {
        simulate(&SimContext::new(), cluster, files, programs)
    }

    fn sync_program(reqs: Vec<PhysRequest>) -> ClientProgram {
        let mut p = ClientProgram::new();
        for r in reqs {
            p.push_request(r);
        }
        p
    }

    #[test]
    fn single_request_completes() {
        let (cluster, files) = one_file_cluster(64 * 1024);
        let programs = vec![sync_program(vec![PhysRequest::read(0, 0, 512 * 1024)])];
        let report = run(&cluster, &files, &programs);
        assert_eq!(report.requests_completed, 1);
        assert_eq!(report.bytes_read, 512 * 1024);
        assert_eq!(report.bytes_written, 0);
        assert!(!report.makespan.is_zero());
        // Every server got one 64 KiB sub-request.
        for s in &report.servers {
            assert_eq!(s.disk_jobs, 1);
            assert_eq!(s.bytes, 64 * 1024);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let (cluster, files) = one_file_cluster(64 * 1024);
        let mk = || {
            (0..4)
                .map(|c| {
                    sync_program(
                        (0..8)
                            .map(|i| PhysRequest::write(0, (c * 8 + i) * 512 * 1024, 512 * 1024))
                            .collect(),
                    )
                })
                .collect::<Vec<_>>()
        };
        let a = run(&cluster, &files, &mk());
        let b = run(&cluster, &files, &mk());
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.bytes_written, b.bytes_written);
        for (x, y) in a.servers.iter().zip(&b.servers) {
            assert_eq!(x.disk_busy, y.disk_busy);
        }
    }

    #[test]
    fn hservers_busier_than_sservers_under_fixed_stripe() {
        // The Fig. 1(a) phenomenon: equal stripes load HDDs ~3.5x longer.
        let (cluster, files) = one_file_cluster(64 * 1024);
        let programs: Vec<_> = (0..4)
            .map(|c| {
                sync_program(
                    (0..16u64)
                        .map(|i| PhysRequest::read(0, (c * 16 + i) * 512 * 1024, 512 * 1024))
                        .collect(),
                )
            })
            .collect();
        let report = run(&cluster, &files, &programs);
        let norm = report.normalized_server_times();
        // Servers 0-5 are HDDs, 6-7 SSDs.
        let h_avg: f64 = norm[..6].iter().sum::<f64>() / 6.0;
        let s_avg: f64 = norm[6..].iter().sum::<f64>() / 2.0;
        assert!(
            h_avg / s_avg > 2.5,
            "expected HServers >=2.5x busier, got {h_avg:.2} vs {s_avg:.2}"
        );
    }

    #[test]
    fn balanced_varied_stripe_reduces_imbalance() {
        // The paper's configuration: 16 processes — storage-bound, so the
        // layout matters (with very few clients the node NICs dominate).
        let cluster = ClusterConfig::paper_default();
        let fixed = vec![FileLayout::fixed(&cluster, 64 * 1024)];
        let varied = vec![FileLayout::two_class(&cluster, 32 * 1024, 160 * 1024)];
        let programs: Vec<_> = (0..16)
            .map(|c| {
                sync_program(
                    (0..16u64)
                        .map(|i| PhysRequest::read(0, (c * 16 + i) * 512 * 1024, 512 * 1024))
                        .collect(),
                )
            })
            .collect();
        let rf = run(&cluster, &fixed, &programs);
        let rv = run(&cluster, &varied, &programs);
        assert!(
            rv.imbalance() < rf.imbalance(),
            "varied stripes should balance load: {} vs {}",
            rv.imbalance(),
            rf.imbalance()
        );
        assert!(
            rv.makespan < rf.makespan,
            "balanced layout should finish sooner: varied {v} vs fixed {f}",
            v = rv.makespan,
            f = rf.makespan
        );
    }

    #[test]
    fn write_slower_than_read_on_ssd_only_layout() {
        let cluster = ClusterConfig::paper_default();
        let files = vec![FileLayout::two_class(&cluster, 0, 64 * 1024)];
        let reads = vec![sync_program(
            (0..16u64)
                .map(|i| PhysRequest::read(0, i * 128 * 1024, 128 * 1024))
                .collect(),
        )];
        let writes = vec![sync_program(
            (0..16u64)
                .map(|i| PhysRequest::write(0, i * 128 * 1024, 128 * 1024))
                .collect(),
        )];
        let rr = run(&cluster, &files, &reads);
        let rw = run(&cluster, &files, &writes);
        assert!(rw.makespan > rr.makespan, "SSD writes must be slower");
    }

    #[test]
    fn zero_byte_request_is_fine() {
        let (cluster, files) = one_file_cluster(4096);
        let programs = vec![sync_program(vec![PhysRequest::read(0, 0, 0)])];
        let report = run(&cluster, &files, &programs);
        assert_eq!(report.requests_completed, 1);
        assert_eq!(report.bytes_read, 0);
    }

    #[test]
    fn compute_phases_delay_io() {
        let (cluster, files) = one_file_cluster(4096);
        let mut p = ClientProgram::new();
        p.push_compute(SimNanos::from_secs(1));
        p.push_request(PhysRequest::write(0, 0, 4096));
        let report = run(&cluster, &files, &[p]);
        assert!(report.makespan > SimNanos::from_secs(1));
        assert!(
            (report.write_latency.mean()) < 0.1,
            "latency excludes compute"
        );
    }

    #[test]
    fn batch_runs_concurrently() {
        // 8 requests as one batch should finish far faster than 8 issued
        // synchronously back to back (they overlap at distinct servers).
        let cluster =
            ClusterConfig::paper_default().with_network(NetworkProfile::infinitely_fast());
        let files = vec![FileLayout::fixed(&cluster, 64 * 1024)];
        // One 64 KiB stripe per server: request i lands on server i.
        let reqs: Vec<_> = (0..8u64)
            .map(|i| PhysRequest::read(0, i * 64 * 1024, 64 * 1024))
            .collect();
        let mut batch_prog = ClientProgram::new();
        batch_prog.push_batch(reqs.clone());
        let sync_prog = sync_program(reqs);
        let rb = run(&cluster, &files, &[batch_prog]);
        let rs = run(&cluster, &files, &[sync_prog]);
        assert!(
            rb.makespan.as_nanos() * 3 < rs.makespan.as_nanos() * 2,
            "batch {b} vs sync {s}",
            b = rb.makespan,
            s = rs.makespan
        );
    }

    #[test]
    fn empty_program_finishes_at_zero() {
        let (cluster, files) = one_file_cluster(4096);
        let report = run(&cluster, &files, &[ClientProgram::new()]);
        assert_eq!(report.requests_completed, 0);
        assert_eq!(report.makespan, SimNanos::ZERO);
    }

    #[test]
    fn barrier_synchronises_clients() {
        let (cluster, files) = one_file_cluster(4096);
        // Client 0 computes 10 ms then hits a barrier; client 1 barriers
        // immediately and then does I/O. Its I/O cannot start before 10 ms.
        let mut p0 = ClientProgram::new();
        p0.push_compute(SimNanos::from_millis(10));
        p0.push_barrier();
        let mut p1 = ClientProgram::new();
        p1.push_barrier();
        p1.push_request(PhysRequest::read(0, 0, 4096));
        let report = run(&cluster, &files, &[p0, p1]);
        assert!(report.makespan > SimNanos::from_millis(10));
        assert_eq!(report.requests_completed, 1);
    }

    #[test]
    fn repeated_barriers_match_by_index() {
        let (cluster, files) = one_file_cluster(4096);
        let mk = |work: u64| {
            let mut p = ClientProgram::new();
            for _ in 0..5 {
                p.push_compute(SimNanos::from_millis(work));
                p.push_barrier();
            }
            p
        };
        // Slowest client paces every round: 5 x 7 ms.
        let report = run(&cluster, &files, &[mk(1), mk(7), mk(3)]);
        assert_eq!(report.client_finish.len(), 3);
        let end = report.client_finish.iter().max().unwrap();
        assert_eq!(*end, SimNanos::from_millis(35));
    }

    #[test]
    #[should_panic(expected = "collective deadlock")]
    fn mismatched_barriers_deadlock() {
        let (cluster, files) = one_file_cluster(4096);
        let mut p0 = ClientProgram::new();
        p0.push_barrier();
        let p1 = ClientProgram::new();
        run(&cluster, &files, &[p0, p1]);
    }

    #[test]
    #[should_panic(expected = "unknown file")]
    fn unknown_file_panics() {
        let (cluster, files) = one_file_cluster(4096);
        let programs = vec![sync_program(vec![PhysRequest::read(9, 0, 10)])];
        run(&cluster, &files, &programs);
    }

    #[test]
    fn busy_series_totals_match_disk_busy() {
        let (cluster, files) = one_file_cluster(64 * 1024);
        let programs: Vec<_> = (0..4)
            .map(|c| {
                sync_program(
                    (0..8u64)
                        .map(|i| PhysRequest::read(0, (c * 8 + i) * 512 * 1024, 512 * 1024))
                        .collect(),
                )
            })
            .collect();
        let report = run(&cluster, &files, &programs);
        for s in &report.servers {
            assert_eq!(
                s.busy_series.total(),
                s.disk_busy,
                "series must account for every busy nanosecond on server {}",
                s.id
            );
        }
    }

    #[test]
    fn recorded_run_captures_spans_and_histograms() {
        use harl_simcore::MemoryRecorder;
        let (cluster, files) = one_file_cluster(64 * 1024);
        let programs = vec![sync_program(vec![
            PhysRequest::read(0, 0, 512 * 1024),
            PhysRequest::write(0, 512 * 1024, 512 * 1024),
        ])];
        let rec = std::sync::Arc::new(MemoryRecorder::new());
        let report = simulate(
            &SimContext::recorded(rec.clone()),
            &cluster,
            &files,
            &programs,
        );
        assert_eq!(report.requests_completed, 2);
        // One span per request, each with an MDS hop plus per-sub disk hops.
        let spans = rec.spans();
        assert_eq!(spans.len(), 2);
        for span in &spans {
            assert!(span.hops.iter().any(|h| h.stage == "mds"));
            assert_eq!(
                span.hops.iter().filter(|h| h.stage == "disk").count(),
                8,
                "one disk hop per sub-request"
            );
            assert!(span.completed >= span.issued);
            for h in &span.hops {
                assert!(h.arrive <= h.start && h.start <= h.end);
            }
        }
        // Per-server service histograms saw one sub-request per op each.
        for s in &report.servers {
            let labels = [("server", s.id.to_string()), ("kind", s.kind.to_string())];
            let h = rec
                .histogram_snapshot("pfs.server.service_ns", &labels)
                .expect("service histogram per server");
            assert_eq!(h.count(), 2);
        }
        assert_eq!(
            rec.counter_value("pfs.requests.completed", &[("op", "read".to_string())]),
            1
        );
        assert_eq!(
            rec.counter_value("pfs.requests.issued", &[("op", "write".to_string())]),
            1
        );
        // Engine-level metrics arrived too.
        assert!(rec.counter_value("sim.events.dispatched", &[]) > 0);
        assert!(rec.gauge_value("sim.queue_depth.hwm", &[]).unwrap_or(0.0) >= 1.0);
    }

    #[test]
    fn recorded_run_matches_plain_run() {
        use harl_simcore::MemoryRecorder;
        // Instrumentation must not perturb simulated time.
        let (cluster, files) = one_file_cluster(64 * 1024);
        let programs: Vec<_> = (0..4)
            .map(|c| {
                sync_program(
                    (0..8u64)
                        .map(|i| PhysRequest::write(0, (c * 8 + i) * 512 * 1024, 512 * 1024))
                        .collect(),
                )
            })
            .collect();
        let plain = run(&cluster, &files, &programs);
        let rec = std::sync::Arc::new(MemoryRecorder::new());
        let recorded = simulate(
            &SimContext::recorded(rec.clone()),
            &cluster,
            &files,
            &programs,
        );
        assert_eq!(plain.makespan, recorded.makespan);
        assert_eq!(plain.bytes_written, recorded.bytes_written);
        assert_eq!(rec.spans().len(), 32);
    }

    #[test]
    fn metrics_only_run_keeps_metrics_sheds_tracing() {
        use harl_simcore::metrics::{MemoryRecorder, TraceDetail};
        let (cluster, files) = one_file_cluster(64 * 1024);
        let programs = vec![sync_program(vec![
            PhysRequest::read(0, 0, 512 * 1024),
            PhysRequest::write(0, 512 * 1024, 512 * 1024),
        ])];
        let full = std::sync::Arc::new(MemoryRecorder::new());
        let full_report = simulate(
            &SimContext::recorded(full.clone()),
            &cluster,
            &files,
            &programs,
        );
        let lean = std::sync::Arc::new(MemoryRecorder::metrics_only());
        let lean_report = simulate(
            &SimContext::recorded(lean.clone()),
            &cluster,
            &files,
            &programs,
        );
        // Shedding tracing must not perturb simulated time...
        assert_eq!(full_report.makespan, lean_report.makespan);
        // ...or any metric family: counters, histograms, engine gauges.
        assert!(lean.spans().is_empty());
        assert_eq!(
            lean.counter_value("pfs.requests.completed", &[("op", "read".to_string())]),
            full.counter_value("pfs.requests.completed", &[("op", "read".to_string())]),
        );
        for s in &full_report.servers {
            let labels = [("server", s.id.to_string()), ("kind", s.kind.to_string())];
            let fh = full.histogram_snapshot("pfs.server.service_ns", &labels);
            let lh = lean.histogram_snapshot("pfs.server.service_ns", &labels);
            assert_eq!(
                fh.as_ref().map(Histogram::count),
                lh.as_ref().map(Histogram::count)
            );
        }
        assert_eq!(
            lean.counter_value("sim.events.dispatched", &[]),
            full.counter_value("sim.events.dispatched", &[]),
        );

        // The middle tier keeps one span per request but no hop detail.
        let spans_only = std::sync::Arc::new(MemoryRecorder::with_detail(TraceDetail::Spans));
        simulate(
            &SimContext::recorded(spans_only.clone()),
            &cluster,
            &files,
            &programs,
        );
        let spans = spans_only.spans();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.hops.is_empty()));
    }

    #[test]
    fn sampled_run_matches_unsampled_run() {
        use harl_simcore::MemoryRecorder;
        let (cluster, files) = one_file_cluster(64 * 1024);
        let programs: Vec<_> = (0..4)
            .map(|c| {
                sync_program(
                    (0..8u64)
                        .map(|i| PhysRequest::write(0, (c * 8 + i) * 512 * 1024, 512 * 1024))
                        .collect(),
                )
            })
            .collect();
        let plain = run(&cluster, &files, &programs);
        let rec = std::sync::Arc::new(MemoryRecorder::new());
        let ctx = SimContext::recorded(rec.clone()).with_sample_interval(SimNanos::from_millis(5));
        let sampled = simulate(&ctx, &cluster, &files, &programs);
        // Sampling is read-only: makespan and per-server loads unchanged.
        assert_eq!(plain.makespan, sampled.makespan);
        for (a, b) in plain.servers.iter().zip(&sampled.servers) {
            assert_eq!(a.disk_busy, b.disk_busy);
        }
        // And every server produced the three time-series.
        let labels = [
            ("server", "0".to_string()),
            ("kind", cluster.profile_of(0).kind.to_string()),
        ];
        let depth = rec
            .series_points("pfs.server.queue_depth", &labels)
            .expect("queue depth series");
        assert!(!depth.is_empty());
        let util = rec
            .series_points("pfs.server.util", &labels)
            .expect("util series");
        assert_eq!(depth.len(), util.len());
        // Sample timestamps advance by exactly the interval.
        for w in util.windows(2) {
            assert_eq!(w[1].0 - w[0].0, 5_000_000);
        }
        // Utilisation is a fraction of the window.
        for &(_, u) in &util {
            assert!((0.0..=1.0).contains(&u), "util {u} out of range");
        }
        assert!(rec
            .series_points("pfs.server.inflight_bytes", &labels)
            .is_some());
    }

    #[test]
    fn sampling_is_deterministic_across_thread_counts() {
        use harl_simcore::MemoryRecorder;
        let (cluster, files) = one_file_cluster(64 * 1024);
        let programs: Vec<_> = (0..4)
            .map(|c| {
                sync_program(
                    (0..8u64)
                        .map(|i| PhysRequest::read(0, (c * 8 + i) * 512 * 1024, 512 * 1024))
                        .collect(),
                )
            })
            .collect();
        let sample = |threads: usize| {
            let rec = std::sync::Arc::new(MemoryRecorder::new());
            let ctx = SimContext::recorded(rec.clone())
                .with_seed(42)
                .with_threads(threads)
                .with_sample_interval(SimNanos::from_millis(2));
            simulate(&ctx, &cluster, &files, &programs);
            let labels = [
                ("server", "3".to_string()),
                ("kind", cluster.profile_of(3).kind.to_string()),
            ];
            (
                rec.series_points("pfs.server.queue_depth", &labels),
                rec.series_points("pfs.server.util", &labels),
                rec.series_points("pfs.server.inflight_bytes", &labels),
            )
        };
        // Same seed + interval => bit-identical series, thread count moot.
        assert_eq!(sample(1), sample(8));
    }

    #[test]
    fn profiled_run_attributes_time_and_matches_plain() {
        use harl_simcore::{MemoryRecorder, PhaseProfiler};
        use std::sync::Arc;
        let (cluster, files) = one_file_cluster(64 * 1024);
        let programs: Vec<_> = (0..4)
            .map(|c| {
                sync_program(
                    (0..8u64)
                        .map(|i| PhysRequest::write(0, (c * 8 + i) * 512 * 1024, 512 * 1024))
                        .collect(),
                )
            })
            .collect();
        let plain = run(&cluster, &files, &programs);
        let rec = Arc::new(MemoryRecorder::new());
        let prof = Arc::new(PhaseProfiler::new());
        let ctx = SimContext::recorded(rec.clone()).with_profiler(prof.clone());
        let profiled = simulate(&ctx, &cluster, &files, &programs);
        assert_eq!(plain.makespan, profiled.makespan);
        // Wall time landed in the dispatch and handler buckets, and the
        // profile gauges were exported at the end of the run.
        assert!(prof.phase_ns(Phase::Dispatch) > 0);
        assert!(prof.phase_ns(Phase::DeviceService) > 0);
        assert!(prof.phase_ns(Phase::QueueDrain) > 0);
        assert!(prof.phase_ns(Phase::Recorder) > 0);
        assert!(rec.gauge_value("sim.profile.dispatch_s", &[]).is_some());
    }

    #[test]
    fn straggler_slows_the_run() {
        use crate::faults::Degradation;
        let base = ClusterConfig::paper_default();
        let degraded =
            ClusterConfig::paper_default().with_degradation(Degradation::permanent(0, 8.0));
        let files_a = vec![FileLayout::fixed(&base, 64 * 1024)];
        let files_b = vec![FileLayout::fixed(&degraded, 64 * 1024)];
        let programs: Vec<_> = (0..8)
            .map(|c| {
                sync_program(
                    (0..8u64)
                        .map(|i| PhysRequest::read(0, (c * 8 + i) * 512 * 1024, 512 * 1024))
                        .collect(),
                )
            })
            .collect();
        let healthy = run(&base, &files_a, &programs);
        let hurt = run(&degraded, &files_b, &programs);
        assert!(
            hurt.makespan.as_nanos() > healthy.makespan.as_nanos() * 3,
            "8x straggler on the critical HServer should dominate: {} vs {}",
            hurt.makespan,
            healthy.makespan
        );
        // The straggler's own busy time grows; others' stay equal.
        assert!(hurt.servers[0].disk_busy > healthy.servers[0].disk_busy * 7);
        assert_eq!(hurt.servers[3].disk_busy, healthy.servers[3].disk_busy);
    }

    #[test]
    fn context_faults_match_cluster_degradations() {
        use crate::faults::Degradation;
        // Injecting the straggler through the SimContext fault plan must
        // behave exactly like baking it into the cluster config.
        let base = ClusterConfig::paper_default();
        let baked = ClusterConfig::paper_default().with_degradation(Degradation::permanent(0, 8.0));
        let files = vec![FileLayout::fixed(&base, 64 * 1024)];
        let programs: Vec<_> = (0..8)
            .map(|c| {
                sync_program(
                    (0..8u64)
                        .map(|i| PhysRequest::read(0, (c * 8 + i) * 512 * 1024, 512 * 1024))
                        .collect(),
                )
            })
            .collect();
        let via_cluster = run(&baked, &files, &programs);
        let ctx = SimContext::new().with_fault(Degradation::permanent(0, 8.0));
        let via_ctx = simulate(&ctx, &base, &files, &programs);
        assert_eq!(via_cluster.makespan, via_ctx.makespan);
        assert_eq!(
            via_cluster.servers[0].disk_busy,
            via_ctx.servers[0].disk_busy
        );
        // And both overlapping (cluster + ctx) multiply.
        let both = simulate(&ctx, &baked, &files, &programs);
        assert!(both.makespan > via_ctx.makespan);
    }

    #[test]
    fn context_seed_overrides_cluster_seed() {
        let (cluster, files) = one_file_cluster(64 * 1024);
        let programs = vec![sync_program(
            (0..8u64)
                .map(|i| PhysRequest::read(0, i * 512 * 1024, 512 * 1024))
                .collect(),
        )];
        let reseeded = ClusterConfig::paper_default().with_seed(7);
        let a = simulate(&SimContext::new().with_seed(7), &cluster, &files, &programs);
        let b = run(&reseeded, &files, &programs);
        assert_eq!(
            a.makespan, b.makespan,
            "ctx seed must act like cluster seed"
        );
    }

    #[test]
    fn transient_window_only_affects_its_span() {
        use crate::faults::Degradation;
        // Degradation window entirely after the workload completes: no
        // effect at all.
        let base = ClusterConfig::paper_default();
        let late = ClusterConfig::paper_default().with_degradation(Degradation {
            server: 0,
            from: SimNanos::from_secs(3600),
            until: SimNanos::MAX,
            slowdown: 100.0,
        });
        let files = vec![FileLayout::fixed(&base, 64 * 1024)];
        let programs = vec![sync_program(vec![PhysRequest::read(0, 0, 512 * 1024)])];
        let a = run(&base, &files, &programs);
        let b = run(&late, &files, &programs);
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn mds_serialises_lookups() {
        // 100 zero-latency clients hitting the MDS at t=0 must serialise:
        // makespan >= 100 * mds_service even with free network/storage.
        let mut cluster =
            ClusterConfig::paper_default().with_network(NetworkProfile::infinitely_fast());
        cluster.mds_service = SimNanos::from_micros(100);
        let files = vec![FileLayout::fixed(&cluster, 4096)];
        let programs: Vec<_> = (0..100)
            .map(|i| sync_program(vec![PhysRequest::read(0, i * 4096, 1)]))
            .collect();
        let report = run(&cluster, &files, &programs);
        assert!(report.makespan >= SimNanos::from_micros(100) * 100);
    }
}
