//! Cluster configuration: which servers exist, how fast they are, how nodes
//! are wired together.
//!
//! The paper's default testbed is 8 compute nodes, 6 HServers and
//! 2 SServers on Gigabit Ethernet under one OrangeFS namespace; the
//! experiments also use 7:1 and 2:6 server ratios. [`ClusterConfig`]
//! captures exactly those knobs plus the K-profile extension (extra server
//! classes beyond HDD/SSD).

use crate::faults::Degradation;
use harl_devices::{hdd_2015_preset, ssd_2015_preset, DeviceKind, NetworkProfile, StorageProfile};
use harl_simcore::SimNanos;
use serde::{Deserialize, Serialize};

/// Identifier of a file server within a cluster (dense, 0-based).
pub type ServerId = usize;

/// A group of identical file servers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerClass {
    /// Number of servers in this class.
    pub count: usize,
    /// The storage device behind each server.
    pub profile: StorageProfile,
}

/// Full description of a simulated cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Server classes in server-id order. For the paper's two-class setup
    /// this is `[HServers, SServers]`; the K-profile extension appends more.
    pub classes: Vec<ServerClass>,
    /// Interconnect profile (every NIC in the cluster).
    pub network: NetworkProfile,
    /// Number of compute nodes; client processes are placed round-robin.
    pub compute_nodes: usize,
    /// Metadata server service time per file-request lookup.
    pub mds_service: SimNanos,
    /// Master seed; every stochastic component derives its stream from it.
    pub seed: u64,
    /// Injected degradation windows (stragglers, GC storms); empty by
    /// default. See [`crate::faults`].
    #[serde(default)]
    pub degradations: Vec<Degradation>,
}

impl ClusterConfig {
    /// The paper's default hybrid cluster: `m` HServers + `n` SServers,
    /// 8 compute nodes, Gigabit Ethernet, 2015-era device presets.
    pub fn hybrid(m: usize, n: usize) -> Self {
        assert!(m + n > 0, "cluster needs at least one server");
        ClusterConfig {
            classes: vec![
                ServerClass {
                    count: m,
                    profile: hdd_2015_preset(),
                },
                ServerClass {
                    count: n,
                    profile: ssd_2015_preset(),
                },
            ],
            network: NetworkProfile::gigabit_ethernet(),
            compute_nodes: 8,
            mds_service: SimNanos::from_micros(30),
            seed: 0x4A51,
            degradations: Vec::new(),
        }
    }

    /// The paper's default 6 HServer + 2 SServer configuration.
    pub fn paper_default() -> Self {
        ClusterConfig::hybrid(6, 2)
    }

    /// A cluster with an arbitrary set of server classes (any class
    /// count), with the same defaults as [`Self::hybrid`] for everything
    /// else.
    pub fn tiered(classes: Vec<ServerClass>) -> Self {
        assert!(
            classes.iter().map(|c| c.count).sum::<usize>() > 0,
            "cluster needs at least one server"
        );
        ClusterConfig {
            classes,
            network: NetworkProfile::gigabit_ethernet(),
            compute_nodes: 8,
            mds_service: SimNanos::from_micros(30),
            seed: 0x4A51,
            degradations: Vec::new(),
        }
    }

    /// A three-tier cluster: `m` HDD servers, `n` SSD servers, and `o`
    /// object-store gateways (priced via
    /// [`harl_devices::object_store_preset`]).
    pub fn three_tier(m: usize, n: usize, o: usize) -> Self {
        ClusterConfig::tiered(vec![
            ServerClass {
                count: m,
                profile: hdd_2015_preset(),
            },
            ServerClass {
                count: n,
                profile: ssd_2015_preset(),
            },
            ServerClass {
                count: o,
                profile: harl_devices::object_store_preset(),
            },
        ])
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style compute-node override.
    pub fn with_compute_nodes(mut self, nodes: usize) -> Self {
        assert!(nodes > 0, "need at least one compute node");
        self.compute_nodes = nodes;
        self
    }

    /// Builder-style network override.
    pub fn with_network(mut self, network: NetworkProfile) -> Self {
        self.network = network;
        self
    }

    /// Append an extra server class (K-profile extension).
    pub fn with_extra_class(mut self, count: usize, profile: StorageProfile) -> Self {
        self.classes.push(ServerClass { count, profile });
        self
    }

    /// Inject a degradation window (validated on insertion).
    pub fn with_degradation(mut self, d: Degradation) -> Self {
        assert!(
            d.server < self.server_count(),
            "degradation targets unknown server {}",
            d.server
        );
        self.degradations.push(d.validated());
        self
    }

    /// Total number of file servers.
    pub fn server_count(&self) -> usize {
        self.classes.iter().map(|c| c.count).sum()
    }

    /// Number of HDD-class servers (the paper's `M`).
    pub fn hserver_count(&self) -> usize {
        self.classes
            .iter()
            .filter(|c| c.profile.kind == DeviceKind::Hdd)
            .map(|c| c.count)
            .sum()
    }

    /// Number of SSD-class servers (the paper's `N`).
    pub fn sserver_count(&self) -> usize {
        self.classes
            .iter()
            .filter(|c| c.profile.kind == DeviceKind::Ssd)
            .map(|c| c.count)
            .sum()
    }

    /// The profile of server `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    // Documented-precondition panic, allowlisted in lint.allow.toml: ids
    // come from layouts built against this cluster, and an Option return
    // would push unwraps into the simulator's per-request hot path.
    #[allow(clippy::panic)]
    pub fn profile_of(&self, id: ServerId) -> &StorageProfile {
        let mut base = 0;
        for class in &self.classes {
            if id < base + class.count {
                return &class.profile;
            }
            base += class.count;
        }
        panic!(
            "server id {id} out of range ({} servers)",
            self.server_count()
        );
    }

    /// Server ids belonging to class `class_idx`.
    pub fn class_servers(&self, class_idx: usize) -> std::ops::Range<ServerId> {
        let base: usize = self.classes[..class_idx].iter().map(|c| c.count).sum();
        base..base + self.classes[class_idx].count
    }

    /// All server ids in order.
    pub fn all_servers(&self) -> std::ops::Range<ServerId> {
        0..self.server_count()
    }

    /// The compute node hosting client process `client`.
    pub fn node_of(&self, client: usize) -> usize {
        client % self.compute_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_6_plus_2() {
        let c = ClusterConfig::paper_default();
        assert_eq!(c.hserver_count(), 6);
        assert_eq!(c.sserver_count(), 2);
        assert_eq!(c.server_count(), 8);
        assert_eq!(c.compute_nodes, 8);
    }

    #[test]
    fn profile_lookup_by_id() {
        let c = ClusterConfig::hybrid(6, 2);
        for id in 0..6 {
            assert_eq!(c.profile_of(id).kind, DeviceKind::Hdd);
        }
        for id in 6..8 {
            assert_eq!(c.profile_of(id).kind, DeviceKind::Ssd);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn profile_lookup_out_of_range() {
        ClusterConfig::hybrid(2, 1).profile_of(3);
    }

    #[test]
    fn class_server_ranges() {
        let c = ClusterConfig::hybrid(6, 2);
        assert_eq!(c.class_servers(0), 0..6);
        assert_eq!(c.class_servers(1), 6..8);
    }

    #[test]
    fn extra_class_extends_ids() {
        let c = ClusterConfig::hybrid(2, 2).with_extra_class(3, harl_devices::nvme_2020_preset());
        assert_eq!(c.server_count(), 7);
        assert_eq!(c.class_servers(2), 4..7);
        assert_eq!(c.profile_of(6).kind, DeviceKind::Other);
    }

    #[test]
    fn three_tier_cluster_shape() {
        let c = ClusterConfig::three_tier(4, 2, 1);
        assert_eq!(c.server_count(), 7);
        assert_eq!(c.classes.len(), 3);
        assert_eq!(c.profile_of(6).kind, DeviceKind::Object);
        assert!(!c.classes[2].profile.cost.is_free());
        assert!(c.classes[0].profile.cost.is_free());
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_tiered_cluster_rejected() {
        ClusterConfig::tiered(vec![ServerClass {
            count: 0,
            profile: hdd_2015_preset(),
        }]);
    }

    #[test]
    fn clients_round_robin_over_nodes() {
        let c = ClusterConfig::paper_default();
        assert_eq!(c.node_of(0), 0);
        assert_eq!(c.node_of(8), 0);
        assert_eq!(c.node_of(9), 1);
    }

    #[test]
    fn ratio_variants() {
        // The Fig. 10 configurations.
        let a = ClusterConfig::hybrid(7, 1);
        assert_eq!((a.hserver_count(), a.sserver_count()), (7, 1));
        let b = ClusterConfig::hybrid(2, 6);
        assert_eq!((b.hserver_count(), b.sserver_count()), (2, 6));
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_cluster_rejected() {
        ClusterConfig::hybrid(0, 0);
    }
}
