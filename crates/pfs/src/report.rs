//! Simulation output: everything the paper's figures are computed from.

use crate::cluster::ServerId;
use harl_devices::DeviceKind;
use harl_simcore::{throughput_mib_s, OnlineStats, SimNanos};
use serde::{Deserialize, Serialize};

/// Fixed-width busy-time buckets: `buckets[i]` is how much of bucket i's
/// wall-clock window the device spent serving. Gives a utilisation
/// time-series without storing per-grant history.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BusyBuckets {
    /// Bucket width.
    pub width: SimNanos,
    /// Busy time accumulated per bucket (last bucket absorbs overflow).
    pub buckets: Vec<SimNanos>,
}

impl BusyBuckets {
    /// New series with `count` buckets of `width` each.
    pub fn new(width: SimNanos, count: usize) -> Self {
        assert!(!width.is_zero() && count > 0, "degenerate bucket config");
        BusyBuckets {
            width,
            buckets: vec![SimNanos::ZERO; count],
        }
    }

    /// Record a service interval `[start, end)`.
    pub fn record(&mut self, start: SimNanos, end: SimNanos) {
        let w = self.width.as_nanos();
        let last = self.buckets.len() - 1;
        let mut pos = start.as_nanos();
        let end = end.as_nanos();
        while pos < end {
            let idx = ((pos / w) as usize).min(last);
            let bucket_end = if idx == last {
                end
            } else {
                ((pos / w) + 1) * w
            };
            let chunk = bucket_end.min(end) - pos;
            self.buckets[idx] += SimNanos(chunk);
            pos += chunk;
        }
    }

    /// Utilisation fraction per bucket (last bucket may exceed 1.0 since
    /// it absorbs overflow).
    pub fn utilisation(&self) -> Vec<f64> {
        let w = self.width.as_secs_f64();
        self.buckets
            .iter()
            .map(|b| if w > 0.0 { b.as_secs_f64() / w } else { 0.0 })
            .collect()
    }

    /// Total recorded busy time.
    pub fn total(&self) -> SimNanos {
        self.buckets.iter().copied().sum()
    }
}

/// Per-server accounting over one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerReport {
    /// Server id.
    pub id: ServerId,
    /// Device class (HDD ⇒ HServer, SSD ⇒ SServer).
    pub kind: DeviceKind,
    /// Total time the storage device spent serving sub-requests — the
    /// "I/O time of each server" plotted in the paper's Fig. 1(a).
    pub disk_busy: SimNanos,
    /// Total time the server's NIC spent moving payload.
    pub nic_busy: SimNanos,
    /// Sub-requests served by the device.
    pub disk_jobs: u64,
    /// Total queueing delay at the device.
    pub disk_queued: SimNanos,
    /// Bytes served by the device.
    pub bytes: u64,
    /// Busy-time series (fixed-width buckets; the last bucket absorbs any
    /// overflow past the configured horizon).
    pub busy_series: BusyBuckets,
}

/// Full result of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Time of the last completion event.
    pub makespan: SimNanos,
    /// Total bytes read by clients.
    pub bytes_read: u64,
    /// Total bytes written by clients.
    pub bytes_written: u64,
    /// Distribution of read-request latencies (seconds).
    pub read_latency: OnlineStats,
    /// Distribution of write-request latencies (seconds).
    pub write_latency: OnlineStats,
    /// Per-server accounting.
    pub servers: Vec<ServerReport>,
    /// Number of file requests completed.
    pub requests_completed: u64,
    /// When each client finished its program.
    pub client_finish: Vec<SimNanos>,
}

impl SimReport {
    /// Aggregate throughput: all bytes moved over the makespan, MiB/s —
    /// the quantity the paper's throughput figures report.
    pub fn throughput_mib_s(&self) -> f64 {
        throughput_mib_s(self.bytes_read + self.bytes_written, self.makespan)
    }

    /// Per-server disk busy times normalised to the minimum — exactly the
    /// presentation of the paper's Fig. 1(a). Servers that served nothing
    /// report 0.
    pub fn normalized_server_times(&self) -> Vec<f64> {
        let min = self
            .servers
            .iter()
            .map(|s| s.disk_busy)
            .filter(|t| !t.is_zero())
            .min()
            .unwrap_or(SimNanos::ZERO);
        if min.is_zero() {
            return self.servers.iter().map(|_| 0.0).collect();
        }
        self.servers
            .iter()
            .map(|s| s.disk_busy.as_secs_f64() / min.as_secs_f64())
            .collect()
    }

    /// Ratio of the busiest to the least-busy active server — the load
    /// imbalance HARL is designed to remove.
    pub fn imbalance(&self) -> f64 {
        let norm = self.normalized_server_times();
        norm.iter().cloned().fold(0.0_f64, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with_busy(times_ms: &[u64]) -> SimReport {
        // (series unused by these tests)
        SimReport {
            makespan: SimNanos::from_secs(1),
            bytes_read: 1024 * 1024,
            bytes_written: 0,
            read_latency: OnlineStats::new(),
            write_latency: OnlineStats::new(),
            servers: times_ms
                .iter()
                .enumerate()
                .map(|(i, &ms)| ServerReport {
                    id: i,
                    kind: DeviceKind::Hdd,
                    disk_busy: SimNanos::from_millis(ms),
                    nic_busy: SimNanos::ZERO,
                    disk_jobs: 1,
                    disk_queued: SimNanos::ZERO,
                    bytes: 0,
                    busy_series: BusyBuckets::new(SimNanos::from_millis(100), 4),
                })
                .collect(),
            requests_completed: 1,
            client_finish: vec![],
        }
    }

    #[test]
    fn busy_buckets_split_across_boundaries() {
        let mut b = BusyBuckets::new(SimNanos(100), 4);
        b.record(SimNanos(50), SimNanos(250));
        assert_eq!(b.buckets[0], SimNanos(50));
        assert_eq!(b.buckets[1], SimNanos(100));
        assert_eq!(b.buckets[2], SimNanos(50));
        assert_eq!(b.total(), SimNanos(200));
        let u = b.utilisation();
        assert!((u[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn busy_buckets_overflow_goes_to_last() {
        let mut b = BusyBuckets::new(SimNanos(100), 2);
        b.record(SimNanos(500), SimNanos(700));
        assert_eq!(b.buckets[1], SimNanos(200));
        assert_eq!(b.total(), SimNanos(200));
    }

    #[test]
    fn busy_buckets_straddle_into_overflow() {
        // An interval that starts in range and runs far past the series end
        // must land its in-range part normally and absorb the whole tail in
        // the last bucket as one chunk (no per-width iteration past the end).
        let mut b = BusyBuckets::new(SimNanos(100), 3);
        b.record(SimNanos(150), SimNanos(1_000));
        assert_eq!(b.buckets[0], SimNanos::ZERO);
        assert_eq!(b.buckets[1], SimNanos(50)); // [150, 200)
        assert_eq!(b.buckets[2], SimNanos(800)); // [200, 1000) absorbed
        assert_eq!(b.total(), SimNanos(850));
        // The overflow bucket's utilisation is allowed to exceed 1.0.
        let u = b.utilisation();
        assert!((u[2] - 8.0).abs() < 1e-12);
        assert!(u[0] == 0.0 && (u[1] - 0.5).abs() < 1e-12);
        // Repeated overflow keeps accumulating in the same bucket.
        b.record(SimNanos(2_000), SimNanos(2_100));
        assert_eq!(b.buckets[2], SimNanos(900));
    }

    #[test]
    #[should_panic(expected = "degenerate bucket")]
    fn zero_width_rejected() {
        BusyBuckets::new(SimNanos::ZERO, 4);
    }

    #[test]
    fn throughput_simple() {
        let r = report_with_busy(&[1]);
        assert!((r.throughput_mib_s() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn normalisation_vs_min() {
        let r = report_with_busy(&[350, 100, 200]);
        let n = r.normalized_server_times();
        assert!((n[0] - 3.5).abs() < 1e-9);
        assert!((n[1] - 1.0).abs() < 1e-9);
        assert!((r.imbalance() - 3.5).abs() < 1e-9);
    }

    #[test]
    fn idle_servers_ignored_for_min() {
        let r = report_with_busy(&[0, 100, 300]);
        let n = r.normalized_server_times();
        assert_eq!(n[0], 0.0);
        assert!((n[2] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn all_idle_is_zeroes() {
        let r = report_with_busy(&[0, 0]);
        assert_eq!(r.normalized_server_times(), vec![0.0, 0.0]);
        assert_eq!(r.imbalance(), 0.0);
    }
}
