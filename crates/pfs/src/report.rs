//! Simulation output: everything the paper's figures are computed from —
//! plus [`MetricsSummary`], which distils a flight-recorder JSONL dump back
//! into a per-server table (`harl-cli report`).

use crate::cluster::ServerId;
use harl_devices::DeviceKind;
use harl_simcore::{registry, throughput_mib_s, OnlineStats, SimNanos};
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Fixed-width busy-time buckets: `buckets[i]` is how much of bucket i's
/// wall-clock window the device spent serving. Gives a utilisation
/// time-series without storing per-grant history.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BusyBuckets {
    /// Bucket width.
    pub width: SimNanos,
    /// Busy time accumulated per bucket (last bucket absorbs overflow).
    pub buckets: Vec<SimNanos>,
}

impl BusyBuckets {
    /// New series with `count` buckets of `width` each.
    pub fn new(width: SimNanos, count: usize) -> Self {
        assert!(!width.is_zero() && count > 0, "degenerate bucket config");
        BusyBuckets {
            width,
            buckets: vec![SimNanos::ZERO; count],
        }
    }

    /// Record a service interval `[start, end)`.
    pub fn record(&mut self, start: SimNanos, end: SimNanos) {
        let w = self.width.as_nanos();
        let last = self.buckets.len() - 1;
        let mut pos = start.as_nanos();
        let end = end.as_nanos();
        while pos < end {
            let idx = ((pos / w) as usize).min(last);
            let bucket_end = if idx == last {
                end
            } else {
                ((pos / w) + 1) * w
            };
            let chunk = bucket_end.min(end) - pos;
            self.buckets[idx] += SimNanos(chunk);
            pos += chunk;
        }
    }

    /// Utilisation fraction per bucket (last bucket may exceed 1.0 since
    /// it absorbs overflow).
    pub fn utilisation(&self) -> Vec<f64> {
        let w = self.width.as_secs_f64();
        self.buckets
            .iter()
            .map(|b| if w > 0.0 { b.as_secs_f64() / w } else { 0.0 })
            .collect()
    }

    /// Total recorded busy time.
    pub fn total(&self) -> SimNanos {
        self.buckets.iter().copied().sum()
    }
}

/// Per-server accounting over one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerReport {
    /// Server id.
    pub id: ServerId,
    /// Device class (HDD ⇒ HServer, SSD ⇒ SServer).
    pub kind: DeviceKind,
    /// Total time the storage device spent serving sub-requests — the
    /// "I/O time of each server" plotted in the paper's Fig. 1(a).
    pub disk_busy: SimNanos,
    /// Total time the server's NIC spent moving payload.
    pub nic_busy: SimNanos,
    /// Sub-requests served by the device.
    pub disk_jobs: u64,
    /// Total queueing delay at the device.
    pub disk_queued: SimNanos,
    /// Bytes served by the device.
    pub bytes: u64,
    /// Busy-time series (fixed-width buckets; the last bucket absorbs any
    /// overflow past the configured horizon).
    pub busy_series: BusyBuckets,
}

/// Full result of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Time of the last completion event.
    pub makespan: SimNanos,
    /// Total bytes read by clients.
    pub bytes_read: u64,
    /// Total bytes written by clients.
    pub bytes_written: u64,
    /// Distribution of read-request latencies (seconds).
    pub read_latency: OnlineStats,
    /// Distribution of write-request latencies (seconds).
    pub write_latency: OnlineStats,
    /// Per-server accounting.
    pub servers: Vec<ServerReport>,
    /// Number of file requests completed.
    pub requests_completed: u64,
    /// When each client finished its program.
    pub client_finish: Vec<SimNanos>,
}

impl SimReport {
    /// Aggregate throughput: all bytes moved over the makespan, MiB/s —
    /// the quantity the paper's throughput figures report.
    pub fn throughput_mib_s(&self) -> f64 {
        throughput_mib_s(self.bytes_read + self.bytes_written, self.makespan)
    }

    /// Per-server disk busy times normalised to the minimum — exactly the
    /// presentation of the paper's Fig. 1(a). Servers that served nothing
    /// report 0.
    pub fn normalized_server_times(&self) -> Vec<f64> {
        let min = self
            .servers
            .iter()
            .map(|s| s.disk_busy)
            .filter(|t| !t.is_zero())
            .min()
            .unwrap_or(SimNanos::ZERO);
        if min.is_zero() {
            return self.servers.iter().map(|_| 0.0).collect();
        }
        self.servers
            .iter()
            .map(|s| s.disk_busy.as_secs_f64() / min.as_secs_f64())
            .collect()
    }

    /// Ratio of the busiest to the least-busy active server — the load
    /// imbalance HARL is designed to remove.
    pub fn imbalance(&self) -> f64 {
        let norm = self.normalized_server_times();
        norm.iter().cloned().fold(0.0_f64, f64::max)
    }
}

/// Per-server aggregates distilled from a metrics JSONL dump.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRow {
    /// Device kind label (`"hdd"` / `"ssd"`), as recorded.
    pub kind: String,
    /// Sub-requests the device served (`pfs.server.sub_requests`).
    pub sub_requests: u64,
    /// Bytes the device served (`pfs.server.bytes`).
    pub bytes: u64,
    /// Median queueing delay upper bound, ns (`pfs.server.queue_wait_ns`).
    pub queue_p50_ns: Option<u64>,
    /// 99th-percentile queueing delay upper bound, ns.
    pub queue_p99_ns: Option<u64>,
    /// Median device service time upper bound, ns (`pfs.server.service_ns`).
    pub service_p50_ns: Option<u64>,
    /// Mean of the sampled utilisation series (`pfs.server.util`), if the
    /// run sampled.
    pub mean_util: Option<f64>,
    /// Peak of the sampled queue-depth series (`pfs.server.queue_depth`).
    pub peak_queue_depth: Option<f64>,
}

/// A metrics JSONL dump parsed into the per-server utilization/queue
/// summary that `harl-cli report` renders.
///
/// The parser is forgiving by design: it keeps whatever `pfs.server.*` /
/// `sim.*` lines it recognises and ignores everything else, so a dump from
/// a richer run (middleware metrics, spans, profiler gauges) still renders.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSummary {
    /// One row per server id.
    pub rows: BTreeMap<usize, MetricsRow>,
    /// Engine events dispatched (`sim.events.dispatched`), if present.
    pub events_dispatched: Option<u64>,
    /// Event-queue depth high-water mark (`sim.queue_depth.hwm`).
    pub queue_depth_hwm: Option<u64>,
    /// File requests issued, summed over `op` labels.
    pub requests_issued: u64,
    /// File requests completed, summed over `op` labels.
    pub requests_completed: u64,
    /// Number of span lines in the dump.
    pub spans: u64,
    /// Wall-time phase profile `(label, seconds)`, if the run profiled.
    pub profile: Vec<(String, f64)>,
}

impl MetricsSummary {
    /// Parse a metrics JSONL dump (as written by
    /// [`harl_simcore::MemoryRecorder::write_jsonl`]).
    ///
    /// Fails only on lines that are not valid JSON objects or that lack a
    /// `type` — unknown metric names are skipped, not rejected.
    pub fn parse(jsonl: &str) -> Result<MetricsSummary, String> {
        let mut out = MetricsSummary::default();
        for (idx, line) in jsonl.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v: Value = serde_json::from_str(line)
                .map_err(|e| format!("metrics line {}: invalid JSON: {e}", idx + 1))?;
            let ty = v
                .get("type")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("metrics line {}: missing \"type\"", idx + 1))?;
            if ty == "span" {
                out.spans += 1;
                continue;
            }
            let Some(name) = v.get("name").and_then(Value::as_str) else {
                continue;
            };
            out.absorb(ty, name, &v);
        }
        Ok(out)
    }

    fn absorb(&mut self, ty: &str, name: &str, v: &Value) {
        // Engine-level lines carry no server label.
        if name == registry::SIM_EVENTS_DISPATCHED.name {
            self.events_dispatched = v.get("value").and_then(Value::as_u64);
            return;
        }
        if name == registry::SIM_QUEUE_DEPTH_HWM.name {
            self.queue_depth_hwm = v.get("value").and_then(Value::as_f64).map(|x| x as u64);
            return;
        }
        if name == registry::PFS_REQUESTS_ISSUED.name {
            self.requests_issued += v.get("value").and_then(Value::as_u64).unwrap_or(0);
            return;
        }
        if name == registry::PFS_REQUESTS_COMPLETED.name {
            self.requests_completed += v.get("value").and_then(Value::as_u64).unwrap_or(0);
            return;
        }
        if let Some(rest) = name.strip_prefix("sim.profile.") {
            if let Some(secs) = v.get("value").and_then(Value::as_f64) {
                let label = rest.strip_suffix("_s").unwrap_or(rest).to_string();
                self.profile.push((label, secs));
            }
            return;
        }

        // Everything else of interest is per-server.
        let labels = v.get("labels");
        let Some(server) = labels
            .and_then(|l| l.get("server"))
            .and_then(Value::as_str)
            .and_then(|s| s.parse::<usize>().ok())
        else {
            return;
        };
        let row = self.rows.entry(server).or_default();
        if let Some(kind) = labels.and_then(|l| l.get("kind")).and_then(Value::as_str) {
            row.kind = kind.to_string();
        }
        let quantile = |q: &str| v.get(q).and_then(Value::as_u64);
        if name == registry::PFS_SERVER_SUB_REQUESTS.name {
            row.sub_requests = v.get("value").and_then(Value::as_u64).unwrap_or(0);
        } else if name == registry::PFS_SERVER_BYTES.name {
            row.bytes = v.get("value").and_then(Value::as_u64).unwrap_or(0);
        } else if name == registry::PFS_SERVER_QUEUE_WAIT_NS.name && ty == "histogram" {
            row.queue_p50_ns = quantile("p50");
            row.queue_p99_ns = quantile("p99");
        } else if name == registry::PFS_SERVER_SERVICE_NS.name && ty == "histogram" {
            row.service_p50_ns = quantile("p50");
        } else if name == registry::PFS_SERVER_UTIL.name && ty == "series" {
            if let Some(points) = v.get("points").and_then(Value::as_array) {
                let vals: Vec<f64> = points.iter().filter_map(|p| p[1].as_f64()).collect();
                if !vals.is_empty() {
                    row.mean_util = Some(vals.iter().sum::<f64>() / vals.len() as f64);
                }
            }
        } else if name == registry::PFS_SERVER_QUEUE_DEPTH.name && ty == "series" {
            if let Some(points) = v.get("points").and_then(Value::as_array) {
                row.peak_queue_depth = points
                    .iter()
                    .filter_map(|p| p[1].as_f64())
                    .fold(None, |acc: Option<f64>, x| {
                        Some(acc.map_or(x, |a| a.max(x)))
                    });
            }
        }
    }

    /// Render the summary as a fixed-width text table.
    ///
    /// The output is a pure function of the parsed dump (no wall-clock or
    /// locale input), so renderings of a deterministic run golden-diff
    /// byte-for-byte.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let fmt_opt_u64 = |x: Option<u64>| x.map_or("-".to_string(), |v| v.to_string());
        let fmt_util = |x: Option<f64>| x.map_or("-".to_string(), |v| format!("{:.1}%", v * 100.0));
        let fmt_depth = |x: Option<f64>| x.map_or("-".to_string(), |v| format!("{v:.0}"));
        let _ = writeln!(
            s,
            "requests: {} issued, {} completed; spans: {}",
            self.requests_issued, self.requests_completed, self.spans
        );
        if let Some(ev) = self.events_dispatched {
            let _ = writeln!(
                s,
                "engine: {} events dispatched, queue depth hwm {}",
                ev,
                fmt_opt_u64(self.queue_depth_hwm)
            );
        }
        let _ = writeln!(
            s,
            "{:>6} {:>5} {:>10} {:>14} {:>12} {:>12} {:>12} {:>8} {:>8}",
            "server",
            "kind",
            "subreqs",
            "bytes",
            "q_wait_p50",
            "q_wait_p99",
            "service_p50",
            "util",
            "peak_q"
        );
        for (id, row) in &self.rows {
            let _ = writeln!(
                s,
                "{:>6} {:>5} {:>10} {:>14} {:>12} {:>12} {:>12} {:>8} {:>8}",
                id,
                row.kind,
                row.sub_requests,
                row.bytes,
                fmt_opt_u64(row.queue_p50_ns),
                fmt_opt_u64(row.queue_p99_ns),
                fmt_opt_u64(row.service_p50_ns),
                fmt_util(row.mean_util),
                fmt_depth(row.peak_queue_depth),
            );
        }
        if !self.profile.is_empty() {
            let _ = writeln!(s, "phase profile (wall time):");
            for (label, secs) in &self.profile {
                let _ = writeln!(s, "  {label:<16} {secs:.6}s");
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with_busy(times_ms: &[u64]) -> SimReport {
        // (series unused by these tests)
        SimReport {
            makespan: SimNanos::from_secs(1),
            bytes_read: 1024 * 1024,
            bytes_written: 0,
            read_latency: OnlineStats::new(),
            write_latency: OnlineStats::new(),
            servers: times_ms
                .iter()
                .enumerate()
                .map(|(i, &ms)| ServerReport {
                    id: i,
                    kind: DeviceKind::Hdd,
                    disk_busy: SimNanos::from_millis(ms),
                    nic_busy: SimNanos::ZERO,
                    disk_jobs: 1,
                    disk_queued: SimNanos::ZERO,
                    bytes: 0,
                    busy_series: BusyBuckets::new(SimNanos::from_millis(100), 4),
                })
                .collect(),
            requests_completed: 1,
            client_finish: vec![],
        }
    }

    #[test]
    fn busy_buckets_split_across_boundaries() {
        let mut b = BusyBuckets::new(SimNanos(100), 4);
        b.record(SimNanos(50), SimNanos(250));
        assert_eq!(b.buckets[0], SimNanos(50));
        assert_eq!(b.buckets[1], SimNanos(100));
        assert_eq!(b.buckets[2], SimNanos(50));
        assert_eq!(b.total(), SimNanos(200));
        let u = b.utilisation();
        assert!((u[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn busy_buckets_overflow_goes_to_last() {
        let mut b = BusyBuckets::new(SimNanos(100), 2);
        b.record(SimNanos(500), SimNanos(700));
        assert_eq!(b.buckets[1], SimNanos(200));
        assert_eq!(b.total(), SimNanos(200));
    }

    #[test]
    fn busy_buckets_straddle_into_overflow() {
        // An interval that starts in range and runs far past the series end
        // must land its in-range part normally and absorb the whole tail in
        // the last bucket as one chunk (no per-width iteration past the end).
        let mut b = BusyBuckets::new(SimNanos(100), 3);
        b.record(SimNanos(150), SimNanos(1_000));
        assert_eq!(b.buckets[0], SimNanos::ZERO);
        assert_eq!(b.buckets[1], SimNanos(50)); // [150, 200)
        assert_eq!(b.buckets[2], SimNanos(800)); // [200, 1000) absorbed
        assert_eq!(b.total(), SimNanos(850));
        // The overflow bucket's utilisation is allowed to exceed 1.0.
        let u = b.utilisation();
        assert!((u[2] - 8.0).abs() < 1e-12);
        assert!(u[0] == 0.0 && (u[1] - 0.5).abs() < 1e-12);
        // Repeated overflow keeps accumulating in the same bucket.
        b.record(SimNanos(2_000), SimNanos(2_100));
        assert_eq!(b.buckets[2], SimNanos(900));
    }

    #[test]
    #[should_panic(expected = "degenerate bucket")]
    fn zero_width_rejected() {
        BusyBuckets::new(SimNanos::ZERO, 4);
    }

    #[test]
    fn throughput_simple() {
        let r = report_with_busy(&[1]);
        assert!((r.throughput_mib_s() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn normalisation_vs_min() {
        let r = report_with_busy(&[350, 100, 200]);
        let n = r.normalized_server_times();
        assert!((n[0] - 3.5).abs() < 1e-9);
        assert!((n[1] - 1.0).abs() < 1e-9);
        assert!((r.imbalance() - 3.5).abs() < 1e-9);
    }

    #[test]
    fn idle_servers_ignored_for_min() {
        let r = report_with_busy(&[0, 100, 300]);
        let n = r.normalized_server_times();
        assert_eq!(n[0], 0.0);
        assert!((n[2] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn all_idle_is_zeroes() {
        let r = report_with_busy(&[0, 0]);
        assert_eq!(r.normalized_server_times(), vec![0.0, 0.0]);
        assert_eq!(r.imbalance(), 0.0);
    }

    fn sample_jsonl() -> String {
        [
            r#"{"type":"counter","name":"pfs.requests.issued","labels":{"op":"read"},"value":3}"#,
            r#"{"type":"counter","name":"pfs.requests.issued","labels":{"op":"write"},"value":2}"#,
            r#"{"type":"counter","name":"pfs.requests.completed","labels":{"op":"read"},"value":3}"#,
            r#"{"type":"counter","name":"pfs.requests.completed","labels":{"op":"write"},"value":2}"#,
            r#"{"type":"counter","name":"sim.events.dispatched","labels":{},"value":120}"#,
            r#"{"type":"gauge","name":"sim.queue_depth.hwm","labels":{},"value":9.0}"#,
            r#"{"type":"counter","name":"pfs.server.sub_requests","labels":{"server":"0","kind":"hdd"},"value":40}"#,
            r#"{"type":"counter","name":"pfs.server.bytes","labels":{"server":"0","kind":"hdd"},"value":262144}"#,
            r#"{"type":"histogram","name":"pfs.server.queue_wait_ns","labels":{"server":"0","kind":"hdd"},"count":40,"p50":4095,"p95":65535,"p99":131071,"buckets":[[4095,30],[131071,10]]}"#,
            r#"{"type":"histogram","name":"pfs.server.service_ns","labels":{"server":"0","kind":"hdd"},"count":40,"p50":8191,"p95":16383,"p99":16383,"buckets":[[8191,40]]}"#,
            r#"{"type":"series","name":"pfs.server.util","labels":{"server":"0","kind":"hdd"},"points":[[5000000,0.5],[10000000,1.0]],"count":2}"#,
            r#"{"type":"series","name":"pfs.server.queue_depth","labels":{"server":"0","kind":"hdd"},"points":[[5000000,3.0],[10000000,7.0]],"count":2}"#,
            r#"{"type":"counter","name":"pfs.server.sub_requests","labels":{"server":"1","kind":"ssd"},"value":8}"#,
            r#"{"type":"span","kind":"request","id":0,"labels":{},"issued_ns":0,"completed_ns":10,"latency_ns":10,"hops":[]}"#,
        ]
        .join("\n")
    }

    #[test]
    fn metrics_summary_parses_jsonl() {
        let s = MetricsSummary::parse(&sample_jsonl()).expect("parses");
        assert_eq!(s.requests_issued, 5);
        assert_eq!(s.requests_completed, 5);
        assert_eq!(s.events_dispatched, Some(120));
        assert_eq!(s.queue_depth_hwm, Some(9));
        assert_eq!(s.spans, 1);
        assert_eq!(s.rows.len(), 2);
        let r0 = &s.rows[&0];
        assert_eq!(r0.kind, "hdd");
        assert_eq!(r0.sub_requests, 40);
        assert_eq!(r0.bytes, 262144);
        assert_eq!(r0.queue_p50_ns, Some(4095));
        assert_eq!(r0.queue_p99_ns, Some(131071));
        assert_eq!(r0.service_p50_ns, Some(8191));
        assert_eq!(r0.mean_util, Some(0.75));
        assert_eq!(r0.peak_queue_depth, Some(7.0));
        let r1 = &s.rows[&1];
        assert_eq!(r1.sub_requests, 8);
        assert_eq!(r1.mean_util, None, "server 1 was never sampled");
    }

    #[test]
    fn metrics_summary_render_is_stable() {
        let s = MetricsSummary::parse(&sample_jsonl()).expect("parses");
        let text = s.render();
        assert!(text.contains("requests: 5 issued, 5 completed; spans: 1"));
        assert!(text.contains("engine: 120 events dispatched, queue depth hwm 9"));
        assert!(text.contains("hdd"));
        assert!(text.contains("75.0%"));
        // Rendering twice yields identical bytes (golden-diffable).
        assert_eq!(text, s.render());
    }

    #[test]
    fn metrics_summary_rejects_garbage_lines() {
        assert!(MetricsSummary::parse("not json").is_err());
        assert!(MetricsSummary::parse(r#"{"no_type":1}"#).is_err());
        // Unknown-but-well-formed lines are skipped, blank lines ignored.
        let ok = MetricsSummary::parse(
            "\n{\"type\":\"counter\",\"name\":\"mw.region.requests\",\"labels\":{\"region\":\"0\"},\"value\":4}\n",
        )
        .expect("forgiving");
        assert_eq!(ok.rows.len(), 0);
    }

    #[test]
    fn metrics_summary_profile_lines() {
        let jsonl = r#"{"type":"gauge","name":"sim.profile.dispatch_s","labels":{},"value":0.25}"#;
        let s = MetricsSummary::parse(jsonl).expect("parses");
        assert_eq!(s.profile, vec![("dispatch".to_string(), 0.25)]);
        assert!(s.render().contains("phase profile"));
        assert!(s.render().contains("dispatch"));
    }
}
