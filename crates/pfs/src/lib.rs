//! # harl-pfs — a simulated hybrid parallel file system
//!
//! This crate stands in for the paper's OrangeFS deployment: a cluster of
//! heterogeneous file servers (HDD-backed *HServers* and SSD-backed
//! *SServers*), a metadata server, compute nodes, and files striped over
//! the servers round-robin with per-server stripe widths.
//!
//! The pieces:
//!
//! * [`geometry`] — round-robin varied-size striping math (closed-form
//!   per-server byte accounting; shared with the HARL cost model).
//! * [`layout`] — [`FileLayout`]: which servers hold a file, at what widths.
//! * [`cluster`] — [`ClusterConfig`]: servers, network, compute nodes.
//! * [`request`] — client programs: synchronous requests, concurrent
//!   batches, compute phases.
//! * [`sim`] — the discrete-event simulator: every request flows through
//!   MDS → NICs → storage devices, all FIFO queues, and the report captures
//!   per-server busy time (Fig. 1(a)), request latencies and throughput.
//!
//! ```
//! use harl_pfs::{simulate, ClusterConfig, FileLayout, ClientProgram, PhysRequest};
//! use harl_simcore::SimContext;
//!
//! let cluster = ClusterConfig::paper_default(); // 6 HServers + 2 SServers
//! let file = FileLayout::fixed(&cluster, 64 * 1024);
//! let mut prog = ClientProgram::new();
//! prog.push_request(PhysRequest::read(0, 0, 512 * 1024));
//! let report = simulate(&SimContext::new(), &cluster, &[file], &[prog]);
//! assert_eq!(report.requests_completed, 1);
//! ```

// missing_docs / rust_2018_idioms come from [workspace.lints]. The
// cfg_attr tier mirrors harl-lint's panic-hygiene rule at compile time
// for library code; unit tests compile under cfg(test) and stay exempt.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod cluster;
pub mod compat;
pub mod faults;
pub mod geometry;
pub mod layout;
pub mod report;
pub mod request;
pub(crate) mod shard;
pub mod sim;

pub use cluster::{ClusterConfig, ServerClass, ServerId};
pub use faults::{slowdown_at, Degradation};
pub use geometry::GroupLayout;
pub use layout::FileLayout;
pub use report::{BusyBuckets, MetricsRow, MetricsSummary, ServerReport, SimReport};
pub use request::{ClientProgram, FileId, PhysRequest, Step};
pub use sim::simulate;
