//! Thread-count determinism: the sharded fan-out pool is a wall-clock
//! knob, never a results knob. The same scenario must produce
//! byte-identical serialized reports and metrics JSONL at 1, 2 and 8
//! threads — including on a cluster wide enough that fan-outs actually
//! cross `PAR_FANOUT_MIN` and run on the scoped worker pool.

use harl_pfs::{simulate, ClientProgram, ClusterConfig, FileLayout, PhysRequest};
use harl_simcore::metrics::MemoryRecorder;
use harl_simcore::SimContext;
use std::sync::Arc;

const STRIPE: u64 = 64 * 1024;

/// Whole-stripe-round reads from `clients` concurrent clients — each
/// request fans out to every server, so a 256+-server cluster exercises
/// the pooled path (`PAR_FANOUT_MIN` is 256).
fn workload(cluster: &ClusterConfig, clients: usize, rpc: u64) -> (FileLayout, Vec<ClientProgram>) {
    let file = FileLayout::fixed(cluster, STRIPE);
    let span = STRIPE * cluster.server_count() as u64;
    let progs = (0..clients)
        .map(|c| {
            let mut p = ClientProgram::new();
            for i in 0..rpc {
                p.push_request(PhysRequest::read(0, (c as u64 * rpc + i) * span, span));
            }
            p
        })
        .collect();
    (file, progs)
}

/// Run at `threads`, returning (serialized report, metrics JSONL bytes).
fn run_at(cluster: &ClusterConfig, threads: usize) -> (String, Vec<u8>) {
    let (file, progs) = workload(cluster, 3, 4);
    let recorder = Arc::new(MemoryRecorder::new());
    let ctx = SimContext::recorded(recorder.clone()).with_threads(threads);
    let report = simulate(&ctx, cluster, &[file], &progs);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let mut jsonl = Vec::new();
    recorder.write_jsonl(&mut jsonl).expect("jsonl writes");
    (json, jsonl)
}

#[test]
fn small_cluster_reports_are_byte_identical_across_thread_counts() {
    let cluster = ClusterConfig::hybrid(6, 2);
    let base = run_at(&cluster, 1);
    for threads in [2, 8] {
        assert_eq!(base, run_at(&cluster, threads), "threads={threads}");
    }
}

#[test]
fn pooled_fanout_reports_are_byte_identical_across_thread_counts() {
    // 256 servers ⇒ whole-round fan-outs hit PAR_FANOUT_MIN and the
    // batch really runs on scoped worker threads at threads > 1.
    let cluster = ClusterConfig::hybrid(192, 64);
    let base = run_at(&cluster, 1);
    for threads in [2, 8] {
        assert_eq!(base, run_at(&cluster, threads), "threads={threads}");
    }
}
