//! Property tests: the closed-form striping geometry against a brute-force
//! byte-by-byte oracle, over arbitrary K-class layouts.

use harl_pfs::GroupLayout;
use proptest::prelude::*;

/// Oracle: walk the bytes (sampled sparsely for large ranges is not
/// acceptable for an oracle, so ranges are kept small).
fn brute_bytes(widths: &[u64], slot: usize, offset: u64, len: u64) -> u64 {
    let group: u64 = widths.iter().sum();
    let start: u64 = widths[..slot].iter().sum();
    let w = widths[slot];
    (offset..offset + len)
        .filter(|&x| {
            let r = x % group;
            r >= start && r < start + w
        })
        .count() as u64
}

prop_compose! {
    fn layout()(widths in prop::collection::vec(0u64..64, 1..6)) -> Vec<u64> {
        let mut w: Vec<u64> = widths.iter().map(|&x| x * 512).collect();
        if w.iter().all(|&x| x == 0) {
            w[0] = 512;
        }
        w
    }
}

proptest! {
    #[test]
    fn closed_form_equals_oracle(
        widths in layout(),
        offset in 0u64..100_000,
        len in 1u64..5_000,
    ) {
        let gl = GroupLayout::new(widths.clone());
        for slot in 0..widths.len() {
            prop_assert_eq!(
                gl.bytes_in_range(slot, offset, len),
                brute_bytes(&widths, slot, offset, len),
                "slot {} of {:?} at [{}, {})", slot, widths, offset, offset + len
            );
        }
    }

    #[test]
    fn split_is_partition(
        widths in layout(),
        offset in 0u64..(1 << 40),
        len in 1u64..(1 << 24),
    ) {
        let gl = GroupLayout::new(widths.clone());
        let split = gl.split(offset, len);
        let total: u64 = split.iter().map(|&(_, b)| b).sum();
        prop_assert_eq!(total, len);
        // Slots appear at most once, in order.
        for w in split.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
        // Zero-width slots never appear.
        for &(slot, _) in &split {
            prop_assert!(widths[slot] > 0);
        }
    }

    #[test]
    fn largest_fragment_bounded(
        widths in layout(),
        offset in 0u64..(1 << 30),
        len in 1u64..(1 << 20),
    ) {
        let gl = GroupLayout::new(widths.clone());
        for (slot, &width) in widths.iter().enumerate() {
            let frag = gl.largest_fragment(slot, offset, len);
            prop_assert!(frag <= width);
            prop_assert!(frag <= len);
            // A slot with bytes has a fragment and vice versa.
            let bytes = gl.bytes_in_range(slot, offset, len);
            prop_assert_eq!(frag == 0, bytes == 0);
        }
    }
}
