//! Property tests: Algorithm 2's result is the true grid minimum, for
//! arbitrary small workloads (brute-force verified), and the region
//! division invariants hold for adversarial inputs.

use harl_core::{
    optimize_region, server_loads, server_loads_scan, CostModelParams, MultiProfileModel,
    MultiProfileOptimizer, OptimizerConfig, RegionRequests, TraceRecord,
};
use harl_devices::OpKind;
use harl_pfs::ClusterConfig;
use harl_simcore::{SimContext, SimNanos};
use proptest::prelude::*;

fn model() -> CostModelParams {
    CostModelParams::from_cluster(&ClusterConfig::paper_default())
}

prop_compose! {
    fn small_workload()(
        sizes in prop::collection::vec(1u64..64, 1..12),
        op_read in any::<bool>(),
    ) -> Vec<TraceRecord> {
        let op = if op_read { OpKind::Read } else { OpKind::Write };
        let mut offset = 0;
        sizes.iter().enumerate().map(|(i, &s)| {
            let size = s * 8192;
            let r = TraceRecord {
                rank: 0, fd: 0, op, offset, size,
                timestamp: SimNanos::from_nanos(i as u64),
            };
            offset += size;
            r
        }).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// optimize_region returns the exact minimum of the candidate grid.
    #[test]
    fn optimizer_is_grid_optimal(records in small_workload()) {
        let m = model();
        let avg = (records.iter().map(|r| r.size).sum::<u64>()
            / records.len() as u64).max(1);
        let cfg = OptimizerConfig {
            step: 32 * 1024,
            max_grid_points: 64,
            max_requests_per_eval: records.len(),
            threads: 1,
        };
        let reqs = RegionRequests::new(&records, 0);
        let choice = optimize_region(&SimContext::new(), &m, &reqs, avg, &cfg, 0);

        // Brute force over the same candidate set.
        let step = cfg.effective_step(avg);
        let r_bar = avg.max(step).div_ceil(step) * step;
        let mut h = 0u64;
        while h <= r_bar {
            let mut s = h + step;
            while s <= r_bar + step {
                let cost: f64 = records.iter()
                    .map(|r| m.request_cost(r.offset, r.size, r.op, h, s))
                    .sum();
                prop_assert!(
                    cost >= choice.cost - 1e-12,
                    "candidate ({h}, {s}) cost {cost} beats chosen ({}, {}) cost {}",
                    choice.h(), choice.s(), choice.cost
                );
                s += step;
            }
            h += step;
        }
        // The single-HServer extreme too.
        let cost: f64 = records.iter()
            .map(|r| m.request_cost(r.offset, r.size, r.op, r_bar, 0))
            .sum();
        prop_assert!(cost >= choice.cost - 1e-12);
    }

    /// On a two-class cluster, the K-class coordinate descent and the
    /// paper's exhaustive K=2 grid agree: for arbitrary small workloads
    /// the descent cost lands within 5% of the grid minimum (it can stop
    /// at a nearby local optimum but never drifts), and the widths-form
    /// cost of the grid's own choice is bitwise the pair-form cost.
    #[test]
    fn descent_agrees_with_grid_on_two_classes(records in small_workload()) {
        let m = model();
        let avg = (records.iter().map(|r| r.size).sum::<u64>()
            / records.len() as u64).max(1);
        let cfg = OptimizerConfig {
            step: 32 * 1024,
            max_grid_points: 64,
            max_requests_per_eval: records.len(),
            threads: 1,
        };
        let reqs = RegionRequests::new(&records, 0);
        let choice = optimize_region(&SimContext::new(), &m, &reqs, avg, &cfg, 0);

        // Bitwise pair/widths agreement at the chosen point (tentpole
        // bit-identity: the widths form is the same arithmetic).
        let multi = MultiProfileModel::from(&m);
        for r in &records {
            let pair = m.request_cost(r.offset, r.size, r.op, choice.h(), choice.s());
            let widths = multi.request_cost(r.offset, r.size, r.op, &[choice.h(), choice.s()]);
            prop_assert_eq!(pair.to_bits(), widths.to_bits(),
                "pair {pair} vs widths {widths} at ({}, {})", choice.h(), choice.s());
        }

        let mut opt = MultiProfileOptimizer::new(multi);
        opt.step = cfg.step;
        opt.max_grid_points = cfg.max_grid_points;
        let sample: Vec<(u64, u64, OpKind)> =
            records.iter().map(|r| (r.offset, r.size, r.op)).collect();
        let (widths, cost) = opt.optimize(&sample, avg);
        prop_assert_eq!(widths.len(), 2);
        prop_assert!(
            cost <= choice.cost * 1.05 + 1e-9,
            "descent cost {cost} is >5% above grid minimum {g} (widths {widths:?} vs ({}, {}))",
            choice.h(), choice.s(), g = choice.cost
        );
        prop_assert!(
            choice.cost <= cost * 1.05 + 1e-9,
            "grid minimum {g} is >5% above descent cost {cost} — descent escaped the grid \
             candidate set (widths {widths:?} vs ({}, {}))",
            choice.h(), choice.s(), g = choice.cost
        );
    }

    /// Per-request loads shrink (weakly) in both s_m and m when the
    /// request shrinks from the right.
    #[test]
    fn loads_monotone_in_size(
        h in 1u64..64, s in 1u64..64,
        offset in 0u64..(1 << 28),
        size in 2u64..(1 << 22),
    ) {
        let (h, s) = (h * 4096, s * 4096);
        let big = server_loads(offset, size, 6, h, 2, s);
        let small = server_loads(offset, size / 2, 6, h, 2, s);
        prop_assert!(small.s_m <= big.s_m);
        prop_assert!(small.s_n <= big.s_n);
        prop_assert!(small.m <= big.m);
        prop_assert!(small.n <= big.n);
    }

    /// The O(1) closed form agrees exactly with the per-server scan for
    /// arbitrary geometry, including one-sided layouts (h == 0 / s == 0).
    #[test]
    fn closed_form_matches_scan(
        m_servers in 1usize..12, n_servers in 1usize..8,
        h in 0u64..48, s in 0u64..48,
        offset in 0u64..(1 << 28),
        size in 0u64..(1 << 22),
    ) {
        let (mut h, s) = (h * 4096, s * 4096);
        if m_servers as u64 * h + n_servers as u64 * s == 0 {
            h = 4096; // zero-capacity layouts panic by contract; skip them
        }
        let fast = server_loads(offset, size, m_servers, h, n_servers, s);
        let scan = server_loads_scan(offset, size, m_servers, h, n_servers, s);
        prop_assert_eq!(fast, scan);
    }

    /// Same agreement when both endpoints sit exactly on stripe, class-span
    /// or group boundaries — the degenerate fragments of the case analysis.
    #[test]
    fn closed_form_matches_scan_on_boundaries(
        m_servers in 1usize..8, n_servers in 1usize..4,
        h in 1u64..16, s in 1u64..16,
        start_stripe in 0u64..40,
        len_stripes in 0u64..40,
    ) {
        let (h, s) = (h * 4096, s * 4096);
        let group = m_servers as u64 * h + n_servers as u64 * s;
        // Walk the endpoints along every stripe edge of a few groups,
        // plus the exact class-span and group edges.
        let mut edges = vec![0u64];
        for g in 0..3u64 {
            let base = g * group;
            for i in 0..=m_servers as u64 {
                edges.push(base + i * h);
            }
            for j in 0..=n_servers as u64 {
                edges.push(base + m_servers as u64 * h + j * s);
            }
        }
        let offset = edges[(start_stripe as usize) % edges.len()];
        let size = edges[(len_stripes as usize) % edges.len()];
        let fast = server_loads(offset, size, m_servers, h, n_servers, s);
        let scan = server_loads_scan(offset, size, m_servers, h, n_servers, s);
        prop_assert_eq!(fast, scan);
    }
}
