//! Property and determinism tests for the plan cache stack: fingerprints
//! are byte-stable across thread counts, cache hits are bit-identical to
//! cold plans, and incremental re-planning with every region dirty equals
//! the full re-plan exactly.

use harl_core::{
    fingerprint_sorted, plan_file, CostModelParams, MultiProfileModel, OptimizerConfig, PlanReuse,
    RegionDivisionConfig, TraceRecord,
};
use harl_devices::OpKind;
use harl_pfs::ClusterConfig;
use harl_simcore::{SimContext, SimNanos};
use proptest::prelude::*;

fn model() -> MultiProfileModel {
    CostModelParams::from_cluster(&ClusterConfig::paper_default()).into()
}

prop_compose! {
    /// A multi-phase workload: a few phases of differing request size and
    /// op mix, laid out back to back (several Algorithm 1 regions).
    fn phased_workload()(
        phases in prop::collection::vec((1u64..24, any::<bool>(), 4u64..40), 1..5),
    ) -> (Vec<TraceRecord>, u64) {
        let mut records = Vec::new();
        let mut offset = 0u64;
        for (i, &(size_units, is_read, count)) in phases.iter().enumerate() {
            let size = size_units * 16 * 1024;
            let op = if is_read { OpKind::Read } else { OpKind::Write };
            for j in 0..count {
                records.push(TraceRecord {
                    rank: (j % 4) as u32,
                    fd: 0,
                    op,
                    offset,
                    size,
                    timestamp: SimNanos::from_nanos((i as u64) * 10_000 + j),
                });
                offset += size;
            }
        }
        let file_size = offset.max(1).next_multiple_of(4 * 1024 * 1024);
        (records, file_size)
    }
}

fn division() -> RegionDivisionConfig {
    RegionDivisionConfig {
        fixed_region_size: 4 * 1024 * 1024,
        ..RegionDivisionConfig::default()
    }
}

fn optimizer() -> OptimizerConfig {
    OptimizerConfig {
        max_requests_per_eval: 64,
        ..OptimizerConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Incremental re-planning under full dirtiness — an empty reuse table,
    /// so every region recomputes — must equal the full re-plan bitwise:
    /// same merged RST, and each per-region choice identical.
    #[test]
    fn all_dirty_incremental_equals_full_replan((records, file_size) in phased_workload()) {
        let m = model();
        let ctx = SimContext::new();
        let mut sorted = records;
        sorted.sort_by_key(|r| r.offset);
        let full = plan_file(&ctx, &m, &sorted, file_size, &division(), &optimizer(), None);
        let empty = PlanReuse::new();
        let dirty = plan_file(&ctx, &m, &sorted, file_size, &division(), &optimizer(), Some(&empty));
        prop_assert_eq!(&dirty.rst, &full.rst);
        prop_assert_eq!(dirty.reused, 0);

        // And a fully-warm table reproduces the same plan without running
        // a single grid search.
        let reuse: PlanReuse = dirty.region_plans.iter().cloned().collect();
        let warm = plan_file(&ctx, &m, &sorted, file_size, &division(), &optimizer(), Some(&reuse));
        prop_assert_eq!(&warm.rst, &full.rst);
        prop_assert_eq!(warm.planned, 0);
    }

    /// The fingerprint is a pure function of the trace: identical bytes at
    /// any thread budget, and insensitive to pre-sort record order.
    #[test]
    fn fingerprint_bytes_stable_across_thread_counts((records, file_size) in phased_workload()) {
        let m = model();
        let mut sorted = records.clone();
        sorted.sort_by_key(|r| r.offset);
        let reference = fingerprint_sorted(&sorted, file_size, &division(), &m);
        let reference_json = reference.canonical_json();
        for threads in [1usize, 2, 8] {
            // Thread budgets ride on the context; the fingerprint must not
            // observe them (it has no fan-out at all), and planning at any
            // budget leaves the trace — hence the fingerprint — unchanged.
            let ctx = SimContext::new().with_threads(threads);
            let planned = plan_file(&ctx, &m, &sorted, file_size, &division(), &optimizer(), None);
            prop_assert!(!planned.rst.is_empty());
            let fp = fingerprint_sorted(&sorted, file_size, &division(), &m);
            prop_assert_eq!(&fp, &reference);
            prop_assert_eq!(fp.canonical_json(), reference_json.clone());
        }
    }

    /// Planning itself stays thread-count invariant through the cache
    /// refactor, keys included.
    #[test]
    fn plan_file_thread_invariant((records, file_size) in phased_workload()) {
        let m = model();
        let mut sorted = records;
        sorted.sort_by_key(|r| r.offset);
        let empty = PlanReuse::new();
        let reference = plan_file(
            &SimContext::new().with_threads(1),
            &m, &sorted, file_size, &division(), &optimizer(), Some(&empty),
        );
        for threads in [2usize, 8] {
            let got = plan_file(
                &SimContext::new().with_threads(threads),
                &m, &sorted, file_size, &division(), &optimizer(), Some(&empty),
            );
            prop_assert_eq!(&got.rst, &reference.rst);
            prop_assert_eq!(&got.region_plans, &reference.region_plans);
        }
    }
}
