//! Layout policies: everything the paper's evaluation compares.
//!
//! A policy turns `(trace, file size, platform model)` into a
//! [`RegionStripeTable`] — the complete description of how the logical file
//! is laid out. Policies are class-count generic: each one plans per-class
//! stripe widths in `ClusterConfig::classes` order (the paper's two-tier
//! `(h, s)` pair is the `K = 2` case). Implemented policies:
//!
//! * [`FixedPolicy`] — the traditional scheme: one region, identical stripe
//!   size on every server ("64K" etc. in the paper's figures).
//! * [`RandomPolicy`] — the paper's "randomly-chosen stripe" strategy: a
//!   seeded random width per class from the grid.
//! * [`SegmentPolicy`] — the segment-level baseline of \[10\]: fixed-size
//!   regions, per-region *uniform* stripe chosen by the cost model
//!   (workload-aware but heterogeneity-blind).
//! * [`HarlPolicy`] — the paper's contribution: Algorithm 1 region
//!   division + Algorithm 2 per-region width optimisation + RST merge.

use crate::multiprofile::MultiProfileModel;
use crate::optimizer::{optimize_region, OptimizerConfig, RegionRequests};
use crate::region::RegionDivisionConfig;
use crate::rst::{RegionStripeTable, RstEntry};
use crate::trace::Trace;
use harl_simcore::{SimContext, SimRng};
use serde::{Deserialize, Serialize};

/// A data-layout policy: produces the RST describing a file's placement.
pub trait LayoutPolicy {
    /// Decide the layout for a file of `file_size` bytes given its trace.
    ///
    /// The [`SimContext`] supplies the metrics recorder for the planner's
    /// instrumentation and (when set) the thread-budget override applied
    /// on top of the policy's own [`OptimizerConfig::threads`].
    fn plan(&self, ctx: &SimContext, trace: &Trace, file_size: u64) -> RegionStripeTable;

    /// Short label for reports ("64K", "random#1", "HARL", …).
    fn label(&self) -> String;
}

/// Traditional fixed-size striping over all servers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FixedPolicy {
    /// The stripe size used on every server.
    pub stripe: u64,
    /// Number of server classes the table spans.
    pub classes: usize,
}

impl FixedPolicy {
    /// A two-tier fixed layout with the given stripe.
    pub fn new(stripe: u64) -> Self {
        FixedPolicy::uniform(stripe, 2)
    }

    /// A fixed layout with the given stripe across `classes` classes.
    pub fn uniform(stripe: u64, classes: usize) -> Self {
        assert!(stripe > 0, "fixed stripe must be positive");
        assert!(classes > 0, "fixed layout needs at least one class");
        FixedPolicy { stripe, classes }
    }
}

impl LayoutPolicy for FixedPolicy {
    fn plan(&self, _ctx: &SimContext, _trace: &Trace, file_size: u64) -> RegionStripeTable {
        RegionStripeTable::uniform(file_size, vec![self.stripe; self.classes])
    }

    fn label(&self) -> String {
        format!("{}K", self.stripe / 1024)
    }
}

/// Randomly chosen stripe sizes (the paper's second baseline).
///
/// Draws one width per class independently from the 4 KiB grid within
/// `[min_stripe, max_stripe]`, deterministic per seed. At `K = 2` the
/// draw order is `h` then `s`, matching the original two-tier policy
/// bit for bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomPolicy {
    /// RNG seed (different seeds give the figures' "random#i" variants).
    pub seed: u64,
    /// Smallest stripe the draw may pick.
    pub min_stripe: u64,
    /// Largest stripe the draw may pick.
    pub max_stripe: u64,
    /// Grid step for the draw.
    pub step: u64,
    /// Number of server classes to draw widths for.
    pub classes: usize,
}

impl RandomPolicy {
    /// A two-tier random policy over the paper's stripe range
    /// (16 KiB – 2 MiB).
    pub fn new(seed: u64) -> Self {
        RandomPolicy::for_classes(seed, 2)
    }

    /// A random policy drawing one width per class.
    pub fn for_classes(seed: u64, classes: usize) -> Self {
        assert!(classes > 0, "random layout needs at least one class");
        RandomPolicy {
            seed,
            min_stripe: 16 * 1024,
            max_stripe: 2 * 1024 * 1024,
            step: 4 * 1024,
            classes,
        }
    }

    /// The widths this policy draws (exposed for reporting).
    pub fn draw_widths(&self) -> Vec<u64> {
        let mut rng = SimRng::derived(self.seed, "random-policy");
        let lo = self.min_stripe / self.step;
        let hi = self.max_stripe / self.step;
        (0..self.classes)
            .map(|_| rng.uniform_u64(lo, hi) * self.step)
            .collect()
    }

    /// The two-tier pair this policy draws — `draw_widths()` truncated to
    /// the first two classes (reporting shorthand).
    pub fn draw(&self) -> (u64, u64) {
        let w = self.draw_widths();
        (
            w.first().copied().unwrap_or(0),
            w.get(1).copied().unwrap_or(0),
        )
    }
}

impl LayoutPolicy for RandomPolicy {
    fn plan(&self, _ctx: &SimContext, _trace: &Trace, file_size: u64) -> RegionStripeTable {
        RegionStripeTable::uniform(file_size, self.draw_widths())
    }

    fn label(&self) -> String {
        let parts: Vec<String> = self
            .draw_widths()
            .iter()
            .map(|w| format!("{}K", w / 1024))
            .collect();
        format!("rand{}", parts.join("-"))
    }
}

/// Segment-level baseline \[10\]: fixed-size regions, per-region uniform
/// stripe picked by the cost model — adapts to the workload but treats all
/// servers as identical.
#[derive(Debug, Clone)]
pub struct SegmentPolicy {
    /// Platform model (used with uniform-width candidates only).
    pub model: MultiProfileModel,
    /// Segment (region) size, e.g. 64 MiB.
    pub segment_size: u64,
    /// Grid configuration.
    pub optimizer: OptimizerConfig,
}

impl LayoutPolicy for SegmentPolicy {
    fn plan(&self, _ctx: &SimContext, trace: &Trace, file_size: u64) -> RegionStripeTable {
        let sorted = trace.sorted_by_offset();
        let classes = self.model.class_count();
        let mut entries = Vec::new();
        let mut offset = 0u64;
        while offset < file_size {
            let len = self.segment_size.min(file_size - offset);
            // Requests falling in this segment.
            let lo = sorted.partition_point(|r| r.offset < offset);
            let hi = sorted.partition_point(|r| r.offset < offset + len);
            let segment = &sorted[lo..hi];
            let avg = if segment.is_empty() {
                64 * 1024
            } else {
                (segment.iter().map(|r| r.size).sum::<u64>() / segment.len() as u64).max(1)
            };
            // Uniform-stripe search: the same width on every class.
            let step = self.optimizer.step;
            let r_bar = avg.max(step).div_ceil(step) * step;
            let reqs = RegionRequests::new(segment, offset);
            let cap = self.optimizer.max_requests_per_eval;
            let mut best: Option<(u64, f64)> = None;
            for k in (step..=r_bar).step_by(step as usize) {
                let cost = reqs.cost_of_widths(&self.model, &vec![k; classes], cap);
                best = Some(match best {
                    None => (k, cost),
                    Some(b) if cost < b.1 => (k, cost),
                    Some(b) => b,
                });
            }
            // `step..=r_bar` holds at least `step` (r_bar >= step), so the
            // grid always yields a candidate; the fallback is unreachable.
            let (stripe, _) = best.unwrap_or((step, 0.0));
            entries.push(RstEntry::new(offset, len, vec![stripe; classes]));
            offset += len;
        }
        let mut table = RegionStripeTable::new(entries);
        table.merge_adjacent();
        table
    }

    fn label(&self) -> String {
        format!("segment{}M", self.segment_size >> 20)
    }
}

/// Server-level adaptive baseline \[22\]: one width vector for the *whole
/// file* — heterogeneity-aware but blind to workload changes along the
/// file. Equivalent to HARL with a single region; the gap between the two
/// is exactly what region-level adaptation buys (the abl-region ablation).
#[derive(Debug, Clone)]
pub struct ServerLevelPolicy {
    /// Platform model.
    pub model: MultiProfileModel,
    /// Grid configuration.
    pub optimizer: OptimizerConfig,
}

impl ServerLevelPolicy {
    /// Server-level policy with default optimizer settings.
    pub fn new(model: impl Into<MultiProfileModel>) -> Self {
        ServerLevelPolicy {
            model: model.into(),
            optimizer: OptimizerConfig::default(),
        }
    }
}

impl LayoutPolicy for ServerLevelPolicy {
    fn plan(&self, ctx: &SimContext, trace: &Trace, file_size: u64) -> RegionStripeTable {
        let sorted = trace.sorted_by_offset();
        let avg = if sorted.is_empty() {
            64 * 1024
        } else {
            (sorted.iter().map(|r| r.size).sum::<u64>() / sorted.len() as u64).max(1)
        };
        let reqs = RegionRequests::new(&sorted, 0);
        let cfg = OptimizerConfig {
            threads: ctx.threads_or(self.optimizer.threads),
            ..self.optimizer.clone()
        };
        let choice = optimize_region(ctx, &self.model, &reqs, avg, &cfg, 0);
        RegionStripeTable::uniform(file_size, choice.widths)
    }

    fn label(&self) -> String {
        "server-level".to_string()
    }
}

/// The paper's HARL scheme.
#[derive(Debug, Clone)]
pub struct HarlPolicy {
    /// Platform model (ideally calibrated — see
    /// [`crate::model::CostModelParams::from_cluster_calibrated`]).
    pub model: MultiProfileModel,
    /// Region-division tuning (Algorithm 1).
    pub division: RegionDivisionConfig,
    /// Grid-search tuning (Algorithm 2).
    pub optimizer: OptimizerConfig,
}

impl HarlPolicy {
    /// HARL with default tuning for the given model.
    pub fn new(model: impl Into<MultiProfileModel>) -> Self {
        HarlPolicy {
            model: model.into(),
            division: RegionDivisionConfig::default(),
            optimizer: OptimizerConfig::default(),
        }
    }
}

impl LayoutPolicy for HarlPolicy {
    fn plan(&self, ctx: &SimContext, trace: &Trace, file_size: u64) -> RegionStripeTable {
        let sorted = trace.sorted_by_offset();
        // The shared whole-file pipeline; `reuse = None` is the exact
        // pre-cache planning path (no fingerprinting, no key computation).
        crate::cache::plan_file(
            ctx,
            &self.model,
            &sorted,
            file_size,
            &self.division,
            &self.optimizer,
            None,
        )
        .rst
    }

    fn label(&self) -> String {
        "HARL".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CostModelParams;
    use crate::trace::TraceRecord;
    use harl_devices::OpKind;
    use harl_pfs::ClusterConfig;
    use harl_simcore::SimNanos;

    const KB: u64 = 1024;
    const MB: u64 = 1024 * 1024;

    fn uniform_trace(n: u64, size: u64, op: OpKind) -> Trace {
        Trace::from_records(
            (0..n)
                .map(|i| TraceRecord {
                    rank: (i % 16) as u32,
                    fd: 0,
                    op,
                    offset: i * size,
                    size,
                    timestamp: SimNanos::ZERO,
                })
                .collect(),
        )
    }

    fn model() -> CostModelParams {
        CostModelParams::from_cluster(&ClusterConfig::paper_default())
    }

    #[test]
    fn fixed_policy_single_region() {
        let t = uniform_trace(8, 512 * KB, OpKind::Read);
        let rst = FixedPolicy::new(64 * KB).plan(&SimContext::new(), &t, 16 * MB);
        assert_eq!(rst.len(), 1);
        assert_eq!(rst.entries()[0].h(), 64 * KB);
        assert_eq!(rst.entries()[0].s(), 64 * KB);
        assert_eq!(FixedPolicy::new(64 * KB).label(), "64K");
    }

    #[test]
    fn fixed_policy_spans_any_class_count() {
        let t = Trace::new();
        let rst = FixedPolicy::uniform(64 * KB, 3).plan(&SimContext::new(), &t, 16 * MB);
        assert_eq!(rst.entries()[0].widths(), &[64 * KB, 64 * KB, 64 * KB]);
    }

    #[test]
    fn random_policy_is_deterministic_per_seed() {
        let t = Trace::new();
        let a = RandomPolicy::new(7).plan(&SimContext::new(), &t, MB);
        let b = RandomPolicy::new(7).plan(&SimContext::new(), &t, MB);
        assert_eq!(a, b);
        let c = RandomPolicy::new(8).plan(&SimContext::new(), &t, MB);
        assert!(
            a.entries()[0].h() != c.entries()[0].h() || a.entries()[0].s() != c.entries()[0].s(),
            "different seeds should (almost surely) differ"
        );
    }

    #[test]
    fn random_policy_respects_range() {
        for seed in 0..50 {
            let (h, s) = RandomPolicy::new(seed).draw();
            assert!((16 * KB..=2 * MB).contains(&h));
            assert!((16 * KB..=2 * MB).contains(&s));
            assert_eq!(h % (4 * KB), 0);
            assert_eq!(s % (4 * KB), 0);
        }
    }

    #[test]
    fn random_policy_widths_prefix_matches_two_tier_draw() {
        // A K-class draw starts with the exact same RNG sequence as the
        // two-tier draw: existing seeds keep their (h, s) pair.
        for seed in 0..20 {
            let (h, s) = RandomPolicy::new(seed).draw();
            let w = RandomPolicy::for_classes(seed, 3).draw_widths();
            assert_eq!((w[0], w[1]), (h, s), "seed {seed}");
            assert!((16 * KB..=2 * MB).contains(&w[2]));
        }
    }

    #[test]
    fn harl_uniform_workload_yields_one_region() {
        let t = uniform_trace(128, 512 * KB, OpKind::Read);
        let policy = HarlPolicy::new(model());
        let rst = policy.plan(&SimContext::new(), &t, 128 * 512 * KB);
        assert_eq!(rst.len(), 1, "uniform workload should merge to 1 region");
        let e = &rst.entries()[0];
        assert!(e.s() > e.h(), "SServers must get the larger stripe");
    }

    #[test]
    fn harl_multiphase_workload_yields_distinct_regions() {
        // Two phases: small requests then large requests.
        let mut records = Vec::new();
        for i in 0..64u64 {
            records.push(TraceRecord {
                rank: 0,
                fd: 0,
                op: OpKind::Read,
                offset: i * 128 * KB,
                size: 128 * KB,
                timestamp: SimNanos::ZERO,
            });
        }
        let boundary = 64 * 128 * KB;
        for i in 0..64u64 {
            records.push(TraceRecord {
                rank: 0,
                fd: 0,
                op: OpKind::Read,
                offset: boundary + i * MB,
                size: MB,
                timestamp: SimNanos::ZERO,
            });
        }
        let file_size = boundary + 64 * MB;
        let mut policy = HarlPolicy::new(model());
        policy.division.fixed_region_size = 4 * MB;
        let rst = policy.plan(&SimContext::new(), &Trace::from_records(records), file_size);
        assert!(rst.len() >= 2, "expected per-phase regions, got {rst:?}");
        // The small-request phase should leans toward SServers more than
        // the large-request phase (smaller or zero h).
        let first = &rst.entries()[0];
        let last = rst.entries().last().unwrap();
        assert!(
            first.h() < last.h() || first.s() < last.s(),
            "phases should get different layouts: {first:?} vs {last:?}"
        );
    }

    #[test]
    fn harl_plan_deterministic_across_thread_counts() {
        // Region-level fan-out must never change the planned table: a
        // multi-phase trace (several regions) planned with 1, 2, 3 and 8
        // threads yields bit-identical entries.
        let mut records = Vec::new();
        for phase in 0..8u64 {
            let base = phase * 16 * MB;
            let size = (phase % 4 + 1) * 128 * KB;
            for i in 0..32u64 {
                records.push(TraceRecord {
                    rank: (i % 4) as u32,
                    fd: 0,
                    op: if phase % 2 == 0 {
                        OpKind::Read
                    } else {
                        OpKind::Write
                    },
                    offset: base + i * size,
                    size,
                    timestamp: SimNanos::from_nanos(phase * 1000 + i),
                });
            }
        }
        let trace = Trace::from_records(records);
        let file_size = 8 * 16 * MB;
        let mut policy = HarlPolicy::new(model());
        policy.division.fixed_region_size = 4 * MB;
        policy.optimizer.threads = 1;
        let reference = policy.plan(&SimContext::new(), &trace, file_size);
        assert!(reference.len() > 1, "test needs several regions");
        for threads in [2, 3, 8] {
            policy.optimizer.threads = threads;
            let got = policy.plan(&SimContext::new(), &trace, file_size);
            assert_eq!(
                got.entries(),
                reference.entries(),
                "plan changed with {threads} threads"
            );
        }
    }

    #[test]
    fn harl_beats_fixed_under_its_own_model() {
        // Internal consistency: HARL's plan must cost no more than any
        // fixed plan under the cost model it optimised against.
        let m = model();
        let t = uniform_trace(64, 512 * KB, OpKind::Read);
        let file_size = 64 * 512 * KB;
        let harl = HarlPolicy::new(m.clone()).plan(&SimContext::new(), &t, file_size);
        let he = &harl.entries()[0];
        let sorted = t.sorted_by_offset();
        let harl_cost: f64 = sorted
            .iter()
            .map(|r| m.request_cost(r.offset, r.size, r.op, he.h(), he.s()))
            .sum();
        for stripe in [16 * KB, 64 * KB, 256 * KB, MB] {
            let fixed_cost: f64 = sorted
                .iter()
                .map(|r| m.request_cost(r.offset, r.size, r.op, stripe, stripe))
                .sum();
            assert!(
                harl_cost <= fixed_cost + 1e-12,
                "HARL cost {harl_cost} beaten by fixed {stripe}: {fixed_cost}"
            );
        }
    }

    #[test]
    fn segment_policy_uniform_stripes() {
        let t = uniform_trace(64, 512 * KB, OpKind::Read);
        let policy = SegmentPolicy {
            model: model().into(),
            segment_size: 8 * MB,
            optimizer: OptimizerConfig {
                threads: 1,
                ..OptimizerConfig::default()
            },
        };
        let rst = policy.plan(&SimContext::new(), &t, 32 * MB);
        for e in rst.entries() {
            assert_eq!(e.h(), e.s(), "segment-level layout is heterogeneity-blind");
        }
        assert_eq!(rst.file_size(), 32 * MB);
    }

    #[test]
    fn server_level_is_single_region_varied() {
        let mut records = Vec::new();
        for i in 0..32u64 {
            records.push(TraceRecord {
                rank: 0,
                fd: 0,
                op: OpKind::Read,
                offset: i * 128 * KB,
                size: 128 * KB,
                timestamp: SimNanos::ZERO,
            });
        }
        let boundary = 32 * 128 * KB;
        for i in 0..32u64 {
            records.push(TraceRecord {
                rank: 0,
                fd: 0,
                op: OpKind::Read,
                offset: boundary + i * MB,
                size: MB,
                timestamp: SimNanos::ZERO,
            });
        }
        let trace = Trace::from_records(records);
        let rst =
            ServerLevelPolicy::new(model()).plan(&SimContext::new(), &trace, boundary + 32 * MB);
        // One region for the whole file, but stripes differ per class.
        assert_eq!(rst.len(), 1);
        let e = &rst.entries()[0];
        assert!(e.s() > e.h(), "server-level must still favour SServers");
    }

    #[test]
    fn labels() {
        assert_eq!(HarlPolicy::new(model()).label(), "HARL");
        let seg = SegmentPolicy {
            model: model().into(),
            segment_size: 64 * MB,
            optimizer: OptimizerConfig::default(),
        };
        assert_eq!(seg.label(), "segment64M");
    }
}
