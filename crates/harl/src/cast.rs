//! Audited integer conversions for the cost model.
//!
//! The Sec. III-D cost model (model.rs, optimizer.rs, analysis.rs) is held
//! to harl-lint's `cast-hygiene` rule: no bare `as` integer casts, because
//! `as` silently wraps on narrowing and silently reinterprets on sign
//! changes. Every conversion the model needs goes through one of these
//! helpers instead, each with an explicit policy: lossless by `From`,
//! or saturating at the type bounds.
//!
//! Saturation never fires in practice — the model documents that byte
//! quantities stay below 2^63 (see `class_span_loads`) — so for all
//! in-domain values these are bit-identical to the casts they replace;
//! the point is that the out-of-domain behaviour is pinned and named
//! rather than target-dependent wrapping.
//!
//! Float→int conversion appears once (display rounding in analysis.rs)
//! and uses Rust's saturating float casts explicitly. `usize as f64` /
//! `u64 as f64` casts remain bare in the model: quantities below 2^53
//! convert exactly, and harl-lint exempts `as f64` for that reason.

/// Widen `usize` to `u64`. Lossless on every supported target (Rust does
/// not ship `usize` wider than 64 bits with std).
#[inline]
pub(crate) fn usize_to_u64(x: usize) -> u64 {
    u64::try_from(x).unwrap_or(u64::MAX)
}

/// Narrow `u64` to `usize`, saturating at `usize::MAX` (lossless on
/// 64-bit targets).
#[inline]
pub(crate) fn u64_to_usize(x: u64) -> usize {
    usize::try_from(x).unwrap_or(usize::MAX)
}

/// Reinterpret `u64` as `i64`, saturating at `i64::MAX`. The model's
/// signed index arithmetic (`class_span_loads`) documents its < 2^63
/// domain, so this is exact in-domain.
#[inline]
pub(crate) fn u64_to_i64(x: u64) -> i64 {
    i64::try_from(x).unwrap_or(i64::MAX)
}

/// Reinterpret `i64` as `u64`, clamping negatives to zero. Used where a
/// signed intermediate (a count or load) is non-negative by construction.
#[inline]
pub(crate) fn i64_to_u64(x: i64) -> u64 {
    u64::try_from(x).unwrap_or(0)
}

/// Narrow `i64` to `usize`, clamping negatives to zero.
#[inline]
pub(crate) fn i64_to_usize(x: i64) -> usize {
    usize::try_from(x).unwrap_or(0)
}

/// Widen `usize` to `i64`, saturating at `i64::MAX`.
#[inline]
pub(crate) fn usize_to_i64(x: usize) -> i64 {
    i64::try_from(x).unwrap_or(i64::MAX)
}

/// Truncate a non-negative `f64` to `u64` for display. Rust's float→int
/// `as` saturates at the bounds (NaN → 0), which is exactly the wanted
/// behaviour; the cast lives here so the model files stay free of bare
/// casts.
#[inline]
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
pub(crate) fn f64_to_u64(x: f64) -> u64 {
    x as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_in_domain() {
        assert_eq!(usize_to_u64(12_345), 12_345);
        assert_eq!(u64_to_usize(12_345), 12_345);
        assert_eq!(u64_to_i64(1 << 62), 1 << 62);
        assert_eq!(i64_to_u64(1 << 62), 1 << 62);
        assert_eq!(i64_to_usize(42), 42);
        assert_eq!(usize_to_i64(42), 42);
    }

    #[test]
    fn saturation_is_pinned() {
        assert_eq!(u64_to_i64(u64::MAX), i64::MAX);
        assert_eq!(i64_to_u64(-1), 0);
        assert_eq!(i64_to_usize(-7), 0);
        assert_eq!(usize_to_i64(usize::MAX), i64::MAX);
    }

    #[test]
    fn float_rounding_saturates() {
        assert_eq!(f64_to_u64(3.7), 3);
        assert_eq!(f64_to_u64(-1.0), 0);
        assert_eq!(f64_to_u64(f64::NAN), 0);
    }
}
