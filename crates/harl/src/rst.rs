//! The Region Stripe Table (RST) — paper Sec. III-E, Fig. 6.
//!
//! The RST records, per file region, the optimal stripe width on *each
//! server class* of the cluster (`widths[k]` is the stripe size on class
//! `k`, in `ClusterConfig::classes` order). The paper's two-tier layout is
//! the `K = 2` special case — `widths[0]` is the HServer stripe size and
//! `widths[1]` the SServer stripe size — and serialises in the legacy
//! `(h, s)` form so tables written by older builds load unchanged. It is
//! consulted by the metadata server during placement and by the middleware
//! to route each request to its region's physical file. Two paper
//! behaviours are implemented:
//!
//! * *"if adjacent regions have the same optimal stripe sizes, the two
//!   regions are combined into a larger region"* — [`RegionStripeTable::merge_adjacent`];
//! * the RST is persisted next to the application (JSON here) and loaded
//!   at startup — [`RegionStripeTable::save_to_path`] /
//!   [`RegionStripeTable::load_from_path`].

use crate::errors::LoadError;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// One row of the RST (paper Fig. 6: region #, file offset, one stripe
/// size per server class — plus the region length, which Fig. 6 leaves
/// implicit in the next row's offset).
///
/// Rows are constructed through [`RstEntry::new`] (or the legacy two-tier
/// [`RstEntry::two`](crate::compat)); the widths vector is not directly
/// assignable so every row goes through the same shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RstEntry {
    /// First byte of the region in the logical file.
    pub offset: u64,
    /// Region length in bytes.
    pub len: u64,
    /// Per-class stripe sizes (0 ⇒ the class holds none of this region).
    widths: Vec<u64>,
}

impl RstEntry {
    /// Build a row from per-class stripe widths.
    pub fn new(offset: u64, len: u64, widths: Vec<u64>) -> Self {
        RstEntry {
            offset,
            len,
            widths,
        }
    }

    /// One past the last byte of the region.
    #[inline]
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }

    /// Stripe width per server class, in `ClusterConfig::classes` order.
    #[inline]
    pub fn widths(&self) -> &[u64] {
        &self.widths
    }

    /// Stripe width of one class (0 for classes past the row's tier count,
    /// so a two-tier row reads as zero on a hypothetical third class).
    #[inline]
    pub fn width(&self, class: usize) -> u64 {
        self.widths.get(class).copied().unwrap_or(0)
    }

    /// Number of server classes this row stripes over.
    #[inline]
    pub fn classes(&self) -> usize {
        self.widths.len()
    }
}

// Hand-written serde: the two-class row keeps the paper-era `(h, s)` JSON
// shape byte-for-byte (committed goldens and on-disk tables predate the
// widths vector); any other class count serialises the widths array.
impl Serialize for RstEntry {
    fn serialize(&self) -> serde::Value {
        let mut map = serde::Map::new();
        map.insert("offset".to_string(), self.offset.serialize());
        map.insert("len".to_string(), self.len.serialize());
        if let [h, s] = self.widths.as_slice() {
            map.insert("h".to_string(), h.serialize());
            map.insert("s".to_string(), s.serialize());
        } else {
            map.insert("widths".to_string(), self.widths.serialize());
        }
        serde::Value::Object(map)
    }
}

impl Deserialize for RstEntry {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        let map = v
            .as_object()
            .ok_or_else(|| serde::Error::expected("object", "RstEntry"))?;
        let field = |name: &str| -> Result<u64, serde::Error> {
            map.get(name)
                .ok_or_else(|| serde::Error::missing_field(name, "RstEntry"))?
                .as_u64()
                .ok_or_else(|| serde::Error::expected("unsigned integer", "RstEntry"))
        };
        let offset = field("offset")?;
        let len = field("len")?;
        let widths = match map.get("widths") {
            Some(w) => {
                if map.contains_key("h") || map.contains_key("s") {
                    return Err(serde::Error::custom(
                        "RST row mixes `widths` with legacy `h`/`s` keys",
                    ));
                }
                Vec::<u64>::deserialize(w)?
            }
            None => vec![field("h")?, field("s")?],
        };
        Ok(RstEntry::new(offset, len, widths))
    }
}

/// The full table: entries sorted by offset, tiling `[0, file_size)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionStripeTable {
    entries: Vec<RstEntry>,
}

impl RegionStripeTable {
    /// Build from entries, validating the tiling.
    ///
    /// # Panics
    /// Panics if entries are empty, unsorted, overlapping, gapped, not
    /// starting at 0, or any entry has all-zero widths, zero length, or a
    /// class count differing from row 0's.
    // Documented-precondition panic, allowlisted in lint.allow.toml:
    // fallible callers (tables read from disk) use try_new/load_from_path.
    #[allow(clippy::panic)]
    pub fn new(entries: Vec<RstEntry>) -> Self {
        Self::try_new(entries).unwrap_or_else(|reason| panic!("{reason}"))
    }

    /// Build from entries, reporting a validation failure instead of
    /// panicking — the load path for tables read from disk.
    pub fn try_new(entries: Vec<RstEntry>) -> Result<Self, String> {
        if entries.is_empty() {
            return Err("RST must have at least one region".into());
        }
        if entries[0].offset != 0 {
            return Err(format!(
                "RST must start at offset 0, first region starts at {}",
                entries[0].offset
            ));
        }
        let classes = entries[0].classes();
        for (i, e) in entries.iter().enumerate() {
            if e.len == 0 {
                return Err(format!("zero-length RST region at {} (row {i})", e.offset));
            }
            if e.widths.iter().all(|&w| w == 0) {
                return Err(format!(
                    "RST region at {} (row {i}) has no capacity",
                    e.offset
                ));
            }
            if e.classes() != classes {
                return Err(format!(
                    "RST rows disagree on class count: row {i} has {} classes but row 0 has {classes}",
                    e.classes()
                ));
            }
        }
        for (i, w) in entries.windows(2).enumerate() {
            if w[0].end() != w[1].offset {
                return Err(format!(
                    "RST regions must tile contiguously: row {i} ends at {} but row {} starts at {}",
                    w[0].end(),
                    i + 1,
                    w[1].offset
                ));
            }
        }
        Ok(RegionStripeTable { entries })
    }

    /// A single-region table covering `[0, file_size)` — what a
    /// traditional fixed-stripe layout looks like in RST form.
    pub fn uniform(file_size: u64, widths: Vec<u64>) -> Self {
        RegionStripeTable::new(vec![RstEntry::new(0, file_size, widths)])
    }

    /// The rows.
    pub fn entries(&self) -> &[RstEntry] {
        &self.entries
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Never true (construction requires ≥ 1 region); provided for API
    /// completeness alongside [`len`](Self::len).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of server classes every row stripes over.
    pub fn classes(&self) -> usize {
        self.entries.first().map_or(0, RstEntry::classes)
    }

    /// Total bytes covered.
    pub fn file_size(&self) -> u64 {
        self.entries.last().map_or(0, |e| e.end())
    }

    /// Replace one row's widths in place (re-plan adoption). The region
    /// geometry (offset/len) is untouched, so the tiling stays valid.
    ///
    /// # Panics
    /// Panics if the new widths are all zero or change the class count —
    /// the same invariants [`try_new`](Self::try_new) enforces.
    // Documented-precondition panic, same contract as new().
    #[allow(clippy::panic)]
    pub fn set_region_widths(&mut self, region: usize, widths: Vec<u64>) {
        if widths.iter().all(|&w| w == 0) {
            panic!("RST region at row {region} would have no capacity");
        }
        if widths.len() != self.classes() {
            panic!(
                "RST rows disagree on class count: row {region} would have {} classes but the table has {}",
                widths.len(),
                self.classes()
            );
        }
        self.entries[region].widths = widths;
    }

    /// Apply a batch of per-region width updates in one pass, in the given
    /// (canonical) order. Updates whose widths equal the row's current
    /// widths are skipped as no-ops; the return value is the number of
    /// rows actually rewritten. This is the planning service's tick-time
    /// apply: per-tenant churn is coalesced upstream so the table is
    /// touched O(dirty regions) times, not O(tenants × regions).
    ///
    /// # Panics
    /// Panics on the same invariant violations as
    /// [`set_region_widths`](Self::set_region_widths) (all-zero widths or
    /// a class-count change).
    pub fn apply_batch(&mut self, updates: &[(usize, Vec<u64>)]) -> usize {
        let mut applied = 0;
        for (region, widths) in updates {
            if self.entries[*region].widths() == widths.as_slice() {
                continue;
            }
            self.set_region_widths(*region, widths.clone());
            applied += 1;
        }
        applied
    }

    /// Index of the region containing `offset`.
    ///
    /// Offsets past the end fall into the last region (files can grow; the
    /// tail region's layout extends).
    pub fn region_of(&self, offset: u64) -> usize {
        match self.entries.binary_search_by(|e| {
            if offset < e.offset {
                std::cmp::Ordering::Greater
            } else if offset >= e.end() {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(i) => i,
            Err(_) => self.entries.len() - 1,
        }
    }

    /// The entry containing `offset`.
    pub fn lookup(&self, offset: u64) -> &RstEntry {
        &self.entries[self.region_of(offset)]
    }

    /// Split a logical request `[offset, offset+len)` into per-region
    /// pieces `(region_index, region_relative_offset, piece_len)`.
    ///
    /// Requests may span region boundaries; each piece is served from its
    /// region's physical file.
    pub fn split_request(&self, offset: u64, len: u64) -> Vec<(usize, u64, u64)> {
        let mut out = Vec::new();
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let idx = self.region_of(pos);
            let e = &self.entries[idx];
            let piece_end = if idx + 1 < self.entries.len() {
                e.end().min(end)
            } else {
                end // last region extends indefinitely
            };
            out.push((idx, pos - e.offset, piece_end - pos));
            pos = piece_end;
        }
        out
    }

    /// Approximate metadata footprint of the table: one row of
    /// `2 + classes` u64 fields per region (offset, length, one width per
    /// class — the paper's Fig. 6 structure at `K = 2`). Algorithm 1's
    /// threshold adaptation exists precisely to bound this (Sec. III-C:
    /// "substantial extra metadata management overhead").
    pub fn metadata_bytes(&self) -> u64 {
        (self.entries.len() * (2 + self.classes()) * std::mem::size_of::<u64>()) as u64
    }

    /// Merge adjacent regions with identical stripe widths (paper
    /// Sec. III-E).
    pub fn merge_adjacent(&mut self) {
        let mut merged: Vec<RstEntry> = Vec::with_capacity(self.entries.len());
        for e in self.entries.drain(..) {
            match merged.last_mut() {
                Some(prev) if prev.widths == e.widths => {
                    prev.len += e.len;
                }
                _ => merged.push(e),
            }
        }
        self.entries = merged;
    }

    /// Persist as pretty JSON.
    pub fn save_to_path(&self, path: &Path) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, json)
    }

    /// Load from JSON produced by [`save_to_path`](Self::save_to_path).
    ///
    /// Errors carry the file, the line (for syntax errors) and the reason;
    /// the table is re-validated because files on disk can be edited.
    pub fn load_from_path(path: &Path) -> Result<Self, LoadError> {
        let table: RegionStripeTable = crate::errors::read_json(path)?;
        RegionStripeTable::try_new(table.entries)
            .map_err(|reason| LoadError::whole_file(path, reason))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> RegionStripeTable {
        // The example of paper Fig. 6 (lengths inferred from offsets).
        RegionStripeTable::new(vec![
            RstEntry::two(0, 128 << 20, 16 * 1024, 64 * 1024),
            RstEntry::two(128 << 20, 64 << 20, 36 * 1024, 144 * 1024),
            RstEntry::two(192 << 20, 64 << 20, 26 * 1024, 80 * 1024),
        ])
    }

    #[test]
    fn lookup_by_offset() {
        let t = table();
        assert_eq!(t.region_of(0), 0);
        assert_eq!(t.region_of((128 << 20) - 1), 0);
        assert_eq!(t.region_of(128 << 20), 1);
        assert_eq!(t.region_of(200 << 20), 2);
        // Past the end: last region.
        assert_eq!(t.region_of(1 << 40), 2);
    }

    #[test]
    fn split_within_one_region() {
        let t = table();
        let pieces = t.split_request(10, 100);
        assert_eq!(pieces, vec![(0, 10, 100)]);
    }

    #[test]
    fn split_across_regions() {
        let t = table();
        let boundary = 128u64 << 20;
        let pieces = t.split_request(boundary - 50, 100);
        assert_eq!(pieces, vec![(0, boundary - 50, 50), (1, 0, 50)]);
        let total: u64 = pieces.iter().map(|&(_, _, l)| l).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn split_past_end_stays_in_last_region() {
        let t = table();
        let file_end = t.file_size();
        let pieces = t.split_request(file_end - 10, 100);
        assert_eq!(pieces.len(), 1);
        assert_eq!(pieces[0].0, 2);
        assert_eq!(pieces[0].2, 100);
    }

    #[test]
    fn merge_adjacent_same_stripes() {
        let mut t = RegionStripeTable::new(vec![
            RstEntry::two(0, 100, 4, 8),
            RstEntry::two(100, 50, 4, 8),
            RstEntry::two(150, 50, 16, 8),
        ]);
        t.merge_adjacent();
        assert_eq!(t.len(), 2);
        assert_eq!(t.entries()[0].len, 150);
        assert_eq!(t.file_size(), 200);
    }

    #[test]
    fn merge_is_idempotent() {
        let mut t = table();
        t.merge_adjacent();
        let once = t.clone();
        t.merge_adjacent();
        assert_eq!(t, once);
    }

    #[test]
    #[should_panic(expected = "tile contiguously")]
    fn gaps_rejected() {
        RegionStripeTable::new(vec![
            RstEntry::two(0, 10, 1, 1),
            RstEntry::two(20, 10, 1, 1),
        ]);
    }

    #[test]
    #[should_panic(expected = "no capacity")]
    fn zero_capacity_region_rejected() {
        RegionStripeTable::new(vec![RstEntry::two(0, 10, 0, 0)]);
    }

    #[test]
    #[should_panic(expected = "disagree on class count")]
    fn mixed_class_counts_rejected() {
        RegionStripeTable::new(vec![
            RstEntry::two(0, 10, 1, 1),
            RstEntry::new(10, 10, vec![1, 1, 1]),
        ]);
    }

    #[test]
    fn set_region_widths_replaces_in_place() {
        let mut t = table();
        t.set_region_widths(1, vec![40 * 1024, 160 * 1024]);
        assert_eq!(t.entries()[1].widths(), &[40 * 1024, 160 * 1024]);
        assert_eq!(t.entries()[1].offset, 128 << 20);
    }

    #[test]
    #[should_panic(expected = "no capacity")]
    fn set_region_widths_rejects_zero() {
        table().set_region_widths(0, vec![0, 0]);
    }

    #[test]
    fn apply_batch_skips_noops_and_counts_rewrites() {
        let mut t = table();
        let current = t.entries()[0].widths().to_vec();
        let applied = t.apply_batch(&[
            (0, current), // no-op: row already carries these widths
            (1, vec![40 * 1024, 160 * 1024]),
            (1, vec![48 * 1024, 192 * 1024]), // later update wins
        ]);
        assert_eq!(applied, 2);
        assert_eq!(t.entries()[1].widths(), &[48 * 1024, 192 * 1024]);
    }

    #[test]
    fn file_round_trip() {
        let t = table();
        let dir = std::env::temp_dir().join("harl-rst-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rst.json");
        t.save_to_path(&path).unwrap();
        let back = RegionStripeTable::load_from_path(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn two_class_rows_keep_legacy_json_shape() {
        // The exact key set and order the pre-widths builds wrote: tables
        // and goldens on disk must stay byte-identical.
        let e = RstEntry::two(0, 1024, 4, 8);
        let json = serde_json::to_string(&e).unwrap();
        assert_eq!(json, r#"{"offset":0,"len":1024,"h":4,"s":8}"#);
        let back: RstEntry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn three_class_rows_round_trip_widths_form() {
        let e = RstEntry::new(0, 1024, vec![4, 8, 16]);
        let json = serde_json::to_string(&e).unwrap();
        assert_eq!(json, r#"{"offset":0,"len":1024,"widths":[4,8,16]}"#);
        let back: RstEntry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn legacy_and_widths_forms_deserialise_identically() {
        let legacy: RstEntry =
            serde_json::from_str(r#"{"offset":0,"len":64,"h":4,"s":8}"#).unwrap();
        let vector: RstEntry =
            serde_json::from_str(r#"{"offset":0,"len":64,"widths":[4,8]}"#).unwrap();
        assert_eq!(legacy, vector);
    }

    #[test]
    fn mixed_form_row_rejected() {
        let err = serde_json::from_str::<RstEntry>(r#"{"offset":0,"len":64,"h":4,"widths":[4,8]}"#)
            .unwrap_err();
        assert!(err.to_string().contains("mixes"), "{err}");
    }

    #[test]
    fn malformed_json_reports_file_and_line() {
        let dir = std::env::temp_dir().join("harl-rst-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rst-malformed.json");
        std::fs::write(&path, "{\n  \"entries\": [\n    {\"offset\": }\n  ]\n}").unwrap();
        let err = RegionStripeTable::load_from_path(&path).unwrap_err();
        assert_eq!(err.path, path);
        assert_eq!(err.line, Some(3), "syntax error is on line 3: {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn edited_file_failing_validation_reports_reason() {
        // Syntactically valid JSON whose regions leave a gap: the load
        // path must reject it with the offending rows, not panic.
        let dir = std::env::temp_dir().join("harl-rst-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rst-gapped.json");
        let gapped = RegionStripeTable {
            entries: vec![RstEntry::two(0, 10, 1, 1), RstEntry::two(20, 10, 1, 1)],
        };
        std::fs::write(&path, serde_json::to_string_pretty(&gapped).unwrap()).unwrap();
        let err = RegionStripeTable::load_from_path(&path).unwrap_err();
        assert!(err.reason.contains("tile contiguously"), "{err}");
        assert!(err.reason.contains("row 0"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_reports_path() {
        let err =
            RegionStripeTable::load_from_path(Path::new("/nonexistent/rst.json")).unwrap_err();
        assert!(err.reason.contains("cannot read file"), "{err}");
        assert!(err.to_string().contains("/nonexistent/rst.json"));
    }

    #[test]
    fn metadata_scales_with_regions_and_classes() {
        let t = table();
        assert_eq!(t.metadata_bytes(), 3 * 32);
        assert_eq!(RegionStripeTable::single(1024, 4, 8).metadata_bytes(), 32);
        // A third tier widens every row by one u64.
        let three = RegionStripeTable::uniform(1024, vec![4, 8, 16]);
        assert_eq!(three.metadata_bytes(), 40);
    }

    #[test]
    fn single_region_table() {
        let t = RegionStripeTable::single(1 << 30, 64 * 1024, 64 * 1024);
        assert_eq!(t.len(), 1);
        assert_eq!(t.file_size(), 1 << 30);
    }
}
