//! The Region Stripe Table (RST) — paper Sec. III-E, Fig. 6.
//!
//! The RST records, per file region, the optimal stripe sizes on HServers
//! and SServers. It is consulted by the metadata server during placement
//! and by the middleware to route each request to its region's physical
//! file. Two paper behaviours are implemented:
//!
//! * *"if adjacent regions have the same optimal stripe sizes, the two
//!   regions are combined into a larger region"* — [`RegionStripeTable::merge_adjacent`];
//! * the RST is persisted next to the application (JSON here) and loaded
//!   at startup — [`RegionStripeTable::save_to_path`] /
//!   [`RegionStripeTable::load_from_path`].

use crate::errors::LoadError;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// One row of the RST (paper Fig. 6: region #, file offset, HServer stripe
/// size, SServer stripe size — plus the region length, which Fig. 6 leaves
/// implicit in the next row's offset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RstEntry {
    /// First byte of the region in the logical file.
    pub offset: u64,
    /// Region length in bytes.
    pub len: u64,
    /// HServer stripe size (0 ⇒ region stored on SServers only).
    pub h: u64,
    /// SServer stripe size (0 ⇒ region stored on HServers only).
    pub s: u64,
}

impl RstEntry {
    /// One past the last byte of the region.
    #[inline]
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }
}

/// The full table: entries sorted by offset, tiling `[0, file_size)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionStripeTable {
    entries: Vec<RstEntry>,
}

impl RegionStripeTable {
    /// Build from entries, validating the tiling.
    ///
    /// # Panics
    /// Panics if entries are empty, unsorted, overlapping, gapped, not
    /// starting at 0, or any entry has `h == 0 && s == 0` or zero length.
    // Documented-precondition panic, allowlisted in lint.allow.toml:
    // fallible callers (tables read from disk) use try_new/load_from_path.
    #[allow(clippy::panic)]
    pub fn new(entries: Vec<RstEntry>) -> Self {
        Self::try_new(entries).unwrap_or_else(|reason| panic!("{reason}"))
    }

    /// Build from entries, reporting a validation failure instead of
    /// panicking — the load path for tables read from disk.
    pub fn try_new(entries: Vec<RstEntry>) -> Result<Self, String> {
        if entries.is_empty() {
            return Err("RST must have at least one region".into());
        }
        if entries[0].offset != 0 {
            return Err(format!(
                "RST must start at offset 0, first region starts at {}",
                entries[0].offset
            ));
        }
        for (i, e) in entries.iter().enumerate() {
            if e.len == 0 {
                return Err(format!("zero-length RST region at {} (row {i})", e.offset));
            }
            if e.h == 0 && e.s == 0 {
                return Err(format!(
                    "RST region at {} (row {i}) has no capacity",
                    e.offset
                ));
            }
        }
        for (i, w) in entries.windows(2).enumerate() {
            if w[0].end() != w[1].offset {
                return Err(format!(
                    "RST regions must tile contiguously: row {i} ends at {} but row {} starts at {}",
                    w[0].end(),
                    i + 1,
                    w[1].offset
                ));
            }
        }
        Ok(RegionStripeTable { entries })
    }

    /// A single-region table covering `[0, file_size)` — what a
    /// traditional fixed-stripe layout looks like in RST form.
    pub fn single(file_size: u64, h: u64, s: u64) -> Self {
        RegionStripeTable::new(vec![RstEntry {
            offset: 0,
            len: file_size,
            h,
            s,
        }])
    }

    /// The rows.
    pub fn entries(&self) -> &[RstEntry] {
        &self.entries
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Never true (construction requires ≥ 1 region); provided for API
    /// completeness alongside [`len`](Self::len).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bytes covered.
    pub fn file_size(&self) -> u64 {
        self.entries.last().map_or(0, |e| e.end())
    }

    /// Index of the region containing `offset`.
    ///
    /// Offsets past the end fall into the last region (files can grow; the
    /// tail region's layout extends).
    pub fn region_of(&self, offset: u64) -> usize {
        match self.entries.binary_search_by(|e| {
            if offset < e.offset {
                std::cmp::Ordering::Greater
            } else if offset >= e.end() {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(i) => i,
            Err(_) => self.entries.len() - 1,
        }
    }

    /// The entry containing `offset`.
    pub fn lookup(&self, offset: u64) -> &RstEntry {
        &self.entries[self.region_of(offset)]
    }

    /// Split a logical request `[offset, offset+len)` into per-region
    /// pieces `(region_index, region_relative_offset, piece_len)`.
    ///
    /// Requests may span region boundaries; each piece is served from its
    /// region's physical file.
    pub fn split_request(&self, offset: u64, len: u64) -> Vec<(usize, u64, u64)> {
        let mut out = Vec::new();
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let idx = self.region_of(pos);
            let e = &self.entries[idx];
            let piece_end = if idx + 1 < self.entries.len() {
                e.end().min(end)
            } else {
                end // last region extends indefinitely
            };
            out.push((idx, pos - e.offset, piece_end - pos));
            pos = piece_end;
        }
        out
    }

    /// Approximate metadata footprint of the table: one row of four u64
    /// fields per region (the paper's Fig. 6 structure). Algorithm 1's
    /// threshold adaptation exists precisely to bound this (Sec. III-C:
    /// "substantial extra metadata management overhead").
    pub fn metadata_bytes(&self) -> u64 {
        (self.entries.len() * 4 * std::mem::size_of::<u64>()) as u64
    }

    /// Merge adjacent regions with identical `(h, s)` (paper Sec. III-E).
    pub fn merge_adjacent(&mut self) {
        let mut merged: Vec<RstEntry> = Vec::with_capacity(self.entries.len());
        for e in self.entries.drain(..) {
            match merged.last_mut() {
                Some(prev) if prev.h == e.h && prev.s == e.s => {
                    prev.len += e.len;
                }
                _ => merged.push(e),
            }
        }
        self.entries = merged;
    }

    /// Persist as pretty JSON.
    pub fn save_to_path(&self, path: &Path) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, json)
    }

    /// Load from JSON produced by [`save_to_path`](Self::save_to_path).
    ///
    /// Errors carry the file, the line (for syntax errors) and the reason;
    /// the table is re-validated because files on disk can be edited.
    pub fn load_from_path(path: &Path) -> Result<Self, LoadError> {
        let table: RegionStripeTable = crate::errors::read_json(path)?;
        RegionStripeTable::try_new(table.entries)
            .map_err(|reason| LoadError::whole_file(path, reason))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> RegionStripeTable {
        // The example of paper Fig. 6 (lengths inferred from offsets).
        RegionStripeTable::new(vec![
            RstEntry {
                offset: 0,
                len: 128 << 20,
                h: 16 * 1024,
                s: 64 * 1024,
            },
            RstEntry {
                offset: 128 << 20,
                len: 64 << 20,
                h: 36 * 1024,
                s: 144 * 1024,
            },
            RstEntry {
                offset: 192 << 20,
                len: 64 << 20,
                h: 26 * 1024,
                s: 80 * 1024,
            },
        ])
    }

    #[test]
    fn lookup_by_offset() {
        let t = table();
        assert_eq!(t.region_of(0), 0);
        assert_eq!(t.region_of((128 << 20) - 1), 0);
        assert_eq!(t.region_of(128 << 20), 1);
        assert_eq!(t.region_of(200 << 20), 2);
        // Past the end: last region.
        assert_eq!(t.region_of(1 << 40), 2);
    }

    #[test]
    fn split_within_one_region() {
        let t = table();
        let pieces = t.split_request(10, 100);
        assert_eq!(pieces, vec![(0, 10, 100)]);
    }

    #[test]
    fn split_across_regions() {
        let t = table();
        let boundary = 128u64 << 20;
        let pieces = t.split_request(boundary - 50, 100);
        assert_eq!(pieces, vec![(0, boundary - 50, 50), (1, 0, 50)]);
        let total: u64 = pieces.iter().map(|&(_, _, l)| l).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn split_past_end_stays_in_last_region() {
        let t = table();
        let file_end = t.file_size();
        let pieces = t.split_request(file_end - 10, 100);
        assert_eq!(pieces.len(), 1);
        assert_eq!(pieces[0].0, 2);
        assert_eq!(pieces[0].2, 100);
    }

    #[test]
    fn merge_adjacent_same_stripes() {
        let mut t = RegionStripeTable::new(vec![
            RstEntry {
                offset: 0,
                len: 100,
                h: 4,
                s: 8,
            },
            RstEntry {
                offset: 100,
                len: 50,
                h: 4,
                s: 8,
            },
            RstEntry {
                offset: 150,
                len: 50,
                h: 16,
                s: 8,
            },
        ]);
        t.merge_adjacent();
        assert_eq!(t.len(), 2);
        assert_eq!(t.entries()[0].len, 150);
        assert_eq!(t.file_size(), 200);
    }

    #[test]
    fn merge_is_idempotent() {
        let mut t = table();
        t.merge_adjacent();
        let once = t.clone();
        t.merge_adjacent();
        assert_eq!(t, once);
    }

    #[test]
    #[should_panic(expected = "tile contiguously")]
    fn gaps_rejected() {
        RegionStripeTable::new(vec![
            RstEntry {
                offset: 0,
                len: 10,
                h: 1,
                s: 1,
            },
            RstEntry {
                offset: 20,
                len: 10,
                h: 1,
                s: 1,
            },
        ]);
    }

    #[test]
    #[should_panic(expected = "no capacity")]
    fn zero_capacity_region_rejected() {
        RegionStripeTable::new(vec![RstEntry {
            offset: 0,
            len: 10,
            h: 0,
            s: 0,
        }]);
    }

    #[test]
    fn file_round_trip() {
        let t = table();
        let dir = std::env::temp_dir().join("harl-rst-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rst.json");
        t.save_to_path(&path).unwrap();
        let back = RegionStripeTable::load_from_path(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_reports_file_and_line() {
        let dir = std::env::temp_dir().join("harl-rst-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rst-malformed.json");
        std::fs::write(&path, "{\n  \"entries\": [\n    {\"offset\": }\n  ]\n}").unwrap();
        let err = RegionStripeTable::load_from_path(&path).unwrap_err();
        assert_eq!(err.path, path);
        assert_eq!(err.line, Some(3), "syntax error is on line 3: {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn edited_file_failing_validation_reports_reason() {
        // Syntactically valid JSON whose regions leave a gap: the load
        // path must reject it with the offending rows, not panic.
        let dir = std::env::temp_dir().join("harl-rst-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rst-gapped.json");
        let gapped = RegionStripeTable {
            entries: vec![
                RstEntry {
                    offset: 0,
                    len: 10,
                    h: 1,
                    s: 1,
                },
                RstEntry {
                    offset: 20,
                    len: 10,
                    h: 1,
                    s: 1,
                },
            ],
        };
        std::fs::write(&path, serde_json::to_string_pretty(&gapped).unwrap()).unwrap();
        let err = RegionStripeTable::load_from_path(&path).unwrap_err();
        assert!(err.reason.contains("tile contiguously"), "{err}");
        assert!(err.reason.contains("row 0"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_reports_path() {
        let err =
            RegionStripeTable::load_from_path(Path::new("/nonexistent/rst.json")).unwrap_err();
        assert!(err.reason.contains("cannot read file"), "{err}");
        assert!(err.to_string().contains("/nonexistent/rst.json"));
    }

    #[test]
    fn metadata_scales_with_regions() {
        let t = table();
        assert_eq!(t.metadata_bytes(), 3 * 32);
        assert_eq!(RegionStripeTable::single(1024, 4, 8).metadata_bytes(), 32);
    }

    #[test]
    fn single_region_table() {
        let t = RegionStripeTable::single(1 << 30, 64 * 1024, 64 * 1024);
        assert_eq!(t.len(), 1);
        assert_eq!(t.file_size(), 1 << 30);
    }
}
