//! Legacy two-tier `(h, s)` surface — the designated compat module.
//!
//! The paper's vocabulary is a stripe *pair*: `h` on HServers, `s` on
//! SServers. The canonical representation is now per-class widths
//! (`widths[0] = h`, `widths[1] = s` at `K = 2`), and every pair-shaped
//! API lives here so harl-lint's `two-tier-hygiene` rule can forbid the
//! shape everywhere else. Results are bit-identical to the widths form:
//! the pair cost bodies are the original Eqs. 7/8 arithmetic, kept
//! verbatim (and allocation-free) for the grid search's inner loop.

use crate::model::{server_loads, CostModelParams, ServerLoads, StartupTable};
use crate::optimizer::RegionRequests;
use crate::rst::{RegionStripeTable, RstEntry};
use harl_devices::OpKind;

impl RstEntry {
    /// A two-tier row: `h` on the HServer class, `s` on the SServer class.
    pub fn two(offset: u64, len: u64, h: u64, s: u64) -> Self {
        RstEntry::new(offset, len, vec![h, s])
    }

    /// HServer stripe size — `widths[0]` (0 when absent).
    #[inline]
    pub fn h(&self) -> u64 {
        self.width(0)
    }

    /// SServer stripe size — `widths[1]` (0 when absent).
    #[inline]
    pub fn s(&self) -> u64 {
        self.width(1)
    }
}

impl RegionStripeTable {
    /// A single-region two-tier table covering `[0, file_size)`.
    pub fn single(file_size: u64, h: u64, s: u64) -> Self {
        RegionStripeTable::uniform(file_size, vec![h, s])
    }
}

impl CostModelParams {
    /// Cost (seconds) of one request at region-relative `offset` of `size`
    /// bytes under layout `(h, s)` — the paper's Eq. 7 (reads) / Eq. 8
    /// (writes); equal to the widths form on `&[h, s]`.
    ///
    /// Either stripe may be zero (that class holds no data); both zero
    /// panics. Zero-size requests cost nothing.
    pub fn request_cost(&self, offset: u64, size: u64, op: OpKind, h: u64, s: u64) -> f64 {
        if size == 0 {
            return 0.0;
        }
        let ServerLoads { s_m, m, s_n, n } = server_loads(offset, size, self.m(), h, self.n(), s);
        let hp = self.h_params(op);
        let sp = self.s_params(op);

        // Eq. 1: network transfer — the slowest sub-request on the wire.
        let t_x = (s_m.max(s_n)) as f64 * self.inner.t_s_per_byte;
        // Eq. 5: startup — the slower of the two classes' expected maxima.
        let t_s = Self::startup_k(hp, m).max(Self::startup_k(sp, n));
        // Eq. 6: storage transfer — the slowest sub-request on a device.
        let t_t = (s_m as f64 * hp.beta_s_per_byte).max(s_n as f64 * sp.beta_s_per_byte);

        t_x + t_s + t_t
    }

    /// [`Self::request_cost`] with the startup term served from a
    /// precomputed [`StartupTable`] — bit-identical results (the table
    /// holds exactly the values Eq. 5 produces), built for the optimizer's
    /// inner loop.
    pub fn request_cost_with(
        &self,
        table: &StartupTable,
        offset: u64,
        size: u64,
        op: OpKind,
        h: u64,
        s: u64,
    ) -> f64 {
        if size == 0 {
            return 0.0;
        }
        let ServerLoads { s_m, m, s_n, n } = server_loads(offset, size, self.m(), h, self.n(), s);
        let hp = self.h_params(op);
        let sp = self.s_params(op);
        let t_x = (s_m.max(s_n)) as f64 * self.inner.t_s_per_byte;
        let t_s = match op {
            OpKind::Read => table.read[m * table.stride + n],
            OpKind::Write => table.write[m * table.stride + n],
        };
        let t_t = (s_m as f64 * hp.beta_s_per_byte).max(s_n as f64 * sp.beta_s_per_byte);
        t_x + t_s + t_t
    }
}

impl RegionRequests<'_> {
    /// Model cost of this region under a given `(h, s)` pair, summed over
    /// the (sampled) requests — exposed for baseline policies that search a
    /// restricted candidate set.
    pub fn cost_of(&self, model: &CostModelParams, h: u64, s: u64, cap: usize) -> f64 {
        crate::fold::sum_f64(
            self.sample(cap)
                .iter()
                .map(|&(o, r, op)| model.request_cost(o, r, op, h, s)),
        )
    }
}

#[cfg(test)]
mod tests {
    // Exact comparisons on purpose: pair and widths forms must agree to
    // the last bit or the K = 2 dispatch would not be a refactor.
    #![allow(clippy::float_cmp)]

    use super::*;
    use harl_pfs::ClusterConfig;

    const KB: u64 = 1024;

    #[test]
    fn pair_cost_is_bitwise_equal_to_widths_cost() {
        let pair = CostModelParams::from_cluster(&ClusterConfig::paper_default());
        for (o, r) in [
            (0u64, 512 * KB),
            (123 * KB, 512 * KB),
            (7, 130_000),
            (5 * KB, 3),
        ] {
            for op in OpKind::ALL {
                for (h, s) in [(32 * KB, 160 * KB), (0, 64 * KB), (64 * KB, 0)] {
                    let a = pair.request_cost(o, r, op, h, s);
                    let b = pair.inner.request_cost(o, r, op, &[h, s]);
                    assert_eq!(a, b, "pair vs widths at ({o},{r},{op},{h},{s})");
                }
            }
        }
    }

    #[test]
    fn startup_table_path_is_bitwise_equal() {
        let pair = CostModelParams::from_cluster(&ClusterConfig::paper_default());
        let table = pair.startup_table();
        for (o, r) in [(0u64, 512 * KB), (123 * KB, 512 * KB), (7, 130_000)] {
            for op in OpKind::ALL {
                let a = pair.request_cost(o, r, op, 32 * KB, 160 * KB);
                let b = pair.request_cost_with(&table, o, r, op, 32 * KB, 160 * KB);
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn two_tier_entry_accessors() {
        let e = RstEntry::two(0, 1024, 4, 8);
        assert_eq!((e.h(), e.s()), (4, 8));
        assert_eq!(e.widths(), &[4, 8]);
        // A widths row short of two classes reads as zero, not a panic.
        let solo = RstEntry::new(0, 1024, vec![4]);
        assert_eq!((solo.h(), solo.s()), (4, 0));
    }
}
