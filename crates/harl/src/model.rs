//! The data-access cost model of Sec. III-D (Table I, Eqs. 1–8).
//!
//! The cost of one file request under a two-class layout with stripe sizes
//! `(h, s)` on `M` HServers and `N` SServers is
//!
//! ```text
//! T = T_X + T_S + T_T
//! T_X = max(s_m, s_n) · t                        (network, Eq. 1)
//! T_S = max(T_h^S, T_s^S)                        (startup, Eqs. 3–5)
//!       T_h^S = α_min + m/(m+1) · (α_max − α_min)   (order statistic of
//!                                                     m uniform draws)
//! T_T = max(s_m · β_h, s_n · β_s)                (transfer, Eq. 6)
//! ```
//!
//! where `s_m`/`s_n` are the largest per-server loads on HServers/SServers
//! and `m`/`n` how many of each the request touches. The paper derives
//! `(s_m, s_n, m, n)` through the case analysis of Figs. 4–5; we compute
//! them *exactly* from the round-robin geometry in O(1) per class
//! ([`server_loads`]): every server's load is a per-group base plus a
//! step-function correction from the two endpoint fragments, so only the
//! segment boundaries need case analysis, never the individual servers.
//! The per-server scan is kept as [`server_loads_scan`] and the paper's
//! case-(a) table as [`case_a_params`] so tests can confirm all three
//! agree on their domains.
//!
//! The canonical model is the K-class
//! [`MultiProfileModel`];
//! [`CostModelParams`] is its `K = 2` view, carrying the paper's `(M, N)`
//! vocabulary and the pair-form cost entry points (see `crate::compat`)
//! plus the precomputed [`StartupTable`] the exhaustive grid search leans
//! on.

use crate::cast::{i64_to_u64, i64_to_usize, u64_to_i64, u64_to_usize, usize_to_i64, usize_to_u64};
use crate::multiprofile::MultiProfileModel;
use harl_devices::{NetworkProfile, OpKind, OpParams, StorageProfile};
use harl_pfs::ClusterConfig;

/// The two-class view of the platform model (paper Table I).
///
/// A thin wrapper over a `K = 2` [`MultiProfileModel`] — the widths-based
/// API is reachable through `Deref`, while the paper's `(h, s)` pair-form
/// cost functions live in `crate::compat` as inherent methods. Usually
/// built from *calibrated* profiles ([`harl_devices::calibrate_storage`])
/// so the optimizer works from measurements, exactly as the paper's
/// Analysis Phase does.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModelParams {
    pub(crate) inner: MultiProfileModel,
}

impl std::ops::Deref for CostModelParams {
    type Target = MultiProfileModel;
    fn deref(&self) -> &MultiProfileModel {
        &self.inner
    }
}

impl CostModelParams {
    /// Build from explicit profiles.
    pub fn new(
        m: usize,
        n: usize,
        network: &NetworkProfile,
        hserver: &StorageProfile,
        sserver: &StorageProfile,
    ) -> Self {
        assert!(m + n > 0, "model needs at least one server");
        CostModelParams {
            inner: MultiProfileModel::new(
                network,
                vec![(m, hserver.clone()), (n, sserver.clone())],
            ),
        }
    }

    /// Wrap an existing two-class model.
    ///
    /// # Panics
    /// Panics unless the model has exactly two classes.
    pub fn from_multi(inner: MultiProfileModel) -> Self {
        assert_eq!(inner.class_count(), 2, "two-class view needs K = 2");
        CostModelParams { inner }
    }

    /// Build from a two-class cluster's ground-truth profiles.
    pub fn from_cluster(cluster: &ClusterConfig) -> Self {
        assert_eq!(
            cluster.classes.len(),
            2,
            "two-class model; use MultiProfileModel::from_cluster for K classes"
        );
        CostModelParams::from_multi(MultiProfileModel::from_cluster(cluster))
    }

    /// Build from a cluster but with *measured* (calibrated) device
    /// parameters — the faithful reproduction of the paper's Analysis
    /// Phase pipeline.
    pub fn from_cluster_calibrated(
        cluster: &ClusterConfig,
        cfg: &harl_devices::CalibrationConfig,
    ) -> Self {
        assert_eq!(cluster.classes.len(), 2, "two-class model");
        let h = harl_devices::calibrate_storage(&cluster.classes[0].profile, cfg);
        let s = harl_devices::calibrate_storage(&cluster.classes[1].profile, cfg);
        let net = harl_devices::calibrate_network(&cluster.network, cfg);
        CostModelParams::new(
            cluster.classes[0].count,
            cluster.classes[1].count,
            &net,
            &h,
            &s,
        )
    }

    /// Number of HServers (`M`).
    #[inline]
    pub fn m(&self) -> usize {
        self.inner.classes[0].count
    }

    /// Number of SServers (`N`).
    #[inline]
    pub fn n(&self) -> usize {
        self.inner.classes[1].count
    }

    #[inline]
    pub(crate) fn h_params(&self, op: OpKind) -> &OpParams {
        match op {
            OpKind::Read => &self.inner.classes[0].read,
            OpKind::Write => &self.inner.classes[0].write,
        }
    }

    #[inline]
    pub(crate) fn s_params(&self, op: OpKind) -> &OpParams {
        match op {
            OpKind::Read => &self.inner.classes[1].read,
            OpKind::Write => &self.inner.classes[1].write,
        }
    }

    /// The expected maximum of `k` i.i.d. uniform draws on
    /// `[α_min, α_max]`: `α_min + k/(k+1)·(α_max − α_min)` (Eqs. 3–4).
    #[inline]
    pub(crate) fn startup_k(p: &OpParams, k: usize) -> f64 {
        if k == 0 {
            0.0
        } else {
            p.alpha_min_s + (k as f64 / (k as f64 + 1.0)) * (p.alpha_max_s - p.alpha_min_s)
        }
    }

    /// Precompute the startup term `T_S` (Eq. 5) for every possible
    /// `(m, n)` touched-server pair. The grid search evaluates millions of
    /// requests against one model, and Eq. 5 is the only non-arithmetic
    /// part of the cost — tabulating it turns two order-statistic
    /// evaluations per request into one load.
    pub fn startup_table(&self) -> StartupTable {
        let (m_count, n_count) = (self.m(), self.n());
        let stride = n_count + 1;
        let build = |hp: &OpParams, sp: &OpParams| -> Vec<f64> {
            let mut t = Vec::with_capacity((m_count + 1) * stride);
            for m in 0..=m_count {
                for n in 0..=n_count {
                    t.push(Self::startup_k(hp, m).max(Self::startup_k(sp, n)));
                }
            }
            t
        };
        StartupTable {
            read: build(self.h_params(OpKind::Read), self.s_params(OpKind::Read)),
            write: build(self.h_params(OpKind::Write), self.s_params(OpKind::Write)),
            stride,
        }
    }
}

/// Precomputed Eq. 5 startup maxima, indexed by `(m, n)` touched-server
/// counts — see [`CostModelParams::startup_table`].
#[derive(Debug, Clone)]
pub struct StartupTable {
    pub(crate) read: Vec<f64>,
    pub(crate) write: Vec<f64>,
    pub(crate) stride: usize,
}

/// The four critical parameters of the paper's case analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerLoads {
    /// Largest per-HServer load (bytes).
    pub s_m: u64,
    /// Number of HServers touched.
    pub m: usize,
    /// Largest per-SServer load (bytes).
    pub s_n: u64,
    /// Number of SServers touched.
    pub n: usize,
}

/// Bytes of `[0, x)` on the server whose segment is `[base, base+w)`
/// within a group of size `group`.
#[inline]
fn bytes_below(x: u64, group: u64, base: u64, w: u64) -> u64 {
    if w == 0 {
        return 0;
    }
    (x / group) * w + (x % group).saturating_sub(base).min(w)
}

/// Exact `(s_m, m, s_n, n)` for a request `[offset, offset+size)` under the
/// round-robin two-class layout — O(1) closed form over the group geometry.
///
/// Bit-identical to [`server_loads_scan`] (property-tested) but independent
/// of `M + N`, which makes every grid candidate in Algorithm 2 constant
/// time instead of linear in the cluster size.
///
/// # Panics
/// Panics if both classes have zero capacity (`M·h + N·s == 0`) for a
/// non-empty request.
pub fn server_loads(
    offset: u64,
    size: u64,
    m_servers: usize,
    h: u64,
    n_servers: usize,
    s: u64,
) -> ServerLoads {
    if size == 0 {
        return ServerLoads {
            s_m: 0,
            m: 0,
            s_n: 0,
            n: 0,
        };
    }
    let group = usize_to_u64(m_servers) * h + usize_to_u64(n_servers) * s;
    assert!(group > 0, "layout has no capacity (M*h + N*s == 0)");
    let end = offset + size;
    // One division pair per endpoint, shared by both classes.
    let dq = end / group - offset / group;
    let (r_o, r_e) = (offset % group, end % group);
    let (s_m, m) = class_span_loads(dq, r_o, r_e, 0, h, m_servers);
    let (s_n, n) = class_span_loads(dq, r_o, r_e, usize_to_u64(m_servers) * h, s, n_servers);
    ServerLoads { s_m, m, s_n, n }
}

/// Reference implementation of [`server_loads`]: the per-server scan,
/// O(M+N) per request. Kept for cross-validation; the optimizer uses the
/// closed form.
///
/// # Panics
/// Panics if both classes have zero capacity (`M·h + N·s == 0`) for a
/// non-empty request.
pub fn server_loads_scan(
    offset: u64,
    size: u64,
    m_servers: usize,
    h: u64,
    n_servers: usize,
    s: u64,
) -> ServerLoads {
    if size == 0 {
        return ServerLoads {
            s_m: 0,
            m: 0,
            s_n: 0,
            n: 0,
        };
    }
    let group = usize_to_u64(m_servers) * h + usize_to_u64(n_servers) * s;
    assert!(group > 0, "layout has no capacity (M*h + N*s == 0)");
    let end = offset + size;

    let mut s_m = 0;
    let mut m = 0;
    for i in 0..m_servers {
        let base = usize_to_u64(i) * h;
        let b = bytes_below(end, group, base, h) - bytes_below(offset, group, base, h);
        if b > 0 {
            m += 1;
            s_m = s_m.max(b);
        }
    }
    let mut s_n = 0;
    let mut n = 0;
    let s_base0 = usize_to_u64(m_servers) * h;
    for j in 0..n_servers {
        let base = s_base0 + usize_to_u64(j) * s;
        let b = bytes_below(end, group, base, s) - bytes_below(offset, group, base, s);
        if b > 0 {
            n += 1;
            s_n = s_n.max(b);
        }
    }
    ServerLoads { s_m, m, s_n, n }
}

/// `(max_load, servers_touched)` for one server class occupying
/// `[base0, base0 + count·w)` of each round-robin group, for a byte span
/// crossing `dq` group boundaries with endpoint group-residues `r_o`/`r_e`
/// — O(1).
///
/// Server `k` of the class holds `D + f_k(r_e) − f_k(r_o)` bytes, where
/// `D = dq·w` is the uniform full-group contribution and
/// `f_k(r) = clamp(r − base0 − k·w, 0, w)` is the endpoint-fragment step
/// function: `w` for servers strictly below the fragment index `k_r`, the
/// partial `p_r = (r − base0) mod w` at `k_r`, and `0` above it. Both
/// endpoints therefore split the class into at most five constant-load
/// segments, resolved by comparing the two fragment indices (endpoints
/// outside the class span clamp to the virtual indices `−1` / `count`).
pub(crate) fn class_span_loads(
    dq: u64,
    r_o: u64,
    r_e: u64,
    base0: u64,
    w: u64,
    count: usize,
) -> (u64, usize) {
    if w == 0 || count == 0 {
        return (0, 0);
    }
    let c = usize_to_u64(count);
    // Signed 64-bit intermediates: valid for byte spans below 2^63, the
    // same implicit domain as the scan's `offset + size` arithmetic.
    let d = u64_to_i64(dq * w);

    // Fragment index and partial bytes of one endpoint residue, with
    // virtual indices −1 (before the class span) and `count` (at/after it).
    let point = |r: u64| -> (i64, i64) {
        if r <= base0 {
            (-1, 0)
        } else if r >= base0 + c * w {
            (u64_to_i64(c), 0)
        } else {
            let q = (r - base0) / w;
            (u64_to_i64(q), u64_to_i64(r - base0 - q * w))
        }
    };
    let (k_o, p_o) = point(r_o);
    let (k_e, p_e) = point(r_e);

    // Real servers strictly between indices `a` and `b` (exclusive).
    let between = |a: i64, b: i64| -> u64 {
        let lo = (a + 1).max(0);
        let hi = (b - 1).min(u64_to_i64(c) - 1);
        if hi >= lo {
            i64_to_u64(hi - lo + 1)
        } else {
            0
        }
    };
    let real = |k: i64| -> u64 { u64::from(k >= 0 && k < u64_to_i64(c)) };

    // (load, how many servers hold it) — at most four segments.
    let mut segs = [(0i64, 0u64); 4];
    let w = u64_to_i64(w);
    if k_o < k_e {
        segs[0] = (d, between(-1, k_o) + between(k_e, u64_to_i64(c)));
        segs[1] = (d + w - p_o, real(k_o));
        segs[2] = (d + w, between(k_o, k_e));
        segs[3] = (d + p_e, real(k_e));
    } else if k_o > k_e {
        segs[0] = (d, between(-1, k_e) + between(k_o, u64_to_i64(c)));
        segs[1] = (d + p_e - w, real(k_e));
        segs[2] = (d - w, between(k_e, k_o));
        segs[3] = (d - p_o, real(k_o));
    } else {
        segs[0] = (d, c - real(k_o));
        segs[1] = (d + p_e - p_o, real(k_o));
    }

    let mut max_load = 0i64;
    let mut touched = 0u64;
    for &(load, n) in &segs {
        if n > 0 && load > 0 {
            touched += n;
            max_load = max_load.max(load);
        }
    }
    (i64_to_u64(max_load), u64_to_usize(touched))
}

/// The paper's Fig. 5 case-(a) table: `(s_m, s_n, m, n)` when both the
/// beginning and ending sub-requests fall on HServers.
///
/// Returns `None` when the request is not in case (a) (it begins or ends on
/// an SServer) or hits a degenerate fragment the table does not define
/// (an ending offset exactly on a stripe boundary). Implemented for
/// cross-validation against [`server_loads`]; the paper presents only this
/// case and leaves the others to "the same arguments".
///
/// **Reproduction note:** two rows of the table are imprecise outside a
/// restricted domain. The third Δr≥1 row (`s_m = Δr·h`) is exact only when
/// the beginning server index is *greater* than the ending server index
/// (`n_b > n_e`); when `n_b < n_e` the beginning server actually holds
/// `s_b + Δr·h` bytes, which the row under-counts. Its server count
/// `m = M + 1 + Δc` is exact only for `Δr = 1`: with `Δr ≥ 2` a full
/// middle stripe group touches all `M` HServers. Our optimizer therefore
/// uses the exact [`server_loads`]; the property tests check table-vs-exact
/// agreement on the table's valid domain and bound the divergence outside
/// it.
pub fn case_a_params(
    offset: u64,
    size: u64,
    m_servers: usize,
    h: u64,
    n_servers: usize,
    s: u64,
) -> Option<ServerLoads> {
    if size == 0 || h == 0 {
        return None;
    }
    let m_total = usize_to_u64(m_servers) * h;
    let group = m_total + usize_to_u64(n_servers) * s;
    let end = offset + size;

    let r_b = offset / group;
    let r_e = end / group;
    let l_b = offset - r_b * group;
    let l_e = end - r_e * group;
    // Case (a): both endpoints inside the HServer span of their groups.
    if l_b >= m_total || l_e > m_total {
        return None;
    }
    // Degenerate ending fragment (boundary-aligned): the table's fragment
    // arithmetic assumes a strictly interior endpoint.
    if l_e.is_multiple_of(h) {
        return None;
    }
    let n_b = u64_to_usize(l_b / h);
    let n_e = u64_to_usize(l_e / h);
    let s_b = h - l_b % h; // remaining bytes of the beginning stripe
    let s_e = l_e % h; // bytes consumed of the ending stripe
    let d_r = r_e - r_b;
    let d_c = usize_to_i64(n_e) - usize_to_i64(n_b);

    let loads = if d_r == 0 {
        let (s_m, m) = match d_c {
            0 => (size, 1),
            1 => (s_b.max(s_e), 2),
            c if c > 1 => (h, i64_to_usize(c + 1)),
            _ => return None, // negative Δc impossible within one group
        };
        ServerLoads {
            s_m,
            m,
            s_n: 0,
            n: 0,
        }
    } else {
        // Δr ≥ 1: the request crosses group boundaries; every SServer gets
        // Δr full stripes.
        let s_n = d_r * s;
        let n = if s == 0 { 0 } else { n_servers };
        if d_c == 0 && n_b == n_e {
            ServerLoads {
                s_m: (d_r * h - h + s_b + s_e).max(d_r * h),
                m: m_servers,
                s_n,
                n,
            }
        } else if n_b + 1 == m_servers && n_e == 0 {
            ServerLoads {
                s_m: (d_r * h - h + s_b).max(d_r * h - h + s_e),
                m: if d_r == 1 { 2 } else { m_servers },
                s_n,
                n,
            }
        } else {
            ServerLoads {
                s_m: d_r * h,
                m: if d_c < -1 {
                    i64_to_usize(usize_to_i64(m_servers) + 1 + d_c)
                } else {
                    m_servers
                },
                s_n,
                n,
            }
        }
    };
    Some(loads)
}

#[cfg(test)]
mod tests {
    // Tests assert exact values: outputs are deterministic by design.
    #![allow(clippy::float_cmp)]

    use super::*;
    use harl_devices::{hdd_2015_preset, ssd_2015_preset, NetworkProfile};

    const KB: u64 = 1024;

    fn paper_params() -> CostModelParams {
        CostModelParams::new(
            6,
            2,
            &NetworkProfile::gigabit_ethernet(),
            &hdd_2015_preset(),
            &ssd_2015_preset(),
        )
    }

    #[test]
    fn loads_conserve_nothing_lost() {
        // Whole-request bytes must be distributed somewhere; check via the
        // exact per-server accounting against GroupLayout.
        let loads = server_loads(0, 512 * KB, 6, 64 * KB, 2, 64 * KB);
        assert_eq!(loads.m, 6);
        assert_eq!(loads.n, 2);
        assert_eq!(loads.s_m, 64 * KB);
        assert_eq!(loads.s_n, 64 * KB);
    }

    #[test]
    fn loads_with_h_zero() {
        let loads = server_loads(0, 128 * KB, 6, 0, 2, 64 * KB);
        assert_eq!(loads.m, 0);
        assert_eq!(loads.s_m, 0);
        assert_eq!(loads.n, 2);
        assert_eq!(loads.s_n, 64 * KB);
    }

    #[test]
    fn loads_with_s_zero() {
        let loads = server_loads(0, 128 * KB, 4, 32 * KB, 2, 0);
        assert_eq!(loads.n, 0);
        assert_eq!(loads.m, 4);
        assert_eq!(loads.s_m, 32 * KB);
    }

    #[test]
    #[should_panic(expected = "no capacity")]
    fn zero_capacity_panics() {
        server_loads(0, 1, 4, 0, 2, 0);
    }

    #[test]
    fn zero_size_request_is_free() {
        let p = paper_params();
        assert_eq!(p.request_cost(123, 0, OpKind::Read, 64 * KB, 64 * KB), 0.0);
    }

    #[test]
    fn cost_increases_with_size() {
        let p = paper_params();
        let c1 = p.request_cost(0, 128 * KB, OpKind::Read, 64 * KB, 64 * KB);
        let c2 = p.request_cost(0, 512 * KB, OpKind::Read, 64 * KB, 64 * KB);
        let c3 = p.request_cost(0, 2048 * KB, OpKind::Read, 64 * KB, 64 * KB);
        assert!(c1 < c2 && c2 < c3);
    }

    #[test]
    fn writes_cost_more_than_reads() {
        let p = paper_params();
        let r = p.request_cost(0, 512 * KB, OpKind::Read, 64 * KB, 64 * KB);
        let w = p.request_cost(0, 512 * KB, OpKind::Write, 64 * KB, 64 * KB);
        assert!(w > r, "write {w} should exceed read {r}");
    }

    #[test]
    fn balanced_varied_beats_fixed_for_512k() {
        // The heart of the paper: at 512 KiB requests on 6H+2S the model
        // must prefer a small-h / large-s layout over uniform 64 KiB.
        let p = paper_params();
        let fixed = p.request_cost(0, 512 * KB, OpKind::Read, 64 * KB, 64 * KB);
        let varied = p.request_cost(0, 512 * KB, OpKind::Read, 32 * KB, 160 * KB);
        assert!(varied < fixed, "varied {varied} should beat fixed {fixed}");
    }

    #[test]
    fn small_requests_prefer_ssd_only() {
        // Fig. 9: at 128 KiB the optimal layout is {0, 64K} — any HServer
        // involvement pays the big HDD startup.
        let p = paper_params();
        let ssd_only = p.request_cost(0, 128 * KB, OpKind::Read, 0, 64 * KB);
        let mixed = p.request_cost(0, 128 * KB, OpKind::Read, 16 * KB, 16 * KB);
        let fixed = p.request_cost(0, 128 * KB, OpKind::Read, 64 * KB, 64 * KB);
        assert!(ssd_only < mixed);
        assert!(ssd_only < fixed);
    }

    #[test]
    fn startup_order_statistic() {
        let p = OpParams {
            alpha_min_s: 1.0,
            alpha_max_s: 3.0,
            beta_s_per_byte: 0.0,
        };
        assert_eq!(CostModelParams::startup_k(&p, 0), 0.0);
        assert!((CostModelParams::startup_k(&p, 1) - 2.0).abs() < 1e-12);
        // k → ∞ approaches α_max.
        assert!((CostModelParams::startup_k(&p, 1000) - 3.0).abs() < 0.01);
    }

    #[test]
    fn case_a_single_stripe() {
        // Request wholly inside one HServer stripe.
        let got = case_a_params(10 * KB, 20 * KB, 6, 64 * KB, 2, 64 * KB).unwrap();
        assert_eq!(
            got,
            ServerLoads {
                s_m: 20 * KB,
                m: 1,
                s_n: 0,
                n: 0
            }
        );
        assert_eq!(got, server_loads(10 * KB, 20 * KB, 6, 64 * KB, 2, 64 * KB));
    }

    #[test]
    fn case_a_two_adjacent_stripes() {
        // Crosses one stripe boundary within the HServer span.
        let (h, s) = (64 * KB, 64 * KB);
        let got = case_a_params(48 * KB, 32 * KB, 6, h, 2, s).unwrap();
        let exact = server_loads(48 * KB, 32 * KB, 6, h, 2, s);
        assert_eq!(got, exact);
        assert_eq!(got.m, 2);
        assert_eq!(got.s_m, 16 * KB);
    }

    #[test]
    fn case_a_rejects_sserver_endpoints() {
        // A request beginning in the SServer span is not case (a).
        let (h, s) = (64 * KB, 64 * KB);
        // HServer span = 384 KiB; offset inside SServer span.
        assert!(case_a_params(400 * KB, 8 * KB, 6, h, 2, s).is_none());
    }

    #[test]
    fn case_a_multi_group_matches_exact_when_nb_gt_ne() {
        // Group = 6*32 + 2*96 = 384 KiB, HServer span 192 KiB. Request from
        // server 3 of group 0 to server 1 of group 1 (n_b=3 > n_e=1): the
        // table's third row domain, where it is exact.
        let (h, s) = (32 * KB, 96 * KB);
        let offset = 106 * KB; // n_b = 3, s_b = 22 KiB
        let size = 320 * KB; // ends at 426 KiB; l_e = 42 KiB, n_e = 1
        let got = case_a_params(offset, size, 6, h, 2, s).unwrap();
        let exact = server_loads(offset, size, 6, h, 2, s);
        assert_eq!(got, exact);
        assert_eq!(got.s_m, 32 * KB);
        assert_eq!(got.m, 5); // M + 1 + Δc = 6 + 1 - 2
        assert_eq!(got.s_n, 96 * KB);
    }

    #[test]
    fn case_a_row3_undercounts_when_nb_lt_ne() {
        // Documented paper divergence: with n_b < n_e the beginning server
        // holds s_b + Δr·h bytes, more than the table's Δr·h.
        let (h, s) = (32 * KB, 96 * KB);
        let offset = 10 * KB; // n_b = 0, s_b = 22 KiB
        let size = 434 * KB; // ends at 444 KiB; l_e = 60 KiB, n_e = 1
        let table = case_a_params(offset, size, 6, h, 2, s).unwrap();
        let exact = server_loads(offset, size, 6, h, 2, s);
        assert_eq!(table.s_m, 32 * KB, "table row 3 value");
        // Server 0 (the beginning server) holds s_b + Δr·h = 54 KiB and
        // server 1 holds a full stripe in each group = 60 KiB; both exceed
        // the table's Δr·h.
        assert_eq!(exact.s_m, 60 * KB, "true maximum per-server load");
        assert!(exact.s_m > table.s_m);
    }

    #[test]
    fn from_cluster_matches_manual() {
        let cluster = ClusterConfig::paper_default();
        let p = CostModelParams::from_cluster(&cluster);
        assert_eq!(p.m(), 6);
        assert_eq!(p.n(), 2);
        let q = paper_params();
        assert_eq!(p, q);
    }

    #[test]
    fn calibrated_model_close_to_truth() {
        let cluster = ClusterConfig::paper_default();
        let truth = CostModelParams::from_cluster(&cluster);
        let cal = CostModelParams::from_cluster_calibrated(
            &cluster,
            &harl_devices::CalibrationConfig::default(),
        );
        let ct = truth.request_cost(0, 512 * KB, OpKind::Read, 32 * KB, 160 * KB);
        let cc = cal.request_cost(0, 512 * KB, OpKind::Read, 32 * KB, 160 * KB);
        assert!(
            (ct - cc).abs() / ct < 0.1,
            "calibrated cost {cc} vs truth {ct}"
        );
    }
}
