//! Plan caching and incremental re-planning.
//!
//! Three deterministic reuse tiers. The region-level tiers (1 and 3) are
//! bit-identical to the uncached computation they replace; the
//! whole-plan tier (2) is exact for resubmissions of the same trace but
//! *approximate* across distinct traces — see below.
//!
//! 1. [`plan_file`] — the whole-file planning pipeline behind
//!    [`crate::policy::HarlPolicy`], factored out so it can optionally
//!    consult a reuse table of per-region grid results. With `reuse =
//!    None` it is exactly the old `HarlPolicy::plan` body (no keys are
//!    even computed); with a reuse table, regions whose [`RegionPlanKey`]
//!    matches a cached [`LayoutChoice`] skip Algorithm 2 entirely.
//! 2. [`PlanCache`] — whole-plan memoisation keyed by
//!    [`WorkloadFingerprint`], with deterministic LRU eviction (logical
//!    clock, ties broken by fingerprint order) and hit/miss/stale
//!    accounting. A stale entry (invalidated after online adaptation)
//!    still donates its per-region grid results for incremental re-use.
//!    The fingerprint is a lossy digest (log-bucketed counts, 5% write
//!    buckets, grid-rounded averages): equal traces always produce equal
//!    fingerprints, so a resubmission hit is bit-identical to re-planning
//!    that trace, but two *different* traces can bucket identically and
//!    then share the first submitter's plan — approximate workload
//!    matching by design, trading exactness for fleet-wide reuse.
//! 3. [`RegionPlanCache`] — the cross-tenant pool of per-region grid
//!    results, LRU-bounded the same way.
//!
//! The safety argument for bitwise equality covers the region tiers
//! only, and it is structural, not statistical: a [`RegionPlanKey`] is
//! the *exact* input of one
//! `optimize_region` call — the deterministic stride sample of the
//! region's requests (region-relative offsets, sizes, ops), the average
//! request size, and the grid geometry (`step`, `max_grid_points`).
//! `optimize_region` is a pure function of those inputs plus the model,
//! so replaying a cached result can never differ from recomputing it.
//! Thread budgets are deliberately excluded from the key: planning is
//! thread-count invariant (pinned by tests since PR 2). Caches are scoped
//! to one cost model — callers mixing models must segregate caches (the
//! fingerprint's class tags enforce this at the [`PlanCache`] tier).

// Index/iteration hygiene, ratcheted to deny: cache reuse must replay
// regions in canonical order, and an indexed loop is where an off-by-one
// would silently change which cached result a region receives.
#![deny(
    clippy::explicit_iter_loop,
    clippy::explicit_into_iter_loop,
    clippy::needless_range_loop,
    clippy::range_plus_one,
    clippy::range_minus_one
)]

use crate::fingerprint::WorkloadFingerprint;
use crate::multiprofile::MultiProfileModel;
use crate::optimizer::{optimize_region, LayoutChoice, OptimizerConfig, RegionRequests};
use crate::region::{divide_regions, RegionDivisionConfig};
use crate::rst::{RegionStripeTable, RstEntry};
use crate::trace::TraceRecord;
use harl_devices::OpKind;
use harl_simcore::SimContext;
use std::collections::BTreeMap;

/// One sampled request as the optimizer sees it (region-relative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SampledReq {
    /// Offset relative to the region start.
    pub offset: u64,
    /// Request size in bytes.
    pub size: u64,
    /// Whether the request is a write.
    pub write: bool,
}

/// The exact input of one per-region grid search — the region-cache key.
///
/// Equal keys guarantee `optimize_region` would return the identical
/// [`LayoutChoice`]; see the module docs for the argument.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionPlanKey {
    /// Average request size handed to Algorithm 2 (sets `R̄`).
    pub avg_request_size: u64,
    /// Grid step of the search.
    pub step: u64,
    /// Grid-point cap per axis (together with `step` fixes the effective
    /// step).
    pub max_grid_points: usize,
    /// The deterministic stride sample the cost evaluation runs on.
    pub sample: Vec<SampledReq>,
}

/// Build the [`RegionPlanKey`] for one region's grid search.
pub(crate) fn region_plan_key(
    reqs: &RegionRequests<'_>,
    avg_request_size: u64,
    cfg: &OptimizerConfig,
) -> RegionPlanKey {
    RegionPlanKey {
        avg_request_size,
        step: cfg.step,
        max_grid_points: cfg.max_grid_points,
        sample: reqs
            .sample(cfg.max_requests_per_eval)
            .into_iter()
            .map(|(offset, size, op)| SampledReq {
                offset,
                size,
                write: op == OpKind::Write,
            })
            .collect(),
    }
}

/// A reuse table of per-region grid results, keyed by exact search input.
pub type PlanReuse = BTreeMap<RegionPlanKey, LayoutChoice>;

/// The result of planning one file.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedFile {
    /// The merged region stripe table (what `HarlPolicy::plan` returns).
    pub rst: RegionStripeTable,
    /// Per-region grid results in pre-merge region order, with their keys
    /// — feed these back into a [`RegionPlanCache`] or the next re-plan's
    /// reuse table. Empty when planning ran without reuse (`reuse =
    /// None`), where key computation is skipped entirely.
    pub region_plans: Vec<(RegionPlanKey, LayoutChoice)>,
    /// Regions answered from the reuse table.
    pub reused: usize,
    /// Regions whose grid search actually ran.
    pub planned: usize,
}

/// Plan a whole file: Algorithm 1 region division, Algorithm 2 per-region
/// width search (fanned out across the thread budget), RST assembly and
/// adjacent-row merge.
///
/// `sorted` must be offset-sorted (from
/// [`crate::trace::Trace::sorted_by_offset`]). With `reuse = Some(table)`,
/// regions whose [`RegionPlanKey`] hits the table clone the cached choice
/// instead of searching — bit-identical output either way.
pub fn plan_file(
    ctx: &SimContext,
    model: &MultiProfileModel,
    sorted: &[TraceRecord],
    file_size: u64,
    division: &RegionDivisionConfig,
    optimizer: &OptimizerConfig,
    reuse: Option<&PlanReuse>,
) -> PlannedFile {
    match reuse {
        None => plan_cold(ctx, model, sorted, file_size, division, optimizer),
        Some(table) => plan_file_with(ctx, model, sorted, file_size, division, optimizer, |key| {
            table.get(key).cloned()
        }),
    }
}

/// The zero-overhead path: exactly the pre-cache planning pipeline, no
/// key computation, no per-region bookkeeping.
fn plan_cold(
    ctx: &SimContext,
    model: &MultiProfileModel,
    sorted: &[TraceRecord],
    file_size: u64,
    division: &RegionDivisionConfig,
    optimizer: &OptimizerConfig,
) -> PlannedFile {
    let regions = divide_regions(sorted, file_size, division);
    // One thread budget for the whole plan (the context override, else the
    // caller's config): with several regions the fan-out is region-level
    // (coarse, cache-friendly) and each region's grid search runs
    // sequentially; a single region keeps the budget for its inner grid
    // chunking. Either way each region's result is computed independently
    // and lands in its own slot, so the table is identical for every
    // thread count.
    let budget = ctx.threads_or(optimizer.threads);
    let outer = budget.min(regions.len().max(1));
    let inner = OptimizerConfig {
        threads: if outer > 1 { 1 } else { budget },
        ..optimizer.clone()
    };
    let planned = regions.len();
    let entries = crate::optimizer::fan_out(regions.len(), outer, |i| {
        let region = &regions[i];
        let records = &sorted[region.first_request..region.last_request];
        let reqs = RegionRequests::new(records, region.offset);
        let choice = optimize_region(ctx, model, &reqs, region.avg_request_size, &inner, i);
        RstEntry::new(region.offset, region.len(), choice.widths)
    });
    let mut table = RegionStripeTable::new(entries);
    table.merge_adjacent();
    PlannedFile {
        rst: table,
        region_plans: Vec::new(),
        reused: 0,
        planned,
    }
}

/// [`plan_file`] with an arbitrary (possibly stateful) reuse lookup —
/// the planning-service entry point, where one submit chains lookups
/// through the tenant's previous plan, a stale cache entry, and the
/// cross-tenant region pool.
///
/// The lookup runs sequentially in region order *before* the fan-out, so
/// a `FnMut` closure (e.g. one that bumps LRU clocks) stays deterministic
/// at any thread count.
pub fn plan_file_with(
    ctx: &SimContext,
    model: &MultiProfileModel,
    sorted: &[TraceRecord],
    file_size: u64,
    division: &RegionDivisionConfig,
    optimizer: &OptimizerConfig,
    mut lookup: impl FnMut(&RegionPlanKey) -> Option<LayoutChoice>,
) -> PlannedFile {
    let regions = divide_regions(sorted, file_size, division);
    let budget = ctx.threads_or(optimizer.threads);
    let outer = budget.min(regions.len().max(1));
    let inner = OptimizerConfig {
        threads: if outer > 1 { 1 } else { budget },
        ..optimizer.clone()
    };
    let keys: Vec<RegionPlanKey> = regions
        .iter()
        .map(|region| {
            let records = &sorted[region.first_request..region.last_request];
            let reqs = RegionRequests::new(records, region.offset);
            region_plan_key(&reqs, region.avg_request_size, optimizer)
        })
        .collect();
    let cached: Vec<Option<LayoutChoice>> = keys.iter().map(&mut lookup).collect();
    let reused = cached.iter().filter(|c| c.is_some()).count();
    let choices = crate::optimizer::fan_out(regions.len(), outer, |i| {
        if let Some(choice) = &cached[i] {
            choice.clone()
        } else {
            let region = &regions[i];
            let records = &sorted[region.first_request..region.last_request];
            let reqs = RegionRequests::new(records, region.offset);
            optimize_region(ctx, model, &reqs, region.avg_request_size, &inner, i)
        }
    });
    let entries = regions
        .iter()
        .zip(&choices)
        .map(|(region, choice)| RstEntry::new(region.offset, region.len(), choice.widths.clone()))
        .collect();
    let mut table = RegionStripeTable::new(entries);
    table.merge_adjacent();
    let planned = regions.len() - reused;
    PlannedFile {
        rst: table,
        region_plans: keys.into_iter().zip(choices).collect(),
        reused,
        planned,
    }
}

/// A whole-file plan as stored in the [`PlanCache`].
#[derive(Debug, Clone, PartialEq)]
pub struct CachedPlan {
    /// The merged RST to hand back on a hit.
    pub rst: RegionStripeTable,
    /// The pre-merge per-region grid results (for incremental reuse when
    /// the entry later goes stale).
    pub region_plans: Vec<(RegionPlanKey, LayoutChoice)>,
}

/// Hit/miss accounting for a [`PlanCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Lookups that found an invalidated entry.
    pub stale: u64,
    /// Entries evicted by the LRU.
    pub evictions: u64,
}

impl CacheStats {
    /// Hits over all lookups, 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.stale;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Outcome of a [`PlanCache::lookup`].
#[derive(Debug, Clone, PartialEq)]
pub enum CacheLookup {
    /// A live plan; use its RST as-is.
    Hit(CachedPlan),
    /// An invalidated plan, removed from the cache on the way out; its
    /// per-region grid results are still sound reuse candidates.
    Stale(CachedPlan),
    /// Nothing cached for this fingerprint.
    Miss,
}

#[derive(Debug, Clone)]
struct PlanSlot {
    plan: CachedPlan,
    last_used: u64,
    stale: bool,
}

/// Whole-plan memoisation keyed by [`WorkloadFingerprint`].
///
/// Eviction is least-recently-used by a logical clock that advances once
/// per lookup/insert (no wall time — the cache is part of the
/// deterministic data path); clock ties are impossible, but the backing
/// `BTreeMap` additionally fixes iteration order so behaviour is
/// reproducible even under replay.
#[derive(Debug, Clone)]
pub struct PlanCache {
    entries: BTreeMap<WorkloadFingerprint, PlanSlot>,
    capacity: usize,
    clock: u64,
    stats: CacheStats,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` plans. Capacity 0 turns
    /// the cache off: every lookup misses and inserts are dropped.
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            entries: BTreeMap::new(),
            capacity,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Cached plans currently resident.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Accounting so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Look up a fingerprint, updating recency and counters.
    pub fn lookup(&mut self, fp: &WorkloadFingerprint) -> CacheLookup {
        self.clock += 1;
        match self.entries.get_mut(fp) {
            Some(slot) if !slot.stale => {
                slot.last_used = self.clock;
                self.stats.hits += 1;
                CacheLookup::Hit(slot.plan.clone())
            }
            Some(_) => {
                self.stats.stale += 1;
                // Remove on the way out: the caller re-plans and re-inserts.
                let slot = self.entries.remove(fp);
                slot.map_or(CacheLookup::Miss, |s| CacheLookup::Stale(s.plan))
            }
            None => {
                self.stats.misses += 1;
                CacheLookup::Miss
            }
        }
    }

    /// Insert (or refresh) a plan, evicting LRU entries past capacity.
    pub fn insert(&mut self, fp: WorkloadFingerprint, plan: CachedPlan) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        let clock = self.clock;
        self.entries.insert(
            fp,
            PlanSlot {
                plan,
                last_used: clock,
                stale: false,
            },
        );
        while self.entries.len() > self.capacity {
            // Deterministic victim: smallest (last_used, fingerprint).
            let victim = self
                .entries
                .iter()
                .min_by(|a, b| (a.1.last_used, a.0).cmp(&(b.1.last_used, b.0)))
                .map(|(fp, _)| fp.clone());
            let Some(victim) = victim else { break };
            self.entries.remove(&victim);
            self.stats.evictions += 1;
        }
    }

    /// Mark a fingerprint's plan stale (its layout was adapted online).
    /// Returns whether a live entry was invalidated.
    pub fn invalidate(&mut self, fp: &WorkloadFingerprint) -> bool {
        match self.entries.get_mut(fp) {
            Some(slot) if !slot.stale => {
                slot.stale = true;
                true
            }
            _ => false,
        }
    }
}

/// Cross-tenant pool of per-region grid results, LRU-bounded like
/// [`PlanCache`].
#[derive(Debug, Clone)]
pub struct RegionPlanCache {
    entries: BTreeMap<RegionPlanKey, (LayoutChoice, u64)>,
    capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl RegionPlanCache {
    /// An empty pool holding at most `capacity` grid results; capacity 0
    /// disables it.
    pub fn new(capacity: usize) -> Self {
        RegionPlanCache {
            entries: BTreeMap::new(),
            capacity,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Cached grid results currently resident.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Look up one region's grid result, bumping recency on a hit.
    pub fn get(&mut self, key: &RegionPlanKey) -> Option<LayoutChoice> {
        self.clock += 1;
        match self.entries.get_mut(key) {
            Some((choice, last_used)) => {
                *last_used = self.clock;
                self.hits += 1;
                Some(choice.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert one grid result, evicting LRU entries past capacity.
    pub fn insert(&mut self, key: RegionPlanKey, choice: LayoutChoice) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        let clock = self.clock;
        self.entries.insert(key, (choice, clock));
        while self.entries.len() > self.capacity {
            let victim = self
                .entries
                .iter()
                .min_by(|a, b| (a.1 .1, a.0).cmp(&(b.1 .1, b.0)))
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            self.entries.remove(&victim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fingerprint_sorted;
    use crate::model::CostModelParams;
    use crate::policy::{HarlPolicy, LayoutPolicy};
    use crate::trace::Trace;
    use harl_pfs::ClusterConfig;
    use harl_simcore::SimNanos;

    const KB: u64 = 1024;
    const MB: u64 = 1024 * 1024;

    fn model() -> MultiProfileModel {
        CostModelParams::from_cluster(&ClusterConfig::paper_default()).into()
    }

    fn multi_phase_trace() -> (Trace, u64) {
        let mut records = Vec::new();
        for phase in 0..6u64 {
            let base = phase * 16 * MB;
            let size = (phase % 3 + 1) * 128 * KB;
            for i in 0..32u64 {
                records.push(TraceRecord {
                    rank: (i % 4) as u32,
                    fd: 0,
                    op: if phase % 2 == 0 {
                        OpKind::Read
                    } else {
                        OpKind::Write
                    },
                    offset: base + i * size,
                    size,
                    timestamp: SimNanos::from_nanos(phase * 1000 + i),
                });
            }
        }
        (Trace::from_records(records), 6 * 16 * MB)
    }

    fn division() -> RegionDivisionConfig {
        RegionDivisionConfig {
            fixed_region_size: 4 * MB,
            ..RegionDivisionConfig::default()
        }
    }

    #[test]
    fn cold_plan_matches_policy_plan() {
        let (trace, file_size) = multi_phase_trace();
        let mut policy = HarlPolicy::new(model());
        policy.division = division();
        let via_policy = policy.plan(&SimContext::new(), &trace, file_size);
        let sorted = trace.sorted_by_offset();
        let cold = plan_file(
            &SimContext::new(),
            &policy.model,
            &sorted,
            file_size,
            &policy.division,
            &policy.optimizer,
            None,
        );
        assert_eq!(cold.rst, via_policy);
        assert!(cold.region_plans.is_empty(), "cold path computes no keys");
        assert_eq!(cold.reused, 0);
    }

    #[test]
    fn empty_reuse_table_is_bit_identical_to_cold() {
        let (trace, file_size) = multi_phase_trace();
        let m = model();
        let sorted = trace.sorted_by_offset();
        let div = division();
        let cfg = OptimizerConfig::default();
        let ctx = SimContext::new();
        let cold = plan_file(&ctx, &m, &sorted, file_size, &div, &cfg, None);
        let empty = PlanReuse::new();
        let warm = plan_file(&ctx, &m, &sorted, file_size, &div, &cfg, Some(&empty));
        assert_eq!(warm.rst, cold.rst);
        assert_eq!(warm.reused, 0);
        assert_eq!(warm.planned, warm.region_plans.len());
    }

    #[test]
    fn full_reuse_skips_every_search_and_matches() {
        let (trace, file_size) = multi_phase_trace();
        let m = model();
        let sorted = trace.sorted_by_offset();
        let div = division();
        let cfg = OptimizerConfig::default();
        let ctx = SimContext::new();
        let first = plan_file(
            &ctx,
            &m,
            &sorted,
            file_size,
            &div,
            &cfg,
            Some(&PlanReuse::new()),
        );
        let reuse: PlanReuse = first.region_plans.iter().cloned().collect();
        let second = plan_file(&ctx, &m, &sorted, file_size, &div, &cfg, Some(&reuse));
        assert_eq!(second.rst, first.rst);
        assert_eq!(second.planned, 0, "every region should come from reuse");
        assert_eq!(second.reused, second.region_plans.len());
    }

    #[test]
    fn plan_cache_hit_returns_bit_identical_plan() {
        let (trace, file_size) = multi_phase_trace();
        let m = model();
        let sorted = trace.sorted_by_offset();
        let div = division();
        let fp = fingerprint_sorted(&sorted, file_size, &div, &m);
        let cold = plan_file(
            &SimContext::new(),
            &m,
            &sorted,
            file_size,
            &div,
            &OptimizerConfig::default(),
            Some(&PlanReuse::new()),
        );
        let mut cache = PlanCache::new(8);
        assert_eq!(cache.lookup(&fp), CacheLookup::Miss);
        cache.insert(
            fp.clone(),
            CachedPlan {
                rst: cold.rst.clone(),
                region_plans: cold.region_plans.clone(),
            },
        );
        match cache.lookup(&fp) {
            CacheLookup::Hit(plan) => assert_eq!(plan.rst, cold.rst),
            other => panic!("expected hit, got {other:?}"),
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let div = RegionDivisionConfig::default();
        let m = model();
        let fp = |size: u64| {
            let records: Vec<_> = (0..8)
                .map(|i| TraceRecord {
                    rank: 0,
                    fd: 0,
                    op: OpKind::Read,
                    offset: i * size,
                    size,
                    timestamp: SimNanos::ZERO,
                })
                .collect();
            fingerprint_sorted(&records, 8 * size, &div, &m)
        };
        let plan = CachedPlan {
            rst: RegionStripeTable::uniform(MB, vec![64 * KB, 64 * KB]),
            region_plans: Vec::new(),
        };
        let mut cache = PlanCache::new(2);
        let (a, b, c) = (fp(64 * KB), fp(128 * KB), fp(256 * KB));
        cache.insert(a.clone(), plan.clone());
        cache.insert(b.clone(), plan.clone());
        // Touch `a` so `b` becomes the LRU victim.
        assert!(matches!(cache.lookup(&a), CacheLookup::Hit(_)));
        cache.insert(c.clone(), plan.clone());
        assert_eq!(cache.len(), 2);
        assert!(matches!(cache.lookup(&a), CacheLookup::Hit(_)));
        assert!(matches!(cache.lookup(&b), CacheLookup::Miss));
        assert!(matches!(cache.lookup(&c), CacheLookup::Hit(_)));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let div = RegionDivisionConfig::default();
        let m = model();
        let fp = fingerprint_sorted(&[], MB, &div, &m);
        let mut cache = PlanCache::new(0);
        cache.insert(
            fp.clone(),
            CachedPlan {
                rst: RegionStripeTable::uniform(MB, vec![64 * KB, 64 * KB]),
                region_plans: Vec::new(),
            },
        );
        assert_eq!(cache.lookup(&fp), CacheLookup::Miss);
        assert!(cache.is_empty());
    }

    #[test]
    fn invalidated_entry_surfaces_as_stale_once() {
        let div = RegionDivisionConfig::default();
        let m = model();
        let fp = fingerprint_sorted(&[], MB, &div, &m);
        let mut cache = PlanCache::new(4);
        cache.insert(
            fp.clone(),
            CachedPlan {
                rst: RegionStripeTable::uniform(MB, vec![64 * KB, 64 * KB]),
                region_plans: Vec::new(),
            },
        );
        assert!(cache.invalidate(&fp));
        assert!(!cache.invalidate(&fp), "double invalidation is a no-op");
        assert!(matches!(cache.lookup(&fp), CacheLookup::Stale(_)));
        assert!(matches!(cache.lookup(&fp), CacheLookup::Miss));
        let stats = cache.stats();
        assert_eq!((stats.stale, stats.misses), (1, 1));
    }

    #[test]
    fn region_cache_round_trips_and_evicts() {
        let mut pool = RegionPlanCache::new(2);
        let key = |avg: u64| RegionPlanKey {
            avg_request_size: avg,
            step: 4096,
            max_grid_points: 128,
            sample: vec![SampledReq {
                offset: 0,
                size: avg,
                write: false,
            }],
        };
        let choice = |w: u64| LayoutChoice {
            widths: vec![w, w],
            cost: 1.0,
        };
        pool.insert(key(1), choice(4096));
        pool.insert(key(2), choice(8192));
        assert_eq!(pool.get(&key(1)), Some(choice(4096)));
        pool.insert(key(3), choice(12288));
        // key(2) was least recently used.
        assert_eq!(pool.get(&key(2)), None);
        assert_eq!(pool.get(&key(3)), Some(choice(12288)));
        assert_eq!(pool.len(), 2);
        let (hits, misses) = pool.stats();
        assert_eq!((hits, misses), (2, 1));
    }
}
