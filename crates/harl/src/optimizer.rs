//! Region stripe-size determination — the paper's Algorithm 2, for any
//! class count.
//!
//! [`optimize_region`] dispatches on the model's class count: `K = 2` runs
//! the paper's exhaustive grid below (bit-identical to the original
//! two-tier optimizer); `K ≥ 3` runs the deterministic coordinate descent
//! of [`crate::multiprofile::MultiProfileOptimizer`] under the same
//! configuration. The rest of this doc describes the `K = 2` grid.
//!
//! For each region, grid-search the stripe pair `(h, s)` in `step` (4 KiB)
//! increments, summing the cost-model prediction over the region's
//! requests, and keep the cheapest pair. Bounds follow the paper: `h` runs
//! from 0 (no data on HServers — the Fig. 9 optimum) to the region's
//! average request size `R̄`, and `s` from `h + step` upward ("s starts
//! from a size which is larger than h because this configuration can lead
//! to load balance among heterogeneous servers"). Two deviations, both
//! documented in DESIGN.md:
//!
//! * the paper's loop leaves `h = R̄` with an empty `s` range; we extend
//!   `s` to one step past `R̄` so that configuration is actually evaluated,
//!   and also evaluate the "single HServer" extreme `(R̄, 0)` the text
//!   calls out;
//! * region cost may be evaluated over an evenly-strided sample of at most
//!   `max_requests_per_eval` requests to bound off-line analysis time (the
//!   paper bounds it by running off-line; the sample is deterministic).
//!
//! The candidate grid is chunked across `std::thread::scope` workers; ties
//! break toward the lexicographically *largest* `(h, s)` (see
//! `pick_better`: fewer stripe fragments, and the paper's Fig. 9 optima)
//! so results are identical no matter how many threads run. Whole-file
//! planning ([`crate::policy::HarlPolicy`]) and on-line re-planning
//! ([`crate::online::OnlineMonitor`]) additionally fan out across
//! *regions* under the same [`OptimizerConfig::threads`] budget (see
//! `fan_out`); with more than one region in flight the inner grid search
//! runs sequentially, so the budget is never over-subscribed.
//!
//! Two hot-path optimizations keep each candidate cheap without changing
//! the result:
//!
//! * **weighted folding** — request cost depends on the offset only
//!   through `offset mod group` (the layout repeats every
//!   `M·h + N·s` bytes), so per candidate the sample collapses to unique
//!   `(offset mod group, size, op)` keys with multiplicities; uniform
//!   IOR-style regions fold thousands of requests into a handful of
//!   weighted evaluations;
//! * **monotone pruning** — per-request costs are non-negative, so a
//!   candidate is abandoned as soon as its running sum strictly exceeds
//!   the best cost found so far; an abandoned candidate can at best tie
//!   the incumbent on cost and is never reported, leaving the winner (and
//!   its exact summation order) unchanged.

use crate::cast::{u64_to_usize, usize_to_u64};
use crate::model::CostModelParams;
use crate::multiprofile::{MultiProfileModel, MultiProfileOptimizer};
use crate::trace::TraceRecord;
use harl_simcore::{registry, SimContext};
use serde::{Deserialize, Serialize};

/// Optimizer tuning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizerConfig {
    /// Grid step (paper: 4 KiB; "finer step values result in more precise
    /// h and s values, but with increased cost calculation overhead").
    pub step: u64,
    /// Upper bound on grid points per axis. For large `R̄` (e.g. the
    /// multi-MiB requests collective I/O produces) a fixed 4 KiB step would
    /// explode the grid; the effective step is raised to keep at most this
    /// many points per axis — the same precision/overhead dial the paper
    /// assigns to the user's choice of step.
    pub max_grid_points: usize,
    /// Cap on requests per cost evaluation (deterministic stride sample).
    pub max_requests_per_eval: usize,
    /// Worker threads for the grid search (1 = sequential).
    pub threads: usize,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            step: 4 * 1024,
            max_grid_points: 128,
            max_requests_per_eval: 4096,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        }
    }
}

impl OptimizerConfig {
    /// The step actually used for a region with average request size `avg`:
    /// the configured step, raised so the axis has at most
    /// `max_grid_points` points.
    pub fn effective_step(&self, avg: u64) -> u64 {
        let min_step = avg.div_ceil(usize_to_u64(self.max_grid_points.max(1)));
        let steps_needed = min_step.div_ceil(self.step).max(1);
        self.step * steps_needed
    }
}

/// The chosen per-class stripe widths for one region, with the predicted
/// cost — what [`optimize_region`] returns for any class count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayoutChoice {
    /// Stripe width per server class, in `ClusterConfig::classes` order.
    pub widths: Vec<u64>,
    /// Summed model cost of the (sampled) region requests, seconds.
    pub cost: f64,
}

impl LayoutChoice {
    /// Stripe width of one class (0 past the vector's end).
    #[inline]
    pub fn width(&self, class: usize) -> u64 {
        self.widths.get(class).copied().unwrap_or(0)
    }

    /// HServer stripe size — `widths[0]` (two-tier reporting shorthand).
    #[inline]
    pub fn h(&self) -> u64 {
        self.width(0)
    }

    /// SServer stripe size — `widths[1]` (two-tier reporting shorthand).
    #[inline]
    pub fn s(&self) -> u64 {
        self.width(1)
    }
}

/// A grid candidate of the `K = 2` exhaustive search (internal; the public
/// result type is [`LayoutChoice`]).
#[derive(Debug, Clone, Copy, PartialEq)]
struct StripeChoice {
    h: u64,
    s: u64,
    cost: f64,
}

/// A borrowed view of a region's requests with offsets made
/// region-relative (each region maps to its own physical file, so request
/// offsets inside it start from the region origin — paper Sec. III-G).
pub struct RegionRequests<'a> {
    records: &'a [TraceRecord],
    region_offset: u64,
}

impl<'a> RegionRequests<'a> {
    /// Wrap the offset-sorted records of one region.
    pub fn new(records: &'a [TraceRecord], region_offset: u64) -> Self {
        RegionRequests {
            records,
            region_offset,
        }
    }

    /// Model cost of this region under per-class widths, summed over the
    /// (sampled) requests — exposed for baseline policies that search a
    /// restricted candidate set. (The two-tier pair form `cost_of` lives
    /// in `crate::compat`.)
    pub fn cost_of_widths(&self, model: &MultiProfileModel, widths: &[u64], cap: usize) -> f64 {
        crate::fold::sum_f64(
            self.sample(cap)
                .iter()
                .map(|&(o, r, op)| model.request_cost(o, r, op, widths)),
        )
    }

    /// Deterministic stride sample of at most `cap` requests.
    pub(crate) fn sample(&self, cap: usize) -> Vec<(u64, u64, harl_devices::OpKind)> {
        let n = self.records.len();
        let stride = n.div_ceil(cap.max(1)).max(1);
        self.records
            .iter()
            .step_by(stride)
            .map(|r| (r.offset.saturating_sub(self.region_offset), r.size, r.op))
            .collect()
    }
}

/// Candidate `(h, s)` pairs for a given `R̄`, per Algorithm 2's loops plus
/// the two extremes.
fn candidates(avg: u64, step: u64, m: usize, n: usize) -> Vec<(u64, u64)> {
    let r_bar = avg.max(step).div_ceil(step) * step; // round up to the grid
    let mut out = Vec::new();
    if m == 0 {
        // No HServers: only the h = 0 column is meaningful.
        for s in (step..=r_bar).step_by(u64_to_usize(step)) {
            out.push((0, s));
        }
        return out;
    }
    for h in (0..=r_bar).step_by(u64_to_usize(step)) {
        let mut s = h + step;
        while s <= r_bar + step {
            // s > h per the paper's load-balance argument; the +step slack
            // makes h = R̄ evaluable (see module docs).
            if n > 0 {
                out.push((h, s));
            }
            s += step;
        }
    }
    if m > 0 {
        // The "single HServer" extreme: all data on HServers at width R̄.
        out.push((r_bar, 0));
    }
    // Drop pairs that would have zero total capacity on this cluster.
    out.retain(|&(h, s)| usize_to_u64(m) * h + usize_to_u64(n) * s > 0);
    out
}

/// Run Algorithm 2 for one region — the single layout-planning entry
/// point, dispatching on the model's class count.
///
/// * `K = 2` — the paper's exhaustive `(h, s)` grid, bit-identical to the
///   pre-generalisation optimizer (fig7-golden-guarded): ties break to the
///   largest `(h, s)` (see `pick_better`).
/// * `K ≥ 3` — deterministic coordinate descent
///   ([`MultiProfileOptimizer`]), sharing the step / grid-point / sample
///   budget of the same [`OptimizerConfig`].
///
/// `avg_request_size` is the region's `R̄` from Algorithm 1.
///
/// When the context's recorder is enabled, the search additionally records
/// the winning widths and their predicted cost under the `region` label
/// (`harl.optimizer.*`; at `K = 2` the grid size too). The per-request
/// predicted cost (`harl.model.predicted_request_cost_s`) is the
/// "predicted" side of the model-drift residual tracked by
/// [`crate::online::OnlineMonitor`]. Callers that plan a single region
/// (baseline policies, benches) pass `region = 0`.
pub fn optimize_region(
    ctx: &SimContext,
    model: &MultiProfileModel,
    requests: &RegionRequests<'_>,
    avg_request_size: u64,
    cfg: &OptimizerConfig,
    region: usize,
) -> LayoutChoice {
    let recorder = ctx.recorder();
    if !recorder.is_enabled() {
        return optimize_region_sampled(model, requests, avg_request_size, cfg).0;
    }
    let start = std::time::Instant::now();
    let (choice, sampled) = optimize_region_sampled(model, requests, avg_request_size, cfg);
    let wall = start.elapsed();
    let labels = [("region", region.to_string())];
    if model.class_count() == 2 {
        let step = cfg.effective_step(avg_request_size.max(1));
        recorder.counter_add(
            registry::HARL_OPTIMIZER_CANDIDATES.name,
            &labels,
            usize_to_u64(
                candidates(
                    avg_request_size,
                    step,
                    model.classes[0].count,
                    model.classes[1].count,
                )
                .len(),
            ),
        );
        recorder.gauge_set(
            registry::HARL_OPTIMIZER_STRIPE_H.name,
            &labels,
            choice.h() as f64,
        );
        recorder.gauge_set(
            registry::HARL_OPTIMIZER_STRIPE_S.name,
            &labels,
            choice.s() as f64,
        );
    } else {
        for (class, &w) in choice.widths.iter().enumerate() {
            recorder.gauge_set(
                registry::HARL_OPTIMIZER_STRIPE_WIDTH.name,
                &[("region", region.to_string()), ("class", class.to_string())],
                w as f64,
            );
        }
    }
    recorder.observe_f64(
        registry::HARL_OPTIMIZER_PREDICTED_COST_S.name,
        &labels,
        choice.cost,
    );
    recorder.observe_f64(
        registry::HARL_OPTIMIZER_PLAN_WALL_S.name,
        &labels,
        wall.as_secs_f64(),
    );
    if sampled > 0 {
        recorder.observe_f64(
            registry::HARL_MODEL_PREDICTED_REQUEST_COST_S.name,
            &labels,
            choice.cost / sampled as f64,
        );
    }
    choice
}

/// [`optimize_region`] that also returns how many requests the evaluation
/// sampled, so callers that need the count (e.g. for per-request metrics)
/// don't have to re-materialise the sample.
fn optimize_region_sampled(
    model: &MultiProfileModel,
    requests: &RegionRequests<'_>,
    avg_request_size: u64,
    cfg: &OptimizerConfig,
) -> (LayoutChoice, usize) {
    assert!(cfg.step > 0, "grid step must be positive");
    if model.class_count() != 2 {
        let sample = requests.sample(cfg.max_requests_per_eval);
        let sampled = sample.len();
        let opt = MultiProfileOptimizer {
            model: model.clone(),
            step: cfg.step,
            max_grid_points: cfg.max_grid_points,
            max_sweeps: 16,
        };
        let (widths, cost) = opt.optimize(&sample, avg_request_size);
        return (LayoutChoice { widths, cost }, sampled);
    }
    let pair = CostModelParams::from_multi(model.clone());
    let step = cfg.effective_step(avg_request_size.max(1));
    let sample = requests.sample(cfg.max_requests_per_eval);
    let cands = candidates(avg_request_size, step, pair.m(), pair.n());
    assert!(
        !cands.is_empty(),
        "no stripe candidates (cluster has no servers?)"
    );
    // An empty region (no requests) has zero cost everywhere; fall back to
    // a balanced default: the fixed stripe at R̄ (or one step).
    if sample.is_empty() {
        let w = avg_request_size.max(step).div_ceil(step) * step;
        return (
            LayoutChoice {
                widths: vec![
                    if pair.m() > 0 { w } else { 0 },
                    if pair.n() > 0 { w } else { 0 },
                ],
                cost: 0.0,
            },
            0,
        );
    }

    let threads = cfg.threads.max(1).min(cands.len());
    let best = if threads == 1 {
        best_of(&pair, &sample, &cands)
    } else {
        let chunk = cands.len().div_ceil(threads);
        let mut results: Vec<Option<StripeChoice>> = vec![None; threads];
        std::thread::scope(|scope| {
            for (slot, part) in results.iter_mut().zip(cands.chunks(chunk)) {
                let sample = &sample;
                let pair = &pair;
                scope.spawn(move || {
                    *slot = Some(best_of(pair, sample, part));
                });
            }
        });
        // `cands` is non-empty (asserted above), so at least one slot is
        // filled and the infinite-cost sentinel always loses to a real
        // candidate under pick_better's ordering.
        results.into_iter().flatten().fold(
            StripeChoice {
                h: 0,
                s: 0,
                cost: f64::INFINITY,
            },
            pick_better,
        )
    };
    (
        LayoutChoice {
            widths: vec![best.h, best.s],
            cost: best.cost,
        },
        sample.len(),
    )
}

/// A maximal strided run of the sample: `count` requests of one `size`
/// and `op` at offsets `o0 + j·d` for `j = 0..count`.
///
/// Request cost depends on the offset only through `offset mod group`, and
/// the residues of an arithmetic progression mod `G` cycle with period
/// `P = G / gcd(d, G)` — so a run folds analytically into at most
/// `min(P, count)` weighted cost evaluations per candidate, with exact
/// multiplicities and no per-request work. Uniform regions are one long
/// run; irregular samples decompose into short runs, where a length-1 run
/// reproduces the plain per-request evaluation bit for bit.
struct StridedRun {
    o0: u64,
    d: u64,
    size: u64,
    op: harl_devices::OpKind,
    count: usize,
}

/// Greedy decomposition of the sample into maximal strided runs.
fn strided_runs(sample: &[(u64, u64, harl_devices::OpKind)]) -> Vec<StridedRun> {
    let mut runs: Vec<StridedRun> = Vec::new();
    for &(o, r, op) in sample {
        if let Some(run) = runs.last_mut() {
            if run.size == r && run.op == op {
                if run.count == 1 {
                    run.d = o.wrapping_sub(run.o0);
                    run.count = 2;
                    continue;
                }
                if o == run.o0.wrapping_add(usize_to_u64(run.count) * run.d) {
                    run.count += 1;
                    continue;
                }
            }
        }
        runs.push(StridedRun {
            o0: o,
            d: 0,
            size: r,
            op,
            count: 1,
        });
    }
    runs
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

fn best_of(
    model: &CostModelParams,
    sample: &[(u64, u64, harl_devices::OpKind)],
    cands: &[(u64, u64)],
) -> StripeChoice {
    let mut best = StripeChoice {
        h: 0,
        s: 0,
        cost: f64::INFINITY,
    };
    let runs = strided_runs(sample);
    let startup = model.startup_table();
    'cands: for &(h, s) in cands {
        let group = usize_to_u64(model.m()) * h + usize_to_u64(model.n()) * s;
        let mut cost = crate::fold::OrderedSum::new();
        for run in &runs {
            let d = run.d % group;
            let period = if d == 0 {
                1
            } else {
                u64_to_usize(group / gcd(d, group))
            };
            let n = run.count;
            // Residue j of the cycle appears ⌈n/P⌉ times for j < n mod P
            // and ⌊n/P⌋ after; with P > n the first n residues appear once.
            let (whole, extra) = (n / period, n % period);
            let mut r = run.o0 % group;
            for j in 0..period.min(n) {
                let mult = if period <= n {
                    (whole + usize::from(j < extra)) as f64
                } else {
                    1.0
                };
                cost.add(mult * model.request_cost_with(&startup, r, run.size, run.op, h, s));
                if cost.value() > best.cost {
                    continue 'cands; // cannot win, even on the tie-break
                }
                r += d;
                if r >= group {
                    r -= group;
                }
            }
        }
        best = pick_better(
            best,
            StripeChoice {
                h,
                s,
                cost: cost.value(),
            },
        );
    }
    best
}

/// Deterministic comparison: strictly lower cost wins; ties break to the
/// lexicographically *larger* `(h, s)`.
///
/// Ties are common: the model aggregates per-server bytes, so all stripe
/// sizes that split a request identically across servers cost the same
/// (e.g. every `s ∈ {4K..64K}` for a 128 KiB request on two SServers).
/// Preferring the larger stripe means fewer stripe fragments and less
/// metadata — and matches the paper's reported optima (Fig. 9's
/// `{0, 64K}` rather than `{0, 4K}`).
// Exact comparison, allowlisted in lint.allow.toml: a tolerance here would
// make the winner depend on evaluation order and break bit-determinism
// across thread counts.
#[allow(clippy::float_cmp)]
fn pick_better(a: StripeChoice, b: StripeChoice) -> StripeChoice {
    if b.cost < a.cost || (b.cost == a.cost && (b.h, b.s) > (a.h, a.s)) {
        b
    } else {
        a
    }
}

/// Compute `f(0..count)` across up to `threads` scoped workers, returning
/// results in index order.
///
/// The region-level fan-out used by [`crate::policy::HarlPolicy`] and
/// [`crate::online::OnlineMonitor`]: regions are independent, so planning
/// them concurrently is coarse-grained and cache-friendly. Each index
/// writes into its own slot, so the output (and therefore the planned
/// layout) is identical for every thread count.
pub(crate) fn fan_out<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.max(1).min(count);
    if workers <= 1 {
        return (0..count).map(f).collect();
    }
    let chunk = count.div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|ci| {
                let f = &f;
                scope.spawn(move || {
                    let lo = ci * chunk;
                    let hi = count.min(lo + chunk);
                    (lo..hi).map(f).collect::<Vec<T>>()
                })
            })
            .collect();
        // Joining in spawn order keeps results index-ordered; a worker
        // panic is re-raised on the caller as thread::scope would.
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    // Tests assert exact values: outputs are deterministic by design.
    #![allow(clippy::float_cmp)]

    use super::*;
    use harl_devices::{hdd_2015_preset, ssd_2015_preset, NetworkProfile, OpKind};
    use harl_pfs::ClusterConfig;
    use harl_simcore::SimNanos;

    const KB: u64 = 1024;

    fn model() -> CostModelParams {
        CostModelParams::from_cluster(&ClusterConfig::paper_default())
    }

    fn recs(n: usize, size: u64, op: OpKind) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| TraceRecord {
                rank: 0,
                fd: 0,
                op,
                offset: i as u64 * size,
                size,
                timestamp: SimNanos::ZERO,
            })
            .collect()
    }

    #[test]
    fn read_512k_prefers_small_h_large_s() {
        // The paper's headline result: optimal read layout on 6H+2S at
        // 512 KiB requests is ~{32K, 160K} — h well below 64K, s well above.
        let m = model();
        let trace = recs(64, 512 * KB, OpKind::Read);
        let reqs = RegionRequests::new(&trace, 0);
        let cfg = OptimizerConfig {
            threads: 2,
            ..OptimizerConfig::default()
        };
        let choice = optimize_region(&SimContext::new(), &m, &reqs, 512 * KB, &cfg, 0);
        assert!(
            choice.h() > 0 && choice.h() <= 64 * KB,
            "h = {} out of expected band",
            choice.h()
        );
        assert!(
            choice.s() >= 96 * KB,
            "s = {} should be far larger than h",
            choice.s()
        );
        assert!(choice.s() > choice.h());
    }

    #[test]
    fn small_requests_go_ssd_only() {
        // Fig. 9: 128 KiB requests ⇒ {0, 64K}.
        let m = model();
        let trace = recs(64, 128 * KB, OpKind::Read);
        let reqs = RegionRequests::new(&trace, 0);
        let choice = optimize_region(
            &SimContext::new(),
            &m,
            &reqs,
            128 * KB,
            &OptimizerConfig::default(),
            0,
        );
        assert_eq!(choice.h(), 0, "expected SServer-only, got {choice:?}");
        assert_eq!(choice.s(), 64 * KB);
    }

    #[test]
    fn write_optimum_differs_from_read() {
        let m = model();
        let reads = recs(64, 512 * KB, OpKind::Read);
        let writes = recs(64, 512 * KB, OpKind::Write);
        let r = optimize_region(
            &SimContext::new(),
            &m,
            &RegionRequests::new(&reads, 0),
            512 * KB,
            &OptimizerConfig::default(),
            0,
        );
        let w = optimize_region(
            &SimContext::new(),
            &m,
            &RegionRequests::new(&writes, 0),
            512 * KB,
            &OptimizerConfig::default(),
            0,
        );
        // SServer writes are slower, so the write optimum shifts load back
        // toward HServers (s_w <= s_r) — as in the paper ({36K,148K} vs
        // {32K,160K}).
        assert!(w.s() <= r.s(), "write s {} vs read s {}", w.s(), r.s());
        assert!(w.h() >= r.h(), "write h {} vs read h {}", w.h(), r.h());
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let m = model();
        let trace = recs(100, 512 * KB, OpKind::Read);
        let reqs = RegionRequests::new(&trace, 0);
        let base = OptimizerConfig::default();
        let c1 = optimize_region(
            &SimContext::new(),
            &m,
            &reqs,
            512 * KB,
            &OptimizerConfig {
                threads: 1,
                ..base.clone()
            },
            0,
        );
        let c8 = optimize_region(
            &SimContext::new(),
            &m,
            &reqs,
            512 * KB,
            &OptimizerConfig { threads: 8, ..base },
            0,
        );
        assert_eq!(c1, c8);
    }

    #[test]
    fn chosen_pair_is_grid_optimal() {
        // Exhaustively verify the optimizer result against a brute-force
        // scan on a small grid.
        let m = model();
        let trace = recs(16, 64 * KB, OpKind::Read);
        let reqs = RegionRequests::new(&trace, 0);
        let cfg = OptimizerConfig {
            step: 16 * KB,
            max_grid_points: 128,
            max_requests_per_eval: 16,
            threads: 1,
        };
        let choice = optimize_region(&SimContext::new(), &m, &reqs, 64 * KB, &cfg, 0);
        let sample: Vec<_> = trace.iter().map(|r| (r.offset, r.size, r.op)).collect();
        for (h, s) in candidates(64 * KB, 16 * KB, m.m(), m.n()) {
            let c: f64 = sample
                .iter()
                .map(|&(o, r, op)| m.request_cost(o, r, op, h, s))
                .sum();
            assert!(
                c >= choice.cost - 1e-15,
                "candidate ({h},{s}) cost {c} beats chosen {}",
                choice.cost
            );
        }
    }

    #[test]
    fn region_relative_offsets_used() {
        // Same requests shifted by a region offset must optimise the same.
        let m = model();
        let base = recs(32, 256 * KB, OpKind::Read);
        let shifted: Vec<TraceRecord> = base
            .iter()
            .map(|r| TraceRecord {
                offset: r.offset + 512 * 1024 * 1024,
                ..*r
            })
            .collect();
        let a = optimize_region(
            &SimContext::new(),
            &m,
            &RegionRequests::new(&base, 0),
            256 * KB,
            &OptimizerConfig::default(),
            0,
        );
        let b = optimize_region(
            &SimContext::new(),
            &m,
            &RegionRequests::new(&shifted, 512 * 1024 * 1024),
            256 * KB,
            &OptimizerConfig::default(),
            0,
        );
        assert_eq!(a.widths, b.widths);
        assert!((a.cost - b.cost).abs() < 1e-12);
    }

    #[test]
    fn empty_region_gets_balanced_default() {
        let m = model();
        let reqs = RegionRequests::new(&[], 0);
        let choice = optimize_region(
            &SimContext::new(),
            &m,
            &reqs,
            128 * KB,
            &OptimizerConfig::default(),
            0,
        );
        assert_eq!(choice.widths, vec![128 * KB, 128 * KB]);
        assert_eq!(choice.cost, 0.0);
    }

    #[test]
    fn sampling_cap_changes_cost_not_choice() {
        let m = model();
        let trace = recs(1000, 512 * KB, OpKind::Read);
        let reqs = RegionRequests::new(&trace, 0);
        let full = OptimizerConfig {
            max_requests_per_eval: 1000,
            threads: 1,
            ..OptimizerConfig::default()
        };
        let sampled = OptimizerConfig {
            max_requests_per_eval: 50,
            threads: 1,
            ..OptimizerConfig::default()
        };
        let a = optimize_region(&SimContext::new(), &m, &reqs, 512 * KB, &full, 0);
        let b = optimize_region(&SimContext::new(), &m, &reqs, 512 * KB, &sampled, 0);
        assert_eq!(a.widths, b.widths, "uniform workload: same optimum");
    }

    #[test]
    fn candidates_include_extremes() {
        let c = candidates(64 * KB, 16 * KB, 6, 2);
        assert!(c.contains(&(0, 16 * KB)), "SServer-only start");
        assert!(c.contains(&(64 * KB, 0)), "single-HServer extreme");
        assert!(c.contains(&(64 * KB, 64 * KB + 16 * KB)), "h = R̄ evaluable");
        // s always strictly greater than h except the (R̄, 0) extreme.
        assert!(c.iter().all(|&(h, s)| s > h || s == 0));
    }

    #[test]
    fn recorded_context_matches_plain_and_times_the_plan() {
        let m = model();
        let trace = recs(64, 512 * KB, OpKind::Read);
        let reqs = RegionRequests::new(&trace, 0);
        let cfg = OptimizerConfig {
            threads: 1,
            ..OptimizerConfig::default()
        };
        let recorder = std::sync::Arc::new(harl_simcore::MemoryRecorder::new());
        let ctx = SimContext::recorded(recorder.clone());
        let recorded = optimize_region(&ctx, &m, &reqs, 512 * KB, &cfg, 3);
        let plain = optimize_region(&SimContext::new(), &m, &reqs, 512 * KB, &cfg, 0);
        assert_eq!(recorded, plain);
        let labels = [("region", "3".to_string())];
        let wall = recorder
            .summary_snapshot("harl.optimizer.plan_wall_s", &labels)
            .expect("plan wall time recorded");
        assert_eq!(wall.count(), 1);
        assert!(wall.mean() > 0.0);
        let per_request = recorder
            .summary_snapshot(registry::HARL_MODEL_PREDICTED_REQUEST_COST_S.name, &labels)
            .expect("per-request predicted cost recorded");
        assert!((per_request.mean() - plain.cost / 64.0).abs() < 1e-12);
    }

    #[test]
    fn hserver_only_cluster_still_works() {
        let m = CostModelParams::new(
            4,
            0,
            &NetworkProfile::gigabit_ethernet(),
            &hdd_2015_preset(),
            &ssd_2015_preset(),
        );
        let trace = recs(16, 256 * KB, OpKind::Read);
        let reqs = RegionRequests::new(&trace, 0);
        let choice = optimize_region(
            &SimContext::new(),
            &m,
            &reqs,
            256 * KB,
            &OptimizerConfig::default(),
            0,
        );
        assert!(choice.h() > 0);
        assert!(choice.cost.is_finite());
    }
}
