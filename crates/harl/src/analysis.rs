//! Trace pattern analysis.
//!
//! The paper leans on the observation that *"many data-intensive
//! applications have predictable I/O patterns"* (Sec. III-A). This module
//! quantifies a trace's pattern — read/write mix, request-size
//! distribution, sequentiality per rank, size histogram — both for
//! operator-facing reports (the `harl-cli trace-info` command) and for
//! sanity checks before trusting a trace to drive placement.

use crate::cast::f64_to_u64;
use crate::region::Region;
use crate::trace::{Trace, TraceRecord};
use harl_devices::OpKind;
use harl_simcore::{ByteSize, Histogram, OnlineStats};
use serde::{Deserialize, Serialize};

/// Summary statistics of one trace (or one region's slice of it).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Number of requests.
    pub requests: usize,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Fraction of requests that are reads (0..=1).
    pub read_fraction: f64,
    /// Mean request size in bytes.
    pub mean_size: f64,
    /// Coefficient of variation of request sizes (Algorithm 1's signal).
    pub size_cv: f64,
    /// Smallest request.
    pub min_size: u64,
    /// Largest request.
    pub max_size: u64,
    /// Highest byte touched (exclusive).
    pub extent: u64,
    /// Fraction of per-rank consecutive requests that continue exactly
    /// where the previous one ended (1.0 = fully sequential streams,
    /// ~0.0 = random).
    pub sequentiality: f64,
    /// Number of distinct ranks issuing requests.
    pub ranks: usize,
}

impl TraceSummary {
    /// A coarse classification string for reports.
    pub fn pattern_label(&self) -> &'static str {
        match (self.sequentiality > 0.5, self.size_cv < 0.25) {
            (true, true) => "sequential/uniform",
            (true, false) => "sequential/mixed-size",
            (false, true) => "random/uniform",
            (false, false) => "random/mixed-size",
        }
    }

    /// One-line human rendering.
    pub fn render(&self) -> String {
        format!(
            "{} requests ({:.0}% reads), sizes {}..{} (mean {}, cv {:.2}), \
             extent {}, sequentiality {:.0}%, {} ranks => {}",
            self.requests,
            self.read_fraction * 100.0,
            ByteSize(self.min_size),
            ByteSize(self.max_size),
            ByteSize(f64_to_u64(self.mean_size)),
            self.size_cv,
            ByteSize(self.extent),
            self.sequentiality * 100.0,
            self.ranks,
            self.pattern_label()
        )
    }
}

/// Summarise a set of records (not necessarily sorted).
///
/// Single pass over the records: per-rank sequentiality state lives in a
/// hash map keyed by rank, so cost is O(records) rather than the
/// O(records × ranks) of re-scanning the slice once per rank.
pub fn summarize_records(records: &[TraceRecord]) -> TraceSummary {
    let mut sizes = OnlineStats::new();
    let mut bytes_read = 0;
    let mut bytes_written = 0;
    let mut reads = 0usize;
    let mut min_size = u64::MAX;
    let mut max_size = 0;
    let mut extent = 0;
    // Sequentiality: per rank, in record order (collection order is issue
    // order), how often does a request continue the previous one? The map
    // holds each rank's expected next offset (end of its last request).
    let mut next_per_rank: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    let mut continuations = 0usize;
    let mut pairs = 0usize;
    for r in records {
        sizes.push(r.size as f64);
        match r.op {
            OpKind::Read => {
                bytes_read += r.size;
                reads += 1;
            }
            OpKind::Write => bytes_written += r.size,
        }
        min_size = min_size.min(r.size);
        max_size = max_size.max(r.size);
        extent = extent.max(r.offset + r.size);
        if let Some(next) = next_per_rank.insert(r.rank, r.offset + r.size) {
            pairs += 1;
            if next == r.offset {
                continuations += 1;
            }
        }
    }
    let ranks = next_per_rank.len();

    TraceSummary {
        requests: records.len(),
        bytes_read,
        bytes_written,
        read_fraction: if records.is_empty() {
            0.0
        } else {
            reads as f64 / records.len() as f64
        },
        mean_size: sizes.mean(),
        size_cv: sizes.cv(),
        min_size: if records.is_empty() { 0 } else { min_size },
        max_size,
        extent,
        sequentiality: if pairs == 0 {
            0.0
        } else {
            continuations as f64 / pairs as f64
        },
        ranks,
    }
}

/// Summarise a whole trace.
pub fn summarize(trace: &Trace) -> TraceSummary {
    summarize_records(trace.records())
}

/// Per-region summaries given an Algorithm 1 division of the offset-sorted
/// trace.
pub fn summarize_regions(sorted: &[TraceRecord], regions: &[Region]) -> Vec<TraceSummary> {
    regions
        .iter()
        .map(|r| summarize_records(&sorted[r.first_request..r.last_request]))
        .collect()
}

/// Power-of-two request-size histogram of a trace.
pub fn size_histogram(trace: &Trace) -> Histogram {
    let mut h = Histogram::new();
    for r in trace.records() {
        h.record(r.size);
    }
    h
}

#[cfg(test)]
mod tests {
    // Tests assert exact values: outputs are deterministic by design.
    #![allow(clippy::float_cmp)]

    use super::*;
    use harl_simcore::SimNanos;

    fn rec(rank: u32, offset: u64, size: u64, op: OpKind) -> TraceRecord {
        TraceRecord {
            rank,
            fd: 0,
            op,
            offset,
            size,
            timestamp: SimNanos::ZERO,
        }
    }

    #[test]
    fn empty_trace_summary() {
        let s = summarize(&Trace::new());
        assert_eq!(s.requests, 0);
        assert_eq!(s.read_fraction, 0.0);
        assert_eq!(s.sequentiality, 0.0);
        assert_eq!(s.min_size, 0);
    }

    #[test]
    fn sequential_stream_detected() {
        let recs: Vec<_> = (0..32)
            .map(|i| rec(0, i * 4096, 4096, OpKind::Read))
            .collect();
        let s = summarize_records(&recs);
        assert_eq!(s.sequentiality, 1.0);
        assert_eq!(s.pattern_label(), "sequential/uniform");
        assert_eq!(s.ranks, 1);
        assert_eq!(s.extent, 32 * 4096);
    }

    #[test]
    fn interleaved_ranks_are_sequential_per_rank() {
        // Two ranks interleave in time but each streams sequentially.
        let mut recs = Vec::new();
        for i in 0..16u64 {
            recs.push(rec(0, i * 4096, 4096, OpKind::Read));
            recs.push(rec(1, (1 << 20) + i * 4096, 4096, OpKind::Read));
        }
        let s = summarize_records(&recs);
        assert_eq!(s.sequentiality, 1.0, "per-rank view must see the streams");
        assert_eq!(s.ranks, 2);
    }

    #[test]
    fn random_pattern_detected() {
        let offsets = [9u64, 2, 7, 1, 5, 3, 8, 0, 6, 4];
        let recs: Vec<_> = offsets
            .iter()
            .map(|&o| rec(0, o << 20, 4096, OpKind::Write))
            .collect();
        let s = summarize_records(&recs);
        assert!(s.sequentiality < 0.2);
        assert_eq!(s.pattern_label(), "random/uniform");
        assert_eq!(s.read_fraction, 0.0);
    }

    #[test]
    fn mixed_sizes_raise_cv() {
        let recs = vec![
            rec(0, 0, 4096, OpKind::Read),
            rec(0, 4096, 2 << 20, OpKind::Read),
            rec(0, (2 << 20) + 4096, 4096, OpKind::Read),
        ];
        let s = summarize_records(&recs);
        assert!(s.size_cv > 0.5);
        assert!(s.pattern_label().ends_with("mixed-size"));
        assert_eq!(s.min_size, 4096);
        assert_eq!(s.max_size, 2 << 20);
    }

    #[test]
    fn per_region_summaries_follow_division() {
        use crate::region::{divide_regions, RegionDivisionConfig};
        let mut records: Vec<_> = (0..64)
            .map(|i| rec(0, i * 64 * 1024, 64 * 1024, OpKind::Read))
            .collect();
        let boundary = 64 * 64 * 1024;
        records.extend((0..64).map(|i| rec(0, boundary + i * (1 << 20), 1 << 20, OpKind::Read)));
        let cfg = RegionDivisionConfig {
            fixed_region_size: 1 << 20,
            ..RegionDivisionConfig::default()
        };
        let regions = divide_regions(&records, boundary + 64 * (1 << 20), &cfg);
        let summaries = summarize_regions(&records, &regions);
        assert_eq!(summaries.len(), regions.len());
        let total: usize = summaries.iter().map(|s| s.requests).sum();
        assert_eq!(total, records.len());
    }

    #[test]
    fn histogram_buckets_sizes() {
        let trace = Trace::from_records(vec![
            rec(0, 0, 4096, OpKind::Read),
            rec(0, 0, 4096, OpKind::Read),
            rec(0, 0, 1 << 20, OpKind::Read),
        ]);
        let h = size_histogram(&trace);
        assert_eq!(h.count(), 3);
        assert_eq!(h.bucket_for(4096), 2);
        assert_eq!(h.bucket_for(1 << 20), 1);
    }

    #[test]
    fn render_is_informative() {
        let recs: Vec<_> = (0..4)
            .map(|i| rec(0, i * 4096, 4096, OpKind::Read))
            .collect();
        let line = summarize_records(&recs).render();
        assert!(line.contains("4 requests"));
        assert!(line.contains("100% reads"));
        assert!(line.contains("sequential/uniform"));
    }
}
