//! Fixed-order floating-point accumulation.
//!
//! Bit-determinism (same Scenario + seed ⇒ byte-identical report) extends
//! to every `f64` in the cost model: float addition is not associative, so
//! the *order* of an accumulation is part of the result. These helpers
//! make that order explicit — a strict left-to-right fold from `0.0`,
//! exactly what `Iterator::sum::<f64>()` and a sequential `+=` loop
//! compute today — so that refactors which chunk, reverse, or parallelise
//! the surrounding iteration cannot silently change the result bits
//! without changing the call site. The `float-accumulation` lint rule
//! (HL011, DESIGN.md Appendix D) points model/optimizer code here.

/// Sum `f64` values in iteration order: a left fold from `+0.0`.
///
/// Bit-identical to `iter.sum::<f64>()` for the same element order; the
/// point of calling it by name is that the order becomes part of the
/// contract.
pub fn sum_f64<I: IntoIterator<Item = f64>>(xs: I) -> f64 {
    let mut acc = OrderedSum::new();
    for x in xs {
        acc.add(x);
    }
    acc.value()
}

/// A running left-to-right `f64` accumulator for loops that cannot be
/// written as one iterator chain (early exits, interleaved state).
///
/// `OrderedSum::new().add(a); add(b); …` computes exactly
/// `((0.0 + a) + b) + …` — the same bits as the bare `+=` chain it
/// replaces, in the order the calls are made.
#[derive(Debug, Clone, Copy, Default)]
pub struct OrderedSum {
    acc: f64,
}

impl OrderedSum {
    /// Start from `+0.0`, like `Iterator::sum`.
    pub fn new() -> Self {
        OrderedSum { acc: 0.0 }
    }

    /// Fold one value in, in call order.
    pub fn add(&mut self, x: f64) {
        self.acc += x;
    }

    /// The running sum.
    pub fn value(&self) -> f64 {
        self.acc
    }
}

#[cfg(test)]
mod tests {
    // Exact comparisons on purpose: the helpers' whole contract is
    // bit-identity with the sequential folds they replace.
    #![allow(clippy::float_cmp)]

    use super::*;

    /// A value sequence where order visibly matters: alternating huge and
    /// tiny magnitudes so reassociation changes the low bits.
    fn awkward() -> Vec<f64> {
        (0..64)
            .map(|i| {
                let m = if i % 2 == 0 { 1e16 } else { 1e-7 };
                m * (1.0 + (i as f64) / 17.0)
            })
            .collect()
    }

    #[test]
    fn sum_f64_agrees_with_iterator_sum_bitwise() {
        let xs = awkward();
        let expect: f64 = xs.iter().copied().sum();
        assert_eq!(sum_f64(xs.iter().copied()).to_bits(), expect.to_bits());
    }

    #[test]
    fn ordered_sum_agrees_with_plus_equals_bitwise() {
        let xs = awkward();
        let mut naive = 0.0;
        let mut pinned = OrderedSum::new();
        for &x in &xs {
            naive += x;
            pinned.add(x);
        }
        assert_eq!(pinned.value().to_bits(), naive.to_bits());
    }

    #[test]
    fn order_actually_matters() {
        // Sanity check that pinning the order is not vacuous: absorption
        // makes `1.0 + 1e16 - 1e16` and `-1e16 + 1e16 + 1.0` differ
        // (0.0 vs 1.0), so a reordered fold changes the result.
        let xs = [1.0f64, 1e16, -1e16];
        let fwd = sum_f64(xs.iter().copied());
        let rev = sum_f64(xs.iter().rev().copied());
        assert_ne!(fwd.to_bits(), rev.to_bits());
        assert_eq!(fwd, 0.0);
        assert_eq!(rev, 1.0);
    }
}
