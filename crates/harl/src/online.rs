//! On-line layout adaptation — the paper's closing future work: *"explore
//! on-line data layout and data migration methods to make heterogeneous
//! I/O systems more intelligent and efficient."*
//!
//! HARL is an off-line scheme: it assumes later runs repeat the traced
//! pattern. When the pattern drifts (a new input deck, a different reader)
//! the planned stripes go stale. [`OnlineMonitor`] watches the live
//! request stream in fixed-size windows and, per RST region, compares the
//! observed average request size against the size the plan was optimised
//! for. Sustained drift (several consecutive windows beyond a ratio
//! threshold) triggers a re-plan of that region on the window's requests,
//! and the monitor reports an [`AdaptationEvent`] with the new per-class
//! widths plus the estimated migration bill (the region's bytes must be
//! re-striped) so a policy layer can decide whether the remaining horizon
//! amortises it.

use crate::cache::RegionPlanCache;
use crate::multiprofile::MultiProfileModel;
use crate::optimizer::{LayoutChoice, OptimizerConfig, RegionRequests};
use crate::rst::RegionStripeTable;
use crate::trace::TraceRecord;
use harl_simcore::{registry, OnlineStats, SimContext};
use serde::{Deserialize, Serialize};

/// Monitor tuning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineConfig {
    /// Requests per observation window.
    pub window: usize,
    /// Drift threshold as a size ratio (observed/planned or its inverse);
    /// 2.0 means "twice or half the planned request size".
    pub drift_ratio: f64,
    /// Consecutive drifted windows required before re-planning.
    pub patience: usize,
    /// Model-drift threshold on the cost residual: a window counts as
    /// drifted when the mean |actual − predicted| latency (fed through
    /// [`OnlineMonitor::observe_served`]) exceeds this multiple of the mean
    /// predicted cost. Only applies when served latencies are reported.
    pub residual_ratio: f64,
    /// Optimizer settings for re-planning.
    pub optimizer: OptimizerConfig,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            window: 256,
            drift_ratio: 2.0,
            patience: 2,
            residual_ratio: 1.0,
            optimizer: OptimizerConfig {
                threads: 1,
                max_requests_per_eval: 512,
                ..OptimizerConfig::default()
            },
        }
    }
}

/// A recommended adaptation for one region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptationEvent {
    /// Index of the drifted region in the RST.
    pub region: usize,
    /// The per-class widths the region currently uses.
    pub old: Vec<u64>,
    /// The re-planned per-class widths.
    pub new: Vec<u64>,
    /// Observed average request size that triggered the re-plan.
    pub observed_avg: u64,
    /// Request size the region was planned for.
    pub planned_avg: u64,
    /// Bytes that must be re-striped to adopt the new layout.
    pub migration_bytes: u64,
    /// Predicted per-request saving under the new layout (seconds).
    pub saving_per_request_s: f64,
}

impl AdaptationEvent {
    /// Requests after which the migration pays for itself, given an
    /// estimated migration throughput (bytes/second). `None` if the
    /// re-plan predicts no saving.
    pub fn break_even_requests(&self, migration_bytes_per_s: f64) -> Option<u64> {
        if self.saving_per_request_s <= 0.0 || migration_bytes_per_s <= 0.0 {
            return None;
        }
        let migration_s = self.migration_bytes as f64 / migration_bytes_per_s;
        Some((migration_s / self.saving_per_request_s).ceil() as u64)
    }
}

/// Per-region drift state.
#[derive(Debug, Clone, Default)]
struct RegionState {
    drifted_windows: usize,
    window_stats: OnlineStats,
    window_requests: Vec<TraceRecord>,
    /// Signed cost residuals (actual − predicted, seconds) this window.
    residual: OnlineStats,
    /// Model-predicted request costs (seconds) this window.
    predicted: OnlineStats,
}

impl RegionState {
    fn reset_window(&mut self) {
        self.window_stats = OnlineStats::new();
        self.window_requests.clear();
        self.residual = OnlineStats::new();
        self.predicted = OnlineStats::new();
    }
}

/// The on-line monitor. Feed it the live stream via
/// [`observe`](Self::observe) (sizes only) or
/// [`observe_served`](Self::observe_served) (sizes plus served latency,
/// enabling model-drift detection); it returns adaptation events as drift
/// is confirmed.
pub struct OnlineMonitor {
    model: MultiProfileModel,
    rst: RegionStripeTable,
    /// The per-region average request size the current plan assumed.
    planned_avg: Vec<u64>,
    cfg: OnlineConfig,
    regions: Vec<RegionState>,
    seen_in_window: usize,
    ctx: SimContext,
    /// Optional pool of per-region grid results: re-plans whose exact
    /// search input was seen before skip Algorithm 2 (incremental
    /// re-planning, bit-identical by construction — see [`crate::cache`]).
    region_cache: Option<RegionPlanCache>,
}

impl std::fmt::Debug for OnlineMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnlineMonitor")
            .field("model", &self.model)
            .field("rst", &self.rst)
            .field("planned_avg", &self.planned_avg)
            .field("cfg", &self.cfg)
            .field("regions", &self.regions)
            .field("seen_in_window", &self.seen_in_window)
            .finish_non_exhaustive()
    }
}

impl OnlineMonitor {
    /// Start monitoring a placed file.
    ///
    /// `planned_avg[i]` is the average request size region `i` was
    /// optimised for (from Algorithm 1's `A_reg`); if unknown, pass the
    /// observed averages of the original trace.
    pub fn new(
        model: impl Into<MultiProfileModel>,
        rst: RegionStripeTable,
        planned_avg: Vec<u64>,
        cfg: OnlineConfig,
    ) -> Self {
        let model = model.into();
        assert_eq!(
            planned_avg.len(),
            rst.len(),
            "one planned average per region"
        );
        assert!(cfg.window > 0, "window must be positive");
        assert!(cfg.drift_ratio > 1.0, "drift ratio must exceed 1.0");
        let regions = (0..rst.len()).map(|_| RegionState::default()).collect();
        OnlineMonitor {
            model,
            rst,
            planned_avg,
            cfg,
            regions,
            seen_in_window: 0,
            ctx: SimContext::new(),
            region_cache: None,
        }
    }

    /// Attach a per-region grid-result cache of the given capacity
    /// (capacity 0 leaves re-planning uncached). Cached results make
    /// repeat drifts — the same observed pattern on any region — skip the
    /// grid search; adopted layouts stay bit-identical to the uncached
    /// monitor because the cache key is the exact search input.
    pub fn with_region_cache(mut self, capacity: usize) -> Self {
        self.region_cache = if capacity > 0 {
            Some(RegionPlanCache::new(capacity))
        } else {
            None
        };
        self
    }

    /// `(hits, misses)` of the attached region cache, if any.
    pub fn region_cache_stats(&self) -> Option<(u64, u64)> {
        self.region_cache.as_ref().map(RegionPlanCache::stats)
    }

    /// Attach a [`SimContext`]. Residuals, drift histograms and adaptation
    /// counters are emitted through its recorder (the default context is
    /// silent), and a context thread override caps the re-plan fan-out.
    pub fn with_context(mut self, ctx: &SimContext) -> Self {
        self.ctx = ctx.clone();
        self
    }

    /// The table the monitor currently considers active (updated as
    /// adaptations fire).
    pub fn current_rst(&self) -> &RegionStripeTable {
        &self.rst
    }

    /// Observe one live request. Returns adaptation events (usually none;
    /// at window boundaries possibly one per drifted region).
    pub fn observe(&mut self, rec: TraceRecord) -> Vec<AdaptationEvent> {
        let region = self.rst.region_of(rec.offset);
        let state = &mut self.regions[region];
        state.window_stats.push(rec.size as f64);
        state.window_requests.push(rec);
        self.seen_in_window += 1;
        if self.seen_in_window < self.cfg.window {
            return Vec::new();
        }
        self.close_window()
    }

    /// Observe one live request together with its served latency (seconds).
    ///
    /// On top of [`observe`](Self::observe)'s size-drift tracking, this
    /// compares the served latency against the Sec. III-D cost model's
    /// prediction for the region's current widths. The signed
    /// residual `actual − predicted` feeds a per-region drift statistic: a
    /// window whose mean residual magnitude exceeds
    /// `residual_ratio × mean predicted cost` counts as drifted even when
    /// request sizes still match the plan — catching model staleness
    /// (device slowdown, contention) that size statistics cannot see.
    pub fn observe_served(&mut self, rec: TraceRecord, actual_s: f64) -> Vec<AdaptationEvent> {
        let region = self.rst.region_of(rec.offset);
        let predicted = {
            let entry = &self.rst.entries()[region];
            self.model.request_cost(
                rec.offset.saturating_sub(entry.offset),
                rec.size,
                rec.op,
                entry.widths(),
            )
        };
        let residual = actual_s - predicted;
        {
            let state = &mut self.regions[region];
            state.residual.push(residual);
            state.predicted.push(predicted);
        }
        if self.ctx.recorder().is_enabled() {
            let labels = [("region", region.to_string())];
            self.ctx.recorder().observe_f64(
                registry::HARL_MODEL_RESIDUAL_S.name,
                &labels,
                residual,
            );
            self.ctx.recorder().observe(
                registry::HARL_MODEL_RESIDUAL_ABS_NS.name,
                &labels,
                (residual.abs() * 1e9) as u64,
            );
        }
        self.observe(rec)
    }

    /// Close the current window: evaluate drift per region and re-plan the
    /// regions whose patience ran out.
    ///
    /// Drift bookkeeping is a sequential pass (it mutates per-region
    /// state), but the expensive part — Algorithm 2 on each confirmed
    /// region — is independent per region, so the confirmed regions are
    /// re-planned concurrently under the [`OptimizerConfig::threads`]
    /// budget and their results applied back in region order, keeping the
    /// event list and the adopted table identical for every thread count.
    fn close_window(&mut self) -> Vec<AdaptationEvent> {
        self.seen_in_window = 0;
        // Pass 1 (sequential, mutates monitor state): decide which regions'
        // patience ran out and collect their re-plan inputs.
        struct ReplanJob {
            region: usize,
            entry: crate::rst::RstEntry,
            sorted: Vec<TraceRecord>,
            observed_avg: u64,
            planned: u64,
        }
        let mut jobs: Vec<ReplanJob> = Vec::new();
        for region in 0..self.regions.len() {
            let observed = {
                let state = &self.regions[region];
                if state.window_stats.count() == 0 {
                    // No traffic: decay the drift counter.
                    None
                } else {
                    Some(state.window_stats.mean().max(1.0) as u64)
                }
            };
            let Some(observed_avg) = observed else {
                self.regions[region].drifted_windows = 0;
                continue;
            };
            let planned = self.planned_avg[region].max(1);
            let ratio = observed_avg as f64 / planned as f64;
            let size_drift = ratio > self.cfg.drift_ratio || ratio < 1.0 / self.cfg.drift_ratio;
            let state = &mut self.regions[region];
            // Model drift: served latencies systematically off-prediction
            // (requires enough observe_served samples to trust the mean).
            let residual_drift = state.residual.count() >= 8
                && state.predicted.mean() > 0.0
                && state.residual.mean().abs() > self.cfg.residual_ratio * state.predicted.mean();
            if !(size_drift || residual_drift) {
                state.drifted_windows = 0;
                state.reset_window();
                continue;
            }
            state.drifted_windows += 1;
            if state.drifted_windows < self.cfg.patience {
                // Keep accumulating evidence (and requests for re-planning).
                continue;
            }
            // Confirmed drift: queue this region for re-planning on the
            // observed stream.
            let entry = self.rst.entries()[region].clone();
            let requests = std::mem::take(&mut state.window_requests);
            state.reset_window();
            state.drifted_windows = 0;

            let mut sorted = requests;
            sorted.sort_by_key(|r| r.offset);
            jobs.push(ReplanJob {
                region,
                entry,
                sorted,
                observed_avg,
                planned,
            });
        }

        // Pass 2a (sequential; only when a region cache is attached):
        // compute each job's exact-search-input key and consult the cache.
        // Lookups run before the fan-out so LRU bookkeeping stays
        // deterministic at any thread count.
        let keys: Vec<crate::cache::RegionPlanKey> = if self.region_cache.is_some() {
            jobs.iter()
                .map(|job| {
                    let reqs = RegionRequests::new(&job.sorted, job.entry.offset);
                    crate::cache::region_plan_key(&reqs, job.observed_avg, &self.cfg.optimizer)
                })
                .collect()
        } else {
            Vec::new()
        };
        let cached: Vec<Option<LayoutChoice>> = match self.region_cache.as_mut() {
            Some(cache) => keys.iter().map(|k| cache.get(k)).collect(),
            None => jobs.iter().map(|_| None).collect(),
        };

        // Pass 2b: Algorithm 2 on each confirmed region (cache hits clone
        // the stored choice instead), fanned out across the thread budget
        // (region-level; the inner grid search goes sequential whenever
        // the outer fan-out is active).
        let budget = self.ctx.threads_or(self.cfg.optimizer.threads);
        let outer = budget.min(jobs.len().max(1));
        let inner = OptimizerConfig {
            threads: if outer > 1 { 1 } else { budget },
            ..self.cfg.optimizer.clone()
        };
        let model = &self.model;
        let ctx = &self.ctx;
        let outcomes = crate::optimizer::fan_out(jobs.len(), outer, |i| {
            let job = &jobs[i];
            let reqs = RegionRequests::new(&job.sorted, job.entry.offset);
            let choice = match &cached[i] {
                Some(choice) => choice.clone(),
                None => crate::optimizer::optimize_region(
                    ctx,
                    model,
                    &reqs,
                    job.observed_avg,
                    &inner,
                    job.region,
                ),
            };
            // Predicted per-request saving under the new widths.
            let old_cost =
                reqs.cost_of_widths(model, job.entry.widths(), inner.max_requests_per_eval);
            let new_cost = reqs.cost_of_widths(model, &choice.widths, inner.max_requests_per_eval);
            (choice, old_cost, new_cost)
        });

        // Pass 2c (sequential): bank freshly computed grid results.
        if let Some(cache) = self.region_cache.as_mut() {
            for (i, (choice, _, _)) in outcomes.iter().enumerate() {
                if cached[i].is_none() {
                    cache.insert(keys[i].clone(), choice.clone());
                }
            }
        }

        // Pass 3 (sequential, region order): adopt the new layouts.
        let mut events = Vec::new();
        for (job, (choice, old_cost, new_cost)) in jobs.iter().zip(outcomes) {
            if choice.widths.as_slice() == job.entry.widths() {
                // Same layout still optimal; just update expectations.
                self.planned_avg[job.region] = job.observed_avg;
                continue;
            }
            let n = job.sorted.len().max(1) as f64;
            let event = AdaptationEvent {
                region: job.region,
                old: job.entry.widths().to_vec(),
                new: choice.widths.clone(),
                observed_avg: job.observed_avg,
                planned_avg: job.planned,
                migration_bytes: job.entry.len,
                saving_per_request_s: (old_cost - new_cost).max(0.0) / n,
            };
            // Adopt the new layout in the active table.
            self.rst.set_region_widths(job.region, choice.widths);
            self.planned_avg[job.region] = job.observed_avg;
            if self.ctx.recorder().is_enabled() {
                self.ctx.recorder().counter_add(
                    registry::HARL_ONLINE_ADAPTATIONS.name,
                    &[("region", job.region.to_string())],
                    1,
                );
            }
            events.push(event);
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harl_devices::OpKind;
    use harl_pfs::ClusterConfig;
    use harl_simcore::SimNanos;

    const KB: u64 = 1024;

    fn model() -> crate::model::CostModelParams {
        crate::model::CostModelParams::from_cluster(&ClusterConfig::paper_default())
    }

    fn monitor(planned_size: u64) -> OnlineMonitor {
        let rst = RegionStripeTable::single(1 << 30, 32 * KB, 160 * KB);
        OnlineMonitor::new(
            model(),
            rst,
            vec![planned_size],
            OnlineConfig {
                window: 32,
                patience: 2,
                ..OnlineConfig::default()
            },
        )
    }

    fn rec(offset: u64, size: u64) -> TraceRecord {
        TraceRecord {
            rank: 0,
            fd: 0,
            op: OpKind::Read,
            offset,
            size,
            timestamp: SimNanos::ZERO,
        }
    }

    #[test]
    fn stable_stream_never_adapts() {
        let mut m = monitor(512 * KB);
        for i in 0..512u64 {
            let events = m.observe(rec(i * 512 * KB % (1 << 30), 512 * KB));
            assert!(events.is_empty(), "false positive at request {i}");
        }
    }

    #[test]
    fn sustained_drift_triggers_replan() {
        // Planned for 512 KiB; the stream shifts to 128 KiB requests, whose
        // optimum is SServer-only ({0, 64K}).
        let mut m = monitor(512 * KB);
        let mut events = Vec::new();
        for i in 0..256u64 {
            events.extend(m.observe(rec((i * 128 * KB) % (1 << 30), 128 * KB)));
        }
        assert_eq!(events.len(), 1, "exactly one adaptation expected");
        let e = &events[0];
        assert_eq!(e.old, vec![32 * KB, 160 * KB]);
        assert_eq!(e.new, vec![0, 64 * KB]);
        assert_eq!(e.planned_avg, 512 * KB);
        assert!(e.saving_per_request_s > 0.0);
        // The active table now carries the new widths.
        let entry = &m.current_rst().entries()[0];
        assert_eq!((entry.h(), entry.s()), (0, 64 * KB));
    }

    #[test]
    fn patience_absorbs_single_window_blips() {
        let mut m = monitor(512 * KB);
        // One drifted window (32 small requests), then back to normal.
        for i in 0..32u64 {
            assert!(m.observe(rec(i * 128 * KB, 128 * KB)).is_empty());
        }
        for i in 0..256u64 {
            let events = m.observe(rec(i * 512 * KB % (1 << 30), 512 * KB));
            assert!(events.is_empty(), "blip should not trigger adaptation");
        }
    }

    #[test]
    fn adapted_monitor_does_not_refire_on_same_pattern() {
        let mut m = monitor(512 * KB);
        let mut total_events = 0;
        for i in 0..512u64 {
            total_events += m.observe(rec((i * 128 * KB) % (1 << 30), 128 * KB)).len();
        }
        assert_eq!(total_events, 1, "one drift, one adaptation");
    }

    #[test]
    fn break_even_math() {
        let e = AdaptationEvent {
            region: 0,
            old: vec![32 * KB, 160 * KB],
            new: vec![0, 64 * KB],
            observed_avg: 128 * KB,
            planned_avg: 512 * KB,
            migration_bytes: 1 << 30,
            saving_per_request_s: 1e-3,
        };
        // 1 GiB at 512 MiB/s = 2 s migration; 2 s / 1 ms = 2000 requests.
        let n = e.break_even_requests(512.0 * 1024.0 * 1024.0).unwrap();
        assert_eq!(n, 2000);
        let never = AdaptationEvent {
            saving_per_request_s: 0.0,
            ..e
        };
        assert_eq!(never.break_even_requests(1e9), None);
    }

    #[test]
    fn multi_region_monitor_targets_the_drifted_region() {
        let rst = crate::rst::RegionStripeTable::new(vec![
            crate::rst::RstEntry::two(0, 512 << 20, 32 * KB, 160 * KB),
            crate::rst::RstEntry::two(512 << 20, 512 << 20, 32 * KB, 160 * KB),
        ]);
        let mut m = OnlineMonitor::new(
            model(),
            rst,
            vec![512 * KB, 512 * KB],
            OnlineConfig {
                window: 64,
                patience: 2,
                ..OnlineConfig::default()
            },
        );
        // Region 0 stays at 512 KiB; region 1 drifts to 128 KiB.
        let mut events = Vec::new();
        for i in 0..512u64 {
            events.extend(m.observe(rec((i * 512 * KB) % (512 << 20), 512 * KB)));
            events.extend(m.observe(rec((512 << 20) + (i * 128 * KB) % (256 << 20), 128 * KB)));
        }
        assert!(!events.is_empty());
        assert!(
            events.iter().all(|e| e.region == 1),
            "only region 1 drifted"
        );
        let entries = m.current_rst().entries();
        assert_eq!((entries[0].h(), entries[0].s()), (32 * KB, 160 * KB));
        assert_eq!((entries[1].h(), entries[1].s()), (0, 64 * KB));
    }

    #[test]
    fn replan_deterministic_across_thread_counts() {
        // Both regions drift in the same window, so close_window fans the
        // two re-plans out; the events and the adopted table must match
        // the single-threaded run exactly.
        let run = |threads: usize| {
            let rst = crate::rst::RegionStripeTable::new(vec![
                crate::rst::RstEntry::two(0, 512 << 20, 32 * KB, 160 * KB),
                crate::rst::RstEntry::two(512 << 20, 512 << 20, 32 * KB, 160 * KB),
            ]);
            let mut cfg = OnlineConfig {
                window: 64,
                patience: 2,
                ..OnlineConfig::default()
            };
            cfg.optimizer.threads = threads;
            let mut m = OnlineMonitor::new(model(), rst, vec![512 * KB, 512 * KB], cfg);
            let mut events = Vec::new();
            for i in 0..512u64 {
                events.extend(m.observe(rec((i * 128 * KB) % (256 << 20), 128 * KB)));
                events.extend(m.observe(rec((512 << 20) + (i * 64 * KB) % (128 << 20), 64 * KB)));
            }
            (events, m.current_rst().entries().to_vec())
        };
        let (ref_events, ref_entries) = run(1);
        assert!(!ref_events.is_empty(), "test needs at least one re-plan");
        for threads in [2, 4] {
            let (events, entries) = run(threads);
            assert_eq!(events, ref_events, "events changed with {threads} threads");
            assert_eq!(entries, ref_entries);
        }
    }

    #[test]
    fn region_cached_monitor_matches_uncached_bitwise() {
        // The same drifting stream through a cached and an uncached
        // monitor must produce identical events and identical adopted
        // tables — the cache may only skip work, never change it.
        let run = |cache: usize| {
            let rst = crate::rst::RegionStripeTable::new(vec![
                crate::rst::RstEntry::two(0, 512 << 20, 32 * KB, 160 * KB),
                crate::rst::RstEntry::two(512 << 20, 512 << 20, 32 * KB, 160 * KB),
            ]);
            let cfg = OnlineConfig {
                window: 64,
                patience: 2,
                ..OnlineConfig::default()
            };
            let mut m = OnlineMonitor::new(model(), rst, vec![512 * KB, 512 * KB], cfg)
                .with_region_cache(cache);
            let mut events = Vec::new();
            for i in 0..512u64 {
                events.extend(m.observe(rec((i * 128 * KB) % (256 << 20), 128 * KB)));
                events.extend(m.observe(rec((512 << 20) + (i * 64 * KB) % (128 << 20), 64 * KB)));
            }
            (events, m.current_rst().entries().to_vec())
        };
        let (ref_events, ref_entries) = run(0);
        assert!(!ref_events.is_empty(), "test needs at least one re-plan");
        let (events, entries) = run(64);
        assert_eq!(events, ref_events);
        assert_eq!(entries, ref_entries);
    }

    #[test]
    fn repeat_drift_pattern_hits_the_region_cache() {
        // Region 0 drifts first; region 1 then drifts with the *same*
        // region-relative pattern. The second re-plan's search input
        // equals the first's, so it must come from the cache.
        let rst = crate::rst::RegionStripeTable::new(vec![
            crate::rst::RstEntry::two(0, 512 << 20, 32 * KB, 160 * KB),
            crate::rst::RstEntry::two(512 << 20, 512 << 20, 32 * KB, 160 * KB),
        ]);
        let cfg = OnlineConfig {
            window: 64,
            patience: 1,
            ..OnlineConfig::default()
        };
        let mut m =
            OnlineMonitor::new(model(), rst, vec![512 * KB, 512 * KB], cfg).with_region_cache(64);
        let mut events = Vec::new();
        for i in 0..64u64 {
            events.extend(m.observe(rec((i % 32) * 128 * KB, 128 * KB)));
        }
        for i in 0..64u64 {
            events.extend(m.observe(rec((512 << 20) + (i % 32) * 128 * KB, 128 * KB)));
        }
        assert_eq!(events.len(), 2, "both regions should adapt");
        assert_eq!(events[0].new, events[1].new);
        assert_eq!(
            m.region_cache_stats(),
            Some((1, 1)),
            "second re-plan must be a cache hit"
        );
        let entries = m.current_rst().entries();
        assert_eq!(entries[0].widths(), entries[1].widths());
    }

    #[test]
    fn residual_drift_triggers_replan_without_size_drift() {
        use harl_simcore::MemoryRecorder;
        // Planned avg matches the live stream (no size drift), but the
        // initial layout is suboptimal for it and the served latencies are
        // far above prediction — only the residual path can catch this.
        let rst = RegionStripeTable::single(1 << 30, 32 * KB, 160 * KB);
        let recorder = std::sync::Arc::new(MemoryRecorder::new());
        let mut m = OnlineMonitor::new(
            model(),
            rst,
            vec![128 * KB],
            OnlineConfig {
                window: 32,
                patience: 2,
                ..OnlineConfig::default()
            },
        )
        .with_context(&SimContext::recorded(recorder.clone()));
        let mut events = Vec::new();
        for i in 0..128u64 {
            events.extend(m.observe_served(rec((i * 128 * KB) % (1 << 30), 128 * KB), 0.5));
        }
        assert!(!events.is_empty(), "model drift should force a re-plan");
        assert_eq!(events[0].old, vec![32 * KB, 160 * KB]);
        assert_eq!(events[0].new, vec![0, 64 * KB]);
        let labels = [("region", "0".to_string())];
        assert!(recorder.counter_value(registry::HARL_ONLINE_ADAPTATIONS.name, &labels) >= 1);
        let summary = recorder
            .summary_snapshot("harl.model.residual_s", &labels)
            .expect("residual summary recorded");
        assert!(summary.count() >= 32);
        assert!(summary.mean() > 0.0, "served slower than predicted");
        let hist = recorder
            .histogram_snapshot(registry::HARL_MODEL_RESIDUAL_ABS_NS.name, &labels)
            .expect("residual histogram recorded");
        assert_eq!(hist.count(), summary.count());
    }

    #[test]
    fn accurate_model_never_flags_residual_drift() {
        // Same suboptimal-layout setup, but served latency equals the
        // prediction exactly: without model error there is no drift signal,
        // so the monitor must stay quiet.
        let reference = model();
        let rst = RegionStripeTable::single(1 << 30, 32 * KB, 160 * KB);
        let mut m = OnlineMonitor::new(
            model(),
            rst,
            vec![128 * KB],
            OnlineConfig {
                window: 32,
                patience: 2,
                ..OnlineConfig::default()
            },
        );
        for i in 0..256u64 {
            let offset = (i * 128 * KB) % (1 << 30);
            let predicted =
                reference.request_cost(offset, 128 * KB, OpKind::Read, 32 * KB, 160 * KB);
            let events = m.observe_served(rec(offset, 128 * KB), predicted);
            assert!(events.is_empty(), "accurate predictions must not drift");
        }
    }

    #[test]
    #[should_panic(expected = "one planned average per region")]
    fn mismatched_planned_avg_rejected() {
        OnlineMonitor::new(
            model(),
            RegionStripeTable::single(1024, 4 * KB, 8 * KB),
            vec![],
            OnlineConfig::default(),
        );
    }
}
