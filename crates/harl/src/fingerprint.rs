//! Canonical workload fingerprints — the plan-cache key.
//!
//! A [`WorkloadFingerprint`] is a small, fully deterministic digest of
//! everything Algorithm 1 + Algorithm 2 actually *react to* in a trace:
//! the request-size histogram (power-of-two buckets, log-bucketed counts),
//! the read/write operation mix, the per-region CV signature produced by
//! the paper's region division, and the cluster/class shape of the cost
//! model. Two traces with equal fingerprints land in the same plan-cache
//! slot; the buckets are coarse enough that re-runs of the same job (same
//! generator, same seed) collide, while a drifted phase — a request-size
//! shift, a read/write flip, a new hot region — moves at least one bucket
//! and misses.
//!
//! Everything in the fingerprint is integral: no floats, no pointers, no
//! iteration-order dependence. The struct derives `Ord`, so it can key a
//! `BTreeMap` (deterministic cache iteration), and its serialized JSON is
//! byte-identical across thread counts and platforms — pinned by test.

use crate::multiprofile::MultiProfileModel;
use crate::region::{divide_regions, RegionDivisionConfig};
use crate::trace::TraceRecord;
use harl_devices::OpKind;
use harl_simcore::OnlineStats;
use serde::{Deserialize, Serialize};

/// Fingerprint format version; bump when the digest definition changes so
/// stale caches can never alias new ones.
pub const FINGERPRINT_VERSION: u32 = 1;

/// Width of the write-percentage buckets (percent).
const WRITE_PCT_BUCKET: u64 = 5;

/// Grid the per-region average request size is quantised to (bytes).
/// Matches the optimizer's default 4 KiB stripe grid: averages that the
/// grid search cannot distinguish share a bucket.
const AVG_SIZE_GRID: u64 = 4096;

/// Width of the per-region CV buckets, in hundredths. The region division
/// itself splits on CV thresholds ≥ 1.0, so tenth-of-a-CV buckets are well
/// below anything the planner can react to.
const CV_CENTI_BUCKET: u64 = 10;

/// One occupied power-of-two bucket of the request-size histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HistBucket {
    /// `floor(log2(size))` of the sizes in this bucket (0 for size 0).
    pub size_log2: u32,
    /// `floor(log2(count))` of the bucket's population — the count only
    /// matters at order-of-magnitude granularity.
    pub count_log2: u32,
}

/// The digest of one region from Algorithm 1's division.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegionSignature {
    /// Region start offset (exact — layout geometry is part of the plan).
    pub offset: u64,
    /// Region length in bytes (exact).
    pub len: u64,
    /// Average request size rounded up to the 4 KiB optimizer grid.
    pub avg_bucket: u64,
    /// Coefficient of variation of request sizes, bucketed to tenths.
    pub cv_bucket: u64,
    /// `floor(log2(request count))` (0 for an idle region).
    pub requests_log2: u32,
    /// Write share of the region's requests, bucketed to 5%.
    pub write_pct_bucket: u32,
}

/// The digest of one server class of the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClassShape {
    /// Servers in the class.
    pub count: u64,
    /// FNV-1a tag over the class's read/write `OpParams` bit patterns: any
    /// recalibration changes the tag and therefore the fingerprint.
    pub params_tag: u64,
}

/// Canonical digest of a `(trace, file size, cluster model)` triple.
///
/// Integral fields only; derives `Ord` for deterministic `BTreeMap` keys
/// and serde for byte-stable JSON (see [`WorkloadFingerprint::canonical_json`]).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WorkloadFingerprint {
    /// Digest format version ([`FINGERPRINT_VERSION`]).
    pub version: u32,
    /// Exact logical file size — a cached RST tiles exactly this extent.
    pub file_size: u64,
    /// Occupied request-size histogram buckets, ascending by size.
    pub hist: Vec<HistBucket>,
    /// Overall write share of the trace, bucketed to 5%.
    pub write_pct_bucket: u32,
    /// Per-region signatures in offset order (Algorithm 1's division).
    pub regions: Vec<RegionSignature>,
    /// Server-class shapes in `ClusterConfig::classes` order.
    pub classes: Vec<ClassShape>,
    /// FNV-1a tag over the network term of the cost model.
    pub network_tag: u64,
}

/// 64-bit FNV-1a over a byte stream.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn fnv1a_f64s(values: &[f64]) -> u64 {
    fnv1a(values.iter().flat_map(|v| v.to_bits().to_le_bytes()))
}

fn log2_floor(v: u64) -> u32 {
    if v == 0 {
        0
    } else {
        63 - v.leading_zeros()
    }
}

fn write_pct_bucket(writes: u64, total: u64) -> u32 {
    if total == 0 {
        return 0;
    }
    let pct = writes * 100 / total;
    u32::try_from(pct / WRITE_PCT_BUCKET * WRITE_PCT_BUCKET).unwrap_or(100)
}

impl ClassShape {
    fn of(class: &crate::multiprofile::ClassParams) -> ClassShape {
        ClassShape {
            count: class.count as u64,
            params_tag: fnv1a_f64s(&[
                class.read.alpha_min_s,
                class.read.alpha_max_s,
                class.read.beta_s_per_byte,
                class.write.alpha_min_s,
                class.write.alpha_max_s,
                class.write.beta_s_per_byte,
            ]),
        }
    }
}

/// Fingerprint a trace that is already sorted by offset (the planner's
/// canonical order, from [`crate::trace::Trace::sorted_by_offset`]).
///
/// The division config is the same one the planner will use, so the
/// fingerprint's region signatures correspond one-to-one with the regions
/// Algorithm 2 would optimise (pre-merge).
pub fn fingerprint_sorted(
    sorted: &[TraceRecord],
    file_size: u64,
    division: &RegionDivisionConfig,
    model: &MultiProfileModel,
) -> WorkloadFingerprint {
    // Request-size histogram: occupied power-of-two buckets with
    // log-bucketed counts, ascending.
    let mut by_size_log2: Vec<u64> = Vec::new();
    let mut writes = 0u64;
    for rec in sorted {
        let b = log2_floor(rec.size) as usize;
        if by_size_log2.len() <= b {
            by_size_log2.resize(b + 1, 0);
        }
        by_size_log2[b] += 1;
        if rec.op == OpKind::Write {
            writes += 1;
        }
    }
    let hist = by_size_log2
        .iter()
        .enumerate()
        .filter(|&(_, &count)| count > 0)
        .map(|(size_log2, &count)| HistBucket {
            size_log2: u32::try_from(size_log2).unwrap_or(u32::MAX),
            count_log2: log2_floor(count),
        })
        .collect();

    // Per-region signatures from the exact division the planner uses.
    let regions = divide_regions(sorted, file_size, division)
        .iter()
        .map(|region| {
            let records = &sorted[region.first_request..region.last_request];
            let mut stats = OnlineStats::new();
            let mut region_writes = 0u64;
            for rec in records {
                stats.push(rec.size as f64);
                if rec.op == OpKind::Write {
                    region_writes += 1;
                }
            }
            let cv_centi = (stats.cv() * 100.0).clamp(0.0, 1e9) as u64;
            RegionSignature {
                offset: region.offset,
                len: region.len(),
                avg_bucket: region
                    .avg_request_size
                    .div_ceil(AVG_SIZE_GRID)
                    .saturating_mul(AVG_SIZE_GRID),
                cv_bucket: cv_centi / CV_CENTI_BUCKET,
                requests_log2: log2_floor(records.len() as u64),
                write_pct_bucket: write_pct_bucket(region_writes, records.len() as u64),
            }
        })
        .collect();

    WorkloadFingerprint {
        version: FINGERPRINT_VERSION,
        file_size,
        hist,
        write_pct_bucket: write_pct_bucket(writes, sorted.len() as u64),
        regions,
        classes: model.classes.iter().map(ClassShape::of).collect(),
        network_tag: fnv1a_f64s(&[model.t_s_per_byte]),
    }
}

impl WorkloadFingerprint {
    /// The canonical serialized form — stable bytes for equal fingerprints,
    /// used by the determinism tests and available to external cache tiers.
    pub fn canonical_json(&self) -> String {
        // The vendored serializer is infallible (in-memory value tree).
        serde_json::to_string(self).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CostModelParams;
    use harl_pfs::ClusterConfig;
    use harl_simcore::SimNanos;

    const KB: u64 = 1024;
    const MB: u64 = 1024 * 1024;

    fn model() -> MultiProfileModel {
        CostModelParams::from_cluster(&ClusterConfig::paper_default()).into()
    }

    fn rec(offset: u64, size: u64, op: OpKind) -> TraceRecord {
        TraceRecord {
            rank: 0,
            fd: 0,
            op,
            offset,
            size,
            timestamp: SimNanos::ZERO,
        }
    }

    fn phase_trace() -> Vec<TraceRecord> {
        let mut records = Vec::new();
        for i in 0..64u64 {
            records.push(rec(i * 128 * KB, 128 * KB, OpKind::Read));
        }
        let boundary = 64 * 128 * KB;
        for i in 0..64u64 {
            records.push(rec(boundary + i * MB, MB, OpKind::Write));
        }
        records
    }

    #[test]
    fn identical_traces_share_a_fingerprint() {
        let sorted = phase_trace();
        let div = RegionDivisionConfig::default();
        let a = fingerprint_sorted(&sorted, 128 * MB, &div, &model());
        let b = fingerprint_sorted(&sorted, 128 * MB, &div, &model());
        assert_eq!(a, b);
        assert_eq!(a.canonical_json(), b.canonical_json());
    }

    #[test]
    fn file_size_is_part_of_the_key() {
        let sorted = phase_trace();
        let div = RegionDivisionConfig::default();
        let a = fingerprint_sorted(&sorted, 128 * MB, &div, &model());
        let b = fingerprint_sorted(&sorted, 256 * MB, &div, &model());
        assert_ne!(a, b);
    }

    #[test]
    fn size_shift_moves_a_bucket() {
        let div = RegionDivisionConfig::default();
        let base: Vec<_> = (0..64)
            .map(|i| rec(i * 256 * KB, 256 * KB, OpKind::Read))
            .collect();
        let shifted: Vec<_> = (0..64)
            .map(|i| rec(i * 256 * KB, 512 * KB, OpKind::Read))
            .collect();
        let a = fingerprint_sorted(&base, 16 * MB, &div, &model());
        let b = fingerprint_sorted(&shifted, 16 * MB, &div, &model());
        assert_ne!(a, b, "doubled request size must change the fingerprint");
    }

    #[test]
    fn op_mix_flip_changes_the_fingerprint() {
        let div = RegionDivisionConfig::default();
        let reads: Vec<_> = (0..64)
            .map(|i| rec(i * 256 * KB, 256 * KB, OpKind::Read))
            .collect();
        let writes: Vec<_> = (0..64)
            .map(|i| rec(i * 256 * KB, 256 * KB, OpKind::Write))
            .collect();
        let a = fingerprint_sorted(&reads, 16 * MB, &div, &model());
        let b = fingerprint_sorted(&writes, 16 * MB, &div, &model());
        assert_ne!(a, b);
    }

    #[test]
    fn model_recalibration_changes_the_fingerprint() {
        let div = RegionDivisionConfig::default();
        let sorted = phase_trace();
        let a = fingerprint_sorted(&sorted, 128 * MB, &div, &model());
        let mut slower = model();
        slower.classes[0].read.beta_s_per_byte *= 2.0;
        let b = fingerprint_sorted(&sorted, 128 * MB, &div, &slower);
        assert_ne!(a, b);
    }

    #[test]
    fn fingerprint_orders_deterministically() {
        // Ord is required for BTreeMap keys; sanity-check reflexivity and
        // a stable ordering between two distinct fingerprints.
        let div = RegionDivisionConfig::default();
        let sorted = phase_trace();
        let a = fingerprint_sorted(&sorted, 128 * MB, &div, &model());
        let b = fingerprint_sorted(&sorted, 256 * MB, &div, &model());
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
        assert_ne!(a.cmp(&b), std::cmp::Ordering::Equal);
        assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
    }

    #[test]
    fn empty_trace_fingerprints() {
        let div = RegionDivisionConfig::default();
        let fp = fingerprint_sorted(&[], 16 * MB, &div, &model());
        assert!(fp.hist.is_empty());
        assert_eq!(fp.write_pct_bucket, 0);
        assert_eq!(fp.regions.len(), 1, "empty trace still has one region");
    }
}
