//! K-profile extension — the paper's stated future work: *"we would like
//! to extend our cost model to accommodate more than two server
//! performance profiles."*
//!
//! The two-class cost structure of Sec. III-D generalises directly: a
//! request's cost is still `T_X + T_S + T_T`, with each term the maximum
//! over the K classes of the class's network/startup/transfer component.
//! What does not generalise is Algorithm 2's 2-D grid — K nested loops are
//! exponential — so the [`MultiProfileOptimizer`] uses coordinate descent:
//! optimise one class's stripe width at a time (a 1-D scan identical in
//! spirit to the paper's loops) and iterate to a fixed point. On two-class
//! inputs it recovers the same optima as the exhaustive grid (see the
//! tests), and the fixed point is deterministic.

use crate::model::CostModelParams;
use harl_devices::{NetworkProfile, OpKind, OpParams, StorageProfile};
use harl_pfs::ClusterConfig;
use serde::{Deserialize, Serialize};

/// One server class in the K-profile model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassParams {
    /// Servers in the class.
    pub count: usize,
    /// Read-path parameters.
    pub read: OpParams,
    /// Write-path parameters.
    pub write: OpParams,
}

/// The K-class cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiProfileModel {
    /// Per-class parameters, in server-id order.
    pub classes: Vec<ClassParams>,
    /// Network per-byte time (seconds/byte).
    pub t_s_per_byte: f64,
}

impl MultiProfileModel {
    /// Build from a cluster of any number of classes.
    pub fn from_cluster(cluster: &ClusterConfig) -> Self {
        MultiProfileModel {
            classes: cluster
                .classes
                .iter()
                .map(|c| ClassParams {
                    count: c.count,
                    read: c.profile.read,
                    write: c.profile.write,
                })
                .collect(),
            t_s_per_byte: cluster.network.t_s_per_byte,
        }
    }

    /// Build from explicit profiles.
    pub fn new(network: &NetworkProfile, classes: Vec<(usize, StorageProfile)>) -> Self {
        MultiProfileModel {
            classes: classes
                .into_iter()
                .map(|(count, p)| ClassParams {
                    count,
                    read: p.read,
                    write: p.write,
                })
                .collect(),
            t_s_per_byte: network.t_s_per_byte,
        }
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Per-class `(max_load, servers_touched)` for a request under
    /// per-class widths (exact round-robin geometry, as in the two-class
    /// [`crate::server_loads`]).
    pub fn class_loads(&self, offset: u64, size: u64, widths: &[u64]) -> Vec<(u64, usize)> {
        assert_eq!(widths.len(), self.classes.len(), "one width per class");
        let group: u64 = self
            .classes
            .iter()
            .zip(widths)
            .map(|(c, &w)| c.count as u64 * w)
            .sum();
        assert!(group > 0, "layout has no capacity");
        if size == 0 {
            return vec![(0, 0); self.classes.len()];
        }
        let end = offset + size;
        let dq = end / group - offset / group;
        let (r_o, r_e) = (offset % group, end % group);
        let mut out = Vec::with_capacity(self.classes.len());
        let mut base = 0u64;
        for (c, &w) in self.classes.iter().zip(widths) {
            out.push(crate::model::class_span_loads(
                dq, r_o, r_e, base, w, c.count,
            ));
            base += c.count as u64 * w;
        }
        out
    }

    /// Cost of one request under per-class widths (the generalised
    /// Eqs. 7/8). Allocation-free: this is the per-request hot path of the
    /// online monitor and the coordinate-descent inner loop, so the class
    /// loads are folded into the three cost terms as they are computed
    /// rather than materialised (the summation order matches
    /// [`Self::class_loads`] exactly).
    pub fn request_cost(&self, offset: u64, size: u64, op: OpKind, widths: &[u64]) -> f64 {
        if size == 0 {
            return 0.0;
        }
        assert_eq!(widths.len(), self.classes.len(), "one width per class");
        let group: u64 = self
            .classes
            .iter()
            .zip(widths)
            .map(|(c, &w)| c.count as u64 * w)
            .sum();
        assert!(group > 0, "layout has no capacity");
        let end = offset + size;
        let dq = end / group - offset / group;
        let (r_o, r_e) = (offset % group, end % group);
        let mut t_x: f64 = 0.0;
        let mut t_s: f64 = 0.0;
        let mut t_t: f64 = 0.0;
        let mut base = 0u64;
        for (c, &w) in self.classes.iter().zip(widths) {
            let (load, touched) = crate::model::class_span_loads(dq, r_o, r_e, base, w, c.count);
            base += c.count as u64 * w;
            let p = match op {
                OpKind::Read => &c.read,
                OpKind::Write => &c.write,
            };
            t_x = t_x.max(load as f64 * self.t_s_per_byte);
            if touched > 0 {
                let k = touched as f64;
                t_s = t_s.max(p.alpha_min_s + k / (k + 1.0) * (p.alpha_max_s - p.alpha_min_s));
            }
            t_t = t_t.max(load as f64 * p.beta_s_per_byte);
        }
        t_x + t_s + t_t
    }
}

impl From<&CostModelParams> for MultiProfileModel {
    /// The two-class model as a K = 2 instance.
    fn from(p: &CostModelParams) -> Self {
        p.inner.clone()
    }
}

impl From<CostModelParams> for MultiProfileModel {
    /// Unwrap the two-class view (no copy).
    fn from(p: CostModelParams) -> Self {
        p.inner
    }
}

impl From<MultiProfileModel> for CostModelParams {
    /// The two-class view of a `K = 2` model.
    ///
    /// # Panics
    /// Panics unless the model has exactly two classes.
    fn from(m: MultiProfileModel) -> Self {
        CostModelParams::from_multi(m)
    }
}

/// Coordinate-descent stripe optimizer over K classes.
#[derive(Debug, Clone)]
pub struct MultiProfileOptimizer {
    /// The platform model.
    pub model: MultiProfileModel,
    /// Grid step per axis scan.
    pub step: u64,
    /// Maximum grid points per axis scan.
    pub max_grid_points: usize,
    /// Maximum full descent sweeps.
    pub max_sweeps: usize,
}

impl MultiProfileOptimizer {
    /// A default-configured optimizer for the model.
    pub fn new(model: MultiProfileModel) -> Self {
        MultiProfileOptimizer {
            model,
            step: 4 * 1024,
            max_grid_points: 128,
            max_sweeps: 16,
        }
    }

    fn effective_step(&self, avg: u64) -> u64 {
        let min_step = avg.div_ceil(self.max_grid_points.max(1) as u64);
        self.step * min_step.div_ceil(self.step).max(1)
    }

    fn total_cost(&self, sample: &[(u64, u64, OpKind)], widths: &[u64]) -> f64 {
        crate::fold::sum_f64(
            sample
                .iter()
                .map(|&(o, r, op)| self.model.request_cost(o, r, op, widths)),
        )
    }

    /// Optimise per-class widths for a region's request sample (offsets
    /// region-relative) with average request size `avg`.
    ///
    /// Returns `(widths, cost)`. Deterministic: descent runs from several
    /// fixed starting points (balanced, bandwidth-proportional, and one
    /// per-class-favoured start), axes are scanned in class order, ties
    /// prefer larger widths, and the best fixed point wins.
    pub fn optimize(&self, sample: &[(u64, u64, OpKind)], avg: u64) -> (Vec<u64>, f64) {
        let k = self.model.class_count();
        assert!(k > 0, "no classes");
        let step = self.effective_step(avg.max(1));
        let r_bar = avg.max(step).div_ceil(step) * step;

        let zero_out = |mut w: Vec<u64>| -> Vec<u64> {
            for (c, wi) in self.model.classes.iter().zip(w.iter_mut()) {
                if c.count == 0 {
                    *wi = 0;
                }
            }
            w
        };
        let balanced = zero_out(vec![r_bar.div_ceil(k as u64 * step) * step; k]);
        assert!(balanced.iter().any(|&w| w > 0), "no servers in any class");
        if sample.is_empty() {
            return (balanced, 0.0);
        }

        // Starting points: balanced, read-bandwidth-proportional, and each
        // class alone at R̄.
        let mut starts: Vec<Vec<u64>> = vec![balanced];
        let inv_beta: Vec<f64> = self
            .model
            .classes
            .iter()
            .map(|c| {
                if c.read.beta_s_per_byte > 0.0 {
                    1.0 / c.read.beta_s_per_byte
                } else {
                    1.0
                }
            })
            .collect();
        let total_inv = crate::fold::sum_f64(
            self.model
                .classes
                .iter()
                .zip(&inv_beta)
                .map(|(c, &b)| c.count as f64 * b),
        );
        if total_inv > 0.0 {
            let proportional: Vec<u64> = inv_beta
                .iter()
                .map(|&b| {
                    let w = (r_bar as f64 * b / total_inv) as u64;
                    w.div_ceil(step).max(1) * step
                })
                .collect();
            starts.push(zero_out(proportional));
        }
        for solo in 0..k {
            if self.model.classes[solo].count == 0 {
                continue;
            }
            let mut w = vec![0u64; k];
            w[solo] = r_bar;
            starts.push(w);
        }

        starts
            .into_iter()
            .filter(|w| {
                self.model
                    .classes
                    .iter()
                    .zip(w)
                    .any(|(c, &wi)| c.count > 0 && wi > 0)
            })
            .map(|start| self.descend(sample, start, step, r_bar))
            // The infinite-cost sentinel loses to every real descent (and
            // on a cost tie, any non-empty widths vector orders above the
            // empty one), so it only surfaces if no start survives the
            // filter — impossible for a cluster with servers.
            .fold((Vec::new(), f64::INFINITY), |a, b| {
                if b.1 < a.1 || (b.1 == a.1 && b.0 > a.0) {
                    b
                } else {
                    a
                }
            })
    }

    /// One coordinate-descent run from a fixed starting point.
    fn descend(
        &self,
        sample: &[(u64, u64, OpKind)],
        mut widths: Vec<u64>,
        step: u64,
        r_bar: u64,
    ) -> (Vec<u64>, f64) {
        let k = widths.len();
        let mut best_cost = self.total_cost(sample, &widths);

        for _sweep in 0..self.max_sweeps {
            let mut improved = false;
            for axis in 0..k {
                if self.model.classes[axis].count == 0 {
                    continue;
                }
                let mut best_w = widths[axis];
                let mut w = 0u64;
                while w <= r_bar + step {
                    let saved = widths[axis];
                    widths[axis] = w;
                    let valid = self
                        .model
                        .classes
                        .iter()
                        .zip(&widths)
                        .any(|(c, &cw)| c.count > 0 && cw > 0);
                    if valid {
                        let cost = self.total_cost(sample, &widths);
                        if cost < best_cost || (cost == best_cost && w > best_w) {
                            if cost < best_cost {
                                improved = true;
                            }
                            best_cost = cost;
                            best_w = w;
                        }
                    }
                    widths[axis] = saved;
                    w += step;
                }
                widths[axis] = best_w;
            }
            if !improved {
                break;
            }
        }
        (widths, best_cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::{optimize_region, OptimizerConfig, RegionRequests};
    use crate::trace::TraceRecord;
    use harl_devices::{hdd_2015_preset, nvme_2020_preset, ssd_2015_preset};
    use harl_simcore::SimNanos;

    const KB: u64 = 1024;

    fn sample(n: usize, size: u64, op: OpKind) -> Vec<(u64, u64, OpKind)> {
        (0..n).map(|i| (i as u64 * size, size, op)).collect()
    }

    fn two_class_model() -> MultiProfileModel {
        MultiProfileModel::from(&CostModelParams::from_cluster(
            &ClusterConfig::paper_default(),
        ))
    }

    #[test]
    fn two_class_cost_matches_pair_model() {
        let pair = CostModelParams::from_cluster(&ClusterConfig::paper_default());
        let multi = MultiProfileModel::from(&pair);
        for (o, r) in [(0u64, 512 * KB), (123 * KB, 512 * KB), (7, 130_000)] {
            for op in OpKind::ALL {
                let a = pair.request_cost(o, r, op, 32 * KB, 160 * KB);
                let b = multi.request_cost(o, r, op, &[32 * KB, 160 * KB]);
                assert!((a - b).abs() < 1e-15, "cost mismatch at ({o},{r},{op})");
            }
        }
    }

    #[test]
    fn coordinate_descent_matches_grid_on_two_classes() {
        let pair = CostModelParams::from_cluster(&ClusterConfig::paper_default());
        let records: Vec<TraceRecord> = (0..32)
            .map(|i| TraceRecord {
                rank: 0,
                fd: 0,
                op: OpKind::Read,
                offset: i as u64 * 512 * KB,
                size: 512 * KB,
                timestamp: SimNanos::ZERO,
            })
            .collect();
        let grid = optimize_region(
            &harl_simcore::SimContext::new(),
            &pair,
            &RegionRequests::new(&records, 0),
            512 * KB,
            &OptimizerConfig {
                threads: 1,
                ..OptimizerConfig::default()
            },
            0,
        );
        let opt = MultiProfileOptimizer::new(MultiProfileModel::from(&pair));
        let (widths, cost) = opt.optimize(&sample(32, 512 * KB, OpKind::Read), 512 * KB);
        // Coordinate descent can stop at a local optimum; it must get
        // within a few percent of the exhaustive grid and produce the same
        // qualitative shape (s >> h).
        assert!(
            cost <= grid.cost * 1.05,
            "descent cost {cost} vs grid {g}",
            g = grid.cost
        );
        assert!(widths[1] > widths[0], "SSD class must get larger stripes");
    }

    #[test]
    fn three_classes_order_by_speed() {
        // HDD / SSD / NVMe: faster classes should be assigned larger (or
        // equal) stripes.
        let cluster = ClusterConfig::hybrid(4, 2).with_extra_class(2, nvme_2020_preset());
        let model = MultiProfileModel::from_cluster(&cluster);
        assert_eq!(model.class_count(), 3);
        let opt = MultiProfileOptimizer::new(model);
        let (widths, cost) = opt.optimize(&sample(32, 512 * KB, OpKind::Read), 512 * KB);
        assert!(cost.is_finite());
        assert!(
            widths[2] >= widths[1] && widths[1] >= widths[0],
            "stripe order should follow device speed: {widths:?}"
        );
        assert!(widths[2] > widths[0], "NVMe must out-stripe HDD");
    }

    #[test]
    fn loads_conservation_k_classes() {
        let model = MultiProfileModel::new(
            &NetworkProfile::gigabit_ethernet(),
            vec![
                (2, hdd_2015_preset()),
                (2, ssd_2015_preset()),
                (1, nvme_2020_preset()),
            ],
        );
        let widths = [16 * KB, 64 * KB, 128 * KB];
        let loads = model.class_loads(0, 288 * KB, &widths);
        // Group = 2*16 + 2*64 + 128 = 288 KiB: one full group.
        assert_eq!(loads[0], (16 * KB, 2));
        assert_eq!(loads[1], (64 * KB, 2));
        assert_eq!(loads[2], (128 * KB, 1));
    }

    #[test]
    fn zero_count_class_is_skipped() {
        let model = MultiProfileModel::new(
            &NetworkProfile::gigabit_ethernet(),
            vec![(0, hdd_2015_preset()), (2, ssd_2015_preset())],
        );
        let opt = MultiProfileOptimizer::new(model);
        let (widths, cost) = opt.optimize(&sample(8, 128 * KB, OpKind::Read), 128 * KB);
        assert_eq!(widths[0], 0);
        assert!(widths[1] > 0);
        assert!(cost.is_finite());
    }

    #[test]
    fn empty_sample_returns_balanced_default() {
        let opt = MultiProfileOptimizer::new(two_class_model());
        let (widths, cost) = opt.optimize(&[], 128 * KB);
        assert_eq!(cost, 0.0);
        assert!(widths.iter().all(|&w| w > 0));
    }

    #[test]
    #[should_panic(expected = "one width per class")]
    fn width_count_mismatch_panics() {
        two_class_model().class_loads(0, 1, &[4 * KB]);
    }
}
