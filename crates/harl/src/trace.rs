//! I/O trace collection — the stand-in for the paper's IOSIG tool.
//!
//! From Sec. III-B: the trace collector records *"process ID, MPI rank,
//! file descriptor, type of operation, offset, request size, and time
//! stamp"* during the application's first run, then *"sorts all file read
//! and write requests in ascending order in terms of their offsets"* to
//! feed region division.
//!
//! [`TraceRecord`] is one such tuple, [`Trace`] the collected set with the
//! offset-sorted view and JSON-lines persistence (the paper stores its
//! artifacts next to the application; we do the same).

use harl_devices::OpKind;
use harl_simcore::{OnlineStats, SimNanos};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// One recorded file operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// MPI rank (doubles as process id in the simulation).
    pub rank: u32,
    /// File descriptor — distinguishes files when an application opens
    /// several; region division runs per file.
    pub fd: u32,
    /// Read or write.
    pub op: OpKind,
    /// Byte offset of the request within the logical file.
    pub offset: u64,
    /// Request size in bytes.
    pub size: u64,
    /// Simulated time at which the request was issued.
    pub timestamp: SimNanos,
}

/// A collected I/O trace for one logical file.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Build from records (kept in the given order until sorted).
    pub fn from_records(records: Vec<TraceRecord>) -> Self {
        Trace { records }
    }

    /// Record one operation.
    pub fn record(&mut self, rec: TraceRecord) {
        self.records.push(rec);
    }

    /// All records in collection order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The offset-sorted view the analysis phase consumes (paper III-B).
    ///
    /// Sorting is stable, so requests at equal offsets keep issue order.
    pub fn sorted_by_offset(&self) -> Vec<TraceRecord> {
        let mut v = self.records.clone();
        v.sort_by_key(|r| r.offset);
        v
    }

    /// Largest byte touched by any request (exclusive), i.e. the file size
    /// implied by the trace. 0 for an empty trace.
    pub fn extent(&self) -> u64 {
        self.records
            .iter()
            .map(|r| r.offset + r.size)
            .max()
            .unwrap_or(0)
    }

    /// Total bytes moved, `(read, written)`.
    pub fn total_bytes(&self) -> (u64, u64) {
        let mut read = 0;
        let mut written = 0;
        for r in &self.records {
            match r.op {
                OpKind::Read => read += r.size,
                OpKind::Write => written += r.size,
            }
        }
        (read, written)
    }

    /// Distribution of request sizes.
    pub fn size_stats(&self) -> OnlineStats {
        let mut s = OnlineStats::new();
        for r in &self.records {
            s.push(r.size as f64);
        }
        s
    }

    /// Persist as JSON lines (one record per line).
    pub fn save<W: Write>(&self, w: W) -> std::io::Result<()> {
        let mut w = BufWriter::new(w);
        for rec in &self.records {
            serde_json::to_writer(&mut w, rec)?;
            w.write_all(b"\n")?;
        }
        w.flush()
    }

    /// Load from JSON lines; blank lines are skipped.
    pub fn load<R: Read>(r: R) -> std::io::Result<Self> {
        let mut records = Vec::new();
        for line in BufReader::new(r).lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let rec: TraceRecord = serde_json::from_str(&line)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            records.push(rec);
        }
        Ok(Trace { records })
    }

    /// Persist to a file path.
    pub fn save_to_path(&self, path: &Path) -> std::io::Result<()> {
        self.save(std::fs::File::create(path)?)
    }

    /// Load from a file path; parse failures report the file, the
    /// offending line, and the reason.
    pub fn load_from_path(path: &Path) -> Result<Self, crate::errors::LoadError> {
        use crate::errors::LoadError;
        let data = std::fs::read_to_string(path)
            .map_err(|e| LoadError::whole_file(path, format!("cannot read file: {e}")))?;
        let mut records = Vec::new();
        for (idx, line) in data.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let rec: TraceRecord = serde_json::from_str(line).map_err(|e| LoadError {
                path: path.to_path_buf(),
                line: Some(idx + 1),
                reason: e.to_string(),
            })?;
            records.push(rec);
        }
        Ok(Trace { records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(offset: u64, size: u64, op: OpKind) -> TraceRecord {
        TraceRecord {
            rank: 0,
            fd: 3,
            op,
            offset,
            size,
            timestamp: SimNanos::ZERO,
        }
    }

    #[test]
    fn sorted_view_is_by_offset() {
        let t = Trace::from_records(vec![
            rec(300, 10, OpKind::Read),
            rec(100, 10, OpKind::Write),
            rec(200, 10, OpKind::Read),
        ]);
        let sorted = t.sorted_by_offset();
        let offsets: Vec<u64> = sorted.iter().map(|r| r.offset).collect();
        assert_eq!(offsets, vec![100, 200, 300]);
        // Original order preserved.
        assert_eq!(t.records()[0].offset, 300);
    }

    #[test]
    fn sort_is_stable_at_equal_offsets() {
        let mut a = rec(100, 10, OpKind::Read);
        a.rank = 1;
        let mut b = rec(100, 20, OpKind::Write);
        b.rank = 2;
        let t = Trace::from_records(vec![a, b]);
        let sorted = t.sorted_by_offset();
        assert_eq!(sorted[0].rank, 1);
        assert_eq!(sorted[1].rank, 2);
    }

    #[test]
    fn extent_and_bytes() {
        let t = Trace::from_records(vec![
            rec(0, 100, OpKind::Read),
            rec(500, 100, OpKind::Write),
        ]);
        assert_eq!(t.extent(), 600);
        assert_eq!(t.total_bytes(), (100, 100));
        assert_eq!(Trace::new().extent(), 0);
    }

    #[test]
    fn size_stats() {
        let t = Trace::from_records(vec![rec(0, 100, OpKind::Read), rec(0, 300, OpKind::Read)]);
        let s = t.size_stats();
        assert_eq!(s.count(), 2);
        assert!((s.mean() - 200.0).abs() < 1e-12);
    }

    #[test]
    fn json_round_trip() {
        let t = Trace::from_records(vec![
            rec(0, 4096, OpKind::Write),
            rec(4096, 8192, OpKind::Read),
        ]);
        let mut buf = Vec::new();
        t.save(&mut buf).unwrap();
        let back = Trace::load(&buf[..]).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn load_skips_blank_lines() {
        let data = b"\n\n";
        let t = Trace::load(&data[..]).unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn load_rejects_garbage() {
        let data = b"not json\n";
        assert!(Trace::load(&data[..]).is_err());
    }
}
