//! File region division — the paper's Algorithm 1.
//!
//! Walking the offset-sorted request list, the algorithm keeps a running
//! coefficient of variation (CV) of request sizes. While each new request
//! leaves the CV within `threshold` percent of the previous value the
//! region grows; a bigger jump ends the region at that request and starts a
//! new one. CV is "very sensitive to changes in the average request size",
//! which is what detects where the application's I/O behaviour changes.
//!
//! Sec. III-C's guard against over-fragmentation is also implemented: if
//! the CV pass produces more regions than a fixed-size division (default
//! 64 MiB chunks) would, the threshold is raised and the pass re-run, which
//! "loosens the algorithm's sensitivity" until the region count (and hence
//! metadata overhead) is acceptable.

use crate::trace::TraceRecord;
use harl_simcore::{ByteSize, OnlineStats};
use serde::{Deserialize, Serialize};

/// One region of the logical file: a contiguous byte range whose requests
/// share similar I/O characteristics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Region {
    /// First byte of the region.
    pub offset: u64,
    /// One past the last byte (the next region's offset, or the file end).
    pub end: u64,
    /// Average request size observed in the region (the paper's `A_reg`,
    /// the `R̄` input of Algorithm 2).
    pub avg_request_size: u64,
    /// Index range `[first, last)` of the region's requests in the
    /// offset-sorted trace.
    pub first_request: usize,
    /// One past the last request index.
    pub last_request: usize,
}

impl Region {
    /// Region length in bytes.
    pub fn len(&self) -> u64 {
        self.end - self.offset
    }

    /// True for a zero-length region (never produced by division).
    pub fn is_empty(&self) -> bool {
        self.end == self.offset
    }

    /// Number of requests the region serves.
    pub fn request_count(&self) -> usize {
        self.last_request - self.first_request
    }
}

/// Tuning knobs for region division.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionDivisionConfig {
    /// Initial CV-change threshold in percent (paper: 100 %).
    pub initial_threshold_pct: f64,
    /// Multiplier applied to the threshold on each tightening round.
    pub threshold_growth: f64,
    /// Fixed-region size used to bound the region count (paper cites the
    /// segment-level scheme's fixed chunks, e.g. 64 MiB).
    pub fixed_region_size: u64,
    /// Hard cap on tightening rounds (the threshold grows geometrically, so
    /// a handful of rounds is always enough).
    pub max_rounds: usize,
}

impl Default for RegionDivisionConfig {
    fn default() -> Self {
        RegionDivisionConfig {
            initial_threshold_pct: 100.0,
            threshold_growth: 2.0,
            fixed_region_size: 64 * 1024 * 1024,
            max_rounds: 24,
        }
    }
}

/// Relative CV change in percent.
///
/// The paper's expression `100·|cv_new − cv_prev| / cv_prev` divides by
/// zero whenever a region starts (cv_prev = 0, which happens after every
/// split). An infinite result would split on *any* size change regardless
/// of the threshold, making the Sec. III-C threshold adaptation powerless.
/// We floor the denominator at a 1 % CV so the change stays finite and the
/// threshold keeps control: a uniform region followed by a different size
/// still produces a huge (but finite) change and splits at the default
/// threshold, while adaptation can raise the threshold past it when the
/// division over-fragments.
#[inline]
fn cv_change_pct(cv_prev: f64, cv_new: f64) -> f64 {
    const CV_FLOOR: f64 = 0.01;
    100.0 * (cv_new - cv_prev).abs() / cv_prev.max(CV_FLOOR)
}

/// One pass of Algorithm 1 at a fixed threshold.
///
/// `sorted` must be offset-sorted. `file_size` bounds the final region
/// (requests may not reach the end of the file).
fn divide_once(sorted: &[TraceRecord], file_size: u64, threshold_pct: f64) -> Vec<Region> {
    let mut regions: Vec<Region> = Vec::new();
    let mut stats = OnlineStats::new(); // running avg/std of the open region
    let mut cv_prev = 0.0;
    let mut reg_init = 0usize;

    for (i, rec) in sorted.iter().enumerate() {
        stats.push(rec.size as f64);
        let cv_new = stats.cv();
        if cv_change_pct(cv_prev, cv_new) < threshold_pct {
            cv_prev = cv_new;
        } else {
            // Close the region at request i (inclusive, per the paper: the
            // logged average includes r_i and the next region starts at
            // i + 1).
            let offset = sorted[reg_init].offset;
            regions.push(Region {
                offset,
                end: 0, // patched below once the next region's start is known
                avg_request_size: stats.mean().round() as u64,
                first_request: reg_init,
                last_request: i + 1,
            });
            stats = OnlineStats::new();
            cv_prev = 0.0;
            reg_init = i + 1;
        }
    }
    // Emit the final open region (implicit in the paper's pseudocode).
    if reg_init < sorted.len() {
        regions.push(Region {
            offset: sorted[reg_init].offset,
            end: 0,
            avg_request_size: stats.mean().round() as u64,
            first_request: reg_init,
            last_request: sorted.len(),
        });
    }

    // Patch region ends: each region runs to the next region's offset; the
    // last one to the file end. The first region is anchored to offset 0 so
    // the regions tile the whole file.
    if let Some(first) = regions.first_mut() {
        first.offset = 0;
    }
    let n = regions.len();
    for i in 0..n {
        regions[i].end = if i + 1 < n {
            regions[i + 1].offset
        } else {
            file_size.max(regions[i].offset + 1)
        };
    }
    // Offset collisions (several regions starting at the same offset, which
    // can happen when overlapping requests trigger splits) produce empty
    // regions; merge them away.
    regions.retain(|r| !r.is_empty());
    regions
}

/// Full Algorithm 1 with the Sec. III-C threshold adaptation.
///
/// Returns regions tiling `[0, file_size)`. An empty trace yields a single
/// region covering the file with `avg_request_size == 0`.
pub fn divide_regions(
    sorted: &[TraceRecord],
    file_size: u64,
    cfg: &RegionDivisionConfig,
) -> Vec<Region> {
    assert!(file_size > 0, "cannot divide an empty file");
    debug_assert!(
        sorted.windows(2).all(|w| w[0].offset <= w[1].offset),
        "trace must be offset-sorted"
    );
    if sorted.is_empty() {
        return vec![Region {
            offset: 0,
            end: file_size,
            avg_request_size: 0,
            first_request: 0,
            last_request: 0,
        }];
    }

    // The fixed-size division the paper bounds against.
    let max_regions = file_size.div_ceil(cfg.fixed_region_size).max(1) as usize;

    let mut threshold = cfg.initial_threshold_pct;
    let mut best = divide_once(sorted, file_size, threshold);
    for _ in 0..cfg.max_rounds {
        if best.len() <= max_regions {
            break;
        }
        threshold *= cfg.threshold_growth;
        best = divide_once(sorted, file_size, threshold);
    }
    best
}

/// Check that regions tile `[0, file_size)` without gaps or overlaps.
/// Used by tests and by the placement layer's validation.
pub fn regions_tile_file(regions: &[Region], file_size: u64) -> bool {
    if regions.is_empty() {
        return false;
    }
    if regions[0].offset != 0 {
        return false;
    }
    for w in regions.windows(2) {
        if w[0].end != w[1].offset {
            return false;
        }
    }
    regions.last().is_some_and(|r| r.end == file_size)
}

/// Pretty one-line summary of a region list, for reports.
pub fn summarize_regions(regions: &[Region]) -> String {
    let mut out = String::new();
    for (i, r) in regions.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "#{i}[{}..{}) avg={}",
            ByteSize(r.offset),
            ByteSize(r.end),
            ByteSize(r.avg_request_size)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use harl_devices::OpKind;
    use harl_simcore::SimNanos;

    fn rec(offset: u64, size: u64) -> TraceRecord {
        TraceRecord {
            rank: 0,
            fd: 0,
            op: OpKind::Read,
            offset,
            size,
            timestamp: SimNanos::ZERO,
        }
    }

    /// A trace with `n` requests of `size` bytes tiling from `start`.
    fn uniform_run(start: u64, n: u64, size: u64) -> Vec<TraceRecord> {
        (0..n).map(|i| rec(start + i * size, size)).collect()
    }

    #[test]
    fn uniform_trace_is_one_region() {
        let trace = uniform_run(0, 100, 512 * 1024);
        let file_size = 100 * 512 * 1024;
        let regions = divide_regions(&trace, file_size, &RegionDivisionConfig::default());
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].offset, 0);
        assert_eq!(regions[0].end, file_size);
        assert_eq!(regions[0].avg_request_size, 512 * 1024);
        assert!(regions_tile_file(&regions, file_size));
    }

    #[test]
    fn two_phase_trace_splits() {
        // 64 small requests then 64 large ones: the CV jump at the phase
        // boundary must produce (at least) two regions, split near the
        // boundary offset.
        let mut trace = uniform_run(0, 64, 64 * 1024);
        let boundary = 64 * 64 * 1024;
        trace.extend(uniform_run(boundary, 64, 1024 * 1024));
        let file_size = boundary + 64 * 1024 * 1024;
        let cfg = RegionDivisionConfig {
            fixed_region_size: 1024 * 1024, // allow plenty of regions
            ..RegionDivisionConfig::default()
        };
        let regions = divide_regions(&trace, file_size, &cfg);
        assert!(regions.len() >= 2, "expected a split, got {regions:?}");
        assert!(regions_tile_file(&regions, file_size));
        // Some region boundary lies within one request of the phase change.
        assert!(
            regions
                .iter()
                .any(|r| r.offset.abs_diff(boundary) <= 1024 * 1024),
            "no boundary near the phase change: {}",
            summarize_regions(&regions)
        );
    }

    #[test]
    fn four_phase_trace_gets_four_regions() {
        // The Fig. 11 workload shape: four areas with distinct sizes.
        let sizes = [128 * 1024u64, 512 * 1024, 1024 * 1024, 256 * 1024];
        let mut trace = Vec::new();
        let mut off = 0u64;
        for &sz in &sizes {
            trace.extend(uniform_run(off, 64, sz));
            off += 64 * sz;
        }
        let cfg = RegionDivisionConfig {
            fixed_region_size: 16 * 1024 * 1024,
            ..RegionDivisionConfig::default()
        };
        let regions = divide_regions(&trace, off, &cfg);
        assert!(
            (2..=8).contains(&regions.len()),
            "expected about four regions: {}",
            summarize_regions(&regions)
        );
        assert!(regions_tile_file(&regions, off));
    }

    #[test]
    fn threshold_adaptation_bounds_region_count() {
        // Alternating sizes produce constant CV jumps; without adaptation
        // the pass would create ~one region per request. The bound must
        // hold regardless.
        let mut trace = Vec::new();
        for i in 0..256u64 {
            let size = if i % 2 == 0 { 4 * 1024 } else { 1024 * 1024 };
            trace.push(rec(i * 1024 * 1024, size));
        }
        let file_size = 256 * 1024 * 1024;
        let cfg = RegionDivisionConfig::default(); // 64 MiB fixed regions => max 4
        let regions = divide_regions(&trace, file_size, &cfg);
        assert!(
            regions.len() <= 4,
            "adaptation failed: {} regions",
            regions.len()
        );
        assert!(regions_tile_file(&regions, file_size));
    }

    #[test]
    fn empty_trace_single_default_region() {
        let regions = divide_regions(&[], 1024, &RegionDivisionConfig::default());
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].avg_request_size, 0);
        assert!(regions_tile_file(&regions, 1024));
    }

    #[test]
    fn single_request_single_region() {
        let trace = vec![rec(100, 50)];
        let regions = divide_regions(&trace, 1000, &RegionDivisionConfig::default());
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].offset, 0);
        assert_eq!(regions[0].end, 1000);
        assert_eq!(regions[0].avg_request_size, 50);
    }

    #[test]
    fn request_indices_partition_trace() {
        let mut trace = uniform_run(0, 32, 8 * 1024);
        trace.extend(uniform_run(32 * 8 * 1024, 32, 2 * 1024 * 1024));
        let file_size = 32 * 8 * 1024 + 32 * 2 * 1024 * 1024;
        let cfg = RegionDivisionConfig {
            fixed_region_size: 1024 * 1024,
            ..RegionDivisionConfig::default()
        };
        let regions = divide_regions(&trace, file_size, &cfg);
        assert_eq!(regions[0].first_request, 0);
        for w in regions.windows(2) {
            assert_eq!(w[0].last_request, w[1].first_request);
        }
        assert_eq!(regions.last().unwrap().last_request, trace.len());
    }

    #[test]
    fn cv_change_conventions() {
        assert_eq!(cv_change_pct(0.0, 0.0), 0.0);
        // Degenerate start: finite but far above any sane threshold.
        assert!((cv_change_pct(0.0, 0.5) - 5000.0).abs() < 1e-9);
        assert!((cv_change_pct(0.5, 0.75) - 50.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty file")]
    fn zero_file_size_rejected() {
        divide_regions(&[], 0, &RegionDivisionConfig::default());
    }
}
