//! Descriptive errors for the on-disk artefacts (RST, R2F, traces).
//!
//! The paper's tables are persisted next to the application and reloaded
//! at startup; a hand-edited or truncated file should fail with the file,
//! the line, and the reason — not a bare `io::Error` or a panic deep in
//! the parser.

use std::fmt;
use std::path::{Path, PathBuf};

/// Why loading a persisted table from disk failed.
///
/// Displays as `path:line: reason` (or `path: reason` when no line is
/// known, e.g. for I/O errors or whole-table validation failures).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadError {
    /// The file that failed to load.
    pub path: PathBuf,
    /// 1-based line where the problem was detected, when known.
    pub line: Option<usize>,
    /// What went wrong.
    pub reason: String,
}

impl LoadError {
    /// An error with no specific line (I/O failures, semantic validation).
    pub fn whole_file(path: &Path, reason: impl Into<String>) -> Self {
        LoadError {
            path: path.to_path_buf(),
            line: None,
            reason: reason.into(),
        }
    }

    /// Wrap a JSON parse error, recovering the line number from the byte
    /// offset the parser reports (`... at byte N`).
    pub fn from_parse(path: &Path, source: &str, err: serde::Error) -> Self {
        let reason = err.to_string();
        let line = byte_offset_in(&reason).map(|pos| {
            source.as_bytes()[..pos.min(source.len())]
                .iter()
                .filter(|&&b| b == b'\n')
                .count()
                + 1
        });
        LoadError {
            path: path.to_path_buf(),
            line,
            reason,
        }
    }
}

/// Extract `N` from a parser message containing `"byte N"`.
fn byte_offset_in(msg: &str) -> Option<usize> {
    let tail = &msg[msg.find("byte ")? + "byte ".len()..];
    let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "{}:{line}: {}", self.path.display(), self.reason),
            None => write!(f, "{}: {}", self.path.display(), self.reason),
        }
    }
}

impl std::error::Error for LoadError {}

/// Read `path` and parse it as JSON into `T`, with descriptive errors.
pub fn read_json<T: serde::Deserialize>(path: &Path) -> Result<T, LoadError> {
    let data = std::fs::read_to_string(path)
        .map_err(|e| LoadError::whole_file(path, format!("cannot read file: {e}")))?;
    serde_json::from_str(&data).map_err(|e| LoadError::from_parse(path, &data, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_line() {
        let with = LoadError {
            path: PathBuf::from("rst.json"),
            line: Some(3),
            reason: "bad number".into(),
        };
        assert_eq!(with.to_string(), "rst.json:3: bad number");
        let without = LoadError::whole_file(Path::new("rst.json"), "regions must tile");
        assert_eq!(without.to_string(), "rst.json: regions must tile");
    }

    #[test]
    fn parse_errors_carry_the_line() {
        let dir = std::env::temp_dir().join("harl-loaderr-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("broken.json");
        std::fs::write(&path, "{\n  \"entries\": [\n    oops\n  ]\n}").unwrap();
        let err = read_json::<serde::Value>(&path).unwrap_err();
        assert_eq!(err.line, Some(3), "error should point at line 3: {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_reports_path_and_reason() {
        let err = read_json::<serde::Value>(Path::new("/nonexistent/rst.json")).unwrap_err();
        assert!(err.line.is_none());
        assert!(err.reason.contains("cannot read file"), "{err}");
    }
}
