//! SServer space balancing — the paper's Sec. IV-D discussion.
//!
//! HARL deliberately over-weights SServers, so a small SSD pool can fill
//! up. The paper's answer: *"we could use a data migration method to
//! balance the storage space by moving data from SServers to HServers, so
//! the remaining available space on SServers can be guaranteed for new
//! incoming requests."*
//!
//! [`SpaceBalancer`] implements that: given a planned RST and the SServer
//! capacity budget, it projects per-class space usage and, if SServers
//! would overflow, re-plans the *least-hurt* regions under a constrained
//! optimizer (the same Algorithm 2 grid, restricted to candidates whose
//! SServer share fits) — regions are picked in order of smallest predicted
//! cost increase per byte reclaimed, which is a migration plan in the
//! "move data from SServers to HServers" sense.

use crate::model::CostModelParams;
use crate::optimizer::{OptimizerConfig, RegionRequests};
use crate::rst::{RegionStripeTable, RstEntry};
use crate::trace::TraceRecord;
use serde::{Deserialize, Serialize};

/// Result of a balancing pass.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BalanceOutcome {
    /// The adjusted table.
    pub rst: RegionStripeTable,
    /// Projected SServer bytes before balancing.
    pub sserver_bytes_before: u64,
    /// Projected SServer bytes after balancing.
    pub sserver_bytes_after: u64,
    /// Regions whose stripes were adjusted.
    pub regions_adjusted: usize,
    /// Relative predicted cost increase across adjusted regions (0.0 when
    /// nothing moved).
    pub cost_increase_frac: f64,
}

/// A constrained two-tier candidate (the balancer is inherently two-tier:
/// it moves bytes from the SServer class to the HServer class).
#[derive(Debug, Clone, Copy)]
struct ConstrainedChoice {
    h: u64,
    s: u64,
    cost: f64,
}

/// SServer share of one region's bytes under `(h, s)` on an (M, N) cluster.
fn sserver_fraction(m: usize, h: u64, n: usize, s: u64) -> f64 {
    let total = m as u64 * h + n as u64 * s;
    if total == 0 {
        return 0.0;
    }
    (n as u64 * s) as f64 / total as f64
}

/// Projected SServer bytes of a whole RST.
pub fn projected_sserver_bytes(model: &CostModelParams, rst: &RegionStripeTable) -> u64 {
    rst.entries()
        .iter()
        .map(|e| (e.len as f64 * sserver_fraction(model.m(), e.h(), model.n(), e.s())) as u64)
        .sum()
}

/// The space balancer.
#[derive(Debug, Clone)]
pub struct SpaceBalancer {
    /// Platform model used for re-planning.
    pub model: CostModelParams,
    /// Total bytes the SServer pool may hold for this file.
    pub sserver_capacity: u64,
    /// Optimizer settings for the constrained re-plan.
    pub optimizer: OptimizerConfig,
}

impl SpaceBalancer {
    /// Best `(h, s)` for a region whose SServer share must not exceed
    /// `max_frac`. Returns `None` if no candidate satisfies the bound
    /// (cannot happen for `max_frac >= 0` when M > 0 thanks to the
    /// `(R̄, 0)` extreme).
    fn constrained_choice(
        &self,
        requests: &RegionRequests<'_>,
        avg: u64,
        max_frac: f64,
    ) -> Option<ConstrainedChoice> {
        let step = self.optimizer.effective_step(avg.max(1));
        let r_bar = avg.max(step).div_ceil(step) * step;
        let mut best: Option<ConstrainedChoice> = None;
        let mut consider = |h: u64, s: u64| {
            if self.model.m() as u64 * h + self.model.n() as u64 * s == 0 {
                return;
            }
            if sserver_fraction(self.model.m(), h, self.model.n(), s) > max_frac + 1e-12 {
                return;
            }
            let cost = requests.cost_of(&self.model, h, s, self.optimizer.max_requests_per_eval);
            let cand = ConstrainedChoice { h, s, cost };
            best = Some(match best.take() {
                None => cand,
                Some(b)
                    if cand.cost < b.cost
                        || (cand.cost == b.cost && (cand.h, cand.s) > (b.h, b.s)) =>
                {
                    cand
                }
                Some(b) => b,
            });
        };
        let mut h = 0;
        while h <= r_bar {
            let mut s = h + step;
            while s <= r_bar + step {
                if self.model.n() > 0 {
                    consider(h, s);
                }
                s += step;
            }
            h += step;
        }
        if self.model.m() > 0 {
            consider(r_bar, 0);
        }
        best
    }

    /// Balance `rst` so projected SServer usage fits the capacity.
    ///
    /// `sorted` is the offset-sorted trace the plan was built from (used to
    /// re-cost regions). Regions are re-planned greedily in order of least
    /// cost-increase per SServer byte reclaimed until the budget holds.
    pub fn balance(&self, rst: &RegionStripeTable, sorted: &[TraceRecord]) -> BalanceOutcome {
        let before = projected_sserver_bytes(&self.model, rst);
        if before <= self.sserver_capacity {
            return BalanceOutcome {
                rst: rst.clone(),
                sserver_bytes_before: before,
                sserver_bytes_after: before,
                regions_adjusted: 0,
                cost_increase_frac: 0.0,
            };
        }

        // Iteratively re-plan the region with the best reclaim-per-cost
        // under a halved SServer share bound until the budget holds or
        // nothing more can be reclaimed.
        let mut entries: Vec<RstEntry> = rst.entries().to_vec();
        let mut adjusted = vec![false; entries.len()];
        let mut old_cost_total = crate::fold::OrderedSum::new();
        let mut new_cost_total = crate::fold::OrderedSum::new();
        let mut current = before;

        // Precompute per-region request slices.
        let slices: Vec<(usize, usize)> = entries
            .iter()
            .map(|e| {
                let lo = sorted.partition_point(|r| r.offset < e.offset);
                let hi = sorted.partition_point(|r| r.offset < e.end());
                (lo, hi)
            })
            .collect();

        while current > self.sserver_capacity {
            let mut best_idx: Option<usize> = None;
            let mut best_score = f64::NEG_INFINITY;
            let mut best_plan: Option<(ConstrainedChoice, f64, u64)> = None;
            for (i, e) in entries.iter().enumerate() {
                if adjusted[i] {
                    continue;
                }
                let cur_frac = sserver_fraction(self.model.m(), e.h(), self.model.n(), e.s());
                if cur_frac == 0.0 {
                    continue;
                }
                let (lo, hi) = slices[i];
                let reqs = RegionRequests::new(&sorted[lo..hi], e.offset);
                let avg = if hi > lo {
                    (sorted[lo..hi].iter().map(|r| r.size).sum::<u64>() / (hi - lo) as u64).max(1)
                } else {
                    e.h().max(e.s())
                };
                let old_cost = reqs.cost_of(
                    &self.model,
                    e.h(),
                    e.s(),
                    self.optimizer.max_requests_per_eval,
                );
                let Some(plan) = self.constrained_choice(&reqs, avg, cur_frac / 2.0) else {
                    continue;
                };
                let new_frac = sserver_fraction(self.model.m(), plan.h, self.model.n(), plan.s);
                let reclaimed = ((cur_frac - new_frac).max(0.0) * e.len as f64) as u64;
                if reclaimed == 0 {
                    continue;
                }
                let cost_delta = (plan.cost - old_cost).max(0.0);
                let score = reclaimed as f64 / (cost_delta + 1e-12);
                if score > best_score {
                    best_score = score;
                    best_idx = Some(i);
                    best_plan = Some((plan, old_cost, reclaimed));
                }
            }
            let (Some(i), Some((plan, old_cost, reclaimed))) = (best_idx, best_plan) else {
                break; // nothing left to reclaim
            };
            entries[i] = RstEntry::two(entries[i].offset, entries[i].len, plan.h, plan.s);
            adjusted[i] = true;
            old_cost_total.add(old_cost);
            new_cost_total.add(plan.cost);
            current = current.saturating_sub(reclaimed);
        }

        let regions_adjusted = adjusted.iter().filter(|&&a| a).count();
        let mut new_rst = RegionStripeTable::new(entries);
        new_rst.merge_adjacent();
        let after = projected_sserver_bytes(&self.model, &new_rst);
        BalanceOutcome {
            rst: new_rst,
            sserver_bytes_before: before,
            sserver_bytes_after: after,
            regions_adjusted,
            cost_increase_frac: if old_cost_total.value() > 0.0 {
                (new_cost_total.value() - old_cost_total.value()) / old_cost_total.value()
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harl_devices::OpKind;
    use harl_pfs::ClusterConfig;
    use harl_simcore::SimNanos;

    const KB: u64 = 1024;
    const MB: u64 = 1024 * 1024;

    fn model() -> CostModelParams {
        CostModelParams::from_cluster(&ClusterConfig::paper_default())
    }

    fn trace(n: u64, size: u64) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| TraceRecord {
                rank: 0,
                fd: 0,
                op: OpKind::Read,
                offset: i * size,
                size,
                timestamp: SimNanos::ZERO,
            })
            .collect()
    }

    fn ssd_heavy_rst(file_size: u64) -> RegionStripeTable {
        RegionStripeTable::single(file_size, 32 * KB, 160 * KB)
    }

    #[test]
    fn fraction_math() {
        assert!((sserver_fraction(6, 32 * KB, 2, 160 * KB) - 320.0 / 512.0).abs() < 1e-12);
        assert_eq!(sserver_fraction(6, 64 * KB, 2, 0), 0.0);
        assert_eq!(sserver_fraction(0, 0, 2, 64 * KB), 1.0);
    }

    #[test]
    fn projection_matches_fraction() {
        let rst = ssd_heavy_rst(512 * MB);
        let bytes = projected_sserver_bytes(&model(), &rst);
        let expect = (512.0 * MB as f64 * 320.0 / 512.0) as u64;
        assert_eq!(bytes, expect);
    }

    #[test]
    fn within_budget_is_untouched() {
        let rst = ssd_heavy_rst(512 * MB);
        let balancer = SpaceBalancer {
            model: model(),
            sserver_capacity: u64::MAX,
            optimizer: OptimizerConfig {
                threads: 1,
                ..OptimizerConfig::default()
            },
        };
        let out = balancer.balance(&rst, &trace(64, 512 * KB));
        assert_eq!(out.regions_adjusted, 0);
        assert_eq!(out.rst, rst);
        assert_eq!(out.cost_increase_frac, 0.0);
    }

    #[test]
    fn over_budget_reclaims_space() {
        let rst = ssd_heavy_rst(512 * MB);
        let m = model();
        let before = projected_sserver_bytes(&m, &rst);
        let budget = before / 2;
        let balancer = SpaceBalancer {
            model: m.clone(),
            sserver_capacity: budget,
            optimizer: OptimizerConfig {
                threads: 1,
                max_requests_per_eval: 64,
                ..OptimizerConfig::default()
            },
        };
        let out = balancer.balance(&rst, &trace(64, 512 * KB));
        assert!(out.regions_adjusted >= 1);
        assert!(
            out.sserver_bytes_after < before,
            "no space reclaimed: {} -> {}",
            out.sserver_bytes_before,
            out.sserver_bytes_after
        );
        // Balancing trades space for cost: predicted cost must not decrease
        // (else the original plan was not optimal).
        assert!(out.cost_increase_frac >= 0.0);
    }

    #[test]
    fn multi_region_balancing_adjusts_some_regions() {
        let m = model();
        let mut records = trace(32, 2 * MB);
        let boundary = 32 * 2 * MB;
        records.extend((0..32u64).map(|i| TraceRecord {
            rank: 0,
            fd: 0,
            op: OpKind::Read,
            offset: boundary + i * 128 * KB,
            size: 128 * KB,
            timestamp: SimNanos::ZERO,
        }));
        let rst = RegionStripeTable::new(vec![
            RstEntry::two(0, boundary, 64 * KB, 832 * KB),
            RstEntry::two(boundary, 32 * 128 * KB, 0, 64 * KB),
        ]);
        let before = projected_sserver_bytes(&m, &rst);
        let balancer = SpaceBalancer {
            model: m,
            sserver_capacity: before * 3 / 4,
            optimizer: OptimizerConfig {
                threads: 1,
                max_requests_per_eval: 32,
                ..OptimizerConfig::default()
            },
        };
        let out = balancer.balance(&rst, &records);
        assert!(out.sserver_bytes_after < before);
        assert!(out.regions_adjusted >= 1);
    }

    #[test]
    fn impossible_budget_degrades_gracefully() {
        // Capacity zero: balancer pushes as much as it can toward HServers
        // and stops rather than looping forever.
        let rst = ssd_heavy_rst(64 * MB);
        let balancer = SpaceBalancer {
            model: model(),
            sserver_capacity: 0,
            optimizer: OptimizerConfig {
                threads: 1,
                max_requests_per_eval: 16,
                ..OptimizerConfig::default()
            },
        };
        let out = balancer.balance(&rst, &trace(16, 512 * KB));
        assert!(out.sserver_bytes_after <= out.sserver_bytes_before);
    }
}
