//! # harl-core — the HARL heterogeneity-aware region-level data layout
//!
//! The paper's contribution, end to end:
//!
//! 1. **Tracing** ([`trace`]) — collect `(rank, fd, op, offset, size, time)`
//!    records (the IOSIG stand-in) and sort them by offset.
//! 2. **Analysis**:
//!    * [`region`] — Algorithm 1: CV-driven division of the file into
//!      regions of similar workload, with threshold adaptation;
//!    * [`model`] — the Sec. III-D cost model (Table I, Eqs. 1–8), exact
//!      sub-request geometry plus the paper's Fig. 5 case table;
//!    * [`optimizer`] — Algorithm 2: per-region search for the optimal
//!      per-class stripe widths (exhaustive grid at `K = 2`, coordinate
//!      descent beyond), parallelised and deterministic.
//! 3. **Placement** ([`rst`], [`policy`]) — the Region Stripe Table and the
//!    policies the paper evaluates (fixed, random, segment-level, HARL).
//!
//! Extensions from the paper's discussion/future work live in
//! [`migration`] (SServer space balancing), [`multiprofile`] (more than
//! two server performance profiles) and [`online`] (on-line drift
//! detection and re-layout).

// missing_docs / rust_2018_idioms come from [workspace.lints]. The
// cfg_attr tier mirrors harl-lint's panic-hygiene rule at compile time
// for library code; unit tests compile under cfg(test) and stay exempt.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

// The cost-model modules (Sec. III-D, Eqs. 1–8) carry the strictest
// numeric tier, backing harl-lint's cast-hygiene and float-eq rules with
// type-aware clippy checks.
#[warn(clippy::float_cmp, clippy::cast_possible_truncation)]
pub mod analysis;
pub mod cache;
pub(crate) mod cast;
pub mod compat;
pub mod errors;
pub mod fingerprint;
pub mod fold;
pub mod migration;
#[warn(clippy::float_cmp, clippy::cast_possible_truncation)]
pub mod model;
pub mod multiprofile;
pub mod online;
#[warn(clippy::float_cmp, clippy::cast_possible_truncation)]
pub mod optimizer;
pub mod policy;
pub mod region;
pub mod rst;
pub mod trace;

pub use analysis::{size_histogram, summarize, summarize_records, TraceSummary};
pub use cache::{
    plan_file, plan_file_with, CacheLookup, CacheStats, CachedPlan, PlanCache, PlanReuse,
    PlannedFile, RegionPlanCache, RegionPlanKey, SampledReq,
};
pub use errors::LoadError;
pub use fingerprint::{
    fingerprint_sorted, ClassShape, HistBucket, RegionSignature, WorkloadFingerprint,
};
pub use migration::{projected_sserver_bytes, BalanceOutcome, SpaceBalancer};
pub use model::{case_a_params, server_loads, server_loads_scan, CostModelParams, ServerLoads};
pub use multiprofile::{ClassParams, MultiProfileModel, MultiProfileOptimizer};
pub use online::{AdaptationEvent, OnlineConfig, OnlineMonitor};
pub use optimizer::{optimize_region, LayoutChoice, OptimizerConfig, RegionRequests};
pub use policy::{
    FixedPolicy, HarlPolicy, LayoutPolicy, RandomPolicy, SegmentPolicy, ServerLevelPolicy,
};
pub use region::{divide_regions, Region, RegionDivisionConfig};
pub use rst::{RegionStripeTable, RstEntry};
pub use trace::{Trace, TraceRecord};
