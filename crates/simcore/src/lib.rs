//! # harl-simcore — discrete-event simulation engine
//!
//! The foundation of the HARL reproduction: a small, deterministic
//! discrete-event simulation (DES) kernel used by the hybrid parallel file
//! system simulator in `harl-pfs`.
//!
//! Everything in the simulation is expressed in terms of three ideas:
//!
//! * **[`SimNanos`]** — simulated time with nanosecond resolution, stored as
//!   a `u64` so event ordering is exact (no floating-point ties).
//! * **[`Engine`]** — a generic event queue: events of a user-chosen type are
//!   scheduled at absolute times and delivered in `(time, insertion order)`
//!   order to a handler closure.
//! * **[`Timeline`]** — a FIFO resource (a disk, a NIC, a metadata server)
//!   that serialises work: a job arriving at time `t` with service demand
//!   `d` starts at `max(t, next_free)` and occupies the resource for `d`.
//!
//! Determinism is a hard requirement (experiments must be reproducible), so
//! randomness goes through [`rng::SimRng`], a seeded generator with cheap
//! stream splitting: every server, client and workload derives an
//! independent stream from one master seed.

// missing_docs / rust_2018_idioms come from [workspace.lints]. The
// cfg_attr tier mirrors harl-lint's panic-hygiene rule at compile time
// for library code; unit tests compile under cfg(test) and stay exempt.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub(crate) mod calendar;
pub mod context;
pub mod engine;
pub mod faults;
pub mod metrics;
pub mod profiler;
pub mod registry;
pub mod rng;
pub mod stats;
pub mod time;
pub mod timeline;
pub mod units;

pub use context::SimContext;
pub use engine::{Engine, EventId, Scheduler};
pub use faults::{slowdown_at, Degradation};
pub use metrics::{MemoryRecorder, NoopRecorder, Recorder, SpanHop, SpanRecord};
pub use profiler::{Phase, PhaseProfiler};
pub use registry::{MetricDef, MetricKind, Unit};
pub use rng::SimRng;
pub use stats::{coefficient_of_variation, Histogram, OnlineStats};
pub use time::SimNanos;
pub use timeline::Timeline;
pub use units::{throughput_mib_s, ByteSize, GIB, KIB, MIB};
