//! Fault and straggler injection.
//!
//! Real PFS deployments degrade: an SSD hits a garbage-collection storm, a
//! disk develops remapped sectors, a server becomes a straggler. HARL
//! plans from a calibration taken at one point in time, so its sensitivity
//! to later degradation matters. [`Degradation`] injects a service-time
//! slowdown on one server over a simulated time window; the simulator
//! multiplies the device service time of any sub-request arriving in the
//! window.
//!
//! The type lives here (rather than in `harl-pfs`) so that
//! [`crate::SimContext`] can carry a fault plan without the engine crate
//! depending on the file-system simulator. `harl_pfs::faults` re-exports
//! everything for callers that think in PFS terms.

use crate::time::SimNanos;
use serde::{Deserialize, Serialize};

/// One injected degradation window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Degradation {
    /// The server whose device degrades (an index into the cluster's
    /// server list, `harl_pfs::ServerId`).
    pub server: usize,
    /// Window start (inclusive).
    pub from: SimNanos,
    /// Window end (exclusive); use [`SimNanos::MAX`] for a permanent fault.
    pub until: SimNanos,
    /// Service-time multiplier (> 1.0 slows the device; 1.0 is a no-op).
    pub slowdown: f64,
}

impl Degradation {
    /// A permanent straggler from time zero.
    pub fn permanent(server: usize, slowdown: f64) -> Self {
        Degradation {
            server,
            from: SimNanos::ZERO,
            until: SimNanos::MAX,
            slowdown,
        }
    }

    /// Validate the window.
    ///
    /// # Panics
    /// Panics on a non-positive slowdown or an inverted window.
    pub fn validated(self) -> Self {
        assert!(
            self.slowdown > 0.0,
            "slowdown must be positive, got {}",
            self.slowdown
        );
        assert!(self.from <= self.until, "degradation window inverted");
        self
    }

    /// Whether the window covers time `t`.
    #[inline]
    pub fn active_at(&self, t: SimNanos) -> bool {
        t >= self.from && t < self.until
    }
}

/// The combined slowdown factor for `server` at time `t` (overlapping
/// windows multiply).
pub fn slowdown_at(degradations: &[Degradation], server: usize, t: SimNanos) -> f64 {
    degradations
        .iter()
        .filter(|d| d.server == server && d.active_at(t))
        .map(|d| d.slowdown)
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_membership() {
        let d = Degradation {
            server: 3,
            from: SimNanos(100),
            until: SimNanos(200),
            slowdown: 2.0,
        }
        .validated();
        assert!(!d.active_at(SimNanos(99)));
        assert!(d.active_at(SimNanos(100)));
        assert!(d.active_at(SimNanos(199)));
        assert!(!d.active_at(SimNanos(200)));
    }

    #[test]
    fn permanent_covers_everything() {
        let d = Degradation::permanent(0, 4.0);
        assert!(d.active_at(SimNanos::ZERO));
        assert!(d.active_at(SimNanos(u64::MAX - 1)));
    }

    #[test]
    fn slowdowns_multiply_per_server() {
        let ds = vec![
            Degradation::permanent(1, 2.0),
            Degradation {
                server: 1,
                from: SimNanos(50),
                until: SimNanos(100),
                slowdown: 3.0,
            },
            Degradation::permanent(2, 10.0),
        ];
        assert_eq!(slowdown_at(&ds, 1, SimNanos(10)), 2.0);
        assert_eq!(slowdown_at(&ds, 1, SimNanos(60)), 6.0);
        assert_eq!(slowdown_at(&ds, 0, SimNanos(60)), 1.0);
        assert_eq!(slowdown_at(&ds, 2, SimNanos(0)), 10.0);
    }

    #[test]
    #[should_panic(expected = "slowdown must be positive")]
    fn zero_slowdown_rejected() {
        Degradation::permanent(0, 0.0).validated();
    }

    #[test]
    #[should_panic(expected = "window inverted")]
    fn inverted_window_rejected() {
        Degradation {
            server: 0,
            from: SimNanos(10),
            until: SimNanos(5),
            slowdown: 2.0,
        }
        .validated();
    }
}
