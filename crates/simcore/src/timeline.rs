//! FIFO resources as service timelines.
//!
//! A [`Timeline`] models any resource that serves one job at a time in
//! arrival order — a disk, a NIC, a metadata server CPU. Because service is
//! FIFO and non-preemptive, the resource can be represented by a single
//! high-water mark (`next_free`): a job arriving at `t` with demand `d`
//! starts at `max(t, next_free)`, ends at `start + d`, and advances the
//! mark. This is exactly an M/G/1-style FIFO queue without needing explicit
//! queue events, which keeps the PFS simulator's event count proportional to
//! the number of sub-requests rather than queue operations.

use crate::time::SimNanos;
use serde::{Deserialize, Serialize};

/// Outcome of acquiring a FIFO resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When service actually starts (>= arrival time).
    pub start: SimNanos,
    /// When service completes.
    pub end: SimNanos,
    /// How long the job waited in the queue before service.
    pub queued: SimNanos,
}

/// A non-preemptive FIFO resource.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Timeline {
    next_free: SimNanos,
    /// Total time the resource has actually been serving jobs.
    busy: SimNanos,
    /// Total time jobs spent waiting for the resource.
    total_queued: SimNanos,
    jobs: u64,
}

impl Timeline {
    /// A fresh, idle resource.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Serve a job arriving at `arrival` needing `service` time.
    ///
    /// Jobs must be offered in non-decreasing arrival order per timeline —
    /// that is the caller's responsibility and holds naturally when calls
    /// are made from a discrete-event handler (events arrive in time order).
    pub fn acquire(&mut self, arrival: SimNanos, service: SimNanos) -> Grant {
        let start = arrival.max(self.next_free);
        let end = start + service;
        let queued = start - arrival;
        self.next_free = end;
        self.busy += service;
        self.total_queued += queued;
        self.jobs += 1;
        Grant { start, end, queued }
    }

    /// When the resource next becomes idle.
    #[inline]
    pub fn next_free(&self) -> SimNanos {
        self.next_free
    }

    /// Cumulative busy time.
    #[inline]
    pub fn busy_time(&self) -> SimNanos {
        self.busy
    }

    /// Cumulative queueing delay across all jobs.
    #[inline]
    pub fn total_queued(&self) -> SimNanos {
        self.total_queued
    }

    /// Number of jobs served.
    #[inline]
    pub fn jobs_served(&self) -> u64 {
        self.jobs
    }

    /// Utilisation over `[0, horizon]`: fraction of that window spent busy.
    ///
    /// Returns 0.0 for a zero horizon.
    pub fn utilisation(&self, horizon: SimNanos) -> f64 {
        if horizon.is_zero() {
            return 0.0;
        }
        self.busy.as_secs_f64() / horizon.as_secs_f64()
    }

    /// Reset all state (between experiment repetitions).
    pub fn reset(&mut self) {
        *self = Timeline::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_starts_immediately() {
        let mut t = Timeline::new();
        let g = t.acquire(SimNanos(100), SimNanos(50));
        assert_eq!(g.start, SimNanos(100));
        assert_eq!(g.end, SimNanos(150));
        assert_eq!(g.queued, SimNanos::ZERO);
    }

    #[test]
    fn busy_resource_queues() {
        let mut t = Timeline::new();
        t.acquire(SimNanos(0), SimNanos(100));
        let g = t.acquire(SimNanos(10), SimNanos(5));
        assert_eq!(g.start, SimNanos(100));
        assert_eq!(g.end, SimNanos(105));
        assert_eq!(g.queued, SimNanos(90));
    }

    #[test]
    fn back_to_back_jobs_serialize() {
        let mut t = Timeline::new();
        let mut end = SimNanos::ZERO;
        for _ in 0..10 {
            let g = t.acquire(SimNanos::ZERO, SimNanos(7));
            assert_eq!(g.start, end);
            end = g.end;
        }
        assert_eq!(end, SimNanos(70));
        assert_eq!(t.busy_time(), SimNanos(70));
        assert_eq!(t.jobs_served(), 10);
    }

    #[test]
    fn gap_leaves_idle_time() {
        let mut t = Timeline::new();
        t.acquire(SimNanos(0), SimNanos(10));
        t.acquire(SimNanos(100), SimNanos(10));
        assert_eq!(t.busy_time(), SimNanos(20));
        assert!((t.utilisation(SimNanos(200)) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn utilisation_zero_horizon() {
        let t = Timeline::new();
        assert_eq!(t.utilisation(SimNanos::ZERO), 0.0);
    }

    #[test]
    fn queued_time_accumulates() {
        let mut t = Timeline::new();
        t.acquire(SimNanos(0), SimNanos(100));
        t.acquire(SimNanos(0), SimNanos(100)); // waits 100
        t.acquire(SimNanos(0), SimNanos(100)); // waits 200
        assert_eq!(t.total_queued(), SimNanos(300));
    }

    #[test]
    fn reset_clears_everything() {
        let mut t = Timeline::new();
        t.acquire(SimNanos(0), SimNanos(100));
        t.reset();
        assert_eq!(t.next_free(), SimNanos::ZERO);
        assert_eq!(t.jobs_served(), 0);
        assert_eq!(t.busy_time(), SimNanos::ZERO);
    }
}
