//! The central metric registry: every metric name in the workspace, typed.
//!
//! Before this module existed, ~20 metric names lived as string literals
//! scattered across five crates — a typo in one call site silently forked a
//! series. Every instrumented site now names its metric through one of the
//! constants below (`REGISTRY` lists them all), and the `metric-registry`
//! rule in `harl-lint` rejects any quoted `sim.*`/`pfs.*`/`mw.*`/`harl.*`
//! literal passed to a [`Recorder`](crate::metrics::Recorder) method outside
//! this file.
//!
//! A [`MetricDef`] carries the machine-checked contract of one metric
//! family: its dotted name (validated against
//! `^[a-z0-9_]+(\.[a-z0-9_]+)+$` by the registry tests), the recorder
//! primitive it must be written through ([`MetricKind`]), and the unit of
//! its values ([`Unit`]). Call sites read `DEF.name`; tools (the
//! `harl-cli report` renderer, dashboards) read the kind and unit.
//!
//! Naming convention: `<layer>.<subject>.<quantity>[_<unit-suffix>]`, where
//! the layer prefix is the crate that owns the instrumentation site —
//! `sim.` (engine/flight recorder), `pfs.` (file-system simulator), `mw.`
//! (middleware runtime), `harl.` (planner and online monitor). Quantities
//! measured in a specific unit spell it in the suffix (`_ns`, `_s`).

/// Which [`Recorder`](crate::metrics::Recorder) primitive a metric is
/// written through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic total via `counter_add`.
    Counter,
    /// Last-value or high-water-mark reading via `gauge_set`/`gauge_max`.
    Gauge,
    /// Power-of-two bucketed `u64` distribution via `observe`.
    Histogram,
    /// Welford `f64` summary via `observe_f64`.
    Summary,
    /// Sampled `(sim-time, value)` time-series via `series_point`.
    Series,
}

/// Unit of a metric's recorded values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Dimensionless count (events, requests, jobs).
    Count,
    /// Bytes.
    Bytes,
    /// Simulated or wall-clock nanoseconds.
    Nanoseconds,
    /// Simulated or wall-clock seconds.
    Seconds,
    /// Dimensionless fraction in `[0, 1]` (utilisation and the like).
    Ratio,
    /// US dollars (object-store tier pricing).
    Dollars,
}

impl Unit {
    /// Short suffix used when rendering values (`"B"`, `"ns"`, …).
    pub fn suffix(self) -> &'static str {
        match self {
            Unit::Count => "",
            Unit::Bytes => "B",
            Unit::Nanoseconds => "ns",
            Unit::Seconds => "s",
            Unit::Ratio => "",
            Unit::Dollars => "$",
        }
    }
}

/// The declaration of one metric family.
#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    /// Dotted series name, e.g. `"pfs.server.queue_wait_ns"`.
    pub name: &'static str,
    /// Recorder primitive the metric is written through.
    pub kind: MetricKind,
    /// Unit of recorded values.
    pub unit: Unit,
    /// One-line description (shown by tooling).
    pub help: &'static str,
}

macro_rules! metrics {
    ($($(#[$doc:meta])* $konst:ident = ($name:literal, $kind:ident, $unit:ident, $help:literal);)+) => {
        $(
            $(#[$doc])*
            pub const $konst: MetricDef = MetricDef {
                name: $name,
                kind: MetricKind::$kind,
                unit: Unit::$unit,
                help: $help,
            };
        )+

        /// Every metric declared in the workspace, for tooling and the
        /// registry hygiene tests.
        pub const REGISTRY: &[MetricDef] = &[$($konst),+];
    };
}

metrics! {
    // --- sim.* — discrete-event engine and flight recorder -------------
    /// Events delivered by the engine over one run.
    SIM_EVENTS_DISPATCHED = ("sim.events.dispatched", Counter, Count,
        "events delivered by the discrete-event engine");
    /// Deepest the event queue ever got.
    SIM_QUEUE_DEPTH_HWM = ("sim.queue_depth.hwm", Gauge, Count,
        "event-queue depth high-water mark");
    /// Calendar-queue geometry retunings (bucket width / ring size).
    SIM_QUEUE_REBUILDS = ("sim.queue.rebuilds", Counter, Count,
        "calendar-queue bucket-geometry retunings over one run");
    /// Wall time the engine spent popping/bookkeeping events.
    SIM_PROFILE_DISPATCH_S = ("sim.profile.dispatch_s", Gauge, Seconds,
        "wall time in event-queue dispatch (pop + loop bookkeeping)");
    /// Wall time in handlers modelling device/network service.
    SIM_PROFILE_DEVICE_SERVICE_S = ("sim.profile.device_service_s", Gauge, Seconds,
        "wall time in device/network service event handlers");
    /// Wall time in completion/control-flow handlers.
    SIM_PROFILE_QUEUE_DRAIN_S = ("sim.profile.queue_drain_s", Gauge, Seconds,
        "wall time draining completions and client control flow");
    /// Wall time inside recorder instrumentation blocks.
    SIM_PROFILE_RECORDER_S = ("sim.profile.recorder_s", Gauge, Seconds,
        "wall time spent feeding the metrics recorder");

    // --- pfs.* — file-system simulator ---------------------------------
    /// File requests issued by clients, labelled by `op`.
    PFS_REQUESTS_ISSUED = ("pfs.requests.issued", Counter, Count,
        "file requests issued by clients");
    /// File requests fully completed, labelled by `op`.
    PFS_REQUESTS_COMPLETED = ("pfs.requests.completed", Counter, Count,
        "file requests completed");
    /// Per-server device queueing delay, labelled by `server`/`kind`.
    PFS_SERVER_QUEUE_WAIT_NS = ("pfs.server.queue_wait_ns", Histogram, Nanoseconds,
        "sub-request queueing delay at the storage device");
    /// Per-server device service time, labelled by `server`/`kind`.
    PFS_SERVER_SERVICE_NS = ("pfs.server.service_ns", Histogram, Nanoseconds,
        "sub-request service time at the storage device");
    /// Bytes landed on each server, labelled by `server`/`kind`.
    PFS_SERVER_BYTES = ("pfs.server.bytes", Counter, Bytes,
        "bytes served by the storage device");
    /// Sub-requests served by each server, labelled by `server`/`kind`.
    PFS_SERVER_SUB_REQUESTS = ("pfs.server.sub_requests", Counter, Count,
        "sub-requests served by the storage device");
    /// Sampled sub-requests in flight at the device (queued + in service).
    PFS_SERVER_QUEUE_DEPTH = ("pfs.server.queue_depth", Series, Count,
        "sampled sub-requests in flight at the storage device");
    /// Sampled device utilisation over the last sample window.
    PFS_SERVER_UTIL = ("pfs.server.util", Series, Ratio,
        "sampled storage-device utilisation per sample window");
    /// Sampled bytes in flight at the device.
    PFS_SERVER_INFLIGHT_BYTES = ("pfs.server.inflight_bytes", Series, Bytes,
        "sampled bytes in flight at the storage device");

    // --- mw.* — middleware runtime --------------------------------------
    /// Routing decisions per region, labelled by `region`/`op`.
    MW_REGION_REQUESTS = ("mw.region.requests", Counter, Count,
        "logical-request pieces routed to a region");
    /// Bytes routed per region, labelled by `region`/`op`.
    MW_REGION_BYTES = ("mw.region.bytes", Counter, Bytes,
        "bytes routed to a region");
    /// Fan-out of each logical request, labelled by `op`.
    MW_REQUEST_FANOUT = ("mw.request.fanout", Histogram, Count,
        "region pieces one logical request split into");
    /// Planned HServer stripe per region, labelled by `region`.
    MW_REGION_STRIPE_H = ("mw.region.stripe_h", Gauge, Bytes,
        "planned HServer stripe size of a region");
    /// Planned SServer stripe per region, labelled by `region`.
    MW_REGION_STRIPE_S = ("mw.region.stripe_s", Gauge, Bytes,
        "planned SServer stripe size of a region");
    /// Planned stripe width per region and class, labelled by
    /// `region`/`class` (any class count; `K = 2` keeps `stripe_h`/`_s`).
    MW_REGION_STRIPE_WIDTH = ("mw.region.stripe_width", Gauge, Bytes,
        "planned stripe width of a region on one server class");
    /// Region length, labelled by `region`.
    MW_REGION_LEN = ("mw.region.len", Gauge, Bytes,
        "length of a region");
    /// Trace records collected during the tracing phase.
    MW_TRACE_RECORDS = ("mw.trace.records", Counter, Count,
        "trace records collected before planning");

    // --- harl.* — planner and online monitor -----------------------------
    /// Algorithm 2 grid candidates searched, labelled by `region`.
    HARL_OPTIMIZER_CANDIDATES = ("harl.optimizer.candidates", Counter, Count,
        "stripe-pair candidates evaluated by Algorithm 2");
    /// Winning HServer stripe, labelled by `region`.
    HARL_OPTIMIZER_STRIPE_H = ("harl.optimizer.stripe_h", Gauge, Bytes,
        "HServer stripe size chosen by Algorithm 2");
    /// Winning SServer stripe, labelled by `region`.
    HARL_OPTIMIZER_STRIPE_S = ("harl.optimizer.stripe_s", Gauge, Bytes,
        "SServer stripe size chosen by Algorithm 2");
    /// Winning stripe width per class (`K ≥ 3` layouts), labelled by
    /// `region`/`class`.
    HARL_OPTIMIZER_STRIPE_WIDTH = ("harl.optimizer.stripe_width", Gauge, Bytes,
        "stripe width chosen by coordinate descent for one server class");
    /// Predicted cost of the winning pair, labelled by `region`.
    HARL_OPTIMIZER_PREDICTED_COST_S = ("harl.optimizer.predicted_cost_s", Summary, Seconds,
        "predicted cost of the chosen stripe pair");
    /// Wall time of one Algorithm 2 search, labelled by `region`.
    HARL_OPTIMIZER_PLAN_WALL_S = ("harl.optimizer.plan_wall_s", Summary, Seconds,
        "wall-clock latency of one Algorithm 2 search");
    /// Predicted per-request cost, labelled by `region`.
    HARL_MODEL_PREDICTED_REQUEST_COST_S = ("harl.model.predicted_request_cost_s", Summary, Seconds,
        "model-predicted cost per request");
    /// Predicted-vs-actual residual, labelled by `region`.
    HARL_MODEL_RESIDUAL_S = ("harl.model.residual_s", Summary, Seconds,
        "actual minus predicted request cost");
    /// Absolute residual magnitude, labelled by `region`.
    HARL_MODEL_RESIDUAL_ABS_NS = ("harl.model.residual_abs_ns", Histogram, Nanoseconds,
        "absolute model residual magnitude");
    /// Re-plans adopted by the online monitor, labelled by `region`.
    HARL_ONLINE_ADAPTATIONS = ("harl.online.adaptations", Counter, Count,
        "layout adaptations adopted by the online monitor");
    /// Projected monthly dollar cost of the adopted plan (object-store
    /// capacity rent plus per-request GET/PUT fees; 0 when every class is
    /// free on-prem).
    HARL_PLAN_COST_USD = ("harl.plan.cost_usd", Gauge, Dollars,
        "projected monthly dollar cost of the adopted layout plan");
    /// Plan-cache lookups answered from a live cached plan.
    HARL_CACHE_HITS = ("harl.cache.hits", Counter, Count,
        "workload-fingerprint plan-cache hits");
    /// Plan-cache lookups that found nothing reusable.
    HARL_CACHE_MISSES = ("harl.cache.misses", Counter, Count,
        "workload-fingerprint plan-cache misses");
    /// Plan-cache lookups that found an invalidated entry (its per-region
    /// grid results are still recycled).
    HARL_CACHE_STALE = ("harl.cache.stale", Counter, Count,
        "workload-fingerprint plan-cache stale hits");
    /// Plans evicted by the deterministic LRU when the cache is full.
    HARL_CACHE_EVICTIONS = ("harl.cache.evictions", Counter, Count,
        "plan-cache LRU evictions");
    /// Current number of cached whole-file plans.
    HARL_CACHE_SIZE = ("harl.cache.size", Gauge, Count,
        "cached whole-file plans resident in the plan cache");
    /// Per-region grid results reused from the region plan cache.
    HARL_CACHE_REGION_HITS = ("harl.cache.region_hits", Counter, Count,
        "per-region grid results reused from the region plan cache");
    /// Per-region grid searches that had to run (region-cache misses).
    HARL_CACHE_REGION_MISSES = ("harl.cache.region_misses", Counter, Count,
        "per-region grid searches not answerable from the region cache");

    // --- mw.serve.* — multi-tenant planning service ----------------------
    /// Plan requests served, labelled by `outcome` (hit/stale/miss).
    MW_SERVE_PLANS = ("mw.serve.plans", Counter, Count,
        "tenant plan submissions served by the planning service");
    /// Service ticks executed (one batched RST apply each).
    MW_SERVE_TICKS = ("mw.serve.ticks", Counter, Count,
        "planning-service ticks (one batched table apply per tick)");
    /// Regions whose grid result was reused instead of recomputed.
    MW_SERVE_REGIONS_REUSED = ("mw.serve.regions_reused", Counter, Count,
        "regions planned by reusing a cached grid result");
    /// Regions whose grid search actually ran.
    MW_SERVE_REGIONS_PLANNED = ("mw.serve.regions_planned", Counter, Count,
        "regions planned by running the grid search");
    /// Per-region RST writes applied by the batched tick path.
    MW_SERVE_BATCH_APPLIED = ("mw.serve.batch_applied", Counter, Count,
        "region stripe-table writes applied at tick boundaries");
    /// Pending RST writes coalesced away (superseded or no-op) before apply.
    MW_SERVE_BATCH_COALESCED = ("mw.serve.batch_coalesced", Counter, Count,
        "pending region writes coalesced away by tick batching");
    /// Tenants with an active placed file.
    MW_SERVE_TENANTS = ("mw.serve.tenants", Gauge, Count,
        "tenants currently tracked by the planning service");
}

/// Look up a metric declaration by name.
pub fn find(name: &str) -> Option<&'static MetricDef> {
    REGISTRY.iter().find(|m| m.name == name)
}

/// Whether `name` is a well-formed registry metric name:
/// `^[a-z0-9_]+(\.[a-z0-9_]+)+$` (at least two dotted segments, each of
/// lowercase alphanumerics and underscores).
pub fn valid_name(name: &str) -> bool {
    let mut segments = 0usize;
    for seg in name.split('.') {
        if seg.is_empty()
            || !seg
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        {
            return false;
        }
        segments += 1;
    }
    segments >= 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn every_name_is_unique() {
        let mut seen = BTreeSet::new();
        for m in REGISTRY {
            assert!(seen.insert(m.name), "duplicate metric name {}", m.name);
        }
    }

    #[test]
    fn every_name_matches_the_pattern() {
        for m in REGISTRY {
            assert!(valid_name(m.name), "malformed metric name {}", m.name);
        }
    }

    #[test]
    fn every_name_carries_a_layer_prefix() {
        for m in REGISTRY {
            let prefix = m.name.split('.').next().unwrap_or("");
            assert!(
                matches!(prefix, "sim" | "pfs" | "mw" | "harl"),
                "metric {} must start with a layer prefix",
                m.name
            );
        }
    }

    #[test]
    fn unit_suffixes_match_names() {
        // A name ending in `_ns`/`_s` must declare the matching unit, and
        // vice versa — the suffix is the unit contract made visible. The
        // one non-time `_s` suffix is `stripe_s` (the SServer stripe, in
        // bytes), mirroring the paper's H/S server naming.
        for m in REGISTRY {
            if m.name.ends_with("stripe_s") || m.name.ends_with("stripe_h") {
                assert_eq!(m.unit, Unit::Bytes, "{} must be bytes", m.name);
            } else if m.name.ends_with("_ns") {
                assert_eq!(m.unit, Unit::Nanoseconds, "{} must be ns", m.name);
            } else if m.name.ends_with("_s") {
                assert_eq!(m.unit, Unit::Seconds, "{} must be s", m.name);
            } else {
                assert!(
                    !matches!(m.unit, Unit::Nanoseconds | Unit::Seconds),
                    "{} measures time but hides it from the name",
                    m.name
                );
            }
        }
    }

    #[test]
    fn every_metric_declares_help() {
        for m in REGISTRY {
            assert!(!m.help.is_empty(), "{} missing help", m.name);
        }
    }

    #[test]
    fn find_resolves_names() {
        assert_eq!(
            find("sim.events.dispatched").map(|m| m.kind),
            Some(MetricKind::Counter)
        );
        assert!(find("sim.events.nope").is_none());
    }

    #[test]
    fn name_validator_rejects_malformed() {
        assert!(valid_name("pfs.server.queue_wait_ns"));
        assert!(valid_name("a.b"));
        assert!(!valid_name("nosegments"));
        assert!(!valid_name("Upper.case"));
        assert!(!valid_name("trailing.dot."));
        assert!(!valid_name(".leading"));
        assert!(!valid_name("sp ace.x"));
        assert!(!valid_name("dash-ed.x"));
    }
}
