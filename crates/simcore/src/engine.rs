//! Generic discrete-event engine.
//!
//! The engine owns a priority queue of `(time, sequence, event)` entries and
//! delivers them, earliest first, to a handler. Ties in time break on
//! insertion order, which keeps simulations deterministic even when many
//! events share a timestamp (common with zero-latency hops).
//!
//! The handler receives a [`Scheduler`] so it can schedule follow-up events
//! while one is being processed — the usual DES pattern:
//!
//! ```
//! use harl_simcore::{Engine, SimNanos};
//!
//! #[derive(Debug)]
//! enum Ev { Ping(u32), Done }
//!
//! let mut engine = Engine::new();
//! engine.schedule(SimNanos::ZERO, Ev::Ping(0));
//! let mut pings = 0;
//! engine.run(|sched, now, ev| match ev {
//!     Ev::Ping(n) if n < 3 => {
//!         pings += 1;
//!         sched.schedule(now + SimNanos::from_millis(1), Ev::Ping(n + 1));
//!     }
//!     Ev::Ping(_) => { sched.schedule(now, Ev::Done); }
//!     Ev::Done => {}
//! });
//! assert_eq!(pings, 3);
//! assert_eq!(engine.now(), SimNanos::from_millis(3));
//! ```

use crate::calendar::CalendarQueue;
use crate::profiler::{Phase, PhaseProfiler};
use crate::registry;
use crate::time::SimNanos;

/// Identifier of a scheduled event, in insertion order.
///
/// Exposed mainly for debugging and for tests that assert determinism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u64);

/// The scheduling half of the engine, passed to event handlers.
///
/// Split out from [`Engine`] so a handler can schedule new events while the
/// engine is mid-dispatch without aliasing the queue it is draining.
///
/// Pending events live in a `CalendarQueue` (`crate::calendar`) — a
/// bucketed timeline with
/// arena-allocated payload slots — which pops in exactly the ascending
/// `(time, insertion sequence)` order the original `BinaryHeap` engine
/// produced, at `O(1)` per operation on the hot path.
pub struct Scheduler<E> {
    queue: CalendarQueue<E>,
    next_seq: u64,
    now: SimNanos,
    queue_hwm: usize,
}

impl<E> Scheduler<E> {
    fn new() -> Self {
        Scheduler {
            queue: CalendarQueue::new(),
            next_seq: 0,
            now: SimNanos::ZERO,
            queue_hwm: 0,
        }
    }

    /// Schedule `event` at absolute simulated time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — a DES must never travel backwards;
    /// such a call is always a bug in the caller's time arithmetic.
    pub fn schedule(&mut self, at: SimNanos, event: E) -> EventId {
        assert!(
            at >= self.now,
            "scheduled event at {at} before current time {now}",
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(at, seq, event);
        self.queue_hwm = self.queue_hwm.max(self.queue.len());
        EventId(seq)
    }

    /// Schedule `event` `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimNanos, event: E) -> EventId {
        self.schedule(self.now + delay, event)
    }

    /// The current simulated time (the timestamp of the event being
    /// dispatched, or the last one dispatched).
    #[inline]
    pub fn now(&self) -> SimNanos {
        self.now
    }

    /// Number of events waiting in the queue.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The deepest the event queue has ever been (high-water mark).
    #[inline]
    pub fn queue_depth_hwm(&self) -> usize {
        self.queue_hwm
    }

    #[inline]
    fn pop(&mut self) -> Option<(SimNanos, E)> {
        self.queue.pop()
    }
}

/// A discrete-event engine over events of type `E`.
pub struct Engine<E> {
    sched: Scheduler<E>,
    dispatched: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// A fresh engine at time zero with an empty queue.
    pub fn new() -> Self {
        Engine {
            sched: Scheduler::new(),
            dispatched: 0,
        }
    }

    /// Schedule an event before the simulation starts (or between runs).
    pub fn schedule(&mut self, at: SimNanos, event: E) -> EventId {
        self.sched.schedule(at, event)
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimNanos {
        self.sched.now()
    }

    /// Total number of events dispatched so far.
    #[inline]
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// The deepest the event queue has ever been (high-water mark).
    #[inline]
    pub fn queue_depth_hwm(&self) -> usize {
        self.sched.queue_depth_hwm()
    }

    /// Report engine-level observability (events dispatched, queue-depth
    /// high-water mark) into `recorder`. Call after a run completes.
    pub fn record_metrics(&self, recorder: &dyn crate::metrics::Recorder) {
        if !recorder.is_enabled() {
            return;
        }
        recorder.counter_add(registry::SIM_EVENTS_DISPATCHED.name, &[], self.dispatched);
        recorder.gauge_max(
            registry::SIM_QUEUE_DEPTH_HWM.name,
            &[],
            self.queue_depth_hwm() as f64,
        );
        recorder.counter_add(
            registry::SIM_QUEUE_REBUILDS.name,
            &[],
            self.sched.queue.rebuilds(),
        );
    }

    /// Run until the queue is empty, delivering each event to `handler`.
    ///
    /// The handler may schedule further events through the provided
    /// [`Scheduler`]; the run ends when no events remain.
    pub fn run<F>(&mut self, mut handler: F)
    where
        F: FnMut(&mut Scheduler<E>, SimNanos, E),
    {
        while let Some((at, event)) = self.sched.pop() {
            debug_assert!(at >= self.sched.now, "event queue went backwards");
            self.sched.now = at;
            self.dispatched += 1;
            handler(&mut self.sched, at, event);
        }
    }

    /// Like [`Engine::run`], but bills heap pops and loop bookkeeping to
    /// the profiler's `Dispatch` bucket.
    ///
    /// Handler wall time is attributed by the handler itself: the PFS
    /// simulator opens `DeviceService` / `QueueDrain` / `Recorder` scopes
    /// per event kind, and their self-times subtract from nothing here
    /// because the handler runs outside the dispatch scope. Simulated time
    /// and event order are identical to an unprofiled run — the profiler
    /// only reads wall clocks, never sim state.
    pub fn run_profiled<F>(&mut self, prof: &PhaseProfiler, mut handler: F)
    where
        F: FnMut(&mut Scheduler<E>, SimNanos, E),
    {
        loop {
            let popped = {
                let _dispatch = prof.scope(Phase::Dispatch);
                self.sched.pop()
            };
            let Some((at, event)) = popped else {
                break;
            };
            debug_assert!(at >= self.sched.now, "event queue went backwards");
            self.sched.now = at;
            self.dispatched += 1;
            handler(&mut self.sched, at, event);
        }
    }

    /// Run until the queue is empty or simulated time would pass `deadline`.
    ///
    /// Events strictly after `deadline` remain queued; returns `true` if the
    /// queue was drained, `false` if the deadline stopped the run.
    pub fn run_until<F>(&mut self, deadline: SimNanos, mut handler: F) -> bool
    where
        F: FnMut(&mut Scheduler<E>, SimNanos, E),
    {
        loop {
            match self.sched.queue.peek_at() {
                None => return true,
                Some(at) if at > deadline => return false,
                Some(_) => {}
            }
            let Some((at, event)) = self.sched.pop() else {
                return true;
            };
            self.sched.now = at;
            self.dispatched += 1;
            handler(&mut self.sched, at, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Clone)]
    enum Ev {
        A,
        B,
        C(u32),
    }

    #[test]
    fn delivers_in_time_order() {
        let mut eng = Engine::new();
        eng.schedule(SimNanos(30), Ev::C(3));
        eng.schedule(SimNanos(10), Ev::A);
        eng.schedule(SimNanos(20), Ev::B);
        let mut order = vec![];
        eng.run(|_, now, ev| order.push((now.as_nanos(), ev)));
        assert_eq!(order, vec![(10, Ev::A), (20, Ev::B), (30, Ev::C(3))]);
    }

    #[test]
    fn ties_break_on_insertion_order() {
        let mut eng = Engine::new();
        for i in 0..100 {
            eng.schedule(SimNanos(42), Ev::C(i));
        }
        let mut seen = vec![];
        eng.run(|_, _, ev| {
            if let Ev::C(i) = ev {
                seen.push(i);
            }
        });
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn handler_can_schedule_chains() {
        let mut eng = Engine::new();
        eng.schedule(SimNanos::ZERO, Ev::C(0));
        let mut count = 0u32;
        eng.run(|sched, now, ev| {
            if let Ev::C(n) = ev {
                count += 1;
                if n < 9 {
                    sched.schedule(now + SimNanos(5), Ev::C(n + 1));
                }
            }
        });
        assert_eq!(count, 10);
        assert_eq!(eng.now(), SimNanos(45));
        assert_eq!(eng.dispatched(), 10);
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_the_past_panics() {
        let mut eng = Engine::new();
        eng.schedule(SimNanos(100), Ev::A);
        eng.run(|sched, _, _| {
            sched.schedule(SimNanos(50), Ev::B);
        });
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut eng = Engine::new();
        eng.schedule(SimNanos(10), Ev::A);
        eng.schedule(SimNanos(20), Ev::B);
        eng.schedule(SimNanos(30), Ev::C(0));
        let mut seen = 0;
        let drained = eng.run_until(SimNanos(20), |_, _, _| seen += 1);
        assert!(!drained);
        assert_eq!(seen, 2);
        // Remaining event still delivered on a later full run.
        let drained = eng.run_until(SimNanos::MAX, |_, _, _| seen += 1);
        assert!(drained);
        assert_eq!(seen, 3);
    }

    #[test]
    fn queue_hwm_tracks_deepest_point() {
        let mut eng = Engine::new();
        for i in 0..5u64 {
            eng.schedule(SimNanos(i), Ev::A);
        }
        assert_eq!(eng.queue_depth_hwm(), 5);
        eng.run(|_, _, _| {});
        // Draining does not lower the mark.
        assert_eq!(eng.queue_depth_hwm(), 5);
        let rec = crate::metrics::MemoryRecorder::new();
        eng.record_metrics(&rec);
        assert_eq!(
            rec.counter_value(registry::SIM_EVENTS_DISPATCHED.name, &[]),
            5
        );
        assert_eq!(
            rec.gauge_value(registry::SIM_QUEUE_DEPTH_HWM.name, &[]),
            Some(5.0)
        );
    }

    #[test]
    fn run_profiled_matches_plain_run() {
        let build = || {
            let mut eng = Engine::new();
            eng.schedule(SimNanos::ZERO, Ev::C(0));
            eng
        };
        let handler = |sched: &mut Scheduler<Ev>, now: SimNanos, ev: Ev| {
            if let Ev::C(n) = ev {
                if n < 9 {
                    sched.schedule(now + SimNanos(5), Ev::C(n + 1));
                }
            }
        };
        let mut plain = build();
        plain.run(handler);
        let prof = PhaseProfiler::new();
        let mut profiled = build();
        profiled.run_profiled(&prof, handler);
        // Profiling must not perturb simulated time or event counts.
        assert_eq!(profiled.now(), plain.now());
        assert_eq!(profiled.dispatched(), plain.dispatched());
        assert!(prof.phase_ns(Phase::Dispatch) > 0);
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut eng = Engine::new();
        eng.schedule(SimNanos(100), Ev::A);
        let mut fired_at = None;
        eng.run(|sched, _, ev| match ev {
            Ev::A => {
                sched.schedule_after(SimNanos(11), Ev::B);
            }
            Ev::B => fired_at = Some(sched.now()),
            _ => {}
        });
        assert_eq!(fired_at, Some(SimNanos(111)));
    }
}
