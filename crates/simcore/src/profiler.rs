//! Phase profiler: attributes engine wall time to coarse buckets.
//!
//! A simulation run spends its wall-clock time in a handful of places —
//! popping the event heap, modelling device service, draining completions,
//! and feeding the metrics recorder. Knowing the split is the first step of
//! any engine-scaling work: a run that is 60% recorder overhead needs a
//! different fix than one that is 60% heap churn.
//!
//! The profiler is a set of [`Phase`] buckets accumulating self-time
//! nanoseconds. A scope guard ([`PhaseProfiler::scope`]) times a region with
//! two `Instant::now()` calls; nested scopes subtract their elapsed time
//! from the enclosing scope, so each bucket reports *self* time and the
//! buckets sum to (at most) the instrumented wall time without double
//! counting.
//!
//! Wall-clock readings are inherently nondeterministic, so the profiler is
//! observation-only: nothing in the simulation may branch on its values.
//! This file carries a determinism-lint allowlist entry for `Instant::now`,
//! the same audited exception as the planner's `plan_wall_s`. Buckets are
//! relaxed atomics so the profiler can sit behind an `Arc` in
//! [`SimContext`](crate::SimContext) without locking; the engine itself is
//! single-threaded, where relaxed counters are exact.

use crate::metrics::Recorder;
use crate::registry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The wall-time buckets a simulation run is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Event-queue pop and engine loop bookkeeping.
    Dispatch = 0,
    /// Handlers modelling device/network service (disk, NIC, MDS).
    DeviceService = 1,
    /// Handlers draining completions and client control flow.
    QueueDrain = 2,
    /// Time spent inside recorder instrumentation blocks.
    Recorder = 3,
}

const PHASES: usize = 4;

impl Phase {
    /// All phases, in bucket order.
    pub const ALL: [Phase; PHASES] = [
        Phase::Dispatch,
        Phase::DeviceService,
        Phase::QueueDrain,
        Phase::Recorder,
    ];

    /// Stable lowercase label (used in reports).
    pub fn label(self) -> &'static str {
        match self {
            Phase::Dispatch => "dispatch",
            Phase::DeviceService => "device_service",
            Phase::QueueDrain => "queue_drain",
            Phase::Recorder => "recorder",
        }
    }

    fn metric(self) -> &'static str {
        match self {
            Phase::Dispatch => registry::SIM_PROFILE_DISPATCH_S.name,
            Phase::DeviceService => registry::SIM_PROFILE_DEVICE_SERVICE_S.name,
            Phase::QueueDrain => registry::SIM_PROFILE_QUEUE_DRAIN_S.name,
            Phase::Recorder => registry::SIM_PROFILE_RECORDER_S.name,
        }
    }
}

/// Accumulates self-time per [`Phase`] across a run.
///
/// ```
/// use harl_simcore::profiler::{Phase, PhaseProfiler};
///
/// let prof = PhaseProfiler::new();
/// {
///     let _outer = prof.scope(Phase::DeviceService);
///     // ... service modelling ...
///     let _inner = prof.scope(Phase::Recorder);
///     // ... recorder calls: billed to Recorder, not DeviceService ...
/// }
/// let ns = prof.snapshot_ns();
/// assert_eq!(ns.len(), 4);
/// ```
#[derive(Debug, Default)]
pub struct PhaseProfiler {
    buckets: [AtomicU64; PHASES],
    /// Cumulative nanoseconds of *closed* scopes, used by enclosing guards
    /// to subtract nested time. Monotone within one thread.
    nested: AtomicU64,
}

impl PhaseProfiler {
    /// A profiler with all buckets at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a timing scope for `phase`; time accrues when the guard drops.
    ///
    /// Nested scopes are subtracted from the enclosing scope, so buckets
    /// hold self time. Exact on one thread (the engine's case); with
    /// concurrent scopes the subtraction is approximate, never negative.
    pub fn scope(&self, phase: Phase) -> PhaseGuard<'_> {
        PhaseGuard {
            prof: self,
            phase,
            start: Instant::now(),
            nested_at_start: self.nested.load(Ordering::Relaxed),
        }
    }

    /// Total self-time nanoseconds accumulated in `phase`.
    pub fn phase_ns(&self, phase: Phase) -> u64 {
        self.buckets[phase as usize].load(Ordering::Relaxed)
    }

    /// `(label, self-time ns)` for every phase, in bucket order.
    pub fn snapshot_ns(&self) -> Vec<(&'static str, u64)> {
        Phase::ALL
            .iter()
            .map(|&p| (p.label(), self.phase_ns(p)))
            .collect()
    }

    /// Sum of all buckets (total instrumented wall time, ns).
    pub fn total_ns(&self) -> u64 {
        Phase::ALL.iter().map(|&p| self.phase_ns(p)).sum()
    }

    /// Report each bucket as a `sim.profile.*_s` gauge into `recorder`.
    pub fn record_metrics(&self, recorder: &dyn Recorder) {
        if !recorder.is_enabled() {
            return;
        }
        for &phase in &Phase::ALL {
            let secs = self.phase_ns(phase) as f64 / 1e9;
            recorder.gauge_set(phase.metric(), &[], secs);
        }
    }
}

/// Guard returned by [`PhaseProfiler::scope`]; bills elapsed self time to
/// its phase on drop.
pub struct PhaseGuard<'a> {
    prof: &'a PhaseProfiler,
    phase: Phase,
    start: Instant,
    nested_at_start: u64,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed().as_nanos() as u64;
        let nested_now = self.prof.nested.load(Ordering::Relaxed);
        let nested_inside = nested_now.saturating_sub(self.nested_at_start);
        let self_ns = elapsed.saturating_sub(nested_inside);
        self.prof.buckets[self.phase as usize].fetch_add(self_ns, Ordering::Relaxed);
        // This scope's full elapsed time becomes "nested" from the point of
        // view of whatever scope encloses it.
        self.prof.nested.store(
            self.nested_at_start.saturating_add(elapsed),
            Ordering::Relaxed,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MemoryRecorder;

    #[test]
    fn buckets_start_empty() {
        let prof = PhaseProfiler::new();
        assert_eq!(prof.total_ns(), 0);
        for &p in &Phase::ALL {
            assert_eq!(prof.phase_ns(p), 0);
        }
    }

    #[test]
    fn scope_accrues_time_to_its_phase() {
        let prof = PhaseProfiler::new();
        {
            let _g = prof.scope(Phase::Dispatch);
            std::hint::black_box((0..1000).sum::<u64>());
        }
        assert!(prof.phase_ns(Phase::Dispatch) > 0);
        assert_eq!(prof.phase_ns(Phase::Recorder), 0);
    }

    #[test]
    fn nested_scope_is_subtracted_from_outer() {
        let prof = PhaseProfiler::new();
        {
            let _outer = prof.scope(Phase::DeviceService);
            {
                let _inner = prof.scope(Phase::Recorder);
                // Burn noticeably more time inside than outside.
                std::hint::black_box((0..200_000).sum::<u64>());
            }
        }
        let outer = prof.phase_ns(Phase::DeviceService);
        let inner = prof.phase_ns(Phase::Recorder);
        assert!(inner > 0);
        // Self-time accounting: outer must not absorb the inner burn.
        assert!(
            outer < inner,
            "outer self-time {outer}ns should be tiny next to nested {inner}ns"
        );
    }

    #[test]
    fn sequential_nested_scopes_all_subtract() {
        let prof = PhaseProfiler::new();
        {
            let _outer = prof.scope(Phase::QueueDrain);
            for _ in 0..3 {
                let _inner = prof.scope(Phase::Recorder);
                std::hint::black_box((0..50_000).sum::<u64>());
            }
        }
        let outer = prof.phase_ns(Phase::QueueDrain);
        let inner = prof.phase_ns(Phase::Recorder);
        assert!(outer < inner);
    }

    #[test]
    fn snapshot_labels_are_stable() {
        let prof = PhaseProfiler::new();
        let labels: Vec<_> = prof.snapshot_ns().iter().map(|(l, _)| *l).collect();
        assert_eq!(
            labels,
            vec!["dispatch", "device_service", "queue_drain", "recorder"]
        );
    }

    #[test]
    fn record_metrics_writes_profile_gauges() {
        let prof = PhaseProfiler::new();
        {
            let _g = prof.scope(Phase::Dispatch);
            std::hint::black_box((0..1000).sum::<u64>());
        }
        let rec = MemoryRecorder::new();
        prof.record_metrics(&rec);
        let g = rec.gauge_value(crate::registry::SIM_PROFILE_DISPATCH_S.name, &[]);
        assert!(g.is_some_and(|v| v >= 0.0));
    }
}
