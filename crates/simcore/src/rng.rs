//! Deterministic random number generation with stream splitting.
//!
//! Every stochastic element of the simulation (each server's startup-time
//! draws, each workload's offset sequence, the random-stripe baseline)
//! gets its own [`SimRng`] stream derived from one master seed. Streams are
//! derived by hashing `(seed, label)` with SplitMix64, so adding a new
//! consumer never perturbs the draws of existing ones — experiments stay
//! comparable as the code evolves.
//!
//! The generator itself is xoshiro256++ (public domain, Blackman & Vigna),
//! implemented in-crate so the simulator has no external RNG dependency:
//! the build environment has no registry access, and a self-contained
//! generator keeps draw sequences stable across toolchain updates.

/// SplitMix64 step — a tiny, high-quality mixer used for deriving
/// sub-seeds and for expanding one 64-bit seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a 64-bit sub-seed from a master seed and a textual label.
pub fn derive_seed(master: u64, label: &str) -> u64 {
    let mut state = master ^ 0xA076_1D64_78BD_642F;
    for &b in label.as_bytes() {
        state ^= u64::from(b);
        splitmix64(&mut state);
    }
    splitmix64(&mut state)
}

/// xoshiro256++ core state.
#[derive(Debug, Clone)]
struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Expand one 64-bit seed into full state via SplitMix64 (the seeding
    /// procedure the xoshiro authors recommend).
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256pp { s }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A seeded random stream.
///
/// Wraps the in-crate xoshiro256++ generator, remembers its seed (useful
/// for reporting which seed produced a result) and offers the handful of
/// draw shapes the simulator needs.
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    inner: Xoshiro256pp,
}

impl SimRng {
    /// A stream seeded directly with `seed`.
    pub fn new(seed: u64) -> Self {
        SimRng {
            seed,
            inner: Xoshiro256pp::seed_from_u64(seed),
        }
    }

    /// A stream derived from `master` and a `label`, independent of all
    /// streams with different labels.
    pub fn derived(master: u64, label: &str) -> Self {
        SimRng::new(derive_seed(master, label))
    }

    /// The seed this stream started from.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Uniform draw in `[0, n)` via Lemire's multiply-shift with rejection
    /// (unbiased).
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Lemire 2019: multiply a 64-bit draw by n; the high word is the
        // candidate. Reject the small biased slice of the low word.
        loop {
            let x = self.inner.next_u64();
            let m = x as u128 * n as u128;
            let low = m as u64;
            if low >= n {
                return (m >> 64) as u64;
            }
            // low < n: only a subset of draws maps here; re-check threshold.
            let threshold = n.wrapping_neg() % n;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform draw in `[lo, hi]` (inclusive). `lo == hi` returns `lo`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "uniform_u64 range inverted: {lo} > {hi}");
        if lo == hi {
            return lo;
        }
        let span = hi - lo;
        if span == u64::MAX {
            return self.inner.next_u64();
        }
        lo + self.below(span + 1)
    }

    /// Uniform draw in `[lo, hi)` for `f64`.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform_f64 range inverted");
        if lo == hi {
            return lo;
        }
        // 53 random mantissa bits -> uniform in [0, 1).
        let unit = (self.inner.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    /// A uniformly random index `< n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over empty range");
        self.below(n as u64) as usize
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Pick one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.index(slice.len())]
    }

    /// Raw 64-bit draw (for deriving further generators).
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_independent() {
        let a = derive_seed(1, "server-0");
        let b = derive_seed(1, "server-1");
        let c = derive_seed(2, "server-0");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn derive_is_stable() {
        // A regression anchor: derived seeds must not silently change, or
        // recorded experiment outputs stop being reproducible.
        assert_eq!(derive_seed(42, "x"), derive_seed(42, "x"));
    }

    #[test]
    fn uniform_bounds_respected() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            let v = r.uniform_u64(10, 20);
            assert!((10..=20).contains(&v));
            let f = r.uniform_f64(0.5, 1.5);
            assert!((0.5..1.5).contains(&f));
        }
        assert_eq!(r.uniform_u64(5, 5), 5);
        assert_eq!(r.uniform_f64(2.0, 2.0), 2.0);
    }

    #[test]
    fn uniform_covers_range() {
        let mut r = SimRng::new(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.index(10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle did nothing");
    }

    #[test]
    #[should_panic(expected = "range inverted")]
    fn inverted_range_panics() {
        SimRng::new(0).uniform_u64(5, 1);
    }

    #[test]
    fn full_range_draw_does_not_overflow() {
        let mut r = SimRng::new(9);
        // Exercises the span == u64::MAX special case.
        let _ = r.uniform_u64(0, u64::MAX);
    }

    #[test]
    fn extremes_reachable_in_inclusive_range() {
        let mut r = SimRng::new(13);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..2000 {
            match r.uniform_u64(0, 7) {
                0 => lo_seen = true,
                7 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen, "inclusive bounds must both be drawable");
    }
}
