//! Deterministic random number generation with stream splitting.
//!
//! Every stochastic element of the simulation (each server's startup-time
//! draws, each workload's offset sequence, the random-stripe baseline)
//! gets its own [`SimRng`] stream derived from one master seed. Streams are
//! derived by hashing `(seed, label)` with SplitMix64, so adding a new
//! consumer never perturbs the draws of existing ones — experiments stay
//! comparable as the code evolves.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// SplitMix64 step — a tiny, high-quality mixer used only for deriving
/// sub-seeds, not for simulation draws themselves.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a 64-bit sub-seed from a master seed and a textual label.
pub fn derive_seed(master: u64, label: &str) -> u64 {
    let mut state = master ^ 0xA076_1D64_78BD_642F;
    for &b in label.as_bytes() {
        state ^= u64::from(b);
        splitmix64(&mut state);
    }
    splitmix64(&mut state)
}

/// A seeded random stream.
///
/// Thin wrapper over `rand::StdRng` that remembers its seed (useful for
/// reporting which seed produced a result) and offers the handful of draw
/// shapes the simulator needs.
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    inner: StdRng,
}

impl SimRng {
    /// A stream seeded directly with `seed`.
    pub fn new(seed: u64) -> Self {
        SimRng {
            seed,
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// A stream derived from `master` and a `label`, independent of all
    /// streams with different labels.
    pub fn derived(master: u64, label: &str) -> Self {
        SimRng::new(derive_seed(master, label))
    }

    /// The seed this stream started from.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Uniform draw in `[lo, hi]` (inclusive). `lo == hi` returns `lo`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "uniform_u64 range inverted: {lo} > {hi}");
        if lo == hi {
            return lo;
        }
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform draw in `[lo, hi)` for `f64`.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform_f64 range inverted");
        if lo == hi {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// A uniformly random index `< n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over empty range");
        self.inner.gen_range(0..n)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Pick one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.index(slice.len())]
    }

    /// Raw 64-bit draw (for deriving further generators).
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_independent() {
        let a = derive_seed(1, "server-0");
        let b = derive_seed(1, "server-1");
        let c = derive_seed(2, "server-0");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn derive_is_stable() {
        // A regression anchor: derived seeds must not silently change, or
        // recorded experiment outputs stop being reproducible.
        assert_eq!(derive_seed(42, "x"), derive_seed(42, "x"));
    }

    #[test]
    fn uniform_bounds_respected() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            let v = r.uniform_u64(10, 20);
            assert!((10..=20).contains(&v));
            let f = r.uniform_f64(0.5, 1.5);
            assert!((0.5..1.5).contains(&f));
        }
        assert_eq!(r.uniform_u64(5, 5), 5);
        assert_eq!(r.uniform_f64(2.0, 2.0), 2.0);
    }

    #[test]
    fn uniform_covers_range() {
        let mut r = SimRng::new(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.index(10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle did nothing");
    }

    #[test]
    #[should_panic(expected = "range inverted")]
    fn inverted_range_panics() {
        SimRng::new(0).uniform_u64(5, 1);
    }
}
