//! Byte-size units and formatting.
//!
//! The HARL paper works in binary units (stripe sizes of 64KB mean
//! 64 × 1024 bytes), so the constants here are the binary KiB/MiB/GiB even
//! though the paper writes "KB".

use serde::{Deserialize, Serialize};
use std::fmt;

/// One kibibyte (what the paper calls "1KB").
pub const KIB: u64 = 1024;
/// One mebibyte.
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte.
pub const GIB: u64 = 1024 * MIB;

/// A byte count with pretty-printing, used for stripe sizes, request sizes
/// and file sizes throughout the workspace.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Construct from raw bytes.
    #[inline]
    pub const fn bytes(n: u64) -> Self {
        ByteSize(n)
    }

    /// Construct from kibibytes.
    #[inline]
    pub const fn kib(n: u64) -> Self {
        ByteSize(n * KIB)
    }

    /// Construct from mebibytes.
    #[inline]
    pub const fn mib(n: u64) -> Self {
        ByteSize(n * MIB)
    }

    /// Construct from gibibytes.
    #[inline]
    pub const fn gib(n: u64) -> Self {
        ByteSize(n * GIB)
    }

    /// The raw byte count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// This size in fractional MiB (the unit used for throughput reporting).
    #[inline]
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / MIB as f64
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b == 0 {
            write!(f, "0B")
        } else if b.is_multiple_of(GIB) {
            write!(f, "{}GiB", b / GIB)
        } else if b.is_multiple_of(MIB) {
            write!(f, "{}MiB", b / MIB)
        } else if b.is_multiple_of(KIB) {
            write!(f, "{}KiB", b / KIB)
        } else {
            write!(f, "{b}B")
        }
    }
}

impl From<u64> for ByteSize {
    fn from(n: u64) -> Self {
        ByteSize(n)
    }
}

/// Aggregate throughput in MiB/s given total bytes moved and elapsed time.
///
/// Returns 0.0 for a zero-length interval rather than dividing by zero —
/// callers report it as "no data".
#[inline]
pub fn throughput_mib_s(total_bytes: u64, elapsed: crate::SimNanos) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs <= 0.0 {
        return 0.0;
    }
    (total_bytes as f64 / MIB as f64) / secs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimNanos;

    #[test]
    fn constructors() {
        assert_eq!(ByteSize::kib(64).as_u64(), 65_536);
        assert_eq!(ByteSize::mib(1).as_u64(), 1_048_576);
        assert_eq!(ByteSize::gib(1).as_u64(), 1_073_741_824);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(ByteSize::kib(64).to_string(), "64KiB");
        assert_eq!(ByteSize::mib(3).to_string(), "3MiB");
        assert_eq!(ByteSize::gib(2).to_string(), "2GiB");
        assert_eq!(ByteSize(100).to_string(), "100B");
        assert_eq!(ByteSize(0).to_string(), "0B");
    }

    #[test]
    fn throughput_basic() {
        // 1 MiB in 1 second = 1 MiB/s.
        let t = throughput_mib_s(MIB, SimNanos::from_secs(1));
        assert!((t - 1.0).abs() < 1e-9);
        // 512 MiB in 2 s = 256 MiB/s.
        let t = throughput_mib_s(512 * MIB, SimNanos::from_secs(2));
        assert!((t - 256.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_zero_interval_is_zero() {
        assert_eq!(throughput_mib_s(MIB, SimNanos::ZERO), 0.0);
    }

    #[test]
    fn mib_f64() {
        assert!((ByteSize::kib(512).as_mib_f64() - 0.5).abs() < 1e-12);
    }
}
