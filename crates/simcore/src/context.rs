//! The simulation context: one handle for everything a run needs.
//!
//! Every layer of the pipeline — the PFS simulator, the middleware
//! runtime, the HARL planner — takes a [`SimContext`] as its first
//! argument. The context owns the cross-cutting concerns that used to be
//! spread across twin entry points and ad-hoc config fields:
//!
//! * the [`Recorder`] sink for metrics and request spans (a
//!   [`NoopRecorder`] by default, which costs one boolean check per
//!   instrumentation site — the unrecorded fast path);
//! * an optional master RNG **seed** override (when unset, components fall
//!   back to their own configured seeds, e.g. `ClusterConfig::seed`);
//! * the **fault plan**: [`Degradation`] windows injected on top of
//!   whatever the cluster config already carries;
//! * an optional **thread budget** override for the planner's fan-out
//!   (when unset, `OptimizerConfig::threads` applies);
//! * the flight-recorder knobs: a **sample interval** that turns on
//!   deterministic time-series sampling in the simulator, and an optional
//!   [`PhaseProfiler`] attributing engine wall time to phase buckets.
//!
//! Contexts are cheap to clone (the recorder is behind an `Arc`) and are
//! passed by reference: `simulate(&ctx, …)`, `policy.plan(&ctx, …)`.

use crate::faults::Degradation;
use crate::metrics::{NoopRecorder, Recorder};
use crate::profiler::PhaseProfiler;
use crate::time::SimNanos;
use std::sync::Arc;

/// Cross-cutting state threaded through every stage of a simulation run.
///
/// See the [module docs](self) for what each field governs. Build one with
/// [`SimContext::new`] (silent, default seeds) or
/// [`SimContext::recorded`], then chain `with_*` builders:
///
/// ```
/// use harl_simcore::{Degradation, SimContext};
///
/// let ctx = SimContext::new()
///     .with_seed(42)
///     .with_threads(4)
///     .with_fault(Degradation::permanent(6, 3.0));
/// assert_eq!(ctx.seed_or(7), 42);
/// assert_eq!(ctx.threads_or(1), 4);
/// assert!(!ctx.recorder().is_enabled());
/// ```
#[derive(Clone)]
pub struct SimContext {
    recorder: Arc<dyn Recorder>,
    /// Master seed override; `None` defers to per-component seeds.
    pub seed: Option<u64>,
    /// Planner thread-budget override; `None` defers to
    /// `OptimizerConfig::threads`.
    pub threads: Option<usize>,
    /// Fault plan applied in addition to the cluster's own
    /// degradation schedule.
    pub faults: Vec<Degradation>,
    /// Sim-time interval between flight-recorder samples; `None` disables
    /// time-series sampling entirely (the default — sampling only reads
    /// state, but the sample events still cost engine dispatches).
    pub sample_interval: Option<SimNanos>,
    /// Wall-time phase profiler; `None` (the default) skips all scope
    /// timers.
    profiler: Option<Arc<PhaseProfiler>>,
}

impl std::fmt::Debug for SimContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimContext")
            .field("recorded", &self.recorder.is_enabled())
            .field("seed", &self.seed)
            .field("threads", &self.threads)
            .field("faults", &self.faults)
            .field("sample_interval", &self.sample_interval)
            .field("profiled", &self.profiler.is_some())
            .finish()
    }
}

impl Default for SimContext {
    fn default() -> Self {
        SimContext::new()
    }
}

impl SimContext {
    /// A silent context: no-op recorder, component-default seeds and
    /// threads, no injected faults.
    pub fn new() -> Self {
        SimContext {
            recorder: Arc::new(NoopRecorder),
            seed: None,
            threads: None,
            faults: Vec::new(),
            sample_interval: None,
            profiler: None,
        }
    }

    /// A context that records metrics and spans into `recorder`.
    pub fn recorded(recorder: Arc<dyn Recorder>) -> Self {
        SimContext {
            recorder,
            ..SimContext::new()
        }
    }

    /// Override the master RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Override the planner thread budget.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Replace the fault plan.
    pub fn with_faults(mut self, faults: Vec<Degradation>) -> Self {
        self.faults = faults;
        self
    }

    /// Add one fault window to the plan.
    pub fn with_fault(mut self, fault: Degradation) -> Self {
        self.faults.push(fault.validated());
        self
    }

    /// Enable time-series sampling at `interval` of simulated time.
    ///
    /// A zero interval is rejected (it would sample forever without
    /// advancing); pass `None` by omitting the call to keep sampling off.
    pub fn with_sample_interval(mut self, interval: SimNanos) -> Self {
        self.sample_interval = (interval > SimNanos::ZERO).then_some(interval);
        self
    }

    /// Attach a wall-time phase profiler.
    pub fn with_profiler(mut self, profiler: Arc<PhaseProfiler>) -> Self {
        self.profiler = Some(profiler);
        self
    }

    /// The attached phase profiler, if any.
    #[inline]
    pub fn profiler(&self) -> Option<&PhaseProfiler> {
        self.profiler.as_deref()
    }

    /// The metrics/span sink.
    #[inline]
    pub fn recorder(&self) -> &dyn Recorder {
        self.recorder.as_ref()
    }

    /// A clone of the recorder handle (for long-lived components that
    /// outlive the context borrow, e.g. `OnlineMonitor`).
    pub fn recorder_arc(&self) -> Arc<dyn Recorder> {
        Arc::clone(&self.recorder)
    }

    /// The effective seed: the override if set, else `fallback`.
    #[inline]
    pub fn seed_or(&self, fallback: u64) -> u64 {
        self.seed.unwrap_or(fallback)
    }

    /// The effective thread budget: the override if set, else `fallback`.
    #[inline]
    pub fn threads_or(&self, fallback: usize) -> usize {
        self.threads.unwrap_or(fallback).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MemoryRecorder;

    #[test]
    fn default_context_is_silent_and_deferring() {
        let ctx = SimContext::new();
        assert!(!ctx.recorder().is_enabled());
        assert_eq!(ctx.seed_or(99), 99);
        assert_eq!(ctx.threads_or(3), 3);
        assert!(ctx.faults.is_empty());
    }

    #[test]
    fn overrides_win() {
        let ctx = SimContext::new().with_seed(1).with_threads(8);
        assert_eq!(ctx.seed_or(99), 1);
        assert_eq!(ctx.threads_or(3), 8);
    }

    #[test]
    fn thread_budget_is_at_least_one() {
        let ctx = SimContext::new().with_threads(0);
        assert_eq!(ctx.threads_or(4), 1);
    }

    #[test]
    fn recorded_context_reports_enabled() {
        let rec = Arc::new(MemoryRecorder::new());
        let ctx = SimContext::recorded(rec.clone());
        assert!(ctx.recorder().is_enabled());
        ctx.recorder().counter_add("x", &[], 1);
        assert_eq!(rec.counter_value("x", &[]), 1);
    }

    #[test]
    fn sample_interval_and_profiler_attach() {
        let ctx = SimContext::new();
        assert_eq!(ctx.sample_interval, None);
        assert!(ctx.profiler().is_none());

        let prof = Arc::new(PhaseProfiler::new());
        let ctx = SimContext::new()
            .with_sample_interval(SimNanos::from_millis(10))
            .with_profiler(prof.clone());
        assert_eq!(ctx.sample_interval, Some(SimNanos::from_millis(10)));
        assert!(ctx.profiler().is_some());
        // Zero interval means "off", not "sample forever at one instant".
        let ctx = SimContext::new().with_sample_interval(SimNanos::ZERO);
        assert_eq!(ctx.sample_interval, None);
    }

    #[test]
    fn faults_accumulate_and_clone() {
        let ctx = SimContext::new()
            .with_fault(Degradation::permanent(2, 2.0))
            .with_fault(Degradation::permanent(3, 4.0));
        let copy = ctx.clone();
        assert_eq!(copy.faults.len(), 2);
        assert_eq!(copy.faults[1].server, 3);
    }
}
