//! Streaming statistics used across the workspace.
//!
//! [`OnlineStats`] is a Welford accumulator (numerically stable mean and
//! variance in one pass) — the region-division algorithm of the paper needs
//! exactly a running coefficient of variation, and the experiment harness
//! needs means/extremes of per-server times. [`Histogram`] buckets values by
//! powers of two for quick latency distribution summaries.

use serde::{Deserialize, Serialize};

/// One-pass mean/variance/extremes accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by n, matching the paper's Alg. 1 which
    /// uses `/(i - reg_init + 1)`); 0.0 with fewer than one observation.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation: `std_dev / mean`, or 0.0 if the mean is 0.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// Smallest observation (None when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (None when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Coefficient of variation of a slice in one call.
///
/// Returns 0.0 for empty input or zero mean, matching Alg. 1's treatment of
/// the degenerate first sample.
pub fn coefficient_of_variation(xs: &[f64]) -> f64 {
    let mut s = OnlineStats::new();
    for &x in xs {
        s.push(x);
    }
    s.cv()
}

/// A power-of-two bucketed histogram for non-negative values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    /// bucket `i` counts values in `[2^(i-1), 2^i)`; bucket 0 counts 0.
    buckets: Vec<u64>,
    count: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram (65 buckets: zero + one per bit position).
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 65],
            count: 0,
        }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        let idx = if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
    }

    /// Number of recorded values.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Count in the bucket covering `v`.
    pub fn bucket_for(&self, v: u64) -> u64 {
        let idx = if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        };
        self.buckets[idx]
    }

    /// An inclusive upper bound below which at least `q` (0..=1) of the
    /// recorded values fall. Returns None when empty.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target.max(1) {
                return Some(bucket_upper_bound(i));
            }
        }
        Some(u64::MAX)
    }

    /// Merge another histogram into this one (bucket-wise sum).
    ///
    /// Lets hot loops accumulate into a local, lock-free histogram and
    /// flush once — equivalent to recording every value individually.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
    }

    /// Iterate over non-empty `(bucket_upper_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper_bound(i), c))
    }
}

/// Inclusive upper bound of bucket `i`; the last bucket (values with the
/// top bit set) saturates at `u64::MAX` — `1 << 64` would overflow.
fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_mean_and_std() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.count(), 8);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.cv(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn cv_matches_definition() {
        // CV of identical values is 0; a known small case checks the ratio.
        assert_eq!(coefficient_of_variation(&[5.0, 5.0, 5.0]), 0.0);
        let cv = coefficient_of_variation(&[2.0, 4.0]);
        // mean 3, pop std 1 => cv = 1/3
        assert!((cv - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i * 7 % 13) as f64).collect();
        let mut all = OnlineStats::new();
        xs.iter().for_each(|&x| all.push(x));
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        xs[..37].iter().for_each(|&x| a.push(x));
        xs[37..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&OnlineStats::new());
        assert_eq!(before, (a.count(), a.mean(), a.variance()));

        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e.count(), 2);
        assert!((e.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.bucket_for(0), 1);
        assert_eq!(h.bucket_for(1), 1);
        assert_eq!(h.bucket_for(2), 2); // 2 and 3 share [2,4)
        assert_eq!(h.bucket_for(1024), 1);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.quantile_upper_bound(0.0), Some(1)); // at least 1 value
        let p50 = h.quantile_upper_bound(0.5).unwrap();
        assert!(p50 >= 63, "median bound {p50} too low");
        assert_eq!(Histogram::new().quantile_upper_bound(0.5), None);
    }

    #[test]
    fn histogram_nonzero_iter() {
        let mut h = Histogram::new();
        h.record(5);
        h.record(6);
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(buckets, vec![(7, 2)]); // [4,8) bucket, upper bound 7
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_upper_bound(q), None);
        }
        assert_eq!(h.count(), 0);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    #[test]
    fn single_value_histogram_quantiles() {
        let mut h = Histogram::new();
        h.record(42);
        // Every quantile of a one-value distribution is that value's bucket.
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_upper_bound(q), Some(63)); // [32,64)
        }
        // Out-of-range quantiles clamp rather than panic.
        assert_eq!(h.quantile_upper_bound(-1.0), Some(63));
        assert_eq!(h.quantile_upper_bound(2.0), Some(63));
    }

    #[test]
    fn histogram_merge_equals_sequential() {
        let xs: Vec<u64> = (0..200).map(|i| (i * 37) % 5000).collect();
        let mut all = Histogram::new();
        xs.iter().for_each(|&x| all.record(x));
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        xs[..77].iter().for_each(|&x| a.record(x));
        xs[77..].iter().for_each(|&x| b.record(x));
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(
            a.nonzero_buckets().collect::<Vec<_>>(),
            all.nonzero_buckets().collect::<Vec<_>>()
        );
        // Merging an empty histogram changes nothing.
        a.merge(&Histogram::new());
        assert_eq!(a.count(), all.count());
    }

    #[test]
    fn max_bucket_does_not_overflow() {
        // Values with the top bit set land in bucket 64, whose upper bound
        // must saturate at u64::MAX instead of computing `1 << 64`.
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(1u64 << 63);
        assert_eq!(h.count(), 2);
        assert_eq!(h.bucket_for(u64::MAX), 2);
        assert_eq!(h.quantile_upper_bound(1.0), Some(u64::MAX));
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(buckets, vec![(u64::MAX, 2)]);
    }
}
