//! Workspace-wide observability: labelled metrics and per-request spans.
//!
//! Every layer of the stack (engine, PFS simulator, middleware, HARL
//! planner) reports into a [`Recorder`]:
//!
//! * **Counters** — monotonically increasing totals (events dispatched,
//!   requests routed to a region, bytes landed on a server).
//! * **Gauges** — last-value or high-water-mark readings (queue depth HWM,
//!   a region's planned stripe sizes).
//! * **Histograms** — power-of-two bucketed distributions of `u64` values
//!   (per-server queue-wait and service-time in nanoseconds), backed by
//!   [`crate::stats::Histogram`].
//! * **Summaries** — Welford accumulators of `f64` observations where sign
//!   and magnitude both matter (predicted-vs-actual cost residuals).
//! * **Spans** — one record per simulated request capturing its lifecycle
//!   (issue → queue → service → complete) as per-hop sim-time intervals.
//! * **Series** — sampled `(sim-time, value)` time-series (per-server queue
//!   depth, utilisation, in-flight bytes), captured at a configurable
//!   sim-time interval by the flight recorder and therefore exactly
//!   reproducible: same seed and interval ⇒ byte-identical samples.
//!
//! Metric names are never spelled inline: every name is a typed constant in
//! [`crate::registry`], enforced by the `metric-registry` lint rule.
//!
//! Metrics are identified by a name plus a small label set (`server`,
//! `kind`, `region`, …), so one metric name covers a whole family of
//! series, Prometheus-style.
//!
//! The default recorder is [`NoopRecorder`], which ignores everything.
//! Instrumented code guards the (cheap but not free) label formatting with
//! [`Recorder::is_enabled`], so a disabled recorder costs one virtual call
//! per site at most — verified by the `costmodel`/`optimizer` benches in
//! `harl-bench`.
//!
//! [`MemoryRecorder`] accumulates everything in memory and serialises it as
//! JSONL (one self-describing JSON object per line — see
//! [`MemoryRecorder::write_jsonl`]) or as Chrome trace-event JSON
//! ([`MemoryRecorder::write_chrome_trace`], loadable in `chrome://tracing`
//! or Perfetto).

use crate::stats::{Histogram, OnlineStats};
use serde_json::{Map, Number, Value};
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::Mutex;

/// A borrowed label set, as passed by instrumentation sites.
///
/// Keys are static strings; values are formatted at the call site (guarded
/// by [`Recorder::is_enabled`] so the formatting is skipped when disabled).
pub type Labels<'a> = [(&'static str, String)];

/// One hop of a request's lifecycle: a visit to one FIFO resource.
///
/// `start - arrive` is the queueing delay at the resource, `end - start`
/// the service time. All timestamps are simulated nanoseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanHop {
    /// Which resource the hop visited (`"mds"`, `"disk"`, `"server_nic"`, …).
    pub stage: &'static str,
    /// Server index for per-server resources, `None` for shared ones.
    pub server: Option<usize>,
    /// Arrival at the resource queue (sim ns).
    pub arrive: u64,
    /// Service start (sim ns, `>= arrive`).
    pub start: u64,
    /// Service completion (sim ns, `>= start`).
    pub end: u64,
}

impl SpanHop {
    /// Time spent queueing before service (ns).
    pub fn queue_ns(&self) -> u64 {
        self.start.saturating_sub(self.arrive)
    }

    /// Time spent in service (ns).
    pub fn service_ns(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// The recorded lifecycle of one request: issue → hops → completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Request identifier, unique within one simulation run.
    pub id: u64,
    /// Span family (`"request"` for PFS file requests).
    pub kind: &'static str,
    /// Descriptive labels (client, op, file, size, …).
    pub labels: Vec<(&'static str, String)>,
    /// When the request was issued by its client (sim ns).
    pub issued: u64,
    /// When the last sub-request completed (sim ns).
    pub completed: u64,
    /// Resource visits, in the order they were granted.
    pub hops: Vec<SpanHop>,
}

impl SpanRecord {
    /// End-to-end latency in nanoseconds.
    pub fn latency_ns(&self) -> u64 {
        self.completed.saturating_sub(self.issued)
    }
}

/// Sink for metrics and spans, threaded through every simulation layer.
///
/// Implementations must be thread-safe: the optimizer records from worker
/// threads. All methods take `&self`.
pub trait Recorder: Send + Sync {
    /// Whether this recorder keeps anything. Instrumentation sites use this
    /// to skip label formatting entirely when recording is off.
    fn is_enabled(&self) -> bool;

    /// Add `delta` to the counter `name{labels}`.
    fn counter_add(&self, name: &'static str, labels: &Labels<'_>, delta: u64);

    /// Set the gauge `name{labels}` to `value` (last write wins).
    fn gauge_set(&self, name: &'static str, labels: &Labels<'_>, value: f64);

    /// Raise the gauge `name{labels}` to `value` if it is higher than the
    /// current reading (high-water mark semantics).
    fn gauge_max(&self, name: &'static str, labels: &Labels<'_>, value: f64);

    /// Record `value` into the power-of-two histogram `name{labels}`.
    fn observe(&self, name: &'static str, labels: &Labels<'_>, value: u64);

    /// Record a signed/fractional observation into the Welford summary
    /// `name{labels}` (used for model residuals).
    fn observe_f64(&self, name: &'static str, labels: &Labels<'_>, value: f64);

    /// Merge a locally-accumulated histogram into `name{labels}` in one
    /// call — equivalent to [`Recorder::observe`]-ing every value it holds.
    ///
    /// Hot loops (the PFS disk path) keep an alloc-free local [`Histogram`]
    /// per server and flush it once at the end of the run, so the per-event
    /// recorder cost stays off the critical path. Default: drops the data;
    /// recorders that keep histograms must override.
    fn merge_histogram(&self, name: &'static str, labels: &Labels<'_>, hist: &Histogram) {
        let _ = (name, labels, hist);
    }

    /// Record one sampled time-series point: `name{labels}` had `value` at
    /// simulated time `t_ns`. Default: drops the point; recorders that keep
    /// series must override.
    fn series_point(&self, name: &'static str, labels: &Labels<'_>, t_ns: u64, value: f64) {
        let _ = (name, labels, t_ns, value);
    }

    /// Record one completed request span.
    fn span(&self, span: SpanRecord);

    /// Whether this recorder keeps request spans. Instrumentation sites
    /// use this to skip span assembly (label formatting, hop collection)
    /// entirely when spans would be dropped anyway. Default: spans are
    /// kept whenever the recorder is enabled.
    fn wants_spans(&self) -> bool {
        self.is_enabled()
    }

    /// Whether this recorder keeps per-hop span detail
    /// ([`SpanRecord::hops`]). Hop collection is the most expensive part
    /// of the instrumented hot path (several pushes per sub-request), so
    /// recorders can keep spans while shedding hops. Default: follows
    /// [`Recorder::wants_spans`].
    fn wants_hops(&self) -> bool {
        self.wants_spans()
    }
}

/// The default recorder: drops everything, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn is_enabled(&self) -> bool {
        false
    }
    fn counter_add(&self, _: &'static str, _: &Labels<'_>, _: u64) {}
    fn gauge_set(&self, _: &'static str, _: &Labels<'_>, _: f64) {}
    fn gauge_max(&self, _: &'static str, _: &Labels<'_>, _: f64) {}
    fn observe(&self, _: &'static str, _: &Labels<'_>, _: u64) {}
    fn observe_f64(&self, _: &'static str, _: &Labels<'_>, _: f64) {}
    fn span(&self, _: SpanRecord) {}
}

/// A shared no-op recorder for default arguments.
pub static NOOP: NoopRecorder = NoopRecorder;

/// A fully-qualified series key: metric name plus sorted labels.
type SeriesKey = (&'static str, Vec<(&'static str, String)>);

fn series_key(name: &'static str, labels: &Labels<'_>) -> SeriesKey {
    let mut owned: Vec<(&'static str, String)> =
        labels.iter().map(|(k, v)| (*k, v.clone())).collect();
    owned.sort_by(|a, b| a.0.cmp(b.0));
    (name, owned)
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<SeriesKey, u64>,
    gauges: BTreeMap<SeriesKey, f64>,
    histograms: BTreeMap<SeriesKey, Histogram>,
    summaries: BTreeMap<SeriesKey, OnlineStats>,
    series: BTreeMap<SeriesKey, Vec<(u64, f64)>>,
    spans: Vec<SpanRecord>,
}

/// How much tracing detail a [`MemoryRecorder`] keeps alongside metrics.
///
/// Metrics (counters, gauges, histograms, summaries, series) are always
/// kept; the tiers only govern the request-tracing side, which is the
/// expensive part of the instrumented hot path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TraceDetail {
    /// Metrics only: spans are dropped, span assembly is skipped at the
    /// instrumentation sites. The cheapest recorded mode — the
    /// `bench-sim` recorder-overhead budget (< 5%) is measured here.
    Metrics,
    /// Metrics plus one [`SpanRecord`] per request, without per-hop
    /// detail.
    Spans,
    /// Everything, including per-hop queueing detail on every span (the
    /// Chrome-trace flight-recorder mode).
    #[default]
    Hops,
}

/// A [`Recorder`] that accumulates everything in memory for later export.
#[derive(Default)]
pub struct MemoryRecorder {
    inner: Mutex<Registry>,
    detail: TraceDetail,
}

impl MemoryRecorder {
    /// An empty recorder keeping full detail ([`TraceDetail::Hops`]).
    pub fn new() -> Self {
        MemoryRecorder::default()
    }

    /// An empty recorder at the given tracing detail.
    pub fn with_detail(detail: TraceDetail) -> Self {
        MemoryRecorder {
            inner: Mutex::default(),
            detail,
        }
    }

    /// An empty recorder keeping metrics but no spans
    /// ([`TraceDetail::Metrics`]).
    pub fn metrics_only() -> Self {
        MemoryRecorder::with_detail(TraceDetail::Metrics)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Registry> {
        // A panicking recorder thread must not silence everyone else's data.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Current value of a counter (0 if never written).
    pub fn counter_value(&self, name: &'static str, labels: &Labels<'_>) -> u64 {
        self.lock()
            .counters
            .get(&series_key(name, labels))
            .copied()
            .unwrap_or(0)
    }

    /// Current value of a gauge, if written.
    pub fn gauge_value(&self, name: &'static str, labels: &Labels<'_>) -> Option<f64> {
        self.lock().gauges.get(&series_key(name, labels)).copied()
    }

    /// Snapshot of a histogram series, if written.
    pub fn histogram_snapshot(&self, name: &'static str, labels: &Labels<'_>) -> Option<Histogram> {
        self.lock()
            .histograms
            .get(&series_key(name, labels))
            .cloned()
    }

    /// Snapshot of an `f64` summary series, if written.
    pub fn summary_snapshot(&self, name: &'static str, labels: &Labels<'_>) -> Option<OnlineStats> {
        self.lock()
            .summaries
            .get(&series_key(name, labels))
            .cloned()
    }

    /// All recorded spans, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.lock().spans.clone()
    }

    /// Sampled `(sim-time ns, value)` points of a time-series, if written.
    pub fn series_points(
        &self,
        name: &'static str,
        labels: &Labels<'_>,
    ) -> Option<Vec<(u64, f64)>> {
        self.lock().series.get(&series_key(name, labels)).cloned()
    }

    /// Number of distinct metric series recorded (all types).
    pub fn series_count(&self) -> usize {
        let r = self.lock();
        r.counters.len() + r.gauges.len() + r.histograms.len() + r.summaries.len() + r.series.len()
    }

    fn labels_value(labels: &[(&'static str, String)]) -> Value {
        let mut map = Map::new();
        for (k, v) in labels {
            map.insert((*k).to_string(), Value::String(v.clone()));
        }
        Value::Object(map)
    }

    fn line(
        kind: &str,
        name: &str,
        labels: &[(&'static str, String)],
        extra: Vec<(&str, Value)>,
    ) -> Value {
        let mut map = Map::new();
        map.insert("type".to_string(), Value::String(kind.to_string()));
        map.insert("name".to_string(), Value::String(name.to_string()));
        map.insert("labels".to_string(), Self::labels_value(labels));
        for (k, v) in extra {
            map.insert(k.to_string(), v);
        }
        Value::Object(map)
    }

    fn span_value(span: &SpanRecord) -> Value {
        let mut map = Map::new();
        map.insert("type".to_string(), Value::String("span".to_string()));
        map.insert("kind".to_string(), Value::String(span.kind.to_string()));
        map.insert("id".to_string(), Value::Number(Number::U64(span.id)));
        map.insert("labels".to_string(), Self::labels_value(&span.labels));
        map.insert(
            "issued_ns".to_string(),
            Value::Number(Number::U64(span.issued)),
        );
        map.insert(
            "completed_ns".to_string(),
            Value::Number(Number::U64(span.completed)),
        );
        map.insert(
            "latency_ns".to_string(),
            Value::Number(Number::U64(span.latency_ns())),
        );
        let hops: Vec<Value> = span
            .hops
            .iter()
            .map(|h| {
                let mut hm = Map::new();
                hm.insert("stage".to_string(), Value::String(h.stage.to_string()));
                if let Some(s) = h.server {
                    hm.insert("server".to_string(), Value::Number(Number::U64(s as u64)));
                }
                hm.insert(
                    "arrive_ns".to_string(),
                    Value::Number(Number::U64(h.arrive)),
                );
                hm.insert(
                    "queue_ns".to_string(),
                    Value::Number(Number::U64(h.queue_ns())),
                );
                hm.insert(
                    "service_ns".to_string(),
                    Value::Number(Number::U64(h.service_ns())),
                );
                Value::Object(hm)
            })
            .collect();
        map.insert("hops".to_string(), Value::Array(hops));
        Value::Object(map)
    }

    /// Write everything as JSONL: one self-describing JSON object per line.
    ///
    /// Line shapes (`type` discriminates): `counter` (`value`), `gauge`
    /// (`value`), `histogram` (`count`, `p50`/`p95`/`p99` upper bounds,
    /// `buckets` as `[upper_bound, count]` pairs), `summary` (`count`,
    /// `mean`, `std_dev`, `min`, `max`), `series` (`points` as
    /// `[t_ns, value]` pairs in sample order), `span` (lifecycle with
    /// per-hop `queue_ns`/`service_ns`).
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let r = self.lock();
        for ((name, labels), value) in &r.counters {
            let line = Self::line(
                "counter",
                name,
                labels,
                vec![("value", Value::Number(Number::U64(*value)))],
            );
            writeln!(w, "{}", serde_json::to_string(&line)?)?;
        }
        for ((name, labels), value) in &r.gauges {
            let line = Self::line(
                "gauge",
                name,
                labels,
                vec![("value", Value::Number(Number::F64(*value)))],
            );
            writeln!(w, "{}", serde_json::to_string(&line)?)?;
        }
        for ((name, labels), hist) in &r.histograms {
            let buckets: Vec<Value> = hist
                .nonzero_buckets()
                .map(|(ub, c)| {
                    Value::Array(vec![
                        Value::Number(Number::U64(ub)),
                        Value::Number(Number::U64(c)),
                    ])
                })
                .collect();
            let q = |p: f64| match hist.quantile_upper_bound(p) {
                Some(v) => Value::Number(Number::U64(v)),
                None => Value::Null,
            };
            let line = Self::line(
                "histogram",
                name,
                labels,
                vec![
                    ("count", Value::Number(Number::U64(hist.count()))),
                    ("p50", q(0.5)),
                    ("p95", q(0.95)),
                    ("p99", q(0.99)),
                    ("buckets", Value::Array(buckets)),
                ],
            );
            writeln!(w, "{}", serde_json::to_string(&line)?)?;
        }
        for ((name, labels), stats) in &r.summaries {
            let line = Self::line(
                "summary",
                name,
                labels,
                vec![
                    ("count", Value::Number(Number::U64(stats.count()))),
                    ("mean", Value::Number(Number::F64(stats.mean()))),
                    ("std_dev", Value::Number(Number::F64(stats.std_dev()))),
                    (
                        "min",
                        Value::Number(Number::F64(stats.min().unwrap_or(0.0))),
                    ),
                    (
                        "max",
                        Value::Number(Number::F64(stats.max().unwrap_or(0.0))),
                    ),
                ],
            );
            writeln!(w, "{}", serde_json::to_string(&line)?)?;
        }
        for ((name, labels), points) in &r.series {
            let pts: Vec<Value> = points
                .iter()
                .map(|&(t, v)| {
                    Value::Array(vec![
                        Value::Number(Number::U64(t)),
                        Value::Number(Number::F64(v)),
                    ])
                })
                .collect();
            let line = Self::line(
                "series",
                name,
                labels,
                vec![
                    ("points", Value::Array(pts)),
                    ("count", Value::Number(Number::U64(points.len() as u64))),
                ],
            );
            writeln!(w, "{}", serde_json::to_string(&line)?)?;
        }
        for span in &r.spans {
            writeln!(w, "{}", serde_json::to_string(&Self::span_value(span))?)?;
        }
        Ok(())
    }

    /// Write recorded spans in Chrome trace-event format (the JSON object
    /// form with a `traceEvents` array), loadable in `chrome://tracing` or
    /// Perfetto. One complete (`ph: "X"`) event per hop; `tid` is the server
    /// index (or 0 for shared resources), timestamps are microseconds of
    /// simulated time. Sampled time-series become counter (`ph: "C"`)
    /// events, which the trace viewers render as stacked area charts.
    pub fn write_chrome_trace<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let r = self.lock();
        let mut events: Vec<Value> = Vec::new();
        for ((name, labels), points) in &r.series {
            // Per-server series carry a `server` label; surface it in the
            // track name so each server gets its own counter track.
            let track = labels
                .iter()
                .find(|(k, _)| *k == "server")
                .map(|(_, v)| format!("{name}[{v}]"))
                .unwrap_or_else(|| (*name).to_string());
            for &(t_ns, value) in points {
                let mut ev = Map::new();
                ev.insert("name".to_string(), Value::String(track.clone()));
                ev.insert("ph".to_string(), Value::String("C".to_string()));
                ev.insert(
                    "ts".to_string(),
                    Value::Number(Number::F64(t_ns as f64 / 1000.0)),
                );
                ev.insert("pid".to_string(), Value::Number(Number::U64(0)));
                let mut args = Map::new();
                args.insert("value".to_string(), Value::Number(Number::F64(value)));
                ev.insert("args".to_string(), Value::Object(args));
                events.push(Value::Object(ev));
            }
        }
        for span in &r.spans {
            for hop in &span.hops {
                let mut ev = Map::new();
                ev.insert(
                    "name".to_string(),
                    Value::String(format!("{}:{}", span.kind, hop.stage)),
                );
                ev.insert("cat".to_string(), Value::String(span.kind.to_string()));
                ev.insert("ph".to_string(), Value::String("X".to_string()));
                ev.insert(
                    "ts".to_string(),
                    Value::Number(Number::F64(hop.start as f64 / 1000.0)),
                );
                ev.insert(
                    "dur".to_string(),
                    Value::Number(Number::F64(hop.service_ns() as f64 / 1000.0)),
                );
                ev.insert("pid".to_string(), Value::Number(Number::U64(0)));
                ev.insert(
                    "tid".to_string(),
                    Value::Number(Number::U64(hop.server.unwrap_or(0) as u64)),
                );
                let mut args = Map::new();
                args.insert("id".to_string(), Value::Number(Number::U64(span.id)));
                args.insert(
                    "queue_ns".to_string(),
                    Value::Number(Number::U64(hop.queue_ns())),
                );
                for (k, v) in &span.labels {
                    args.insert((*k).to_string(), Value::String(v.clone()));
                }
                ev.insert("args".to_string(), Value::Object(args));
                events.push(Value::Object(ev));
            }
        }
        let mut doc = Map::new();
        doc.insert("traceEvents".to_string(), Value::Array(events));
        doc.insert(
            "displayTimeUnit".to_string(),
            Value::String("ms".to_string()),
        );
        write!(w, "{}", serde_json::to_string(&Value::Object(doc))?)
    }
}

impl Recorder for MemoryRecorder {
    fn is_enabled(&self) -> bool {
        true
    }

    fn counter_add(&self, name: &'static str, labels: &Labels<'_>, delta: u64) {
        *self
            .lock()
            .counters
            .entry(series_key(name, labels))
            .or_insert(0) += delta;
    }

    fn gauge_set(&self, name: &'static str, labels: &Labels<'_>, value: f64) {
        self.lock().gauges.insert(series_key(name, labels), value);
    }

    fn gauge_max(&self, name: &'static str, labels: &Labels<'_>, value: f64) {
        let mut r = self.lock();
        let slot = r
            .gauges
            .entry(series_key(name, labels))
            .or_insert(f64::NEG_INFINITY);
        if value > *slot {
            *slot = value;
        }
    }

    fn observe(&self, name: &'static str, labels: &Labels<'_>, value: u64) {
        self.lock()
            .histograms
            .entry(series_key(name, labels))
            .or_default()
            .record(value);
    }

    fn observe_f64(&self, name: &'static str, labels: &Labels<'_>, value: f64) {
        self.lock()
            .summaries
            .entry(series_key(name, labels))
            .or_default()
            .push(value);
    }

    fn merge_histogram(&self, name: &'static str, labels: &Labels<'_>, hist: &Histogram) {
        self.lock()
            .histograms
            .entry(series_key(name, labels))
            .or_default()
            .merge(hist);
    }

    fn series_point(&self, name: &'static str, labels: &Labels<'_>, t_ns: u64, value: f64) {
        self.lock()
            .series
            .entry(series_key(name, labels))
            .or_default()
            .push((t_ns, value));
    }

    fn span(&self, span: SpanRecord) {
        if self.detail == TraceDetail::Metrics {
            return;
        }
        self.lock().spans.push(span);
    }

    fn wants_spans(&self) -> bool {
        self.detail != TraceDetail::Metrics
    }

    fn wants_hops(&self) -> bool {
        self.detail == TraceDetail::Hops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(server: usize) -> Vec<(&'static str, String)> {
        vec![("server", server.to_string())]
    }

    #[test]
    fn noop_is_disabled_and_silent() {
        let r = NoopRecorder;
        assert!(!r.is_enabled());
        r.counter_add("x", &[], 5);
        r.observe("y", &labels(1), 9);
        r.span(SpanRecord {
            id: 0,
            kind: "request",
            labels: vec![],
            issued: 0,
            completed: 1,
            hops: vec![],
        });
    }

    #[test]
    fn counters_accumulate_per_series() {
        let r = MemoryRecorder::new();
        r.counter_add("reqs", &labels(0), 2);
        r.counter_add("reqs", &labels(0), 3);
        r.counter_add("reqs", &labels(1), 7);
        assert_eq!(r.counter_value("reqs", &labels(0)), 5);
        assert_eq!(r.counter_value("reqs", &labels(1)), 7);
        assert_eq!(r.counter_value("reqs", &labels(9)), 0);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let r = MemoryRecorder::new();
        let ab: Vec<(&'static str, String)> = vec![("a", "1".to_string()), ("b", "2".to_string())];
        let ba: Vec<(&'static str, String)> = vec![("b", "2".to_string()), ("a", "1".to_string())];
        r.counter_add("x", &ab, 1);
        r.counter_add("x", &ba, 1);
        assert_eq!(r.counter_value("x", &ab), 2);
    }

    #[test]
    fn gauge_max_keeps_high_water_mark() {
        let r = MemoryRecorder::new();
        r.gauge_max("depth", &[], 4.0);
        r.gauge_max("depth", &[], 9.0);
        r.gauge_max("depth", &[], 6.0);
        assert_eq!(r.gauge_value("depth", &[]), Some(9.0));
        r.gauge_set("depth", &[], 1.0);
        assert_eq!(r.gauge_value("depth", &[]), Some(1.0));
    }

    #[test]
    fn histogram_and_summary_series() {
        let r = MemoryRecorder::new();
        for v in [1u64, 2, 1024] {
            r.observe("lat", &labels(3), v);
        }
        let h = r.histogram_snapshot("lat", &labels(3)).unwrap();
        assert_eq!(h.count(), 3);
        r.observe_f64("resid", &[], -0.5);
        r.observe_f64("resid", &[], 0.5);
        let s = r.summary_snapshot("resid", &[]).unwrap();
        assert_eq!(s.count(), 2);
        assert!(s.mean().abs() < 1e-12);
    }

    #[test]
    fn span_hop_deltas() {
        let hop = SpanHop {
            stage: "disk",
            server: Some(2),
            arrive: 100,
            start: 150,
            end: 400,
        };
        assert_eq!(hop.queue_ns(), 50);
        assert_eq!(hop.service_ns(), 250);
        let span = SpanRecord {
            id: 7,
            kind: "request",
            labels: vec![("op", "read".to_string())],
            issued: 90,
            completed: 400,
            hops: vec![hop],
        };
        assert_eq!(span.latency_ns(), 310);
    }

    #[test]
    fn jsonl_lines_parse_back() {
        let r = MemoryRecorder::new();
        r.counter_add("events", &[], 42);
        r.gauge_set("hwm", &[], 12.0);
        r.observe("wait", &labels(0), 4096);
        r.observe_f64("resid", &labels(0), 0.25);
        r.span(SpanRecord {
            id: 1,
            kind: "request",
            labels: vec![("op", "write".to_string())],
            issued: 0,
            completed: 500,
            hops: vec![SpanHop {
                stage: "disk",
                server: Some(0),
                arrive: 10,
                start: 20,
                end: 480,
            }],
        });
        let mut buf = Vec::new();
        r.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        let mut kinds = Vec::new();
        for line in lines {
            let v: Value = serde_json::from_str(line).expect("each line is valid JSON");
            let obj = match v {
                Value::Object(m) => m,
                other => panic!("line is not an object: {other:?}"),
            };
            kinds.push(match obj.get("type") {
                Some(Value::String(s)) => s.clone(),
                other => panic!("missing type: {other:?}"),
            });
        }
        kinds.sort();
        assert_eq!(kinds, ["counter", "gauge", "histogram", "span", "summary"]);
    }

    #[test]
    fn merge_histogram_equals_pointwise_observe() {
        let merged = MemoryRecorder::new();
        let pointwise = MemoryRecorder::new();
        let mut local = Histogram::new();
        for v in [3u64, 9, 1024, 0, 77] {
            local.record(v);
            pointwise.observe("wait", &labels(2), v);
        }
        merged.merge_histogram("wait", &labels(2), &local);
        let a = merged.histogram_snapshot("wait", &labels(2)).unwrap();
        let b = pointwise.histogram_snapshot("wait", &labels(2)).unwrap();
        assert_eq!(a.count(), b.count());
        assert_eq!(
            a.nonzero_buckets().collect::<Vec<_>>(),
            b.nonzero_buckets().collect::<Vec<_>>()
        );
    }

    #[test]
    fn series_points_keep_sample_order() {
        let r = MemoryRecorder::new();
        r.series_point("depth", &labels(1), 100, 2.0);
        r.series_point("depth", &labels(1), 200, 5.0);
        r.series_point("depth", &labels(2), 100, 1.0);
        assert_eq!(
            r.series_points("depth", &labels(1)),
            Some(vec![(100, 2.0), (200, 5.0)])
        );
        assert_eq!(r.series_points("depth", &labels(9)), None);
        assert_eq!(r.series_count(), 2);
    }

    #[test]
    fn series_jsonl_and_chrome_counter_events() {
        let r = MemoryRecorder::new();
        r.series_point("util", &labels(3), 1_000_000, 0.5);
        r.series_point("util", &labels(3), 2_000_000, 0.75);
        let mut buf = Vec::new();
        r.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let v: Value = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        let obj = match v {
            Value::Object(m) => m,
            other => panic!("not an object: {other:?}"),
        };
        assert_eq!(obj.get("type"), Some(&Value::String("series".to_string())));
        let points = match obj.get("points") {
            Some(Value::Array(a)) => a,
            other => panic!("missing points: {other:?}"),
        };
        assert_eq!(points.len(), 2);

        let mut buf = Vec::new();
        r.write_chrome_trace(&mut buf).unwrap();
        let v: Value = serde_json::from_str(&String::from_utf8(buf).unwrap()).unwrap();
        let events = match &v {
            Value::Object(m) => match m.get("traceEvents") {
                Some(Value::Array(a)) => a,
                other => panic!("missing traceEvents: {other:?}"),
            },
            other => panic!("not an object: {other:?}"),
        };
        assert_eq!(events.len(), 2);
        let first = match &events[0] {
            Value::Object(m) => m,
            other => panic!("event not object: {other:?}"),
        };
        assert_eq!(first.get("ph"), Some(&Value::String("C".to_string())));
        assert_eq!(
            first.get("name"),
            Some(&Value::String("util[3]".to_string()))
        );
    }

    #[test]
    fn default_trait_bodies_drop_series_and_histograms() {
        // NoopRecorder inherits the default no-op bodies; exercising them
        // pins the API shape for custom recorders.
        let r = NoopRecorder;
        r.series_point("x", &[], 1, 1.0);
        r.merge_histogram("y", &[], &Histogram::new());
    }

    #[test]
    fn trace_detail_tiers_gate_spans_and_hops() {
        let span = || SpanRecord {
            id: 1,
            kind: "request",
            labels: vec![],
            issued: 0,
            completed: 10,
            hops: vec![],
        };

        let full = MemoryRecorder::new();
        assert!(full.wants_spans() && full.wants_hops());

        let spans_only = MemoryRecorder::with_detail(TraceDetail::Spans);
        assert!(spans_only.wants_spans() && !spans_only.wants_hops());
        spans_only.span(span());
        assert_eq!(spans_only.spans().len(), 1);

        // Metrics mode drops spans even if one is handed over, and still
        // keeps every metric family.
        let lean = MemoryRecorder::metrics_only();
        assert!(!lean.wants_spans() && !lean.wants_hops());
        lean.span(span());
        assert!(lean.spans().is_empty());
        lean.counter_add("sim.events.dispatched", &[], 2);
        assert_eq!(lean.counter_value("sim.events.dispatched", &[]), 2);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_events() {
        let r = MemoryRecorder::new();
        r.span(SpanRecord {
            id: 1,
            kind: "request",
            labels: vec![("op", "read".to_string())],
            issued: 0,
            completed: 3000,
            hops: vec![
                SpanHop {
                    stage: "mds",
                    server: None,
                    arrive: 0,
                    start: 0,
                    end: 1000,
                },
                SpanHop {
                    stage: "disk",
                    server: Some(5),
                    arrive: 1000,
                    start: 1500,
                    end: 3000,
                },
            ],
        });
        let mut buf = Vec::new();
        r.write_chrome_trace(&mut buf).unwrap();
        let v: Value = serde_json::from_str(&String::from_utf8(buf).unwrap()).unwrap();
        let events = match &v {
            Value::Object(m) => match m.get("traceEvents") {
                Some(Value::Array(a)) => a,
                other => panic!("missing traceEvents: {other:?}"),
            },
            other => panic!("not an object: {other:?}"),
        };
        assert_eq!(events.len(), 2);
        // The disk hop lands on tid 5 with the queue delay in args.
        let disk = match &events[1] {
            Value::Object(m) => m,
            other => panic!("event not object: {other:?}"),
        };
        assert_eq!(disk.get("tid"), Some(&Value::Number(Number::U64(5))));
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let r = MemoryRecorder::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let r = &r;
                scope.spawn(move || {
                    for _ in 0..1000 {
                        r.counter_add("n", &[("t", t.to_string())], 1);
                    }
                });
            }
        });
        let total: u64 = (0..4)
            .map(|t| r.counter_value("n", &[("t", t.to_string())]))
            .sum();
        assert_eq!(total, 4000);
    }
}
