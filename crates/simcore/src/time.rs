//! Simulated time with nanosecond resolution.
//!
//! All simulation timestamps and durations are [`SimNanos`], a `u64`
//! nanosecond count. Using an integer (rather than `f64` seconds) makes
//! event ordering exact and the whole simulation bit-for-bit reproducible.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, or a duration, in nanoseconds.
///
/// The type is deliberately used for both instants and durations; the
/// simulation never mixes them with wall-clock time so the extra type
/// distinction would only add noise.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimNanos(pub u64);

impl SimNanos {
    /// Time zero — the start of every simulation.
    pub const ZERO: SimNanos = SimNanos(0);
    /// The largest representable time.
    pub const MAX: SimNanos = SimNanos(u64::MAX);

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimNanos(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimNanos(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimNanos(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimNanos(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Negative inputs clamp to zero: durations in this simulation are never
    /// negative, and analytical-model outputs that underflow are treated as
    /// "free".
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return SimNanos::ZERO;
        }
        SimNanos((s * 1e9).round() as u64)
    }

    /// The raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This time as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This time as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction: `self - rhs`, or zero if `rhs` is later.
    #[inline]
    pub fn saturating_sub(self, rhs: SimNanos) -> SimNanos {
        SimNanos(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: SimNanos) -> SimNanos {
        SimNanos(self.0.saturating_add(rhs.0))
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, rhs: SimNanos) -> SimNanos {
        if self.0 >= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, rhs: SimNanos) -> SimNanos {
        if self.0 <= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// True if this is time zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimNanos {
    type Output = SimNanos;
    #[inline]
    fn add(self, rhs: SimNanos) -> SimNanos {
        SimNanos(self.0 + rhs.0)
    }
}

impl AddAssign for SimNanos {
    #[inline]
    fn add_assign(&mut self, rhs: SimNanos) {
        self.0 += rhs.0;
    }
}

impl Sub for SimNanos {
    type Output = SimNanos;
    #[inline]
    fn sub(self, rhs: SimNanos) -> SimNanos {
        SimNanos(self.0 - rhs.0)
    }
}

impl SubAssign for SimNanos {
    #[inline]
    fn sub_assign(&mut self, rhs: SimNanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimNanos {
    type Output = SimNanos;
    #[inline]
    fn mul(self, rhs: u64) -> SimNanos {
        SimNanos(self.0 * rhs)
    }
}

impl Div<u64> for SimNanos {
    type Output = SimNanos;
    #[inline]
    fn div(self, rhs: u64) -> SimNanos {
        SimNanos(self.0 / rhs)
    }
}

impl Sum for SimNanos {
    fn sum<I: Iterator<Item = SimNanos>>(iter: I) -> SimNanos {
        iter.fold(SimNanos::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimNanos {
    /// Human-friendly rendering with an automatically chosen unit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2}us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimNanos::from_micros(1), SimNanos::from_nanos(1_000));
        assert_eq!(SimNanos::from_millis(1), SimNanos::from_micros(1_000));
        assert_eq!(SimNanos::from_secs(1), SimNanos::from_millis(1_000));
    }

    #[test]
    fn secs_f64_round_trip() {
        let t = SimNanos::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn from_secs_f64_clamps_negative() {
        assert_eq!(SimNanos::from_secs_f64(-3.0), SimNanos::ZERO);
        assert_eq!(SimNanos::from_secs_f64(0.0), SimNanos::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimNanos::from_millis(3);
        let b = SimNanos::from_millis(1);
        assert_eq!(a + b, SimNanos::from_millis(4));
        assert_eq!(a - b, SimNanos::from_millis(2));
        assert_eq!(a * 2, SimNanos::from_millis(6));
        assert_eq!(a / 3, SimNanos::from_millis(1));
        assert_eq!(b.saturating_sub(a), SimNanos::ZERO);
    }

    #[test]
    fn min_max() {
        let a = SimNanos(5);
        let b = SimNanos(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimNanos = (1..=4).map(SimNanos::from_millis).sum();
        assert_eq!(total, SimNanos::from_millis(10));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimNanos(12).to_string(), "12ns");
        assert_eq!(SimNanos::from_micros(2).to_string(), "2.00us");
        assert_eq!(SimNanos::from_millis(2).to_string(), "2.00ms");
        assert_eq!(SimNanos::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn millis_f64() {
        assert!((SimNanos::from_millis(250).as_millis_f64() - 250.0).abs() < 1e-9);
    }
}
