//! Calendar queue: the engine's bucketed event timeline.
//!
//! [`CalendarQueue`] replaces the single `BinaryHeap` the engine used
//! through PR 5. The heap paid `O(log n)` pointer-chasing comparisons on
//! every push and pop; at the 1024-server bench tier the dispatch bucket
//! of the phase profiler showed queue maintenance costing more wall time
//! than all device modelling combined. The calendar queue makes the
//! common operations `O(1)`:
//!
//! * **Arena slots.** Event payloads live in a slab (`slots`) reused
//!   through a LIFO free list, so steady-state scheduling allocates
//!   nothing and recently-freed slots stay cache-hot. Queue structures
//!   move only small `(time, seq, slot)` keys.
//! * **Bucket ring.** Pending times map to fixed-width buckets
//!   (`width = 1 << shift` ns); a ring of `ring.len()` buckets covers the
//!   window `[base, base + ring.len())` of bucket indices. A push inside
//!   the window is an unsorted `Vec` push. A two-level occupancy bitmap
//!   finds the next non-empty bucket without scanning empties one by one.
//! * **Current bucket.** The head bucket is sorted once when the cursor
//!   reaches it and then drained by index. Events scheduled *into* the
//!   current bucket mid-drain (zero-delay hops, sub-bucket service
//!   times) go to a small side min-heap merged lazily at pop time —
//!   `O(log k)` instead of an `O(bucket)` sorted insert. They provably
//!   belong in the undrained suffix: `schedule` rejects past times and
//!   `seq` is monotone, so a new key always sorts after the last popped
//!   key.
//! * **Overflow heap.** Times beyond the window land in a far-future
//!   `BinaryHeap` and are merged into their bucket when the cursor gets
//!   there. The window parameters adapt (wider ring, finer or coarser
//!   buckets) from observed occupancy, so the heap only ever sees a small
//!   fraction of traffic.
//!
//! **Ordering contract.** Pop order is exactly ascending `(at, seq)` —
//! byte-for-byte the order the old heap produced (its tie-break was
//! insertion sequence). Every internal parameter (bucket width, ring
//! size, adaptation points) is derived from event content alone, never
//! from wall time, so runs are bit-identical across machines and across
//! parameter retunings that preserve the contract. The proptest in
//! `tests/calendar_order.rs` drives random schedules (same-timestamp
//! bursts, far-future outliers, mid-drain insertions) through this queue
//! and a reference heap and asserts identical pop sequences.

use crate::time::SimNanos;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Initial bucket width: `2^18` ns ≈ 262 µs. Loading a bucket (swap +
/// sort + bitmap bookkeeping) is the expensive step, so buckets want to
/// hold a batch of events, not one: tens of entries per load keeps the
/// amortised cost per pop at a couple of comparisons.
const INIT_SHIFT: u32 = 18;
/// Initial ring size (buckets). 4096 × 262 µs ≈ 1.07 s of window.
const INIT_BUCKETS: usize = 1 << 12;
/// Ring growth cap: 65 536 bucket headers ≈ 1.5 MiB — still trivial
/// next to the event payloads of a run that needs a window this wide.
const MAX_BUCKETS: usize = 1 << 16;
/// Widest bucket the adapter will pick: `2^30` ns ≈ 1.07 s.
const MAX_SHIFT: u32 = 30;
/// Pops between parameter reviews. Wide enough to average over the
/// bursty phases of a fan-out workload (whole fan-outs land inside one
/// window), so the gap estimate tracks the steady rate, not the bursts.
const ADAPT_EVERY: u64 = 32768;
/// Target mean entries per bucket. Small keeps most pushes out of the
/// current bucket (an `O(1)` ring push instead of a side-heap insert)
/// while still amortising the fixed cost of a bucket load over several
/// pops; 4 measured fastest on the bench-sim tiers.
const TARGET_OCCUPANCY: u64 = 4;

/// Queue key: orders by `(at, seq)`; `slot` rides along and is never
/// compared because `seq` is unique.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    at: SimNanos,
    seq: u64,
    slot: u32,
}

/// Two-level occupancy bitmap over ring positions.
///
/// Level 0 has one bit per bucket; level 1 has one bit per level-0 word.
/// `next_occupied_after` resolves in at most a handful of word reads even
/// on a 65 536-bucket ring.
#[derive(Debug, Default)]
struct OccBitmap {
    words: Vec<u64>,
    summary: Vec<u64>,
}

impl OccBitmap {
    fn with_capacity(bits: usize) -> Self {
        let words = bits.div_ceil(64);
        OccBitmap {
            words: vec![0; words],
            summary: vec![0; words.div_ceil(64)],
        }
    }

    #[inline]
    fn set(&mut self, pos: usize) {
        let w = pos / 64;
        self.words[w] |= 1u64 << (pos % 64);
        self.summary[w / 64] |= 1u64 << (w % 64);
    }

    #[inline]
    fn clear(&mut self, pos: usize) {
        let w = pos / 64;
        self.words[w] &= !(1u64 << (pos % 64));
        if self.words[w] == 0 {
            self.summary[w / 64] &= !(1u64 << (w % 64));
        }
    }

    /// First occupied position after `pos` in circular order (wrapping
    /// all the way round to `pos` itself last), or `None` if empty.
    fn next_occupied_after(&self, pos: usize, len: usize) -> Option<usize> {
        debug_assert!(pos < len);
        let (w, bit) = (pos / 64, pos % 64);
        // Bits strictly above `pos` within its own word.
        let tail = if bit == 63 {
            0
        } else {
            self.words[w] & (u64::MAX << (bit + 1))
        };
        if tail != 0 {
            return Some(w * 64 + tail.trailing_zeros() as usize);
        }
        // Whole words after `w`, then wrap to the words up to and
        // including `w`; the summary level skips runs of empty words.
        // Any hit back in word `w` is a bit at or below `pos` (the tail
        // check cleared the rest), which circular order visits last.
        let scan = |from: usize, to: usize| -> Option<usize> {
            let mut i = from;
            while i < to {
                let s = i / 64;
                let masked = self.summary[s] & (u64::MAX << (i % 64));
                if masked == 0 {
                    i = (s + 1) * 64;
                    continue;
                }
                let j = s * 64 + masked.trailing_zeros() as usize;
                if j >= to {
                    return None;
                }
                // The summary invariant guarantees `words[j] != 0`.
                return Some(j * 64 + self.words[j].trailing_zeros() as usize);
            }
            None
        };
        scan(w + 1, self.words.len()).or_else(|| scan(0, w + 1))
    }
}

/// The engine's pending-event store. See the module docs for the design;
/// the public surface is deliberately tiny because [`Scheduler`]
/// (`crate::engine`) owns sequence numbering and time monotonicity.
#[derive(Debug)]
pub(crate) struct CalendarQueue<E> {
    /// Arena of event payloads; `None` marks a free slot.
    slots: Vec<Option<E>>,
    /// LIFO free list into `slots`.
    free: Vec<u32>,
    /// Bucket ring; position `b & mask` holds bucket `b` for
    /// `b` in `(base, base + ring.len())`.
    ring: Vec<Vec<Key>>,
    /// `ring.len() - 1`. Ring sizes are always powers of two so the
    /// position map is a mask, not a hardware division — the map runs
    /// once per push and twice per bucket load.
    mask: u64,
    occ: OccBitmap,
    /// Bucket width is `1 << shift` nanoseconds.
    shift: u32,
    /// Absolute index of the current bucket (the one `cur` holds).
    base: u64,
    /// Current bucket, sorted ascending, drained from `cur_pos`.
    cur: Vec<Key>,
    cur_pos: usize,
    /// Keys scheduled *into* the current bucket mid-drain (zero-delay
    /// hops, sub-bucket service times). A side min-heap instead of a
    /// sorted insert into `cur`: the engine's hot pattern lands most
    /// pushes a few microseconds ahead — inside the bucket being
    /// drained — and a `Vec::insert` there is an `O(bucket)` memmove
    /// per push, which profiling showed dominating dispatch.
    cur_extra: BinaryHeap<Reverse<Key>>,
    /// Far-future events beyond the ring window, earliest first.
    overflow: BinaryHeap<Reverse<Key>>,
    len: usize,
    // Adaptation state: pops since creation and the pop time of the
    // last geometry review.
    pops: u64,
    last_review_at: SimNanos,
    /// EWMA of the mean gap between pop times (ns), 0 until the first
    /// review. Smoothing keeps one anomalous window from thrashing the
    /// geometry.
    gap_ewma: u64,
    rebuilds: u64,
}

impl<E> CalendarQueue<E> {
    pub(crate) fn new() -> Self {
        CalendarQueue {
            slots: Vec::new(),
            free: Vec::new(),
            ring: (0..INIT_BUCKETS).map(|_| Vec::new()).collect(),
            mask: INIT_BUCKETS as u64 - 1,
            occ: OccBitmap::with_capacity(INIT_BUCKETS),
            shift: INIT_SHIFT,
            base: 0,
            cur: Vec::new(),
            cur_pos: 0,
            cur_extra: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            len: 0,
            pops: 0,
            last_review_at: SimNanos::ZERO,
            gap_ewma: 0,
            rebuilds: 0,
        }
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Times the queue has re-tuned its bucket geometry (observability).
    #[inline]
    pub(crate) fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    #[inline]
    fn bucket_of(&self, at: SimNanos) -> u64 {
        at.as_nanos() >> self.shift
    }

    #[inline]
    fn window_end(&self) -> u64 {
        self.base.saturating_add(self.ring.len() as u64)
    }

    #[inline]
    fn alloc(&mut self, event: E) -> u32 {
        if let Some(slot) = self.free.pop() {
            self.slots[slot as usize] = Some(event);
            slot
        } else {
            self.slots.push(Some(event));
            (self.slots.len() - 1) as u32
        }
    }

    /// Insert an event. The caller (`Scheduler`) guarantees `at >= now`
    /// and that `seq` is strictly greater than every previously used
    /// sequence number.
    pub(crate) fn push(&mut self, at: SimNanos, seq: u64, event: E) {
        let slot = self.alloc(event);
        self.len += 1;
        self.place(Key { at, seq, slot });
    }

    /// Route a key to the current bucket, the ring, or the overflow heap.
    #[inline]
    fn place(&mut self, key: Key) {
        let b = self.bucket_of(key.at);
        if b <= self.base {
            // `at >= now` means `b >= bucket_of(now)`; the cursor never
            // sits past `bucket_of(now)`, so `b < base` is unreachable
            // and this arm is exactly the current bucket. The new key
            // sorts after the last popped key (time is monotone, seq is
            // fresh), so merging it lazily at pop time preserves order.
            debug_assert!(b == self.base);
            self.cur_extra.push(Reverse(key));
        } else if b < self.window_end() {
            let pos = (b & self.mask) as usize;
            self.ring[pos].push(key);
            self.occ.set(pos);
        } else {
            self.overflow.push(Reverse(key));
        }
    }

    /// Earliest pending time, or `None` if the queue is empty. Positions
    /// the cursor as a side effect (shares all work with `pop`).
    pub(crate) fn peek_at(&mut self) -> Option<SimNanos> {
        if !self.settle() {
            return None;
        }
        let head = self.cur.get(self.cur_pos).map(|k| k.at);
        let extra = self.cur_extra.peek().map(|Reverse(k)| k.at);
        match (head, extra) {
            (Some(h), Some(e)) => Some(h.min(e)),
            (h, e) => h.or(e),
        }
    }

    /// Remove and return the earliest `(at, seq)` event.
    pub(crate) fn pop(&mut self) -> Option<(SimNanos, E)> {
        if !self.settle() {
            return None;
        }
        // The head is the smaller of the sorted drain cursor and the
        // mid-drain side heap; `settle` guarantees at least one exists.
        let key = match (self.cur.get(self.cur_pos), self.cur_extra.peek()) {
            (Some(&h), Some(&Reverse(e))) if e < h => {
                self.cur_extra.pop();
                e
            }
            (Some(&h), _) => {
                self.cur_pos += 1;
                h
            }
            (None, Some(_)) => {
                let Reverse(e) = self.cur_extra.pop()?;
                e
            }
            (None, None) => return None,
        };
        self.len -= 1;
        self.pops += 1;
        // Every queued key owns a filled slot; `?` keeps the impossible
        // case from needing a panic site.
        let event = self.slots[key.slot as usize].take()?;
        self.free.push(key.slot);
        if self.pops.is_multiple_of(ADAPT_EVERY) {
            self.adapt(key.at);
        }
        Some((key.at, event))
    }

    /// Ensure `cur[cur_pos]` is the global minimum; returns `false` iff
    /// the queue is empty.
    #[inline]
    fn settle(&mut self) -> bool {
        if self.cur_pos < self.cur.len() || !self.cur_extra.is_empty() {
            return true;
        }
        if self.len == 0 {
            return false;
        }
        self.advance()
    }

    /// Move `base` to the next non-empty bucket and load it into `cur`.
    /// Returns `false` only if no bucket holds an entry, which `len > 0`
    /// rules out.
    fn advance(&mut self) -> bool {
        debug_assert!(self.cur_extra.is_empty(), "settle drains extra first");
        let nb = self.ring.len() as u64;
        let pos = (self.base & self.mask) as usize;
        let ring_next = self.occ.next_occupied_after(pos, self.ring.len()).map(|q| {
            let dist = (q as u64 + nb - pos as u64) & self.mask;
            self.base + dist
        });
        let over_next = self.overflow.peek().map(|Reverse(k)| self.bucket_of(k.at));
        let next = match (ring_next, over_next) {
            (Some(r), Some(o)) => r.min(o),
            (Some(r), None) => r,
            (None, Some(o)) => o,
            (None, None) => return false,
        };
        self.base = next;
        let pos = (self.base & self.mask) as usize;
        self.cur.clear();
        std::mem::swap(&mut self.cur, &mut self.ring[pos]);
        self.occ.clear(pos);
        while let Some(Reverse(k)) = self.overflow.peek() {
            if self.bucket_of(k.at) != self.base {
                break;
            }
            let Some(Reverse(k)) = self.overflow.pop() else {
                break;
            };
            self.cur.push(k);
        }
        self.cur.sort_unstable();
        self.cur_pos = 0;
        true
    }

    /// Periodic geometry review, driven by two measured quantities:
    ///
    /// * the mean **gap** between consecutive pop times over the last
    ///   review window — sets the bucket width so a bucket holds about
    ///   [`TARGET_OCCUPANCY`] events;
    /// * the estimated temporal **span** of the standing queue
    ///   (`len × gap`) — widens buckets past the occupancy target when
    ///   the ring could not otherwise cover the span, so deep standing
    ///   queues never live in the overflow heap.
    ///
    /// Both inputs are functions of event content alone (pop times and
    /// queue length), never of wall time, so the geometry trajectory is
    /// reproducible. Because the rule maps measurements directly to a
    /// target instead of nudging parameters stepwise, a steady workload
    /// reaches its fixpoint in one rebuild and never oscillates.
    fn adapt(&mut self, at: SimNanos) {
        let delta = at.as_nanos().saturating_sub(self.last_review_at.as_nanos());
        self.last_review_at = at;
        let raw = (delta / ADAPT_EVERY).max(1);
        self.gap_ewma = if self.gap_ewma == 0 {
            raw
        } else {
            (3 * (self.gap_ewma / 4)).saturating_add(raw / 4).max(1)
        };
        let gap = self.gap_ewma;
        let span = (self.len as u64).saturating_mul(gap).max(1);
        let occ_width = gap.saturating_mul(TARGET_OCCUPANCY);
        let buckets = usize::try_from(span / occ_width.max(1))
            .unwrap_or(MAX_BUCKETS)
            .next_power_of_two()
            .clamp(INIT_BUCKETS, MAX_BUCKETS);
        let cover_width = span.div_ceil(buckets as u64).next_power_of_two();
        let shift = occ_width.max(cover_width).ilog2().min(MAX_SHIFT);
        // Hysteresis: a one-step width disagreement is within noise and
        // not worth an O(len) rebuild; act on clear regime changes only.
        if shift.abs_diff(self.shift) >= 2 || buckets != self.ring.len() {
            self.rebuild(shift, buckets, at);
        }
    }

    /// Re-bucket every pending key under new geometry. `O(len)`; runs at
    /// most once per `ADAPT_EVERY` pops so the amortised cost is noise.
    /// `now` is the pop time that triggered the review.
    fn rebuild(&mut self, shift: u32, buckets: usize, now: SimNanos) {
        self.rebuilds += 1;
        let mut keys: Vec<Key> = Vec::with_capacity(self.len);
        keys.extend_from_slice(&self.cur[self.cur_pos..]);
        keys.extend(self.cur_extra.drain().map(|Reverse(k)| k));
        for bucket in &mut self.ring {
            keys.append(bucket);
        }
        keys.extend(self.overflow.drain().map(|Reverse(k)| k));
        self.shift = shift;
        if buckets != self.ring.len() {
            debug_assert!(buckets.is_power_of_two(), "ring sizes stay powers of two");
            self.ring = (0..buckets).map(|_| Vec::new()).collect();
            self.mask = buckets as u64 - 1;
        }
        self.occ = OccBitmap::with_capacity(buckets);
        self.cur.clear();
        self.cur_pos = 0;
        // Anchor the cursor at the bucket of the pop time that triggered
        // the review, not at the earliest *pending* key: a handler may
        // still schedule a zero-delay follow-up at `now`, and `place`
        // requires `base <= bucket_of(at)` for every future push. `now`
        // is a lower bound on all pending and future keys (pop order is
        // ascending and `schedule` rejects past times), so every key
        // lands at or ahead of the cursor.
        self.base = now.as_nanos() >> shift;
        for key in keys {
            self.place(key);
        }
        self.cur.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    fn drain(q: &mut CalendarQueue<u64>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some((at, ev)) = q.pop() {
            out.push((at.as_nanos(), ev));
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new();
        q.push(SimNanos(50), 0, 0);
        q.push(SimNanos(10), 1, 1);
        q.push(SimNanos(50), 2, 2);
        q.push(SimNanos(10), 3, 3);
        assert_eq!(drain(&mut q), vec![(10, 1), (10, 3), (50, 0), (50, 2)]);
    }

    #[test]
    fn far_future_outliers_round_trip_through_overflow() {
        let mut q = CalendarQueue::new();
        // Far beyond the initial 67 ms window — lands in the heap.
        let far = SimNanos::from_secs(3600);
        q.push(far, 0, 7);
        q.push(SimNanos(5), 1, 1);
        q.push(SimNanos::MAX, 2, 9);
        assert_eq!(q.len(), 3);
        assert_eq!(
            drain(&mut q),
            vec![(5, 1), (far.as_nanos(), 7), (u64::MAX, 9)]
        );
    }

    #[test]
    fn mid_drain_insertion_lands_in_the_current_bucket() {
        let mut q = CalendarQueue::new();
        q.push(SimNanos(100), 0, 0);
        q.push(SimNanos(200), 1, 1);
        let (at, ev) = q.pop().expect("first");
        assert_eq!((at.as_nanos(), ev), (100, 0));
        // Zero-delay hop: same bucket, must pop before the 200 ns event.
        q.push(SimNanos(100), 2, 2);
        q.push(SimNanos(150), 3, 3);
        assert_eq!(drain(&mut q), vec![(100, 2), (150, 3), (200, 1)]);
    }

    #[test]
    fn arena_slots_are_reused() {
        let mut q = CalendarQueue::new();
        for round in 0..100u64 {
            q.push(SimNanos(round), round, round);
            let _ = q.pop();
        }
        // One live event at a time: the slab never grows past one slot.
        assert_eq!(q.slots.len(), 1);
    }

    #[test]
    fn peek_matches_pop_without_consuming() {
        let mut q = CalendarQueue::new();
        assert_eq!(q.peek_at(), None);
        q.push(SimNanos(40), 0, 0);
        q.push(SimNanos(30), 1, 1);
        assert_eq!(q.peek_at(), Some(SimNanos(30)));
        assert_eq!(q.peek_at(), Some(SimNanos(30)));
        assert_eq!(q.pop(), Some((SimNanos(30), 1)));
        assert_eq!(q.peek_at(), Some(SimNanos(40)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn random_schedule_matches_reference_heap() {
        // Adversarial mix: same-timestamp bursts, far-future outliers,
        // zero-delay follow-ups — enough traffic to cross several adapt
        // reviews. The heavier proptest lives in tests/calendar_order.rs.
        let mut rng = SimRng::new(7);
        let mut q = CalendarQueue::new();
        let mut reference = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        let mut popped = Vec::new();
        let mut expected = Vec::new();
        for _ in 0..160_000 {
            if rng.uniform_f64(0.0, 1.0) < 0.55 {
                let jump = match rng.index(3) {
                    0 => 0,
                    1 => rng.uniform_u64(0, 1 << 12),
                    // Far beyond the initial ring window (2^30 ns): a third
                    // of pushes land in the overflow heap, forcing the
                    // adapt review to regrow the geometry at least once.
                    _ => rng.uniform_u64(0, 1 << 36),
                };
                let at = SimNanos(now + jump);
                q.push(at, seq, seq);
                reference.push(Reverse((at, seq)));
                seq += 1;
            } else if let Some((at, ev)) = q.pop() {
                now = at.as_nanos();
                popped.push((at, ev));
                let Some(Reverse((rat, rseq))) = reference.pop() else {
                    panic!("reference empty while calendar popped");
                };
                expected.push((rat, rseq));
            }
        }
        popped.extend(std::iter::from_fn(|| q.pop()));
        expected.extend(std::iter::from_fn(|| reference.pop()).map(|Reverse(k)| k));
        assert!(q.rebuilds() > 0, "adversarial mix should trigger retuning");
        assert_eq!(popped, expected);
    }

    #[test]
    fn bitmap_finds_next_in_circular_order() {
        let mut occ = OccBitmap::with_capacity(300);
        assert_eq!(occ.next_occupied_after(10, 300), None);
        occ.set(70);
        occ.set(299);
        occ.set(5);
        assert_eq!(occ.next_occupied_after(10, 300), Some(70));
        assert_eq!(occ.next_occupied_after(70, 300), Some(299));
        assert_eq!(occ.next_occupied_after(299, 300), Some(5));
        occ.clear(70);
        assert_eq!(occ.next_occupied_after(10, 300), Some(299));
        occ.clear(299);
        occ.clear(5);
        assert_eq!(occ.next_occupied_after(0, 300), None);
    }

    #[test]
    fn bitmap_wraps_within_one_word() {
        let mut occ = OccBitmap::with_capacity(64);
        occ.set(3);
        assert_eq!(occ.next_occupied_after(10, 64), Some(3));
        assert_eq!(occ.next_occupied_after(2, 64), Some(3));
        occ.set(63);
        assert_eq!(occ.next_occupied_after(10, 64), Some(63));
    }
}
