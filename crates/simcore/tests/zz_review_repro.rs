//! Review repro: after an adapt() rebuild repositions `base` to the bucket
//! of a far-future pending event, a zero-delay follow-up scheduled by the
//! handler lands in a bucket strictly below `base`, tripping
//! `debug_assert!(b == self.base)` in CalendarQueue::place.

use harl_simcore::{Engine, SimNanos};

#[test]
fn zero_delay_after_rebuild_with_sparse_queue() {
    let mut engine: Engine<u32> = Engine::new();
    // One far-future outlier that is the only pending event at review time.
    engine.schedule(SimNanos(1_000_000_000_000), 1);
    // Chain driver: each pop schedules the next 100 ns later, so pops
    // accumulate while the standing queue stays at exactly one event.
    engine.schedule(SimNanos::ZERO, 0);
    let mut hops: u64 = 0;
    engine.run(|sched, now, ev| {
        if ev == 0 && hops < 40_000 {
            hops += 1;
            sched.schedule(now + SimNanos(100), 0);
        }
    });
    assert_eq!(hops, 40_000);
}
