//! Property tests on the FIFO timeline and the event engine.

use harl_simcore::{Engine, SimNanos, Timeline};
use proptest::prelude::*;

proptest! {
    /// Grants never overlap, never start before arrival, and keep FIFO
    /// order for arrival-ordered offers.
    #[test]
    fn timeline_grants_are_serial(
        jobs in prop::collection::vec((0u64..1_000_000, 0u64..10_000), 1..64),
    ) {
        let mut sorted = jobs.clone();
        sorted.sort_by_key(|&(arrival, _)| arrival);
        let mut t = Timeline::new();
        let mut prev_end = SimNanos::ZERO;
        let mut busy = 0u64;
        for &(arrival, service) in &sorted {
            let g = t.acquire(SimNanos(arrival), SimNanos(service));
            prop_assert!(g.start >= SimNanos(arrival));
            prop_assert!(g.start >= prev_end, "grants must not overlap");
            prop_assert_eq!(g.end, g.start + SimNanos(service));
            prop_assert_eq!(g.queued, g.start - SimNanos(arrival));
            prev_end = g.end;
            busy += service;
        }
        prop_assert_eq!(t.busy_time(), SimNanos(busy));
        prop_assert_eq!(t.jobs_served(), sorted.len() as u64);
    }

    /// The engine delivers every scheduled event exactly once, in
    /// non-decreasing time order, with insertion order breaking ties.
    #[test]
    fn engine_delivers_in_order(times in prop::collection::vec(0u64..1_000, 1..256)) {
        let mut engine = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            engine.schedule(SimNanos(t), i);
        }
        let mut delivered: Vec<(u64, usize)> = Vec::new();
        engine.run(|_, now, idx| delivered.push((now.as_nanos(), idx)));
        prop_assert_eq!(delivered.len(), times.len());
        for w in delivered.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "tie broke out of insertion order");
            }
        }
        // Exactly-once delivery.
        let mut seen: Vec<usize> = delivered.iter().map(|&(_, i)| i).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..times.len()).collect::<Vec<_>>());
    }
}
