//! Property tests: the bucketed calendar timeline pops in exactly the
//! order the engine's old `BinaryHeap` produced — ascending `(at, seq)`
//! with `seq` the schedule-call order.
//!
//! Two generators cover the queue's distinct regimes: a static schedule
//! (everything pushed up front, mixing same-timestamp bursts, dense
//! clusters and far-future outliers that must route through the overflow
//! heap) and a dynamic schedule whose handler keeps scheduling follow-ups
//! mid-run, including zero-delay events that land in the *current* bucket
//! while it is being drained — the side-heap path.

use harl_simcore::{Engine, SimNanos};
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Expand a generated spec into concrete times: `mode` selects a burst
/// (repeat the previous time exactly), a dense near-origin cluster, a
/// steady advance, or a far-future outlier beyond any initial window.
fn times_from(spec: &[(u8, u64)]) -> Vec<u64> {
    let mut last = 0u64;
    spec.iter()
        .map(|&(mode, raw)| {
            let t = match mode {
                0 => last,
                1 => raw % 1_000,
                2 => last.saturating_add(raw % 100_000),
                _ => raw % (1 << 36),
            };
            last = t;
            t
        })
        .collect()
}

/// Pseudorandom but deterministic follow-up delay for the dynamic test:
/// a quarter of follow-ups are zero-delay (current-bucket insertions),
/// the rest spread from sub-bucket to multi-window jumps.
fn follow_up_delay(id: usize) -> u64 {
    let h = (id as u64 ^ 0xD6E8_FEB8_6659_FD93).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    match h % 4 {
        0 => 0,
        1 => h % 7,
        2 => h % 50_000,
        _ => h % (1 << 30),
    }
}

proptest! {
    /// Static schedules: pop order equals a stable sort by time (stable =
    /// insertion order breaks ties, which is what the old heap's
    /// `(at, seq)` key did).
    #[test]
    fn static_schedule_pops_like_the_reference_heap(
        spec in prop::collection::vec((0u8..4, 0u64..(1 << 62)), 1..512),
    ) {
        let times = times_from(&spec);
        let mut engine = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            engine.schedule(SimNanos(t), i);
        }
        let mut popped: Vec<(u64, usize)> = Vec::new();
        engine.run(|_, now, id| popped.push((now.as_nanos(), id)));

        let mut reference: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        reference.sort_by_key(|&(t, i)| (t, i));
        prop_assert_eq!(popped, reference);
    }

    /// Dynamic schedules: every pop may schedule a follow-up, including
    /// zero-delay ones into the bucket currently being drained. The
    /// reference is a plain `BinaryHeap` over `(at, seq)` running the
    /// same deterministic rule.
    #[test]
    fn dynamic_schedule_matches_reference_heap(
        spec in prop::collection::vec((0u8..4, 0u64..(1 << 36)), 1..128),
        extra in 0usize..512,
    ) {
        let times = times_from(&spec);

        let mut engine = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            engine.schedule(SimNanos(t), i);
        }
        let mut budget = extra;
        let mut next_id = times.len();
        let mut popped: Vec<(u64, usize)> = Vec::new();
        engine.run(|sched, now, id| {
            popped.push((now.as_nanos(), id));
            if budget > 0 {
                budget -= 1;
                sched.schedule(now + SimNanos(follow_up_delay(id)), next_id);
                next_id += 1;
            }
        });

        // Reference: ids double as sequence numbers because both runs
        // schedule in the same order.
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| Reverse((t, i)))
            .collect();
        let mut budget = extra;
        let mut next_id = times.len();
        let mut reference: Vec<(u64, usize)> = Vec::new();
        while let Some(Reverse((at, id))) = heap.pop() {
            reference.push((at, id));
            if budget > 0 {
                budget -= 1;
                heap.push(Reverse((at + follow_up_delay(id), next_id)));
                next_id += 1;
            }
        }
        prop_assert_eq!(popped, reference);
    }
}
