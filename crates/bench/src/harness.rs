//! Shared experiment plumbing: scales, policy sets, measurement, tables.

use harl_core::{
    CostModelParams, FixedPolicy, HarlPolicy, LayoutPolicy, OptimizerConfig, RandomPolicy,
    RegionStripeTable,
};
use harl_devices::CalibrationConfig;
use harl_middleware::{trace_plan_run, CollectiveConfig, Workload};
use harl_pfs::{ClusterConfig, SimReport};
use harl_simcore::metrics::MemoryRecorder;
use harl_simcore::SimContext;
use serde::Serialize;
use std::sync::{Arc, OnceLock};

static GLOBAL_RECORDER: OnceLock<Arc<MemoryRecorder>> = OnceLock::new();
static GLOBAL_THREADS: OnceLock<usize> = OnceLock::new();

/// Pin the simulation thread count for every subsequent [`measure`] call
/// (the experiments binary's `--threads` flag). Results are byte-identical
/// at any setting — the engine shards deterministically — so this is a
/// wall-clock knob, never a results knob. Idempotent like the recorder.
pub fn set_threads(threads: usize) {
    let _ = GLOBAL_THREADS.set(threads.max(1));
}

/// Install a process-wide in-memory recorder; every subsequent
/// [`measure`] call streams its metrics and request spans into it.
/// Idempotent: repeated calls return the same recorder.
pub fn install_recorder() -> Arc<MemoryRecorder> {
    GLOBAL_RECORDER
        .get_or_init(|| Arc::new(MemoryRecorder::new()))
        .clone()
}

/// The context [`measure`] runs under: carrying the installed recorder,
/// or a plain disabled-recorder context when [`install_recorder`] was
/// never called (the default, costing one `is_enabled()` virtual call per
/// instrumentation site).
pub fn context() -> SimContext {
    let ctx = match GLOBAL_RECORDER.get() {
        Some(r) => SimContext::recorded(r.clone()),
        None => SimContext::new(),
    };
    match GLOBAL_THREADS.get() {
        Some(&t) => ctx.with_threads(t),
        None => ctx,
    }
}

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// IOR shared-file size.
    pub ior_file: u64,
    /// BTIO grid points per dimension.
    pub btio_grid: usize,
    /// Cap on requests per optimizer cost evaluation.
    pub opt_sample: usize,
}

impl Scale {
    /// Reduced sizes for quick runs (shape-identical to the paper scale).
    pub fn quick() -> Self {
        Scale {
            ior_file: 2 << 30,
            btio_grid: 52,
            opt_sample: 1024,
        }
    }

    /// The paper's sizes: 16 GiB IOR files, ≈1.7 GB BTIO I/O.
    pub fn paper() -> Self {
        Scale {
            ior_file: 16 << 30,
            btio_grid: 104,
            opt_sample: 4096,
        }
    }
}

/// One measured layout policy on one workload.
#[derive(Debug, Clone, Serialize)]
pub struct PolicyOutcome {
    /// Policy label ("64K", "rand…", "HARL").
    pub label: String,
    /// Aggregate throughput in MiB/s (bytes moved / makespan).
    pub throughput_mib_s: f64,
    /// Makespan in seconds.
    pub makespan_s: f64,
    /// The chosen `(h, s)` of the plan's first region, for reporting.
    pub first_region: (u64, u64),
    /// Number of RST regions.
    pub regions: usize,
}

/// Build the paper's comparison set for a cluster: fixed stripes
/// {16K, 64K, 256K, 1M, 2M}, two random draws, and HARL driven by
/// *calibrated* device parameters (the Analysis Phase pipeline).
pub fn paper_policies(cluster: &ClusterConfig, scale: &Scale) -> Vec<Box<dyn LayoutPolicy>> {
    let mut policies: Vec<Box<dyn LayoutPolicy>> = Vec::new();
    for stripe in [16u64, 64, 256, 1024, 2048] {
        policies.push(Box::new(FixedPolicy::new(stripe * 1024)));
    }
    policies.push(Box::new(RandomPolicy::new(1)));
    policies.push(Box::new(RandomPolicy::new(2)));
    policies.push(Box::new(harl_policy(cluster, scale)));
    policies
}

/// HARL with the calibrated model for `cluster` at the given scale.
pub fn harl_policy(cluster: &ClusterConfig, scale: &Scale) -> HarlPolicy {
    let model = CostModelParams::from_cluster_calibrated(cluster, &CalibrationConfig::default());
    let mut policy = HarlPolicy::new(model);
    policy.optimizer = OptimizerConfig {
        max_requests_per_eval: scale.opt_sample,
        ..OptimizerConfig::default()
    };
    policy
}

/// Run one policy on one workload and summarise.
pub fn measure(
    cluster: &ClusterConfig,
    policy: &dyn LayoutPolicy,
    workload: &Workload,
) -> (PolicyOutcome, RegionStripeTable, SimReport) {
    let (rst, report) = trace_plan_run(
        &context(),
        cluster,
        policy,
        workload,
        &CollectiveConfig::default(),
    );
    let first = &rst.entries()[0];
    let outcome = PolicyOutcome {
        label: policy.label(),
        throughput_mib_s: report.throughput_mib_s(),
        makespan_s: report.makespan.as_secs_f64(),
        first_region: (first.h(), first.s()),
        regions: rst.len(),
    };
    (outcome, rst, report)
}

/// Percentage improvement of `new` over `old`.
pub fn improvement_pct(new: f64, old: f64) -> f64 {
    if old <= 0.0 {
        return 0.0;
    }
    100.0 * (new - old) / old
}

/// Render outcomes as an aligned text table with improvement vs. a
/// baseline label (the paper compares against the 64K default).
pub fn render_table(title: &str, outcomes: &[PolicyOutcome], baseline_label: &str) -> String {
    let baseline = outcomes
        .iter()
        .find(|o| o.label == baseline_label)
        .map(|o| o.throughput_mib_s);
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    out.push_str(&format!(
        "{:<14} {:>12} {:>10} {:>14} {:>8}\n",
        "layout", "MiB/s", "vs 64K", "(h, s) KiB", "regions"
    ));
    for o in outcomes {
        let vs = baseline
            .map(|b| format!("{:+.1}%", improvement_pct(o.throughput_mib_s, b)))
            .unwrap_or_else(|| "-".into());
        out.push_str(&format!(
            "{:<14} {:>12.1} {:>10} {:>14} {:>8}\n",
            o.label,
            o.throughput_mib_s,
            vs,
            format!("({}, {})", o.first_region.0 / 1024, o.first_region.1 / 1024),
            o.regions
        ));
    }
    out
}

/// The best outcome by throughput (`None` on an empty slice).
pub fn best(outcomes: &[PolicyOutcome]) -> Option<&PolicyOutcome> {
    outcomes.iter().reduce(|a, b| {
        if b.throughput_mib_s > a.throughput_mib_s {
            b
        } else {
            a
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use harl_devices::OpKind;
    use harl_workloads::IorConfig;

    #[test]
    fn measure_produces_sane_numbers() {
        let cluster = ClusterConfig::paper_default();
        let w = IorConfig {
            processes: 4,
            request_size: 512 * 1024,
            file_size: 64 << 20,
            op: OpKind::Read,
            order: harl_workloads::AccessOrder::Random,
            seed: 1,
        }
        .build();
        let policy = FixedPolicy::new(64 * 1024);
        let (outcome, rst, report) = measure(&cluster, &policy, &w);
        assert!(outcome.throughput_mib_s > 0.0);
        assert_eq!(rst.len(), 1);
        assert_eq!(report.bytes_read, 64 << 20);
    }

    #[test]
    fn improvement_math() {
        assert!((improvement_pct(150.0, 100.0) - 50.0).abs() < 1e-9);
        assert_eq!(improvement_pct(1.0, 0.0), 0.0);
    }

    #[test]
    fn table_includes_all_rows() {
        let outcomes = vec![
            PolicyOutcome {
                label: "64K".into(),
                throughput_mib_s: 100.0,
                makespan_s: 1.0,
                first_region: (65536, 65536),
                regions: 1,
            },
            PolicyOutcome {
                label: "HARL".into(),
                throughput_mib_s: 170.0,
                makespan_s: 0.6,
                first_region: (32768, 163840),
                regions: 1,
            },
        ];
        let table = render_table("t", &outcomes, "64K");
        assert!(table.contains("64K"));
        assert!(table.contains("HARL"));
        assert!(table.contains("+70.0%"));
        assert_eq!(best(&outcomes).map(|o| o.label.as_str()), Some("HARL"));
    }
}
