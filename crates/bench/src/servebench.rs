//! Planning-service benchmark: end-to-end submission latency of the
//! multi-tenant front-end (`harl-cli bench-serve`).
//!
//! The service's value proposition is that a fleet of tenants mostly
//! *repeats* workloads, so plan submissions should be answered from the
//! fingerprint cache (µs) instead of re-running Algorithm 2 (ms). This
//! bench replays [`TrafficConfig`] schedules at three tenant tiers —
//! 16 (pure repeats: the steady-state ≥5× acceptance tier), 256 (light
//! drift) and 2048 (heavy drift) — through two service configurations:
//!
//! * **warm** — default cache capacities (the shipping configuration);
//! * **cold** — both caches disabled, every submission re-plans fully
//!   (the no-cache baseline the speedup is measured against).
//!
//! Reported per tier: p50/p99 submission latency, sustained plans/s for
//! both modes, the warm/cold speedup and the warm cache hit rate. The
//! committed baseline is `BENCH_serve.json`; `--guard` re-runs the full
//! scale and fails CI when any *deterministic* quantity drifts from it —
//! submission counts, the region reuse split, the warm cache hit rate —
//! since those only move when planner/cache behaviour (or the schedule)
//! changes. Wall-clock throughput is machine-dependent, so it is
//! reported for information only: a warm plans/s drop past
//! [`WARN_MAX_DROP_PCT`] prints a warning but never fails the guard.
//!
//! Wall-clock timing lives here, in the bench crate, because the service
//! itself is part of the deterministic data path (harl-lint's
//! determinism rule bans `Instant` below this layer). Traces are built
//! once per (template, drifted) pair outside the timed loop — the timed
//! region is exactly fingerprint + cache + (on miss) planning.

use harl_core::{CostModelParams, Trace};
use harl_middleware::{collect_trace, PlanningService, ServeConfig};
use harl_pfs::ClusterConfig;
use harl_simcore::SimContext;
use harl_workloads::{TrafficConfig, TrafficJob};
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::time::Instant;

/// Schema tag written into `BENCH_serve.json`; ci.sh greps for it.
pub const SERVE_SCHEMA: &str = "harl.bench.serve.v1";

/// Warm-throughput drop versus the committed baseline past which the
/// guard prints a warning line. Informational only: wall-clock
/// throughput varies with the machine and its load, so the guard never
/// *fails* on it — failures are reserved for deterministic-counter
/// drift.
pub const WARN_MAX_DROP_PCT: f64 = 20.0;

/// One tenant tier of the benchmark.
#[derive(Debug, Clone, Copy)]
pub struct ServeTier {
    /// Fleet size.
    pub tenants: usize,
    /// Distinct job templates across the fleet.
    pub templates: usize,
    /// Service ticks replayed.
    pub ticks: usize,
    /// Submissions per tick.
    pub arrivals_per_tick: usize,
    /// Percent of arrivals that drift their template's tail phase.
    pub drift_pct: u64,
}

impl ServeTier {
    /// Total submissions this tier replays.
    pub fn submissions(&self) -> usize {
        self.ticks * self.arrivals_per_tick
    }

    /// The traffic schedule for this tier.
    pub fn traffic(&self) -> TrafficConfig {
        TrafficConfig {
            tenants: self.tenants,
            ticks: self.ticks,
            arrivals_per_tick: self.arrivals_per_tick,
            templates: self.templates,
            drift_pct: self.drift_pct,
            ..TrafficConfig::default()
        }
    }
}

/// Instance sizes for one benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct ServeScale {
    /// Interleaved repetitions per (tier, mode); best total wall wins.
    pub reps: usize,
    /// Arrival-volume multiplier over the quick shape.
    pub volume: usize,
}

impl ServeScale {
    /// Seconds-scale instance for CI smoke tests.
    pub fn quick() -> Self {
        ServeScale { reps: 1, volume: 1 }
    }

    /// The tracked-baseline instance (`BENCH_serve.json`).
    pub fn full() -> Self {
        ServeScale { reps: 3, volume: 4 }
    }

    /// The three tenant tiers at this scale.
    pub fn tiers(&self) -> Vec<ServeTier> {
        vec![
            // The repeated-workload tier: 4 templates, zero drift — after
            // the first few arrivals every submission is a cache hit.
            ServeTier {
                tenants: 16,
                templates: 4,
                ticks: 4,
                arrivals_per_tick: 16 * self.volume,
                drift_pct: 0,
            },
            ServeTier {
                tenants: 256,
                templates: 16,
                ticks: 4,
                arrivals_per_tick: 24 * self.volume,
                drift_pct: 10,
            },
            ServeTier {
                tenants: 2048,
                templates: 32,
                ticks: 4,
                arrivals_per_tick: 32 * self.volume,
                drift_pct: 20,
            },
        ]
    }
}

/// The paper platform model the service plans against.
fn serve_model() -> CostModelParams {
    CostModelParams::from_cluster(&ClusterConfig::paper_default())
}

/// Traces for a schedule, keyed by what [`TrafficConfig::build_workload`]
/// is pure in — built once, outside the timed loop.
fn build_traces(cfg: &TrafficConfig, jobs: &[TrafficJob]) -> BTreeMap<(usize, bool), (Trace, u64)> {
    let mut traces = BTreeMap::new();
    for job in jobs {
        traces
            .entry((job.template, job.drifted))
            .or_insert_with(|| {
                let (workload, file_size) = cfg.build_workload(job);
                (collect_trace(&workload), file_size)
            });
    }
    traces
}

/// One timed replay of a schedule through a fresh service. Returns total
/// wall seconds, per-submission latencies (seconds) and the final stats.
fn replay_once(
    ctx: &SimContext,
    serve_cfg: &ServeConfig,
    jobs: &[TrafficJob],
    traces: &BTreeMap<(usize, bool), (Trace, u64)>,
) -> (f64, Vec<f64>, harl_middleware::ServeStats) {
    let mut svc = PlanningService::new(serve_model(), serve_cfg.clone());
    let mut latencies = Vec::with_capacity(jobs.len());
    let start = Instant::now();
    for job in jobs {
        let Some((trace, file_size)) = traces.get(&(job.template, job.drifted)) else {
            continue;
        };
        let t0 = Instant::now();
        let ticket = svc.submit(ctx, job.tenant, trace, *file_size);
        latencies.push(t0.elapsed().as_secs_f64());
        assert!(!ticket.rst.is_empty());
    }
    let wall = start.elapsed().as_secs_f64();
    (wall, latencies, svc.stats())
}

/// `q` ∈ [0, 1] percentile of an unsorted latency sample (nearest-rank on
/// the sorted copy; 0.0 for an empty sample).
fn percentile(latencies: &[f64], q: f64) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    let mut sorted = latencies.to_vec();
    sorted.sort_by(f64::total_cmp);
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Best-of-`reps` replay of one (tier, mode); keeps the run with the
/// lowest total wall.
fn bench_mode(
    ctx: &SimContext,
    serve_cfg: &ServeConfig,
    jobs: &[TrafficJob],
    traces: &BTreeMap<(usize, bool), (Trace, u64)>,
    reps: usize,
) -> (f64, Vec<f64>, harl_middleware::ServeStats) {
    let mut best: Option<(f64, Vec<f64>, harl_middleware::ServeStats)> = None;
    for _ in 0..reps.max(1) {
        let run = replay_once(ctx, serve_cfg, jobs, traces);
        if best.as_ref().is_none_or(|b| run.0 < b.0) {
            best = Some(run);
        }
    }
    // reps >= 1, so a run always exists.
    best.unwrap_or((0.0, Vec::new(), harl_middleware::ServeStats::default()))
}

/// Run every tier in both modes, returning the `BENCH_serve.json`
/// document.
pub fn run_serve_bench(scale: ServeScale, threads: usize, quick: bool) -> Value {
    let ctx = SimContext::new().with_threads(threads);
    let warm_cfg = ServeConfig::default();
    let cold_cfg = ServeConfig {
        plan_cache_capacity: 0,
        region_cache_capacity: 0,
        ..ServeConfig::default()
    };
    let mut tiers = Vec::new();
    for tier in scale.tiers() {
        let traffic = tier.traffic();
        let jobs = traffic.jobs();
        let traces = build_traces(&traffic, &jobs);
        let (warm_wall, warm_lat, warm_stats) =
            bench_mode(&ctx, &warm_cfg, &jobs, &traces, scale.reps);
        let (cold_wall, _, _) = bench_mode(&ctx, &cold_cfg, &jobs, &traces, scale.reps);
        let n = jobs.len() as f64;
        let warm_pps = n / warm_wall.max(1e-12);
        let cold_pps = n / cold_wall.max(1e-12);
        tiers.push(json!({
            "tenants": tier.tenants,
            "templates": tier.templates,
            "drift_pct": tier.drift_pct,
            "submissions": jobs.len(),
            "warm": json!({
                "wall_s": warm_wall,
                "plans_per_s": warm_pps,
                "p50_ms": percentile(&warm_lat, 0.50) * 1e3,
                "p99_ms": percentile(&warm_lat, 0.99) * 1e3,
                "cache_hit_rate": warm_stats.cache.hit_rate(),
                "regions_reused": warm_stats.regions_reused,
                "regions_planned": warm_stats.regions_planned,
            }),
            "cold": json!({
                "wall_s": cold_wall,
                "plans_per_s": cold_pps,
            }),
            "speedup": warm_pps / cold_pps.max(1e-12),
        }));
    }
    json!({
        "schema": SERVE_SCHEMA,
        "mode": if quick { "quick" } else { "full" },
        "threads": threads,
        "tiers": Value::Array(tiers),
    })
}

/// Deterministic warm-mode quantities of one tier that must match the
/// baseline exactly. The serve path is deterministic at any thread
/// count, so any drift means planner/cache behaviour (or the schedule)
/// changed and the baseline is stale. Returns the first mismatch.
fn tier_counter_drift(base: &Value, meas: &Value) -> Option<String> {
    let counters: [(&str, &[&str]); 3] = [
        ("submissions", &["submissions"]),
        ("warm.regions_reused", &["warm", "regions_reused"]),
        ("warm.regions_planned", &["warm", "regions_planned"]),
    ];
    for (label, path) in counters {
        let b = path.iter().fold(base, |v, k| &v[*k]).as_u64();
        let m = path.iter().fold(meas, |v, k| &v[*k]).as_u64();
        if b != m {
            return Some(format!(
                "{label} baseline {} vs measured {}",
                b.map_or_else(|| "missing".into(), |v| v.to_string()),
                m.map_or_else(|| "missing".into(), |v| v.to_string()),
            ));
        }
    }
    let b = base["warm"]["cache_hit_rate"].as_f64().unwrap_or(-1.0);
    let m = meas["warm"]["cache_hit_rate"].as_f64().unwrap_or(-1.0);
    // The hit rate is a ratio of deterministic integers; re-measuring the
    // same build reproduces it bit-for-bit. Tolerance only pads JSON
    // round-tripping.
    if (b - m).abs() > 1e-9 {
        return Some(format!("warm.cache_hit_rate baseline {b} vs measured {m}"));
    }
    None
}

/// The ci.sh serve regression guard (`harl-cli bench-serve --guard`).
///
/// Re-runs the full scale and compares each tier against the committed
/// `BENCH_serve.json`. Failures are reserved for *deterministic* drift:
/// submission counts, the warm region reuse split, and the warm cache
/// hit rate must match the baseline exactly (a drift means the schedule
/// or the planner/cache behaviour changed — regenerate the baseline).
/// Warm plans/s is compared too, but informationally: wall clock is
/// machine-dependent, so a drop past [`WARN_MAX_DROP_PCT`] only annotates
/// the tier's summary line with a warning. Returns one summary line per
/// tier on success.
pub fn run_serve_guard(baseline: &Value) -> Result<String, String> {
    let threads = usize::try_from(baseline["threads"].as_u64().unwrap_or(1)).unwrap_or(1);
    let scale = ServeScale::full();
    let expected = scale.tiers();
    let empty = Vec::new();
    let base_tiers = baseline["tiers"].as_array().unwrap_or(&empty);
    if base_tiers.len() != expected.len() {
        return Err(format!(
            "baseline has {} tiers but this build measures {}; \
             regenerate BENCH_serve.json",
            base_tiers.len(),
            expected.len()
        ));
    }
    // Validate the baseline against the deterministic schedule before
    // spending wall time measuring.
    for (base, tier) in base_tiers.iter().zip(&expected) {
        let tenants = base["tenants"].as_u64().unwrap_or(0);
        let base_subs = base["submissions"].as_u64().unwrap_or(0);
        if tenants != tier.tenants as u64 || base_subs != tier.submissions() as u64 {
            return Err(format!(
                "this build replays {} submissions for tier {} but the baseline \
                 records {base_subs} for tier {tenants}; the schedule changed — \
                 regenerate BENCH_serve.json",
                tier.submissions(),
                tier.tenants
            ));
        }
        if base["warm"]["plans_per_s"].as_f64().unwrap_or(0.0) <= 0.0 {
            return Err(format!(
                "baseline tier {tenants} is missing warm plans_per_s; \
                 regenerate BENCH_serve.json"
            ));
        }
    }
    let measured = run_serve_bench(scale, threads, false);
    let meas_tiers = measured["tiers"].as_array().unwrap_or(&empty);
    let mut lines = String::new();
    let mut breaches = Vec::new();
    for (base, meas) in base_tiers.iter().zip(meas_tiers) {
        let tenants = base["tenants"].as_u64().unwrap_or(0);
        if let Some(drift) = tier_counter_drift(base, meas) {
            breaches.push(format!(
                "tier {tenants} deterministic counters drifted ({drift}); \
                 planner/cache behaviour changed — regenerate BENCH_serve.json"
            ));
            continue;
        }
        let base_pps = base["warm"]["plans_per_s"].as_f64().unwrap_or(0.0);
        let meas_pps = meas["warm"]["plans_per_s"].as_f64().unwrap_or(0.0);
        let drop = 100.0 * (1.0 - meas_pps / base_pps.max(1e-12));
        let warn = if drop > WARN_MAX_DROP_PCT {
            format!(" [warning: >{WARN_MAX_DROP_PCT:.0}% slower than baseline; informational]")
        } else {
            String::new()
        };
        lines.push_str(&format!(
            "{tenants:>5} tenants  counters match  {meas_pps:>12.0} plans/s \
             (baseline {base_pps:>12.0}, {drop:+.1}% drop){warn}\n"
        ));
    }
    if breaches.is_empty() {
        Ok(lines)
    } else {
        Err(breaches.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_produces_the_schema_with_three_tiers() {
        let doc = run_serve_bench(ServeScale::quick(), 1, true);
        assert_eq!(doc["schema"].as_str(), Some(SERVE_SCHEMA));
        let tiers = doc["tiers"].as_array().map(Vec::len);
        assert_eq!(tiers, Some(3));
    }

    #[test]
    fn repeated_workload_tier_hits_the_cache_hard() {
        let scale = ServeScale::quick();
        let tier = scale.tiers()[0];
        let traffic = tier.traffic();
        let jobs = traffic.jobs();
        let traces = build_traces(&traffic, &jobs);
        let ctx = SimContext::new();
        let (_, _, stats) = replay_once(&ctx, &ServeConfig::default(), &jobs, &traces);
        // 4 templates, no drift: at most 4 distinct fingerprints miss.
        assert!(
            stats.cache.hit_rate() > 0.9,
            "expected >90% hit rate, got {:.2}",
            stats.cache.hit_rate()
        );
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let lat = [0.004, 0.001, 0.002, 0.003];
        assert_eq!(percentile(&lat, 0.0), 0.001);
        assert_eq!(percentile(&lat, 1.0), 0.004);
        assert_eq!(percentile(&lat, 0.5), 0.003);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn counter_drift_ignores_wall_clock_and_flags_counters() {
        let tier = |subs: u64, reused: u64, planned: u64, hit: f64, pps: f64| {
            json!({
                "tenants": 16,
                "submissions": subs,
                "warm": json!({
                    "plans_per_s": pps,
                    "cache_hit_rate": hit,
                    "regions_reused": reused,
                    "regions_planned": planned,
                }),
            })
        };
        let base = tier(64, 10, 4, 0.9375, 50_000.0);
        // A 10x wall-clock slowdown alone is NOT drift.
        assert_eq!(
            tier_counter_drift(&base, &tier(64, 10, 4, 0.9375, 5_000.0)),
            None
        );
        // Any deterministic counter moving is.
        let drift = tier_counter_drift(&base, &tier(64, 10, 5, 0.9375, 50_000.0));
        assert!(
            drift
                .as_deref()
                .is_some_and(|d| d.contains("regions_planned")),
            "{drift:?}"
        );
        let drift = tier_counter_drift(&base, &tier(64, 10, 4, 0.5, 50_000.0));
        assert!(
            drift
                .as_deref()
                .is_some_and(|d| d.contains("cache_hit_rate")),
            "{drift:?}"
        );
    }

    #[test]
    fn guard_rejects_a_schedule_change() {
        // A quick-scale baseline replays far fewer submissions than the
        // full schedule the guard validates against, so the guard must
        // refuse before spending wall time measuring.
        let baseline = run_serve_bench(ServeScale::quick(), 1, true);
        let err = run_serve_guard(&baseline).unwrap_err();
        assert!(err.contains("regenerate BENCH_serve.json"), "{err}");
    }
}
