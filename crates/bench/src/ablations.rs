//! Ablations of the design choices DESIGN.md calls out.
//!
//! * [`abl_region`] — what does *region-level* adaptation buy over
//!   file-level and segment-level schemes? (2×2 grid: server-aware ×
//!   workload-aware.)
//! * [`abl_step`] — the grid-step precision/overhead dial of Algorithm 2.
//! * [`abl_model`] — calibrated vs ground-truth model parameters, and how
//!   often the paper's Fig. 5 case-(a) table diverges from exact geometry.
//! * [`abl_profiles`] — the K-profile future-work extension on a
//!   three-class cluster (HDD + SSD + NVMe).
//! * [`abl_straggler`] — fault injection: how healthy-calibration plans
//!   degrade when a server turns into a straggler.
//! * [`abl_multiapp`] — two applications sharing the cluster, each planned
//!   separately (the paper's Sec. IV-D discussion).

use crate::figures::FigureResult;
use crate::harness::{improvement_pct, measure, PolicyOutcome, Scale};
use harl_core::{
    case_a_params, server_loads, CostModelParams, FixedPolicy, HarlPolicy, LayoutPolicy,
    MultiProfileModel, MultiProfileOptimizer, OptimizerConfig, SegmentPolicy, ServerLevelPolicy,
};
use harl_devices::{nvme_2020_preset, CalibrationConfig, OpKind};
use harl_middleware::collect_trace_lowered;
use harl_pfs::{simulate, ClientProgram, ClusterConfig, FileLayout, PhysRequest};
use harl_simcore::SimRng;
use harl_workloads::MultiRegionIorConfig;
use serde_json::{json, Value};

/// Region-awareness ablation on the non-uniform (Fig. 11-style) workload:
/// fixed (neither), segment-level (workload-aware only), server-level
/// (heterogeneity-aware only), HARL (both).
pub fn abl_region(scale: &Scale) -> FigureResult {
    let cluster = ClusterConfig::paper_default();
    let model = CostModelParams::from_cluster_calibrated(&cluster, &CalibrationConfig::default());
    let factor = scale.ior_file as f64 / (16.0 * 1024.0 * 1024.0 * 1024.0);
    let opt = OptimizerConfig {
        max_requests_per_eval: scale.opt_sample,
        ..OptimizerConfig::default()
    };

    let policies: Vec<Box<dyn LayoutPolicy>> = vec![
        Box::new(FixedPolicy::new(64 * 1024)),
        Box::new(SegmentPolicy {
            model: model.clone().into(),
            segment_size: 64 << 20,
            optimizer: opt.clone(),
        }),
        Box::new(ServerLevelPolicy {
            model: model.clone().into(),
            optimizer: opt.clone(),
        }),
        Box::new({
            let mut p = HarlPolicy::new(model.clone());
            p.optimizer = opt.clone();
            p
        }),
    ];

    let mut text =
        String::from("\n== Ablation: region-level adaptation (non-uniform workload) ==\n");
    let mut json_parts = serde_json::Map::new();
    for op in [OpKind::Read, OpKind::Write] {
        let w = MultiRegionIorConfig::paper_default(op, factor).build();
        let outcomes: Vec<PolicyOutcome> = policies
            .iter()
            .map(|p| measure(&cluster, p.as_ref(), &w).0)
            .collect();
        let fixed = outcomes[0].throughput_mib_s;
        text.push_str(&format!("-- {op} --\n"));
        for o in &outcomes {
            text.push_str(&format!(
                "{:<14} {:>10.1} MiB/s  ({:+.1}% vs fixed)  regions={}\n",
                o.label,
                o.throughput_mib_s,
                improvement_pct(o.throughput_mib_s, fixed),
                o.regions
            ));
        }
        let harl = outcomes.last().map_or(0.0, |o| o.throughput_mib_s);
        let server_level = outcomes[2].throughput_mib_s;
        text.push_str(&format!(
            "region-level contribution on top of server-level: {:+.1}%\n",
            improvement_pct(harl, server_level)
        ));
        json_parts.insert(
            op.to_string(),
            serde_json::to_value(&outcomes).unwrap_or(Value::Null),
        );
    }
    json_parts.insert("figure".into(), json!("abl-region"));
    FigureResult {
        text,
        json: Value::Object(json_parts),
    }
}

/// Grid-step ablation: precision vs analysis cost of Algorithm 2.
pub fn abl_step(scale: &Scale) -> FigureResult {
    let cluster = ClusterConfig::paper_default();
    let model = CostModelParams::from_cluster_calibrated(&cluster, &CalibrationConfig::default());
    let w = harl_workloads::IorConfig {
        processes: 16,
        request_size: 512 * 1024,
        file_size: scale.ior_file,
        op: OpKind::Read,
        order: harl_workloads::AccessOrder::Random,
        seed: 0x10,
    }
    .build();

    let mut text = String::from("\n== Ablation: Algorithm 2 grid step ==\n");
    let mut rows = Vec::new();
    for step_k in [4u64, 16, 64, 128] {
        let mut policy = HarlPolicy::new(model.clone());
        policy.optimizer = OptimizerConfig {
            step: step_k * 1024,
            max_requests_per_eval: scale.opt_sample,
            ..OptimizerConfig::default()
        };
        let started = std::time::Instant::now();
        let (outcome, _, _) = measure(&cluster, &policy, &w);
        let plan_wall = started.elapsed().as_secs_f64();
        text.push_str(&format!(
            "step {:>4}K: {:>7.1} MiB/s, (h, s) = ({}, {}) KiB, wall {:.2}s\n",
            step_k,
            outcome.throughput_mib_s,
            outcome.first_region.0 / 1024,
            outcome.first_region.1 / 1024,
            plan_wall
        ));
        rows.push(json!({
            "step_k": step_k,
            "throughput_mib_s": outcome.throughput_mib_s,
            "h": outcome.first_region.0,
            "s": outcome.first_region.1,
            "wall_s": plan_wall,
        }));
    }
    FigureResult {
        text,
        json: json!({"figure": "abl-step", "rows": rows}),
    }
}

/// Model-fidelity ablation: (a) HARL planned from calibrated vs
/// ground-truth parameters; (b) how often the paper's case-(a) table
/// matches exact geometry over random inputs.
pub fn abl_model(scale: &Scale) -> FigureResult {
    let cluster = ClusterConfig::paper_default();
    let w = harl_workloads::IorConfig {
        processes: 16,
        request_size: 512 * 1024,
        file_size: scale.ior_file,
        op: OpKind::Read,
        order: harl_workloads::AccessOrder::Random,
        seed: 0x10,
    }
    .build();

    let truth = CostModelParams::from_cluster(&cluster);
    let calibrated =
        CostModelParams::from_cluster_calibrated(&cluster, &CalibrationConfig::default());
    let (o_truth, _, _) = measure(&cluster, &HarlPolicy::new(truth), &w);
    let (o_cal, _, _) = measure(&cluster, &HarlPolicy::new(calibrated), &w);

    // Case-table agreement over random (offset, size, h, s) draws.
    let mut rng = SimRng::new(0xAB1);
    let mut applicable = 0u64;
    let mut agree = 0u64;
    let trials = 20_000;
    for _ in 0..trials {
        let h = rng.uniform_u64(1, 64) * 4096;
        let s = rng.uniform_u64(1, 64) * 4096;
        let offset = rng.uniform_u64(0, 1 << 30);
        let size = rng.uniform_u64(1, 512) * 4096;
        if let Some(table) = case_a_params(offset, size, 6, h, 2, s) {
            applicable += 1;
            if table == server_loads(offset, size, 6, h, 2, s) {
                agree += 1;
            }
        }
    }
    let agree_pct = 100.0 * agree as f64 / applicable.max(1) as f64;

    let text = format!(
        "\n== Ablation: cost-model fidelity ==\n\
         HARL from ground-truth params: {:.1} MiB/s, (h, s) = ({}, {}) KiB\n\
         HARL from calibrated params:   {:.1} MiB/s, (h, s) = ({}, {}) KiB\n\
         (the Analysis Phase measurement loses essentially nothing)\n\
         Paper Fig. 5 case-(a) table vs exact geometry: {:.1}% agreement \
         over {} applicable random requests\n\
         (divergence is the documented n_b < n_e under-count; the optimizer \
         uses exact geometry)\n",
        o_truth.throughput_mib_s,
        o_truth.first_region.0 / 1024,
        o_truth.first_region.1 / 1024,
        o_cal.throughput_mib_s,
        o_cal.first_region.0 / 1024,
        o_cal.first_region.1 / 1024,
        agree_pct,
        applicable,
    );
    FigureResult {
        text,
        json: json!({
            "figure": "abl-model",
            "truth_mib_s": o_truth.throughput_mib_s,
            "calibrated_mib_s": o_cal.throughput_mib_s,
            "case_a_agreement_pct": agree_pct,
            "case_a_applicable": applicable,
        }),
    }
}

/// Multi-application ablation — the paper's Sec. IV-D discussion: two
/// applications with different patterns share the cluster, each planned
/// separately by HARL ("we may apply our method on different workloads
/// separately").
pub fn abl_multiapp(scale: &Scale) -> FigureResult {
    use harl_middleware::run_shared;
    let cluster = ClusterConfig::paper_default();
    let ccfg = harl_middleware::CollectiveConfig::default();
    let size = scale.ior_file / 4;

    let mk = |req: u64, seed: u64| {
        harl_workloads::IorConfig {
            processes: 8,
            request_size: req,
            file_size: size,
            op: OpKind::Read,
            order: harl_workloads::AccessOrder::Random,
            seed,
        }
        .build()
    };
    let app_big = mk(512 * 1024, 1);
    let app_small = mk(128 * 1024, 2);

    // Per-app plans (each from its own trace), vs the shared default.
    let harl = crate::harness::harl_policy(&cluster, scale);
    let plan = |w: &harl_middleware::Workload| {
        let trace = collect_trace_lowered(&cluster, w, &ccfg);
        harl.plan(&crate::harness::context(), &trace, w.extent().max(1))
    };
    let rst_big = plan(&app_big);
    let rst_small = plan(&app_small);
    let default_big = FixedPolicy::new(64 * 1024).plan(
        &crate::harness::context(),
        &harl_core::Trace::new(),
        size,
    );
    let default_small = default_big.clone();

    let shared_default = run_shared(
        &crate::harness::context(),
        &cluster,
        &[(&default_big, &app_big), (&default_small, &app_small)],
        &ccfg,
    );
    let shared_harl = run_shared(
        &crate::harness::context(),
        &cluster,
        &[(&rst_big, &app_big), (&rst_small, &app_small)],
        &ccfg,
    );

    let mut text = String::from(
        "
== Ablation: two applications sharing the cluster (Sec. IV-D) ==
",
    );
    let mut rows = Vec::new();
    for (label, report) in [
        ("default-64K", &shared_default),
        ("HARL-per-app", &shared_harl),
    ] {
        text.push_str(&format!(
            "{:<14} app1(512K): {:>7.1} MiB/s   app2(128K): {:>7.1} MiB/s   cluster: {:>7.1} MiB/s
",
            label,
            report.per_app[0].throughput_mib_s,
            report.per_app[1].throughput_mib_s,
            report.combined.throughput_mib_s(),
        ));
        rows.push(json!({
            "label": label,
            "app1_mib_s": report.per_app[0].throughput_mib_s,
            "app2_mib_s": report.per_app[1].throughput_mib_s,
            "cluster_mib_s": report.combined.throughput_mib_s(),
        }));
    }
    let gain = improvement_pct(
        shared_harl.combined.throughput_mib_s(),
        shared_default.combined.throughput_mib_s(),
    );
    text.push_str(&format!(
        "per-app HARL planning under contention: {gain:+.1}% cluster throughput
"
    ));
    FigureResult {
        text,
        json: json!({"figure": "abl-multiapp", "rows": rows}),
    }
}

/// Straggler-robustness ablation: HARL plans from a healthy calibration;
/// how do the plans degrade when one server turns into a straggler at run
/// time? (Fault injection via [`harl_pfs::Degradation`].)
pub fn abl_straggler(scale: &Scale) -> FigureResult {
    use harl_pfs::Degradation;
    let w = harl_workloads::IorConfig {
        processes: 16,
        request_size: 512 * 1024,
        file_size: scale.ior_file,
        op: OpKind::Read,
        order: harl_workloads::AccessOrder::Random,
        seed: 0x10,
    }
    .build();

    // Plan both layouts once, on the healthy cluster.
    let healthy = ClusterConfig::paper_default();
    let harl = crate::harness::harl_policy(&healthy, scale);
    let trace = collect_trace_lowered(&healthy, &w, &harl_middleware::CollectiveConfig::default());
    let harl_rst = harl.plan(&crate::harness::context(), &trace, w.extent().max(1));
    let default_rst =
        FixedPolicy::new(64 * 1024).plan(&crate::harness::context(), &trace, w.extent().max(1));

    let scenarios: Vec<(&str, ClusterConfig)> = vec![
        ("healthy", healthy.clone()),
        (
            "hserver#0 4x slow",
            ClusterConfig::paper_default().with_degradation(Degradation::permanent(0, 4.0)),
        ),
        (
            "sserver#6 4x slow",
            ClusterConfig::paper_default().with_degradation(Degradation::permanent(6, 4.0)),
        ),
    ];

    let mut text =
        String::from("\n== Ablation: straggler robustness (plans from healthy calibration) ==\n");
    text.push_str(&format!(
        "{:<20} {:>14} {:>14} {:>12}\n",
        "scenario", "default MiB/s", "HARL MiB/s", "HARL adv."
    ));
    let mut rows = Vec::new();
    for (label, cluster) in &scenarios {
        let d = harl_middleware::run_workload(
            &crate::harness::context(),
            cluster,
            &default_rst,
            &w,
            &harl_middleware::CollectiveConfig::default(),
        )
        .throughput_mib_s();
        let h = harl_middleware::run_workload(
            &crate::harness::context(),
            cluster,
            &harl_rst,
            &w,
            &harl_middleware::CollectiveConfig::default(),
        )
        .throughput_mib_s();
        text.push_str(&format!(
            "{:<20} {:>14.1} {:>14.1} {:>11.1}%\n",
            label,
            d,
            h,
            improvement_pct(h, d)
        ));
        rows.push(json!({"scenario": label, "default_mib_s": d, "harl_mib_s": h}));
    }
    text.push_str(
        "note: HARL concentrates bytes on SServers, so an SServer straggler\n\
         erodes its advantage far more than an HServer straggler — the\n\
         motivation for the on-line monitor (harl-core::online), which would\n\
         re-plan once the drifted service times are re-calibrated.\n",
    );
    FigureResult {
        text,
        json: json!({"figure": "abl-straggler", "rows": rows}),
    }
}

/// K-profile ablation: a three-class cluster (4 HDD + 2 SSD + 2 NVMe).
/// Compares fixed 64 KiB striping, the best two-class varied layout
/// (treating SSD and NVMe as one class), and the K-profile coordinate
/// descent with one width per class.
pub fn abl_profiles(scale: &Scale) -> FigureResult {
    let cluster = ClusterConfig::hybrid(4, 2).with_extra_class(2, nvme_2020_preset());
    let w = harl_workloads::IorConfig {
        processes: 16,
        request_size: 512 * 1024,
        file_size: scale.ior_file / 2,
        op: OpKind::Read,
        order: harl_workloads::AccessOrder::Random,
        seed: 0x10,
    }
    .build();
    let trace = collect_trace_lowered(&cluster, &w, &harl_middleware::CollectiveConfig::default());
    let sorted = trace.sorted_by_offset();
    let sample: Vec<(u64, u64, OpKind)> = sorted
        .iter()
        .step_by(sorted.len().div_ceil(scale.opt_sample).max(1))
        .map(|r| (r.offset, r.size, r.op))
        .collect();

    // Candidate layouts as per-class widths [hdd, ssd, nvme].
    let model = MultiProfileModel::from_cluster(&cluster);
    let optimizer = MultiProfileOptimizer::new(model.clone());
    let (k_widths, _) = optimizer.optimize(&sample, 512 * 1024);

    // Two-class approximation: SSD and NVMe share one width — optimise the
    // pair on a pseudo two-class model (SSD params for the fast class),
    // then apply that width to both fast classes.
    let pair_model = CostModelParams::new(
        4,
        4,
        &cluster.network,
        &cluster.classes[0].profile,
        &cluster.classes[1].profile,
    );
    let reqs = harl_core::RegionRequests::new(&sorted, 0);
    let pair = harl_core::optimize_region(
        &crate::harness::context(),
        &pair_model,
        &reqs,
        512 * 1024,
        &OptimizerConfig {
            max_requests_per_eval: scale.opt_sample,
            ..OptimizerConfig::default()
        },
        0,
    );

    let layouts: Vec<(String, Vec<u64>)> = vec![
        ("fixed-64K".into(), vec![64 * 1024, 64 * 1024, 64 * 1024]),
        ("two-class".into(), vec![pair.h(), pair.s(), pair.s()]),
        ("k-profile".into(), k_widths.clone()),
    ];

    let mut text = String::from("\n== Ablation: K server profiles (4 HDD + 2 SSD + 2 NVMe) ==\n");
    let mut rows = Vec::new();
    let mut baseline = 0.0;
    for (label, widths) in &layouts {
        let mut pairs = Vec::new();
        let mut class_base = 0usize;
        for (class, &width) in cluster.classes.iter().zip(widths) {
            for sid in class_base..class_base + class.count {
                pairs.push((sid, width));
            }
            class_base += class.count;
        }
        let layout = FileLayout::custom(pairs);
        // Run the workload directly against the single custom file.
        let programs: Vec<ClientProgram> = w
            .ranks
            .iter()
            .map(|rank| {
                let mut p = ClientProgram::new();
                for step in &rank.steps {
                    if let harl_middleware::LogicalStep::Independent(reqs) = step {
                        for r in reqs {
                            p.push_request(PhysRequest {
                                file: 0,
                                op: r.op,
                                offset: r.offset,
                                size: r.size,
                            });
                        }
                    }
                }
                p
            })
            .collect();
        let report = simulate(&crate::harness::context(), &cluster, &[layout], &programs);
        let tput = report.throughput_mib_s();
        if label == "fixed-64K" {
            baseline = tput;
        }
        text.push_str(&format!(
            "{:<10} widths {:>4}/{:>4}/{:>4} KiB: {:>7.1} MiB/s ({:+.1}% vs fixed)\n",
            label,
            widths[0] / 1024,
            widths[1] / 1024,
            widths[2] / 1024,
            tput,
            improvement_pct(tput, baseline)
        ));
        rows.push(json!({"label": label, "widths": widths, "throughput_mib_s": tput}));
    }
    text.push_str(
        "note: when the K-profile descent loads the fastest class heavily, its\n\
         GbE NIC (not its device) becomes the bound — a contention effect the\n\
         max-decomposed cost model cannot see, so the two-class approximation\n\
         can win on NIC-bound configurations. Faster devices only pay off up\n\
         to the server's network rate.\n",
    );
    FigureResult {
        text,
        json: json!({"figure": "abl-profiles", "rows": rows}),
    }
}
