//! `harl-cli` — operate on HARL's on-disk artifacts.
//!
//! The paper's implementation stores trace files, the RST and the R2F next
//! to the application. This tool inspects and produces those artifacts:
//!
//! ```text
//! harl-cli trace-info  <trace.jsonl>
//! harl-cli plan        <trace.jsonl> --file-size BYTES [--hservers M]
//!                      [--sservers N] [--out rst.json] [--region-size B]
//! harl-cli inspect     <rst.json>
//! harl-cli simulate    <trace.jsonl> <rst.json> [--hservers M] [--sservers N]
//! ```
//!
//! Sizes accept suffixes `K`, `M`, `G` (binary).

use harl_core::{
    divide_regions, size_histogram, summarize, summarize_records, CostModelParams, HarlPolicy,
    LayoutPolicy, RegionDivisionConfig, RegionStripeTable, Trace,
};
use harl_devices::CalibrationConfig;
use harl_middleware::{run_workload, CollectiveConfig};
use harl_pfs::ClusterConfig;
use harl_simcore::ByteSize;
use harl_workloads::replay;
use std::path::{Path, PathBuf};

fn usage() -> ! {
    eprintln!(
        "usage:\n  harl-cli trace-info <trace.jsonl>\n  harl-cli plan <trace.jsonl> \
         --file-size BYTES [--hservers M] [--sservers N] [--out rst.json] [--region-size B]\n  \
         harl-cli inspect <rst.json>\n  harl-cli simulate <trace.jsonl> <rst.json> \
         [--hservers M] [--sservers N]"
    );
    std::process::exit(2);
}

/// Parse "64K" / "16M" / "2G" / plain bytes.
fn parse_size(s: &str) -> Option<u64> {
    let s = s.trim();
    let (num, mult) = match s.chars().last()? {
        'K' | 'k' => (&s[..s.len() - 1], 1024u64),
        'M' | 'm' => (&s[..s.len() - 1], 1 << 20),
        'G' | 'g' => (&s[..s.len() - 1], 1 << 30),
        _ => (s, 1),
    };
    num.parse::<u64>().ok().map(|n| n * mult)
}

struct Opts {
    positional: Vec<String>,
    file_size: Option<u64>,
    hservers: usize,
    sservers: usize,
    out: Option<PathBuf>,
    region_size: Option<u64>,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut opts = Opts {
        positional: Vec::new(),
        file_size: None,
        hservers: 6,
        sservers: 2,
        out: None,
        region_size: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--file-size" => {
                opts.file_size = it.next().and_then(|v| parse_size(v));
                if opts.file_size.is_none() {
                    usage();
                }
            }
            "--hservers" => {
                opts.hservers = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--sservers" => {
                opts.sservers = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--out" => opts.out = it.next().map(PathBuf::from),
            "--region-size" => {
                opts.region_size = it.next().and_then(|v| parse_size(v));
                if opts.region_size.is_none() {
                    usage();
                }
            }
            other if other.starts_with("--") => usage(),
            other => opts.positional.push(other.to_string()),
        }
    }
    opts
}

fn load_trace(path: &str) -> Trace {
    Trace::load_from_path(Path::new(path)).unwrap_or_else(|e| {
        eprintln!("cannot read trace {path}: {e}");
        std::process::exit(1);
    })
}

fn load_rst(path: &str) -> RegionStripeTable {
    RegionStripeTable::load_from_path(Path::new(path)).unwrap_or_else(|e| {
        eprintln!("cannot read RST {path}: {e}");
        std::process::exit(1);
    })
}

fn cmd_trace_info(opts: &Opts) {
    let [path] = opts.positional.as_slice() else { usage() };
    let trace = load_trace(path);
    let summary = summarize(&trace);
    println!("{}", summary.render());
    println!("\nrequest-size histogram:");
    for (upper, count) in size_histogram(&trace).nonzero_buckets() {
        println!("  <= {:>10}: {count}", ByteSize(upper + 1).to_string());
    }
    // Show what Algorithm 1 would do.
    let sorted = trace.sorted_by_offset();
    let file_size = opts.file_size.unwrap_or_else(|| trace.extent().max(1));
    let mut cfg = RegionDivisionConfig::default();
    if let Some(rs) = opts.region_size {
        cfg.fixed_region_size = rs;
    }
    let regions = divide_regions(&sorted, file_size, &cfg);
    println!("\nAlgorithm 1 division ({} region(s)):", regions.len());
    for (i, (region, summary)) in regions
        .iter()
        .zip(harl_core::analysis::summarize_regions(&sorted, &regions))
        .enumerate()
    {
        println!(
            "  region {i} [{}, {}): {}",
            ByteSize(region.offset),
            ByteSize(region.end),
            summary.render()
        );
    }
}

fn cmd_plan(opts: &Opts) {
    let [path] = opts.positional.as_slice() else { usage() };
    let trace = load_trace(path);
    let file_size = opts
        .file_size
        .unwrap_or_else(|| trace.extent().max(1));
    let cluster = ClusterConfig::hybrid(opts.hservers, opts.sservers);
    let model =
        CostModelParams::from_cluster_calibrated(&cluster, &CalibrationConfig::default());
    let mut policy = HarlPolicy::new(model);
    if let Some(rs) = opts.region_size {
        policy.division.fixed_region_size = rs;
    }
    let rst = policy.plan(&trace, file_size);
    print_rst(&rst);
    if let Some(out) = &opts.out {
        rst.save_to_path(out).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", out.display());
            std::process::exit(1);
        });
        println!("wrote {}", out.display());
    }
}

fn print_rst(rst: &RegionStripeTable) {
    println!(
        "{:<8} {:>14} {:>14} {:>10} {:>10}",
        "region", "offset", "length", "h", "s"
    );
    for (i, e) in rst.entries().iter().enumerate() {
        println!(
            "{:<8} {:>14} {:>14} {:>10} {:>10}",
            i,
            ByteSize(e.offset).to_string(),
            ByteSize(e.len).to_string(),
            ByteSize(e.h).to_string(),
            ByteSize(e.s).to_string()
        );
    }
}

fn cmd_inspect(opts: &Opts) {
    let [path] = opts.positional.as_slice() else { usage() };
    let rst = load_rst(path);
    print_rst(&rst);
    println!("file size: {}", ByteSize(rst.file_size()));
}

fn cmd_simulate(opts: &Opts) {
    let [trace_path, rst_path] = opts.positional.as_slice() else { usage() };
    let trace = load_trace(trace_path);
    let rst = load_rst(rst_path);
    let cluster = ClusterConfig::hybrid(opts.hservers, opts.sservers);
    let workload = replay(&trace);
    let report = run_workload(&cluster, &rst, &workload, &CollectiveConfig::default());
    println!(
        "replayed {} requests: {:.1} MiB/s over {}",
        report.requests_completed,
        report.throughput_mib_s(),
        report.makespan
    );
    println!("per-server busy (normalised): {:?}", report
        .normalized_server_times()
        .iter()
        .map(|x| (x * 100.0).round() / 100.0)
        .collect::<Vec<_>>());
    let summary = summarize_records(trace.records());
    println!("trace pattern: {}", summary.pattern_label());

    // A coarse utilisation sparkline per server over the run.
    let blocks = [' ', '.', ':', '-', '=', '#'];
    for s in &report.servers {
        let util = s.busy_series.utilisation();
        let active = (report.makespan.as_nanos() / s.busy_series.width.as_nanos() + 1)
            .min(util.len() as u64) as usize;
        let line: String = util[..active]
            .iter()
            .map(|&u| blocks[((u.min(1.0)) * (blocks.len() - 1) as f64).round() as usize])
            .collect();
        println!("server {:>2} busy |{line}|", s.id);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else { usage() };
    let opts = parse_opts(rest);
    match cmd.as_str() {
        "trace-info" => cmd_trace_info(&opts),
        "plan" => cmd_plan(&opts),
        "inspect" => cmd_inspect(&opts),
        "simulate" => cmd_simulate(&opts),
        _ => usage(),
    }
}
