//! `harl-cli` — operate on HARL's on-disk artifacts.
//!
//! The paper's implementation stores trace files, the RST and the R2F next
//! to the application. This tool inspects and produces those artifacts:
//!
//! ```text
//! harl-cli trace-info  <trace.jsonl>
//! harl-cli plan        <trace.jsonl> --file-size BYTES [--hservers M]
//!                      [--sservers N] [--out rst.json] [--region-size B]
//! harl-cli inspect     <rst.json>
//! harl-cli simulate    <trace.jsonl> <rst.json> [--hservers M] [--sservers N]
//!                      [--metrics-out metrics.jsonl] [--trace-out trace.json]
//!                      [--sample-ms MS]
//! harl-cli bench-planning [--json] [--quick] [--threads T] [--guard baseline.json]
//!                      [--out path]
//! harl-cli bench-sim   [--json] [--quick] [--guard baseline.json] [--out path]
//! harl-cli bench-serve [--json] [--quick] [--threads T] [--guard baseline.json]
//!                      [--out path]
//! harl-cli report      <metrics.jsonl>
//! harl-cli run --scenario scenario.json [--out report.json] [--seed S]
//!              [--threads T] [--metrics-out metrics.jsonl] [--sample-ms MS]
//! harl-cli serve --scenario serve.json [--out report.json] [--threads T]
//!              [--metrics-out metrics.jsonl]
//! harl-cli lint [--root DIR] [--json]
//! harl-cli audit-determinism [--root DIR] [--fast]
//! ```
//!
//! Sizes accept suffixes `K`, `M`, `G` (binary).
//!
//! `--metrics-out` records the simulation (per-server queue-wait and
//! service-time histograms, per-region routing counters, per-region
//! predicted-vs-actual cost residuals, request spans) and writes it as
//! JSONL; `--trace-out` writes the request spans as a Chrome trace-event
//! file for `chrome://tracing` / Perfetto. `--sample-ms` additionally
//! samples per-server queue depth, utilisation and in-flight bytes every
//! MS simulated milliseconds (it needs `--metrics-out` or `--trace-out`
//! to have somewhere to land). `report` renders a recorded metrics JSONL
//! back into a per-server utilisation / queue summary.

// Bin-crate panic hygiene (ratcheted to deny in PR 8): failures exit
// with a message, never a backtrace.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

use harl_core::{
    divide_regions, size_histogram, summarize, summarize_records, CostModelParams, HarlPolicy,
    LayoutPolicy, RegionDivisionConfig, RegionStripeTable, Trace,
};
use harl_devices::{CalibrationConfig, OpKind};
use harl_middleware::{run_workload, CollectiveConfig};
use harl_pfs::ClusterConfig;
use harl_repro::scenario::{Scenario, ServeSpec};
use harl_simcore::metrics::{MemoryRecorder, Recorder};
use harl_simcore::{registry, ByteSize, SimContext, SimNanos};
use harl_workloads::replay;
use std::io::BufWriter;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage:\n  harl-cli trace-info <trace.jsonl>\n  harl-cli plan <trace.jsonl> \
         --file-size BYTES [--hservers M] [--sservers N] [--out rst.json] [--region-size B]\n  \
         harl-cli inspect <rst.json>\n  harl-cli simulate <trace.jsonl> <rst.json> \
         [--hservers M] [--sservers N] [--metrics-out metrics.jsonl] [--trace-out trace.json] \
         [--sample-ms MS]\n  \
         harl-cli bench-planning [--json] [--quick] [--threads T] [--guard baseline.json] [--out path]\n  \
         harl-cli bench-sim [--json] [--quick] [--guard baseline.json] [--out path]\n  \
         harl-cli bench-serve [--json] [--quick] [--threads T] [--guard baseline.json] [--out path]\n  \
         harl-cli report <metrics.jsonl>\n  \
         harl-cli run --scenario scenario.json [--out report.json] [--seed S] [--threads T] \
         [--metrics-out metrics.jsonl] [--sample-ms MS]\n  \
         harl-cli serve --scenario serve.json [--out report.json] [--threads T] \
         [--metrics-out metrics.jsonl]\n  \
         harl-cli lint [--root DIR] [--json]\n  \
         harl-cli audit-determinism [--root DIR] [--fast]"
    );
    std::process::exit(2);
}

/// Parse "64K" / "16M" / "2G" / plain bytes.
fn parse_size(s: &str) -> Option<u64> {
    let s = s.trim();
    let (num, mult) = match s.chars().last()? {
        'K' | 'k' => (&s[..s.len() - 1], 1024u64),
        'M' | 'm' => (&s[..s.len() - 1], 1 << 20),
        'G' | 'g' => (&s[..s.len() - 1], 1 << 30),
        _ => (s, 1),
    };
    num.parse::<u64>().ok().map(|n| n * mult)
}

struct Opts {
    positional: Vec<String>,
    file_size: Option<u64>,
    hservers: usize,
    sservers: usize,
    out: Option<PathBuf>,
    region_size: Option<u64>,
    metrics_out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    json: bool,
    quick: bool,
    fast: bool,
    threads: Option<usize>,
    scenario: Option<PathBuf>,
    seed: Option<u64>,
    root: Option<PathBuf>,
    sample_ms: Option<f64>,
    guard: Option<PathBuf>,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut opts = Opts {
        positional: Vec::new(),
        file_size: None,
        hservers: 6,
        sservers: 2,
        out: None,
        region_size: None,
        metrics_out: None,
        trace_out: None,
        json: false,
        quick: false,
        fast: false,
        threads: None,
        scenario: None,
        seed: None,
        root: None,
        sample_ms: None,
        guard: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--file-size" => {
                opts.file_size = it.next().and_then(|v| parse_size(v));
                if opts.file_size.is_none() {
                    usage();
                }
            }
            "--hservers" => {
                opts.hservers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--sservers" => {
                opts.sservers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => opts.out = it.next().map(PathBuf::from),
            "--metrics-out" => {
                opts.metrics_out = Some(it.next().map(PathBuf::from).unwrap_or_else(|| usage()))
            }
            "--trace-out" => {
                opts.trace_out = Some(it.next().map(PathBuf::from).unwrap_or_else(|| usage()))
            }
            "--json" => opts.json = true,
            "--quick" => opts.quick = true,
            "--fast" => opts.fast = true,
            "--threads" => {
                opts.threads = it.next().and_then(|v| v.parse().ok());
                if opts.threads.is_none() {
                    usage();
                }
            }
            "--scenario" => {
                opts.scenario = Some(it.next().map(PathBuf::from).unwrap_or_else(|| usage()))
            }
            "--seed" => {
                opts.seed = it.next().and_then(|v| v.parse().ok());
                if opts.seed.is_none() {
                    usage();
                }
            }
            "--root" => opts.root = Some(it.next().map(PathBuf::from).unwrap_or_else(|| usage())),
            "--guard" => opts.guard = Some(it.next().map(PathBuf::from).unwrap_or_else(|| usage())),
            "--sample-ms" => {
                opts.sample_ms = it.next().and_then(|v| v.parse().ok());
                match opts.sample_ms {
                    Some(ms) if ms > 0.0 && ms.is_finite() => {}
                    _ => usage(),
                }
            }
            "--region-size" => {
                opts.region_size = it.next().and_then(|v| parse_size(v));
                if opts.region_size.is_none() {
                    usage();
                }
            }
            other if other.starts_with("--") => usage(),
            other => opts.positional.push(other.to_string()),
        }
    }
    opts
}

fn load_trace(path: &str) -> Trace {
    Trace::load_from_path(Path::new(path)).unwrap_or_else(|e| {
        eprintln!("cannot read trace {path}: {e}");
        std::process::exit(1);
    })
}

fn load_rst(path: &str) -> RegionStripeTable {
    RegionStripeTable::load_from_path(Path::new(path)).unwrap_or_else(|e| {
        eprintln!("cannot read RST {path}: {e}");
        std::process::exit(1);
    })
}

fn cmd_trace_info(opts: &Opts) {
    let [path] = opts.positional.as_slice() else {
        usage()
    };
    let trace = load_trace(path);
    let summary = summarize(&trace);
    println!("{}", summary.render());
    println!("\nrequest-size histogram:");
    for (upper, count) in size_histogram(&trace).nonzero_buckets() {
        println!("  <= {:>10}: {count}", ByteSize(upper + 1).to_string());
    }
    // Show what Algorithm 1 would do.
    let sorted = trace.sorted_by_offset();
    let file_size = opts.file_size.unwrap_or_else(|| trace.extent().max(1));
    let mut cfg = RegionDivisionConfig::default();
    if let Some(rs) = opts.region_size {
        cfg.fixed_region_size = rs;
    }
    let regions = divide_regions(&sorted, file_size, &cfg);
    println!("\nAlgorithm 1 division ({} region(s)):", regions.len());
    for (i, (region, summary)) in regions
        .iter()
        .zip(harl_core::analysis::summarize_regions(&sorted, &regions))
        .enumerate()
    {
        println!(
            "  region {i} [{}, {}): {}",
            ByteSize(region.offset),
            ByteSize(region.end),
            summary.render()
        );
    }
}

fn cmd_plan(opts: &Opts) {
    let [path] = opts.positional.as_slice() else {
        usage()
    };
    let trace = load_trace(path);
    let file_size = opts.file_size.unwrap_or_else(|| trace.extent().max(1));
    let cluster = ClusterConfig::hybrid(opts.hservers, opts.sservers);
    let model = CostModelParams::from_cluster_calibrated(&cluster, &CalibrationConfig::default());
    let mut policy = HarlPolicy::new(model);
    if let Some(rs) = opts.region_size {
        policy.division.fixed_region_size = rs;
    }
    let rst = policy.plan(&SimContext::new(), &trace, file_size);
    print_rst(&rst);
    if let Some(out) = &opts.out {
        rst.save_to_path(out).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", out.display());
            std::process::exit(1);
        });
        println!("wrote {}", out.display());
    }
}

fn print_rst(rst: &RegionStripeTable) {
    let widths_heading = "widths (one per class)";
    println!(
        "{:<8} {:>14} {:>14}  {widths_heading}",
        "region", "offset", "length"
    );
    for (i, e) in rst.entries().iter().enumerate() {
        let widths = e
            .widths()
            .iter()
            .map(|&w| format!("{:>10}", ByteSize(w).to_string()))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "{:<8} {:>14} {:>14}  {}",
            i,
            ByteSize(e.offset).to_string(),
            ByteSize(e.len).to_string(),
            widths
        );
    }
}

fn cmd_inspect(opts: &Opts) {
    let [path] = opts.positional.as_slice() else {
        usage()
    };
    let rst = load_rst(path);
    print_rst(&rst);
    println!("file size: {}", ByteSize(rst.file_size()));
}

/// Per-region predicted-vs-actual cost residuals, from the recorded
/// request spans: each span carries its region file, in-region offset,
/// size and op, so the Sec. III-D model can be replayed against the
/// observed end-to-end latency (the model-drift signal of Eqs. 1–8).
fn record_residuals(recorder: &MemoryRecorder, model: &CostModelParams, rst: &RegionStripeTable) {
    let label_of = |span: &harl_simcore::SpanRecord, key: &str| {
        span.labels
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.clone())
            .unwrap_or_default()
    };
    for span in recorder.spans() {
        let Ok(region) = label_of(&span, "file").parse::<usize>() else {
            continue;
        };
        let Some(entry) = rst.entries().get(region) else {
            continue;
        };
        let (Ok(offset), Ok(size)) = (
            label_of(&span, "offset").parse::<u64>(),
            label_of(&span, "size").parse::<u64>(),
        ) else {
            continue;
        };
        let op = if label_of(&span, "op") == "write" {
            OpKind::Write
        } else {
            OpKind::Read
        };
        let predicted = model.request_cost(offset, size, op, entry.h(), entry.s());
        let actual = span.latency_ns() as f64 / 1e9;
        let residual = actual - predicted;
        let labels = [("region", region.to_string())];
        recorder.observe_f64(registry::HARL_MODEL_RESIDUAL_S.name, &labels, residual);
        recorder.observe(
            registry::HARL_MODEL_RESIDUAL_ABS_NS.name,
            &labels,
            (residual.abs() * 1e9) as u64,
        );
    }
}

fn cmd_simulate(opts: &Opts) {
    let [trace_path, rst_path] = opts.positional.as_slice() else {
        usage()
    };
    let trace = load_trace(trace_path);
    let rst = load_rst(rst_path);
    let cluster = ClusterConfig::hybrid(opts.hservers, opts.sservers);
    let workload = replay(&trace);
    let recording = opts.metrics_out.is_some() || opts.trace_out.is_some();
    let memory = Arc::new(MemoryRecorder::new());
    let mut ctx = if recording {
        SimContext::recorded(memory.clone())
    } else {
        SimContext::new()
    };
    if let Some(ms) = opts.sample_ms {
        ctx = ctx.with_sample_interval(SimNanos::from_secs_f64(ms / 1e3));
    }
    let report = run_workload(
        &ctx,
        &cluster,
        &rst,
        &workload,
        &CollectiveConfig::default(),
    );
    if recording {
        let model =
            CostModelParams::from_cluster_calibrated(&cluster, &CalibrationConfig::default());
        record_residuals(&memory, &model, &rst);
    }
    if let Some(path) = &opts.metrics_out {
        let file = std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create {}: {e}", path.display());
            std::process::exit(1);
        });
        memory
            .write_jsonl(&mut BufWriter::new(file))
            .unwrap_or_else(|e| {
                eprintln!("cannot write metrics JSONL: {e}");
                std::process::exit(1);
            });
        println!(
            "wrote {} metric series to {}",
            memory.series_count(),
            path.display()
        );
    }
    if let Some(path) = &opts.trace_out {
        let file = std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create {}: {e}", path.display());
            std::process::exit(1);
        });
        memory
            .write_chrome_trace(&mut BufWriter::new(file))
            .unwrap_or_else(|e| {
                eprintln!("cannot write Chrome trace: {e}");
                std::process::exit(1);
            });
        println!("wrote {} spans to {}", memory.spans().len(), path.display());
    }
    println!(
        "replayed {} requests: {:.1} MiB/s over {}",
        report.requests_completed,
        report.throughput_mib_s(),
        report.makespan
    );
    println!(
        "per-server busy (normalised): {:?}",
        report
            .normalized_server_times()
            .iter()
            .map(|x| (x * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    let summary = summarize_records(trace.records());
    println!("trace pattern: {}", summary.pattern_label());

    // A coarse utilisation sparkline per server over the run.
    let blocks = [' ', '.', ':', '-', '=', '#'];
    for s in &report.servers {
        let util = s.busy_series.utilisation();
        let active = (report.makespan.as_nanos() / s.busy_series.width.as_nanos() + 1)
            .min(util.len() as u64) as usize;
        let line: String = util[..active]
            .iter()
            .map(|&u| blocks[((u.min(1.0)) * (blocks.len() - 1) as f64).round() as usize])
            .collect();
        println!("server {:>2} busy |{line}|", s.id);
    }
}

fn cmd_bench_planning(opts: &Opts) {
    use harl_bench::planning::{run_planning_bench, run_planning_guard, PlanningScale};
    if !opts.positional.is_empty() {
        usage();
    }
    if let Some(path) = &opts.guard {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {}: {e}", path.display());
            std::process::exit(1);
        });
        let baseline: serde_json::Value = serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("baseline {} is not JSON: {e}", path.display());
            std::process::exit(1);
        });
        match run_planning_guard(&baseline) {
            Ok(lines) => {
                print!("{lines}");
                println!("planning throughput within budget of {}", path.display());
            }
            Err(msg) => {
                eprintln!("bench-planning guard: {msg}");
                std::process::exit(1);
            }
        }
        return;
    }
    let scale = if opts.quick {
        PlanningScale::quick()
    } else {
        PlanningScale::full()
    };
    let threads = opts
        .threads
        .unwrap_or_else(|| harl_core::OptimizerConfig::default().threads);
    let doc = run_planning_bench(scale, threads, opts.quick);
    let phases = &doc["phases"];
    for phase in ["single_region", "whole_file_64", "online_replan"] {
        let p = &phases[phase];
        let wall = p["wall_s"].as_f64().unwrap_or(0.0);
        let cands = p["candidates"].as_f64();
        match cands {
            Some(c) => println!(
                "{phase:<16} {wall:>10.4} s  {c:>10.0} candidates  {:>12.0} cands/s",
                c / wall.max(1e-12)
            ),
            None => println!("{phase:<16} {wall:>10.4} s"),
        }
    }
    if opts.json {
        let path = opts
            .out
            .clone()
            .unwrap_or_else(|| PathBuf::from("BENCH_planning.json"));
        let text = serde_json::to_string_pretty(&doc).unwrap_or_else(|e| {
            eprintln!("cannot serialise bench doc: {e}");
            std::process::exit(1);
        });
        std::fs::write(&path, text + "\n").unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        });
        println!("wrote {}", path.display());
    }
}

fn cmd_bench_sim(opts: &Opts) {
    use harl_bench::simbench::{run_sim_bench, run_sim_guard, SimScale};
    if !opts.positional.is_empty() {
        usage();
    }
    if let Some(path) = &opts.guard {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {}: {e}", path.display());
            std::process::exit(1);
        });
        let baseline: serde_json::Value = serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("baseline {} is not JSON: {e}", path.display());
            std::process::exit(1);
        });
        match run_sim_guard(&baseline) {
            Ok(lines) => {
                print!("{lines}");
                println!("events/s within budget of {}", path.display());
            }
            Err(msg) => {
                eprintln!("bench-sim guard: {msg}");
                std::process::exit(1);
            }
        }
        return;
    }
    let scale = if opts.quick {
        SimScale::quick()
    } else {
        SimScale::full()
    };
    let doc = run_sim_bench(scale, opts.quick);
    if let Some(tiers) = doc["tiers"].as_array() {
        for tier in tiers {
            println!(
                "{:>5} servers  {:>9} events  {:>12.0} events/s  recorder overhead {:>+6.2}%",
                tier["servers"].as_u64().unwrap_or(0),
                tier["events"].as_u64().unwrap_or(0),
                tier["events_per_s"].as_f64().unwrap_or(0.0),
                tier["recorder_overhead_pct"].as_f64().unwrap_or(0.0),
            );
        }
    }
    println!(
        "max recorder overhead: {:+.2}% (budget < 15%)",
        doc["max_recorder_overhead_pct"].as_f64().unwrap_or(0.0)
    );
    if opts.json {
        let path = opts
            .out
            .clone()
            .unwrap_or_else(|| PathBuf::from("BENCH_sim.json"));
        let text = serde_json::to_string_pretty(&doc).unwrap_or_else(|e| {
            eprintln!("cannot serialise bench doc: {e}");
            std::process::exit(1);
        });
        std::fs::write(&path, text + "\n").unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        });
        println!("wrote {}", path.display());
    }
}

fn cmd_bench_serve(opts: &Opts) {
    use harl_bench::servebench::{run_serve_bench, run_serve_guard, ServeScale};
    if !opts.positional.is_empty() {
        usage();
    }
    if let Some(path) = &opts.guard {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {}: {e}", path.display());
            std::process::exit(1);
        });
        let baseline: serde_json::Value = serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("baseline {} is not JSON: {e}", path.display());
            std::process::exit(1);
        });
        match run_serve_guard(&baseline) {
            Ok(lines) => {
                print!("{lines}");
                println!(
                    "serve deterministic counters match {} (throughput informational)",
                    path.display()
                );
            }
            Err(msg) => {
                eprintln!("bench-serve guard: {msg}");
                std::process::exit(1);
            }
        }
        return;
    }
    let scale = if opts.quick {
        ServeScale::quick()
    } else {
        ServeScale::full()
    };
    let threads = opts
        .threads
        .unwrap_or_else(|| harl_core::OptimizerConfig::default().threads);
    let doc = run_serve_bench(scale, threads, opts.quick);
    if let Some(tiers) = doc["tiers"].as_array() {
        for tier in tiers {
            println!(
                "{:>5} tenants  {:>5} subs  warm {:>10.0} plans/s (p50 {:.3} ms, p99 {:.3} ms, \
                 hit {:.0}%)  cold {:>8.0} plans/s  speedup {:>5.1}x",
                tier["tenants"].as_u64().unwrap_or(0),
                tier["submissions"].as_u64().unwrap_or(0),
                tier["warm"]["plans_per_s"].as_f64().unwrap_or(0.0),
                tier["warm"]["p50_ms"].as_f64().unwrap_or(0.0),
                tier["warm"]["p99_ms"].as_f64().unwrap_or(0.0),
                tier["warm"]["cache_hit_rate"].as_f64().unwrap_or(0.0) * 100.0,
                tier["cold"]["plans_per_s"].as_f64().unwrap_or(0.0),
                tier["speedup"].as_f64().unwrap_or(0.0),
            );
        }
    }
    if opts.json {
        let path = opts
            .out
            .clone()
            .unwrap_or_else(|| PathBuf::from("BENCH_serve.json"));
        let text = serde_json::to_string_pretty(&doc).unwrap_or_else(|e| {
            eprintln!("cannot serialise bench doc: {e}");
            std::process::exit(1);
        });
        std::fs::write(&path, text + "\n").unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        });
        println!("wrote {}", path.display());
    }
}

fn cmd_report(opts: &Opts) {
    let [path] = opts.positional.as_slice() else {
        usage()
    };
    let jsonl = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let summary = harl_pfs::MetricsSummary::parse(&jsonl).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    });
    print!("{}", summary.render());
}

fn cmd_run(opts: &Opts) {
    if !opts.positional.is_empty() {
        usage();
    }
    let Some(path) = &opts.scenario else { usage() };
    let scenario = Scenario::from_path(path).unwrap_or_else(|e| {
        eprintln!("cannot load scenario: {e}");
        std::process::exit(1);
    });
    let memory = Arc::new(MemoryRecorder::new());
    let mut ctx = if opts.metrics_out.is_some() {
        SimContext::recorded(memory.clone())
    } else {
        SimContext::new()
    };
    if let Some(seed) = opts.seed {
        ctx = ctx.with_seed(seed);
    }
    if let Some(threads) = opts.threads {
        ctx = ctx.with_threads(threads);
    }
    if let Some(ms) = opts.sample_ms {
        ctx = ctx.with_sample_interval(SimNanos::from_secs_f64(ms / 1e3));
    }
    let report = scenario.run(&ctx).unwrap_or_else(|e| {
        eprintln!("scenario failed: {e}");
        std::process::exit(1);
    });
    if let Some(path) = &opts.metrics_out {
        let file = std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create {}: {e}", path.display());
            std::process::exit(1);
        });
        memory
            .write_jsonl(&mut BufWriter::new(file))
            .unwrap_or_else(|e| {
                eprintln!("cannot write metrics JSONL: {e}");
                std::process::exit(1);
            });
        println!(
            "wrote {} metric series to {}",
            memory.series_count(),
            path.display()
        );
    }
    let json = report.to_json_pretty();
    match &opts.out {
        Some(out) => {
            std::fs::write(out, json + "\n").unwrap_or_else(|e| {
                eprintln!("cannot write {}: {e}", out.display());
                std::process::exit(1);
            });
            println!(
                "{}: {} regions, {:.1} MiB/s — wrote {}",
                report.policy,
                report.regions,
                report.throughput_mib_s,
                out.display()
            );
        }
        None => println!("{json}"),
    }
}

fn cmd_serve(opts: &Opts) {
    if !opts.positional.is_empty() {
        usage();
    }
    let Some(path) = &opts.scenario else { usage() };
    let spec = ServeSpec::from_path(path).unwrap_or_else(|e| {
        eprintln!("cannot load serve spec: {e}");
        std::process::exit(1);
    });
    let memory = Arc::new(MemoryRecorder::new());
    let mut ctx = if opts.metrics_out.is_some() {
        SimContext::recorded(memory.clone())
    } else {
        SimContext::new()
    };
    if let Some(threads) = opts.threads {
        ctx = ctx.with_threads(threads);
    }
    let report = spec.run(&ctx).unwrap_or_else(|e| {
        eprintln!("serve replay failed: {e}");
        std::process::exit(1);
    });
    if let Some(path) = &opts.metrics_out {
        let file = std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create {}: {e}", path.display());
            std::process::exit(1);
        });
        memory
            .write_jsonl(&mut BufWriter::new(file))
            .unwrap_or_else(|e| {
                eprintln!("cannot write metrics JSONL: {e}");
                std::process::exit(1);
            });
        println!(
            "wrote {} metric series to {}",
            memory.series_count(),
            path.display()
        );
    }
    let json = report.to_json_pretty();
    match &opts.out {
        Some(out) => {
            std::fs::write(out, json + "\n").unwrap_or_else(|e| {
                eprintln!("cannot write {}: {e}", out.display());
                std::process::exit(1);
            });
            println!(
                "{} jobs over {} tenants: {:.0}% cache hits, {} adaptations — wrote {}",
                report.jobs,
                report.tenants,
                report.cache_hit_rate * 100.0,
                report.adaptations,
                out.display()
            );
        }
        None => println!("{json}"),
    }
}

fn cmd_audit_determinism(opts: &Opts) {
    if !opts.positional.is_empty() {
        usage();
    }
    let root = opts.root.clone().unwrap_or_else(|| PathBuf::from("."));
    let report = harl_bench::auditdet::run_audit(&root, opts.fast);
    print!("{}", report.render_human());
    if !report.is_clean() {
        std::process::exit(1);
    }
}

fn cmd_lint(opts: &Opts) {
    if !opts.positional.is_empty() {
        usage();
    }
    let root = opts.root.clone().unwrap_or_else(|| PathBuf::from("."));
    let allow = root.join("lint.allow.toml");
    let report = harl_lint::run(&root, &allow).unwrap_or_else(|e| {
        eprintln!("harl-lint: {e}");
        std::process::exit(2);
    });
    if opts.json {
        print!("{}", harl_lint::render_json(&report));
    } else {
        print!("{}", harl_lint::render_human(&report));
    }
    if !report.is_clean() {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage()
    };
    let opts = parse_opts(rest);
    match cmd.as_str() {
        "trace-info" => cmd_trace_info(&opts),
        "plan" => cmd_plan(&opts),
        "inspect" => cmd_inspect(&opts),
        "simulate" => cmd_simulate(&opts),
        "bench-planning" => cmd_bench_planning(&opts),
        "bench-sim" => cmd_bench_sim(&opts),
        "bench-serve" => cmd_bench_serve(&opts),
        "report" => cmd_report(&opts),
        "run" => cmd_run(&opts),
        "serve" => cmd_serve(&opts),
        "lint" => cmd_lint(&opts),
        "audit-determinism" => cmd_audit_determinism(&opts),
        _ => usage(),
    }
}
