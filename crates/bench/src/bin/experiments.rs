//! Experiment driver: regenerates every results figure of the paper.
//!
//! ```text
//! experiments [--paper] [--out DIR] [--metrics-out FILE] [--trace-out FILE]
//!             [--threads T]
//!             <fig1a|fig1b|fig7|fig8|fig9|fig10|fig11|fig12|headline|all>
//! ```
//!
//! `--threads` pins the simulator's deterministic shard pool; every figure
//! is byte-identical at any setting, so it only changes wall-clock time.
//!
//! `--paper` runs at the paper's full sizes (16 GiB IOR files, ≈1.7 GB
//! BTIO); the default quick scale is shape-identical. Tables print to
//! stdout; JSON records land in `--out` (default `results/`).
//!
//! `--metrics-out` installs the in-memory recorder for every measured run
//! and dumps the aggregated series (per-server latency histograms,
//! per-region routing counters, request spans, …) as JSONL when the suite
//! finishes; `--trace-out` additionally writes the request spans in Chrome
//! trace-event format (load into `chrome://tracing` or Perfetto).

// Bin-crate panic hygiene (ratcheted to deny in PR 8): failures exit
// with a message, never a backtrace.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

use harl_bench::{
    abl_model, abl_multiapp, abl_profiles, abl_region, abl_step, abl_straggler, fig10, fig11,
    fig12, fig1a, fig1b, fig7, fig8, fig9, headline, install_recorder, Scale,
};
use std::io::BufWriter;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: experiments [--paper] [--out DIR] [--metrics-out FILE] [--trace-out FILE] \
         [--threads T] \
         <fig1a|fig1b|fig7|fig8|fig9|fig10|fig11|fig12|headline|\
         abl-region|abl-step|abl-model|abl-profiles|abl-straggler|abl-multiapp|all|ablations>"
    );
    std::process::exit(2);
}

/// Print an I/O error and exit with a failure status (bin-crate error
/// handling: no panics, a clean message instead of a backtrace).
fn die(what: &str, err: impl std::fmt::Display) -> ! {
    eprintln!("{what}: {err}");
    std::process::exit(1);
}

fn main() {
    let mut scale = Scale::quick();
    let mut out_dir = PathBuf::from("results");
    let mut metrics_out: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut targets: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--paper" => scale = Scale::paper(),
            "--out" => {
                out_dir = PathBuf::from(args.next().unwrap_or_else(|| usage()));
            }
            "--metrics-out" => {
                metrics_out = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            "--trace-out" => {
                trace_out = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            "--threads" => {
                let t = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                harl_bench::harness::set_threads(t);
            }
            "--help" | "-h" => usage(),
            name => targets.push(name.to_string()),
        }
    }
    let recorder = if metrics_out.is_some() || trace_out.is_some() {
        Some(install_recorder())
    } else {
        None
    };
    if targets.is_empty() {
        usage();
    }
    if targets.iter().any(|t| t == "all") {
        targets = [
            "fig1a",
            "fig1b",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "headline",
            "abl-region",
            "abl-step",
            "abl-model",
            "abl-profiles",
            "abl-straggler",
            "abl-multiapp",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    } else if targets.iter().any(|t| t == "ablations") {
        targets = [
            "abl-region",
            "abl-step",
            "abl-model",
            "abl-profiles",
            "abl-straggler",
            "abl-multiapp",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    std::fs::create_dir_all(&out_dir)
        .unwrap_or_else(|e| die(&format!("cannot create {}", out_dir.display()), e));
    for target in &targets {
        let started = std::time::Instant::now();
        let result = match target.as_str() {
            "fig1a" => fig1a(&scale),
            "fig1b" => fig1b(&scale),
            "fig7" => fig7(&scale),
            "fig8" => fig8(&scale),
            "fig9" => fig9(&scale),
            "fig10" => fig10(&scale),
            "fig11" => fig11(&scale),
            "fig12" => fig12(&scale),
            "headline" => headline(&scale),
            "abl-region" => abl_region(&scale),
            "abl-step" => abl_step(&scale),
            "abl-model" => abl_model(&scale),
            "abl-profiles" => abl_profiles(&scale),
            "abl-straggler" => abl_straggler(&scale),
            "abl-multiapp" => abl_multiapp(&scale),
            other => {
                eprintln!("unknown experiment: {other}");
                usage();
            }
        };
        print!("{}", result.text);
        let path = out_dir.join(format!("{target}.json"));
        let text = serde_json::to_string_pretty(&result.json)
            .unwrap_or_else(|e| die("cannot serialise result JSON", e));
        std::fs::write(&path, text)
            .unwrap_or_else(|e| die(&format!("cannot write {}", path.display()), e));
        println!(
            "[{target}: {:.1}s, wrote {}]",
            started.elapsed().as_secs_f64(),
            path.display()
        );
    }

    if let Some(recorder) = recorder {
        if let Some(path) = &metrics_out {
            let file = std::fs::File::create(path)
                .unwrap_or_else(|e| die(&format!("cannot create {}", path.display()), e));
            let mut w = BufWriter::new(file);
            recorder
                .write_jsonl(&mut w)
                .unwrap_or_else(|e| die("cannot write metrics JSONL", e));
            println!(
                "[metrics: {} series -> {}]",
                recorder.series_count(),
                path.display()
            );
        }
        if let Some(path) = &trace_out {
            let file = std::fs::File::create(path)
                .unwrap_or_else(|e| die(&format!("cannot create {}", path.display()), e));
            let mut w = BufWriter::new(file);
            recorder
                .write_chrome_trace(&mut w)
                .unwrap_or_else(|e| die("cannot write Chrome trace", e));
            println!(
                "[trace: {} spans -> {}]",
                recorder.spans().len(),
                path.display()
            );
        }
    }
}
