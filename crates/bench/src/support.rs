//! Shared helpers for the criterion benches.
//!
//! The criterion targets measure the *code* (planning cost, simulation
//! throughput) on miniature instances; the actual paper figures come from
//! the `experiments` binary, which runs the full-size configurations once
//! and prints the tables. Keeping the two separate means `cargo bench`
//! finishes in minutes while still covering every figure's code path.

use harl_core::{CostModelParams, HarlPolicy, LayoutPolicy, OptimizerConfig, RegionStripeTable};
use harl_devices::{CalibrationConfig, OpKind};
use harl_middleware::{collect_trace_lowered, run_workload, CollectiveConfig, Workload};
use harl_pfs::ClusterConfig;
use harl_simcore::SimContext;
use harl_workloads::{AccessOrder, IorConfig};

/// Miniature IOR file size used by the benches.
pub const BENCH_FILE: u64 = 64 << 20;

/// A miniature IOR workload.
pub fn bench_ior(op: OpKind, processes: usize, request_size: u64) -> Workload {
    IorConfig {
        processes,
        request_size,
        file_size: BENCH_FILE,
        op,
        order: AccessOrder::Random,
        seed: 0xBE,
    }
    .build()
}

/// A calibrated HARL policy with a small optimizer sample.
pub fn bench_harl(cluster: &ClusterConfig) -> HarlPolicy {
    let model = CostModelParams::from_cluster_calibrated(cluster, &CalibrationConfig::default());
    let mut policy = HarlPolicy::new(model);
    policy.optimizer = OptimizerConfig {
        max_requests_per_eval: 256,
        ..OptimizerConfig::default()
    };
    policy
}

/// Plan once (outside the measured loop) so run-only benches measure the
/// simulator, not the optimizer.
pub fn plan_for(cluster: &ClusterConfig, workload: &Workload) -> RegionStripeTable {
    let trace = collect_trace_lowered(cluster, workload, &CollectiveConfig::default());
    bench_harl(cluster).plan(&SimContext::new(), &trace, workload.extent().max(1))
}

/// One full simulated run; returns throughput so criterion cannot
/// dead-code-eliminate it.
pub fn run_once(cluster: &ClusterConfig, rst: &RegionStripeTable, workload: &Workload) -> f64 {
    run_workload(
        &SimContext::new(),
        cluster,
        rst,
        workload,
        &CollectiveConfig::default(),
    )
    .throughput_mib_s()
}
