//! One function per results figure of the paper.
//!
//! Every function prints nothing itself; it returns the rendered table and
//! a JSON value so callers (the `experiments` binary, tests, criterion
//! benches) decide what to do with them.

use crate::harness::{
    best, harl_policy, improvement_pct, measure, paper_policies, render_table, PolicyOutcome, Scale,
};
use harl_core::FixedPolicy;
use harl_devices::OpKind;
use harl_middleware::Workload;
use harl_pfs::ClusterConfig;
use harl_workloads::{AccessOrder, BtioConfig, IorConfig, MultiRegionIorConfig};
use serde_json::{json, Value};

/// An experiment's renderable result.
pub struct FigureResult {
    /// Human-readable table(s).
    pub text: String,
    /// Machine-readable record for `results/`.
    pub json: Value,
}

fn ior_workload(scale: &Scale, op: OpKind, processes: usize, request_size: u64) -> Workload {
    IorConfig {
        processes,
        request_size,
        file_size: scale.ior_file,
        op,
        order: AccessOrder::Random,
        seed: 0x10,
    }
    .build()
}

/// Fig. 1(a): per-server I/O time under the default 64 KiB fixed layout,
/// normalised to the fastest server. Servers 1–6 are HServers, 7–8
/// SServers; the paper measures ≈350 % on HServers.
pub fn fig1a(scale: &Scale) -> FigureResult {
    let cluster = ClusterConfig::paper_default();
    let w = ior_workload(scale, OpKind::Read, 16, 512 * 1024);
    let policy = FixedPolicy::new(64 * 1024);
    let (_, _, report) = measure(&cluster, &policy, &w);
    let norm = report.normalized_server_times();

    let mut text = String::from("\n== Fig 1(a): normalised per-server I/O time, 64K default ==\n");
    for (i, v) in norm.iter().enumerate() {
        let kind = if i < 6 { "HServer" } else { "SServer" };
        text.push_str(&format!("server {} ({kind}): {:.2}x\n", i + 1, v));
    }
    let h_mean: f64 = norm[..6].iter().sum::<f64>() / 6.0;
    text.push_str(&format!(
        "mean HServer/SServer imbalance: {:.0}% (paper: ~350%)\n",
        100.0 * h_mean
    ));
    FigureResult {
        text,
        json: json!({"figure": "1a", "normalized_times": norm, "mean_hserver_pct": 100.0*h_mean}),
    }
}

/// Fig. 1(b): IOR throughput across request sizes × fixed stripe sizes —
/// the motivation that no single fixed stripe wins everywhere.
pub fn fig1b(scale: &Scale) -> FigureResult {
    let cluster = ClusterConfig::paper_default();
    let request_sizes = [128u64, 512, 1024, 2048];
    let stripes = [16u64, 64, 256, 1024, 2048];
    let mut rows = Vec::new();
    let mut text =
        String::from("\n== Fig 1(b): read throughput (MiB/s), request size x stripe ==\n");
    text.push_str(&format!("{:<10}", "req\\stripe"));
    for s in stripes {
        text.push_str(&format!("{:>9}K", s));
    }
    text.push('\n');
    for rs in request_sizes {
        text.push_str(&format!("{:<10}", format!("{rs}K")));
        let mut row = Vec::new();
        for st in stripes {
            let w = ior_workload(scale, OpKind::Read, 16, rs * 1024);
            let policy = FixedPolicy::new(st * 1024);
            let (outcome, _, _) = measure(&cluster, &policy, &w);
            text.push_str(&format!("{:>10.0}", outcome.throughput_mib_s));
            row.push(outcome.throughput_mib_s);
        }
        text.push('\n');
        rows.push(row);
    }
    FigureResult {
        text,
        json: json!({"figure": "1b", "request_sizes_k": request_sizes, "stripes_k": stripes, "throughput": rows}),
    }
}

fn run_policy_set(
    cluster: &ClusterConfig,
    workload: &Workload,
    scale: &Scale,
) -> Vec<PolicyOutcome> {
    paper_policies(cluster, scale)
        .iter()
        .map(|p| measure(cluster, p.as_ref(), workload).0)
        .collect()
}

fn outcomes_json(outcomes: &[PolicyOutcome]) -> Value {
    serde_json::to_value(outcomes).unwrap_or(Value::Null)
}

/// Fig. 7: IOR read and write throughput across all layouts (the headline
/// comparison: fixed {16K..2M}, random, HARL).
pub fn fig7(scale: &Scale) -> FigureResult {
    let cluster = ClusterConfig::paper_default();
    let mut text = String::new();
    let mut json_parts = serde_json::Map::new();
    for op in [OpKind::Read, OpKind::Write] {
        let w = ior_workload(scale, op, 16, 512 * 1024);
        let outcomes = run_policy_set(&cluster, &w, scale);
        text.push_str(&render_table(
            &format!("Fig 7 ({op}): IOR 16 procs, 512K requests"),
            &outcomes,
            "64K",
        ));
        let (Some(harl), Some(default)) =
            (outcomes.last(), outcomes.iter().find(|o| o.label == "64K"))
        else {
            continue; // run_policy_set always yields the full policy set
        };
        text.push_str(&format!(
            "HARL vs default 64K: {:+.1}%  (paper: {} {})\n",
            improvement_pct(harl.throughput_mib_s, default.throughput_mib_s),
            if op == OpKind::Read {
                "+73.4%"
            } else {
                "+176.7%"
            },
            "on their testbed",
        ));
        json_parts.insert(op.to_string(), outcomes_json(&outcomes));
    }
    json_parts.insert("figure".into(), json!("7"));
    FigureResult {
        text,
        json: Value::Object(json_parts),
    }
}

/// Fig. 8: IOR throughput with 8/32/128/256 processes.
pub fn fig8(scale: &Scale) -> FigureResult {
    let cluster = ClusterConfig::paper_default();
    let mut text = String::new();
    let mut json_parts = serde_json::Map::new();
    for op in [OpKind::Read, OpKind::Write] {
        let mut per_procs = serde_json::Map::new();
        for procs in [8usize, 32, 128, 256] {
            let w = ior_workload(scale, op, procs, 512 * 1024);
            let outcomes = run_policy_set(&cluster, &w, scale);
            text.push_str(&render_table(
                &format!("Fig 8 ({op}): {procs} processes"),
                &outcomes,
                "64K",
            ));
            per_procs.insert(procs.to_string(), outcomes_json(&outcomes));
        }
        json_parts.insert(op.to_string(), Value::Object(per_procs));
    }
    json_parts.insert("figure".into(), json!("8"));
    FigureResult {
        text,
        json: Value::Object(json_parts),
    }
}

/// Fig. 9: IOR throughput with 128 KiB and 1024 KiB requests. At 128 KiB
/// the paper's optimum is `{0K, 64K}` — SServers only.
pub fn fig9(scale: &Scale) -> FigureResult {
    let cluster = ClusterConfig::paper_default();
    let mut text = String::new();
    let mut json_parts = serde_json::Map::new();
    for op in [OpKind::Read, OpKind::Write] {
        let mut per_size = serde_json::Map::new();
        for req_k in [128u64, 1024] {
            let w = ior_workload(scale, op, 16, req_k * 1024);
            let outcomes = run_policy_set(&cluster, &w, scale);
            text.push_str(&render_table(
                &format!("Fig 9 ({op}): request size {req_k}K"),
                &outcomes,
                "64K",
            ));
            per_size.insert(req_k.to_string(), outcomes_json(&outcomes));
        }
        json_parts.insert(op.to_string(), Value::Object(per_size));
    }
    json_parts.insert("figure".into(), json!("9"));
    FigureResult {
        text,
        json: Value::Object(json_parts),
    }
}

/// Fig. 10: server-ratio sweep — 7 HServers : 1 SServer and 2 : 6
/// (plus the default 6 : 2 for reference).
pub fn fig10(scale: &Scale) -> FigureResult {
    let mut text = String::new();
    let mut json_parts = serde_json::Map::new();
    for (m, n) in [(7usize, 1usize), (6, 2), (2, 6)] {
        let cluster = ClusterConfig::hybrid(m, n);
        let mut per_op = serde_json::Map::new();
        for op in [OpKind::Read, OpKind::Write] {
            let w = ior_workload(scale, op, 16, 512 * 1024);
            let outcomes = run_policy_set(&cluster, &w, scale);
            text.push_str(&render_table(
                &format!("Fig 10 ({op}): {m} HServers : {n} SServers"),
                &outcomes,
                "64K",
            ));
            per_op.insert(op.to_string(), outcomes_json(&outcomes));
        }
        json_parts.insert(format!("{m}:{n}"), Value::Object(per_op));
    }
    json_parts.insert("figure".into(), json!("10"));
    FigureResult {
        text,
        json: Value::Object(json_parts),
    }
}

/// Fig. 11: non-uniform workload — the modified four-region IOR. This is
/// where region-level layout (vs one layout for the whole file) matters.
pub fn fig11(scale: &Scale) -> FigureResult {
    let cluster = ClusterConfig::paper_default();
    // Scale the paper's 256M/1G/2G/4G regions down proportionally to the
    // configured IOR file size (paper total ≈ 7.25 GiB at 16 GiB scale).
    let factor = scale.ior_file as f64 / (16.0 * 1024.0 * 1024.0 * 1024.0);
    let mut text = String::new();
    let mut json_parts = serde_json::Map::new();
    for op in [OpKind::Read, OpKind::Write] {
        let w = MultiRegionIorConfig::paper_default(op, factor).build();
        let outcomes = run_policy_set(&cluster, &w, scale);
        text.push_str(&render_table(
            &format!("Fig 11 ({op}): four-region non-uniform IOR"),
            &outcomes,
            "64K",
        ));
        let harl_regions = outcomes.last().map_or(0, |o| o.regions);
        text.push_str(&format!("HARL regions: {harl_regions}\n"));
        json_parts.insert(op.to_string(), outcomes_json(&outcomes));
    }
    json_parts.insert("figure".into(), json!("11"));
    FigureResult {
        text,
        json: Value::Object(json_parts),
    }
}

/// Fig. 12: BTIO (class-A-sized full subtype, collective I/O) with 4, 16
/// and 64 processes.
pub fn fig12(scale: &Scale) -> FigureResult {
    let cluster = ClusterConfig::paper_default();
    let mut text = String::new();
    let mut json_parts = serde_json::Map::new();
    for procs in [4usize, 16, 64] {
        let mut cfg = BtioConfig::paper_default(procs);
        cfg.grid = scale.btio_grid;
        let w = cfg.build();
        let outcomes = run_policy_set(&cluster, &w, scale);
        text.push_str(&render_table(
            &format!("Fig 12: BTIO, {procs} processes"),
            &outcomes,
            "64K",
        ));
        json_parts.insert(procs.to_string(), outcomes_json(&outcomes));
    }
    json_parts.insert("figure".into(), json!("12"));
    FigureResult {
        text,
        json: Value::Object(json_parts),
    }
}

/// Summary line used by the `all` subcommand: the headline HARL-vs-default
/// improvements.
pub fn headline(scale: &Scale) -> FigureResult {
    let cluster = ClusterConfig::paper_default();
    let mut text = String::from("\n== Headline: HARL vs 64K default (IOR 16 procs, 512K) ==\n");
    let mut json_parts = serde_json::Map::new();
    for op in [OpKind::Read, OpKind::Write] {
        let w = ior_workload(scale, op, 16, 512 * 1024);
        let harl = harl_policy(&cluster, scale);
        let (h_out, _, _) = measure(&cluster, &harl, &w);
        let (d_out, _, _) = measure(&cluster, &FixedPolicy::new(64 * 1024), &w);
        let imp = improvement_pct(h_out.throughput_mib_s, d_out.throughput_mib_s);
        text.push_str(&format!(
            "{op}: HARL {:.0} MiB/s vs default {:.0} MiB/s ({imp:+.1}%), HARL (h,s) = ({}, {}) KiB\n",
            h_out.throughput_mib_s,
            d_out.throughput_mib_s,
            h_out.first_region.0 / 1024,
            h_out.first_region.1 / 1024,
        ));
        json_parts.insert(
            op.to_string(),
            json!({"harl": h_out.throughput_mib_s, "default": d_out.throughput_mib_s, "improvement_pct": imp}),
        );
    }
    FigureResult {
        text,
        json: Value::Object(json_parts),
    }
}

/// Quick structural sanity used by tests: HARL must beat the 64K default
/// on the headline configuration at any scale.
pub fn harl_beats_default(scale: &Scale, op: OpKind) -> (f64, f64) {
    let cluster = ClusterConfig::paper_default();
    let w = ior_workload(scale, op, 16, 512 * 1024);
    let harl = harl_policy(&cluster, scale);
    let (h_out, _, _) = measure(&cluster, &harl, &w);
    let (d_out, _, _) = measure(&cluster, &FixedPolicy::new(64 * 1024), &w);
    (h_out.throughput_mib_s, d_out.throughput_mib_s)
}

/// The reference to `best` keeps the helper exercised from this module.
pub fn best_label(outcomes: &[PolicyOutcome]) -> &str {
    best(outcomes).map_or("", |o| &o.label)
}
