//! # harl-bench — the experiment harness
//!
//! One function per results figure of the paper (Figs. 1, 7–12), each
//! printing the same rows/series the paper plots and returning a JSON
//! value that the `experiments` binary writes under `results/`.
//!
//! Two scales are provided: [`Scale::quick`] (default; ~2 GiB IOR files,
//! reduced BTIO grid — minutes for the full suite) and [`Scale::paper`]
//! (the paper's 16 GiB files and ≈1.7 GB BTIO). Throughput is
//! bytes/makespan either way; the *shape* of every comparison is scale
//! invariant because all runs reach steady state within a few hundred
//! requests.

// missing_docs / rust_2018_idioms come from [workspace.lints].
// Bench and CLI code reports failures through exit codes and descriptive
// messages, never through panics: PR 8 swept the crate and ratcheted the
// unwrap/expect warns up to denies.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod ablations;
pub mod auditdet;
pub mod figures;
pub mod harness;
pub mod planning;
pub mod servebench;
pub mod simbench;
pub mod support;

pub use ablations::*;
pub use figures::*;
pub use harness::{context, install_recorder, PolicyOutcome, Scale};
