//! Planning-path benchmark: wall-time of the Algorithm 2 hot path.
//!
//! The paper frames stripe-pair search precision as a cost-calculation
//! overhead trade-off (Sec. III-F); once re-planning runs on-line behind
//! the `OnlineMonitor`, that overhead sits on the critical path. This
//! module times the three planning shapes the system actually executes:
//!
//! * `single_region` — one Algorithm 2 grid search over a uniform region
//!   (the inner loop of everything else);
//! * `whole_file_64` — a 64-region whole-file [`HarlPolicy::plan`] (the
//!   off-line Analysis Phase on a multi-phase file);
//! * `online_replan` — an [`OnlineMonitor`] stream that drifts in every
//!   region and forces one re-plan per region.
//!
//! The same workload builders feed the `planning` criterion group, the
//! `harl-cli bench-planning` command (which writes `BENCH_planning.json`)
//! and the ci.sh smoke test, so the JSON schema cannot rot unnoticed.

use harl_core::{
    divide_regions, optimize_region, CostModelParams, HarlPolicy, LayoutPolicy, OnlineConfig,
    OnlineMonitor, OptimizerConfig, RegionRequests, RegionStripeTable, RstEntry, Trace,
    TraceRecord,
};
use harl_devices::OpKind;
use harl_pfs::ClusterConfig;
use harl_simcore::{SimContext, SimNanos};
use serde_json::{json, Value};
use std::time::Instant;

const KB: u64 = 1024;

/// Schema tag written into `BENCH_planning.json`; ci.sh greps for it.
pub const PLANNING_SCHEMA: &str = "harl.bench.planning.v1";

/// Request sizes cycled across the whole-file phases. Adjacent phases
/// (including the cycle wrap) differ by at least 2×, so even with long
/// uniform phases the CV jump at every boundary clears Algorithm 1's
/// split threshold and the file divides into exactly one region per phase.
const PHASE_SIZES: [u64; 8] = [
    128 * KB,
    1024 * KB,
    192 * KB,
    896 * KB,
    256 * KB,
    768 * KB,
    320 * KB,
    640 * KB,
];

/// Instance sizes for one benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct PlanningScale {
    /// Requests in the single-region phase.
    pub single_region_requests: usize,
    /// Regions in the whole-file phase.
    pub regions: usize,
    /// Requests per region in the whole-file phase.
    pub requests_per_region: usize,
    /// Round-robin passes over the regions in the on-line phase.
    pub online_rounds: usize,
}

impl PlanningScale {
    /// Seconds-scale instance for CI smoke tests.
    pub fn quick() -> Self {
        PlanningScale {
            single_region_requests: 512,
            regions: 64,
            requests_per_region: 32,
            online_rounds: 12,
        }
    }

    /// The tracked-baseline instance (`BENCH_planning.json`).
    pub fn full() -> Self {
        PlanningScale {
            single_region_requests: 4096,
            regions: 64,
            requests_per_region: 256,
            online_rounds: 32,
        }
    }
}

/// The paper platform model used by every planning phase.
pub fn planning_model() -> CostModelParams {
    CostModelParams::from_cluster(&ClusterConfig::paper_default())
}

fn rec(offset: u64, size: u64) -> TraceRecord {
    TraceRecord {
        rank: 0,
        fd: 0,
        op: OpKind::Read,
        offset,
        size,
        timestamp: SimNanos::ZERO,
    }
}

/// A uniform 512 KiB single-region request stream.
pub fn single_region_records(n: usize) -> Vec<TraceRecord> {
    (0..n as u64).map(|i| rec(i * 512 * KB, 512 * KB)).collect()
}

/// A `regions`-phase trace (one uniform run per phase, sizes cycling
/// through `PHASE_SIZES`) and its file size.
pub fn whole_file_trace(regions: usize, per_region: usize) -> (Trace, u64) {
    let mut records = Vec::with_capacity(regions * per_region);
    let mut offset = 0u64;
    for phase in 0..regions {
        let size = PHASE_SIZES[phase % PHASE_SIZES.len()];
        for i in 0..per_region as u64 {
            records.push(rec(offset + i * size, size));
        }
        offset += per_region as u64 * size;
    }
    (Trace::from_records(records), offset)
}

/// A HARL policy sized so the whole-file trace divides into one region per
/// phase.
pub fn whole_file_policy(file_size: u64, regions: usize, threads: usize) -> HarlPolicy {
    let mut policy = HarlPolicy::new(planning_model());
    policy.division.fixed_region_size = (file_size / regions as u64).max(1);
    policy.optimizer.threads = threads;
    policy
}

/// An on-line monitor over a `regions`-region file planned for 512 KiB
/// requests, plus the 128 KiB drift stream that re-plans every region.
pub fn online_setup(
    regions: usize,
    rounds: usize,
    threads: usize,
) -> (OnlineMonitor, Vec<TraceRecord>) {
    let region_len = 64u64 << 20;
    let entries = (0..regions as u64)
        .map(|i| RstEntry::two(i * region_len, region_len, 32 * KB, 160 * KB))
        .collect();
    let rst = RegionStripeTable::new(entries);
    let base = OnlineConfig::default();
    let cfg = OnlineConfig {
        // The observation window is global: size it to hold a few requests
        // per region so round-robin drift closes windows at the same
        // cadence regardless of region count.
        window: regions * 4,
        optimizer: OptimizerConfig {
            threads,
            ..base.optimizer
        },
        ..base
    };
    let monitor = OnlineMonitor::new(planning_model(), rst, vec![512 * KB; regions], cfg);
    let mut stream = Vec::with_capacity(rounds * regions);
    for round in 0..rounds as u64 {
        for region in 0..regions as u64 {
            let offset = region * region_len + (round * 128 * KB) % region_len;
            stream.push(rec(offset, 128 * KB));
        }
    }
    (monitor, stream)
}

/// Size of Algorithm 2's candidate grid for average request size `avg`
/// (both server classes populated): the triangular `(h, s)` sweep plus the
/// single-HServer extreme.
pub fn grid_candidates(avg: u64, cfg: &OptimizerConfig) -> u64 {
    let step = cfg.effective_step(avg.max(1));
    let k = avg.max(step).div_ceil(step); // r_bar / step
    (k + 1) * (k + 2) / 2 + 1
}

/// Run all three phases at the given scale and thread budget, returning
/// the `BENCH_planning.json` document.
pub fn run_planning_bench(scale: PlanningScale, threads: usize, quick: bool) -> Value {
    let model = planning_model();

    // Phase 1: one grid search over a uniform region.
    let records = single_region_records(scale.single_region_requests);
    let reqs = RegionRequests::new(&records, 0);
    let cfg = OptimizerConfig {
        threads,
        ..OptimizerConfig::default()
    };
    let start = Instant::now();
    let choice = optimize_region(&SimContext::new(), &model, &reqs, 512 * KB, &cfg, 0);
    let single_wall = start.elapsed().as_secs_f64();
    let single_cands = grid_candidates(512 * KB, &cfg);
    assert!(choice.cost.is_finite());

    // Phase 2: whole-file plan over `regions` phases.
    let (trace, file_size) = whole_file_trace(scale.regions, scale.requests_per_region);
    let policy = whole_file_policy(file_size, scale.regions, threads);
    let start = Instant::now();
    let rst = policy.plan(&SimContext::new(), &trace, file_size);
    let whole_wall = start.elapsed().as_secs_f64();
    // Candidate totals from the same division the plan used (not timed).
    let sorted = trace.sorted_by_offset();
    let regions = divide_regions(&sorted, file_size, &policy.division);
    let whole_cands: u64 = regions
        .iter()
        .map(|r| grid_candidates(r.avg_request_size, &policy.optimizer))
        .sum();
    assert!(!rst.entries().is_empty());

    // Phase 3: on-line drift over every region, one re-plan each.
    let (mut monitor, stream) = online_setup(scale.regions, scale.online_rounds, threads);
    let start = Instant::now();
    let mut adaptations = 0usize;
    for r in &stream {
        adaptations += monitor.observe(*r).len();
    }
    let online_wall = start.elapsed().as_secs_f64();

    json!({
        "schema": PLANNING_SCHEMA,
        "mode": if quick { "quick" } else { "full" },
        "threads": threads,
        "phases": json!({
            "single_region": json!({
                "requests": scale.single_region_requests,
                "wall_s": single_wall,
                "candidates": single_cands,
                "candidates_per_s": single_cands as f64 / single_wall.max(1e-12),
            }),
            "whole_file_64": json!({
                "regions": regions.len(),
                "requests": scale.regions * scale.requests_per_region,
                "wall_s": whole_wall,
                "candidates": whole_cands,
                "candidates_per_s": whole_cands as f64 / whole_wall.max(1e-12),
            }),
            "online_replan": json!({
                "requests": stream.len(),
                "adaptations": adaptations,
                "wall_s": online_wall,
            }),
        }),
    })
}

/// Maximum tolerated planning-throughput drop versus the committed
/// baseline: the ci.sh regression guard fails any phase measuring below
/// 80% of `BENCH_planning.json`.
pub const GUARD_MAX_DROP_PCT: f64 = 20.0;

/// The ci.sh planning regression guard (`harl-cli bench-planning --guard`).
///
/// Re-runs the full-scale bench three times, keeps each phase's best
/// wall, and compares against the committed `BENCH_planning.json`: the
/// per-phase work totals must match exactly (a drift means the workload
/// changed — regenerate the baseline), and each phase's throughput
/// (candidates/s, or requests/s for the on-line phase) must stay within
/// [`GUARD_MAX_DROP_PCT`] of the baseline. Returns one summary line per
/// phase on success.
pub fn run_planning_guard(baseline: &Value) -> Result<String, String> {
    let threads = usize::try_from(baseline["threads"].as_u64().unwrap_or(1)).unwrap_or(1);
    let runs: Vec<Value> = (0..3)
        .map(|_| run_planning_bench(PlanningScale::full(), threads, false))
        .collect();
    let mut lines = String::new();
    let mut breaches = Vec::new();
    for phase in ["single_region", "whole_file_64", "online_replan"] {
        let work_key = if phase == "online_replan" {
            "requests"
        } else {
            "candidates"
        };
        let base = &baseline["phases"][phase];
        let base_work = base[work_key].as_u64().unwrap_or(0);
        let base_wall = base["wall_s"].as_f64().unwrap_or(0.0);
        if base_work == 0 || base_wall <= 0.0 {
            return Err(format!(
                "baseline phase {phase} is missing {work_key}/wall_s; \
                 regenerate BENCH_planning.json"
            ));
        }
        let meas_work = runs[0]["phases"][phase][work_key].as_u64().unwrap_or(0);
        if meas_work != base_work {
            return Err(format!(
                "{phase} now measures {meas_work} {work_key} but the baseline records \
                 {base_work}; the workload changed — regenerate BENCH_planning.json"
            ));
        }
        let best_wall = runs
            .iter()
            .map(|r| {
                r["phases"][phase]["wall_s"]
                    .as_f64()
                    .unwrap_or(f64::INFINITY)
            })
            .fold(f64::INFINITY, f64::min);
        let base_tput = base_work as f64 / base_wall;
        let meas_tput = meas_work as f64 / best_wall.max(1e-12);
        let drop = 100.0 * (1.0 - meas_tput / base_tput);
        lines.push_str(&format!(
            "{phase:<16} {meas_tput:>12.0} {work_key}/s  (baseline {base_tput:>12.0}, \
             {drop:+.1}% drop)\n"
        ));
        if drop > GUARD_MAX_DROP_PCT {
            breaches.push(format!(
                "{phase} dropped {drop:.1}% below the baseline ({meas_tput:.0} vs \
                 {base_tput:.0} {work_key}/s, budget {GUARD_MAX_DROP_PCT}%)"
            ));
        }
    }
    if breaches.is_empty() {
        Ok(lines)
    } else {
        Err(breaches.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_file_trace_divides_into_one_region_per_phase() {
        let (trace, file_size) = whole_file_trace(64, 32);
        let policy = whole_file_policy(file_size, 64, 1);
        let sorted = trace.sorted_by_offset();
        let regions = divide_regions(&sorted, file_size, &policy.division);
        assert_eq!(regions.len(), 64);
    }

    #[test]
    fn grid_candidates_matches_triangular_form() {
        // step 4 KiB, avg 64 KiB => K = 16 => 17*18/2 + 1 = 154.
        let cfg = OptimizerConfig {
            step: 4 * KB,
            max_grid_points: 128,
            ..OptimizerConfig::default()
        };
        assert_eq!(grid_candidates(64 * KB, &cfg), 154);
    }

    #[test]
    fn online_stream_drifts_every_region() {
        let (mut monitor, stream) = online_setup(4, 12, 1);
        let mut adapted = std::collections::HashSet::new();
        for r in &stream {
            for e in monitor.observe(*r) {
                adapted.insert(e.region);
            }
        }
        assert_eq!(adapted.len(), 4, "every region must re-plan once");
    }
}
