//! Runtime determinism auditor — `harl-cli audit-determinism`.
//!
//! The static analyzer (harl-lint) bans the *patterns* that break
//! bit-determinism; this module audits the *property* itself: it re-runs
//! the pinned scenarios at several thread budgets and two seeds, hashes
//! every artifact a run produces (the report JSON and the recorded
//! metrics JSONL), and fails on any byte difference across thread
//! budgets. For the default seed it additionally byte-compares the
//! report against the committed golden, so golden drift and thread-count
//! sensitivity are caught by one command.
//!
//! Wall-clock series (`harl.optimizer.plan_wall_s`, `sim.profile.*`) are
//! the audited exceptions to determinism — they measure real machine
//! time — so the metrics hash is taken over the JSONL with those lines
//! removed.
//!
//! Artifact hashing is FNV-1a 64: dependency-free, stable across
//! platforms, and streamable (hashing chunk-by-chunk equals hashing the
//! concatenation — pinned by a proptest below).

use harl_repro::scenario::{Scenario, ServeSpec};
use harl_simcore::metrics::MemoryRecorder;
use harl_simcore::{SimContext, SimNanos};
use std::path::Path;
use std::sync::Arc;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a 64 hasher: feeding bytes in any chunking produces
/// the same digest as one shot over the concatenation.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A hasher at the offset basis.
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Absorb `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// The digest of everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot FNV-1a 64 of `bytes`.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// Drop wall-clock metric lines from a metrics JSONL dump: those series
/// measure real machine time by design (they carry the same audited
/// exception in `lint.allow.toml`) and must not poison the artifact hash.
pub fn strip_wall_metrics(jsonl: &str) -> String {
    let mut out = String::with_capacity(jsonl.len());
    for line in jsonl.lines() {
        if line.contains("harl.optimizer.plan_wall_s") || line.contains("sim.profile.") {
            continue;
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// The artifacts one run produces, ready for hashing.
struct Artifact {
    /// The report as pretty JSON plus trailing newline (the exact bytes
    /// `harl-cli run --out` writes, so golden comparison is byte-level).
    report_json: String,
    /// Recorded metrics JSONL with wall-clock series stripped.
    metrics: String,
}

impl Artifact {
    fn hash(&self) -> u64 {
        let mut h = Fnv64::new();
        h.update(self.report_json.as_bytes());
        // Domain separator between the two artifacts.
        h.update(&[0]);
        h.update(self.metrics.as_bytes());
        h.finish()
    }
}

/// Which CLI pipeline a scenario file drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CaseKind {
    /// `harl-cli run` — trace → plan → simulate ([`Scenario`]).
    Run,
    /// `harl-cli serve` — multi-tenant planning service ([`ServeSpec`]).
    Serve,
}

struct Case {
    name: &'static str,
    kind: CaseKind,
    scenario: &'static str,
    golden: &'static str,
}

const CASES: &[Case] = &[
    Case {
        name: "smoke",
        kind: CaseKind::Run,
        scenario: "scenarios/smoke.json",
        golden: "scenarios/smoke.golden.json",
    },
    Case {
        name: "three_tier",
        kind: CaseKind::Run,
        scenario: "scenarios/three_tier.json",
        golden: "scenarios/three_tier.golden.json",
    },
    Case {
        name: "multiapp",
        kind: CaseKind::Serve,
        scenario: "scenarios/multiapp.json",
        golden: "scenarios/multiapp.golden.json",
    },
];

/// The alternate seed every case is re-audited under (the default seed is
/// whatever the scenario file pins).
pub const ALT_SEED: u64 = 0x0005_EED2;

/// Outcome of one audit, ready for rendering and exit-code decisions.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// One human-readable line per (case, seed) row.
    pub lines: Vec<String>,
    /// Human-readable descriptions of every failed check.
    pub failures: Vec<String>,
    /// Runs executed (cases × seeds × thread budgets).
    pub runs: usize,
}

impl AuditReport {
    /// True when every hash agreed and every golden matched.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Render the audit as a human-readable block.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        if self.is_clean() {
            out.push_str(&format!(
                "audit-determinism: {} run(s), all artifacts byte-identical across thread budgets\n",
                self.runs
            ));
        } else {
            for f in &self.failures {
                out.push_str(&format!("audit-determinism FAIL: {f}\n"));
            }
        }
        out
    }
}

fn run_case(
    root: &Path,
    case: &Case,
    seed: Option<u64>,
    threads: usize,
) -> Result<Artifact, String> {
    let path = root.join(case.scenario);
    let memory = Arc::new(MemoryRecorder::new());
    let report_json = match case.kind {
        CaseKind::Run => {
            let scenario = Scenario::from_path(&path).map_err(|e| e.to_string())?;
            let mut ctx = SimContext::recorded(memory.clone())
                .with_threads(threads)
                .with_sample_interval(SimNanos::from_secs_f64(1e-3));
            if let Some(s) = seed {
                ctx = ctx.with_seed(s);
            }
            scenario.run(&ctx)?.to_json_pretty() + "\n"
        }
        CaseKind::Serve => {
            let mut spec = ServeSpec::from_path(&path).map_err(|e| e.to_string())?;
            if let Some(s) = seed {
                spec.traffic.seed = s;
            }
            let ctx = SimContext::recorded(memory.clone()).with_threads(threads);
            spec.run(&ctx)?.to_json_pretty() + "\n"
        }
    };
    let mut buf = Vec::new();
    memory
        .write_jsonl(&mut buf)
        .map_err(|e| format!("metrics serialisation: {e}"))?;
    let jsonl = String::from_utf8(buf).map_err(|e| format!("metrics not UTF-8: {e}"))?;
    Ok(Artifact {
        report_json,
        metrics: strip_wall_metrics(&jsonl),
    })
}

/// Audit one (case, seed) row at every thread budget: all runs must hash
/// identically, and the default-seed report must match the golden bytes.
fn audit_row(
    root: &Path,
    case: &Case,
    seed: Option<u64>,
    threads: &[usize],
    report: &mut AuditReport,
) {
    let seed_label = match seed {
        None => "default".to_string(),
        Some(s) => format!("{s:#x}"),
    };
    let mut hashes: Vec<(usize, u64)> = Vec::new();
    let mut first: Option<Artifact> = None;
    for &t in threads {
        match run_case(root, case, seed, t) {
            Ok(art) => {
                hashes.push((t, art.hash()));
                if first.is_none() {
                    first = Some(art);
                }
                report.runs += 1;
            }
            Err(e) => {
                report
                    .failures
                    .push(format!("{} seed={seed_label} threads={t}: {e}", case.name));
                return;
            }
        }
    }
    let agreed = hashes.iter().all(|&(_, h)| h == hashes[0].1);
    if !agreed {
        let detail: Vec<String> = hashes
            .iter()
            .map(|(t, h)| format!("threads={t} hash={h:#018x}"))
            .collect();
        report.failures.push(format!(
            "{} seed={seed_label}: artifacts differ across thread budgets ({})",
            case.name,
            detail.join(", ")
        ));
    }
    let mut golden_note = String::new();
    if seed.is_none() {
        match std::fs::read_to_string(root.join(case.golden)) {
            Ok(golden) => {
                let matches = first.as_ref().is_some_and(|a| a.report_json == golden);
                if matches {
                    golden_note = ", golden ok".to_string();
                } else {
                    report.failures.push(format!(
                        "{} seed={seed_label}: report differs from {}",
                        case.name, case.golden
                    ));
                }
            }
            Err(e) => report
                .failures
                .push(format!("{}: cannot read {}: {e}", case.name, case.golden)),
        }
    }
    let tlist: Vec<String> = threads.iter().map(|t| t.to_string()).collect();
    report.lines.push(format!(
        "{:<10} seed={:<9} threads {{{}}} hash={:#018x}{}",
        case.name,
        seed_label,
        tlist.join(","),
        hashes[0].1,
        golden_note
    ));
}

/// Run the determinism audit from `root` (the repo checkout holding
/// `scenarios/`).
///
/// The full tier replays all three pinned scenarios at thread budgets
/// {1, 2, 8} under the scenario's own seed and [`ALT_SEED`]; the fast
/// tier (`--fast`, the ci.sh stage) trims to the smoke and multiapp
/// scenarios at budgets {1, 8} under the default seed only.
pub fn run_audit(root: &Path, fast: bool) -> AuditReport {
    let threads: &[usize] = if fast { &[1, 8] } else { &[1, 2, 8] };
    let seeds: &[Option<u64>] = if fast {
        &[None]
    } else {
        &[None, Some(ALT_SEED)]
    };
    let mut report = AuditReport::default();
    for case in CASES {
        if fast && case.name == "three_tier" {
            continue;
        }
        for &seed in seeds {
            audit_row(root, case, seed, threads, &mut report);
        }
    }
    report
}

/// `root` for in-tree tests: the workspace checkout.
#[cfg(test)]
fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors: the empty string hashes to
        // the offset basis; "a" and "foobar" are the classic checks.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn strip_wall_metrics_drops_only_wall_series() {
        let jsonl = "{\"name\":\"pfs.server.bytes\",\"v\":1}\n\
                     {\"name\":\"harl.optimizer.plan_wall_s\",\"v\":0.2}\n\
                     {\"name\":\"sim.profile.dispatch_s\",\"v\":0.1}\n\
                     {\"name\":\"sim.events.dispatched\",\"v\":9}\n";
        let kept = strip_wall_metrics(jsonl);
        assert!(kept.contains("pfs.server.bytes"));
        assert!(kept.contains("sim.events.dispatched"));
        assert!(!kept.contains("plan_wall_s"));
        assert!(!kept.contains("sim.profile."));
    }

    #[test]
    fn artifact_hash_separates_report_and_metrics() {
        // Moving a byte across the report/metrics boundary must change
        // the digest: the domain separator is load-bearing.
        let a = Artifact {
            report_json: "ab".into(),
            metrics: "c".into(),
        };
        let b = Artifact {
            report_json: "a".into(),
            metrics: "bc".into(),
        };
        assert_ne!(a.hash(), b.hash());
    }

    proptest! {
        /// Chunked updates hash identically to one shot — the property
        /// that makes streaming artifact hashing sound.
        #[test]
        fn fnv64_is_chunking_invariant(
            data in prop::collection::vec(any::<u8>(), 0..256),
            cuts in prop::collection::vec(any::<u16>(), 0..8),
        ) {
            let mut bounds: Vec<usize> =
                cuts.iter().map(|&c| c as usize % (data.len() + 1)).collect();
            bounds.push(0);
            bounds.push(data.len());
            bounds.sort_unstable();
            let mut h = Fnv64::new();
            for w in bounds.windows(2) {
                h.update(&data[w[0]..w[1]]);
            }
            prop_assert_eq!(h.finish(), fnv64(&data));
        }
    }

    /// End-to-end: the smoke scenario's artifacts are byte-identical at
    /// 1 and 2 planner threads and the report matches the golden.
    #[test]
    fn smoke_artifacts_are_thread_invariant() {
        let root = workspace_root();
        let case = &CASES[0];
        assert_eq!(case.name, "smoke");
        let mut report = AuditReport::default();
        audit_row(&root, case, None, &[1, 2], &mut report);
        assert!(report.is_clean(), "{:?}", report.failures);
        assert_eq!(report.runs, 2);
    }
}
