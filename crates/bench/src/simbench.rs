//! Engine benchmark: raw event throughput and recorder overhead.
//!
//! The flight-recorder work (phase profiler, sampled time-series, batched
//! histograms) only pays off if observability stays off the critical
//! path. This module pins that down with two numbers per cluster tier:
//!
//! * **events/s** — how fast [`harl_pfs::simulate`] drains its event
//!   queue with a [`NoopRecorder`](harl_simcore::metrics::NoopRecorder)
//!   (the production default);
//! * **recorder overhead** — the wall-time delta of the same run under a
//!   live metrics-mode [`MemoryRecorder`]
//!   ([`TraceDetail::Metrics`]), as a percentage. The budget is < 15%
//!   of the noop wall: the batched per-server histograms and per-op
//!   request counters in `harl_pfs::sim` hold the absolute recorder cost
//!   below ~10 ns per event, and the percentage grew with the
//!   calendar-queue engine only because the noop denominator shrank.
//!   The full flight-recorder mode ([`TraceDetail::Hops`]: one span per
//!   request plus per-hop queueing detail on every sub-request) is
//!   reported separately as `traced_overhead_pct` — it buys a Chrome
//!   trace of every request and is priced accordingly, with no budget.
//!
//! Overhead percentages are clamped at 0: on small tiers the best-of
//! walls sit within scheduler jitter of each other, and a recorded run
//! can measure marginally *faster* than the no-op run. A negative delta
//! is noise, not a speedup, so the tier reports 0 with `"noise": true`
//! rather than committing a nonsense negative baseline.
//!
//! The tiers scale along two axes, not one. `servers` widens the cluster
//! (per-request fan-out equals the server count, so wide tiers stress the
//! fan-out batch path), while `clients` deepens the queues: each client
//! issues synchronous requests, so the number of concurrent clients is
//! exactly the number of in-flight fan-outs and hence the standing depth
//! of the engine's timeline. The 8-server tier runs 64 clients (deep and
//! narrow), the 4096-server tier runs 8 clients over ten million events
//! (wide *and* deep) — between them they cover both failure modes of a
//! calendar queue: dense same-bucket bursts and far-flung sparse windows.
//!
//! The same workload builders feed the `harl-cli bench-sim` command
//! (which writes `BENCH_sim.json`) and the ci.sh smoke test, so the JSON
//! schema cannot rot unnoticed. Event counts are deterministic (the
//! engine dispatch count for a given cluster and workload is seeded
//! simulation state, not wall time), so `events` in the committed
//! baseline is exactly reproducible; only the `*_wall_s` fields are
//! machine-dependent. ci.sh additionally guards the throughput: a quick
//! run whose per-tier events/s falls more than 20% below the committed
//! baseline fails the build (per-event cost is scale-invariant within a
//! tier because the quick scale shrinks request counts, never the
//! cluster shape or client concurrency).

use harl_pfs::{simulate, ClientProgram, ClusterConfig, FileLayout, PhysRequest};
use harl_simcore::metrics::{MemoryRecorder, TraceDetail};
use harl_simcore::{registry, SimContext};
use serde_json::{json, Value};
use std::sync::Arc;
use std::time::Instant;

/// Schema tag written into `BENCH_sim.json`; ci.sh greps for it.
pub const SIM_SCHEMA: &str = "harl.bench.sim.v2";

/// One benchmark tier: a cluster width and a workload depth.
#[derive(Debug, Clone, Copy)]
pub struct SimTier {
    /// Total servers (3:1 HServer:SServer split, see [`tier_cluster`]).
    pub servers: usize,
    /// Concurrent client programs — the queue-depth axis: each client
    /// keeps exactly one whole-round request in flight at all times.
    pub clients: usize,
    /// Synchronous whole-round reads per client at full scale (the
    /// request-scaling axis; quick mode divides this down).
    pub requests_per_client: usize,
}

/// The benchmark tiers. Events per request is `3·servers + 3`, so the
/// full-scale event counts run ≈0.17 M (deep-narrow) to ≈10 M (the
/// 4096-server tier).
pub const SIM_TIERS: [SimTier; 4] = [
    // Deep and narrow: 64 concurrent fan-outs of 8.
    SimTier {
        servers: 8,
        clients: 64,
        requests_per_client: 96,
    },
    SimTier {
        servers: 256,
        clients: 16,
        requests_per_client: 96,
    },
    // The tracked headline tier (matches the pre-v2 384-request shape).
    SimTier {
        servers: 1024,
        clients: 4,
        requests_per_client: 96,
    },
    // Wide and deep: 8 concurrent fan-outs of 4096, ~10^7 events.
    SimTier {
        servers: 4096,
        clients: 8,
        requests_per_client: 102,
    },
];

/// Fixed stripe width; every request spans one full round-robin pass, so
/// the per-request fan-out equals the server count and the event mix is
/// dominated by per-sub-request device events — the engine hot path.
const STRIPE: u64 = 64 * 1024;

/// Instance sizes for one benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct SimScale {
    /// Divide every tier's `requests_per_client` by this (min 1 request).
    pub request_div: usize,
    /// Timed repetitions per configuration (best-of wall time). Tiers
    /// above five million events run at a quarter of this, floored at 2,
    /// to keep the full suite's wall time within reason.
    pub repeats: usize,
}

impl SimScale {
    /// Seconds-scale instance for CI smoke tests.
    pub fn quick() -> Self {
        SimScale {
            request_div: 16,
            repeats: 1,
        }
    }

    /// The tracked-baseline instance (`BENCH_sim.json`).
    pub fn full() -> Self {
        SimScale {
            request_div: 1,
            repeats: 16,
        }
    }

    /// Requests per client for `tier` at this scale.
    pub fn requests_per_client(&self, tier: &SimTier) -> usize {
        (tier.requests_per_client / self.request_div.max(1)).max(1)
    }
}

/// A hybrid cluster with `servers` total servers (3:1 H:S, minimum one
/// SServer — the paper's 6+2 testbed ratio carried up the tiers).
pub fn tier_cluster(servers: usize) -> ClusterConfig {
    let sservers = (servers / 4).max(1);
    ClusterConfig::hybrid(servers - sservers, sservers)
}

/// The benchmark workload for one tier: each client issues sequential
/// whole-stripe-round reads over a disjoint slice of one shared file.
pub fn tier_workload(tier: &SimTier, scale: &SimScale) -> (FileLayout, Vec<ClientProgram>) {
    let cluster = tier_cluster(tier.servers);
    let file = FileLayout::fixed(&cluster, STRIPE);
    let span = STRIPE * cluster.server_count() as u64;
    let rpc = scale.requests_per_client(tier) as u64;
    let progs = (0..tier.clients)
        .map(|c| {
            let mut p = ClientProgram::new();
            for i in 0..rpc {
                let offset = (c as u64 * rpc + i) * span;
                p.push_request(PhysRequest::read(0, offset, span));
            }
            p
        })
        .collect();
    (file, progs)
}

/// Best-of-`repeats` wall time of each mode, in seconds.
///
/// The modes are interleaved round-robin (noop, recorded, traced, noop,
/// …) rather than timed back-to-back, so slow drift in machine state
/// (frequency scaling, cache pressure from a neighbour) perturbs every
/// mode equally instead of biasing whichever ran last; an untimed warm-up
/// run absorbs first-touch page faults. Overhead percentages are ratios
/// of these minima.
fn best_walls<const N: usize>(repeats: usize, mut modes: [&mut dyn FnMut(); N]) -> [f64; N] {
    for run in modes.iter_mut() {
        run();
    }
    let mut best = [f64::INFINITY; N];
    for _ in 0..repeats.max(1) {
        for (slot, run) in best.iter_mut().zip(modes.iter_mut()) {
            let start = Instant::now();
            run();
            *slot = slot.min(start.elapsed().as_secs_f64());
        }
    }
    best
}

/// Run every tier at the given scale, returning the `BENCH_sim.json`
/// document.
pub fn run_sim_bench(scale: SimScale, quick: bool) -> Value {
    let mut tiers = Vec::new();
    let mut max_overhead = 0.0f64;
    for tier in &SIM_TIERS {
        let cluster = tier_cluster(tier.servers);
        let (file, progs) = tier_workload(tier, &scale);
        let files = [file];

        // One recorded run up front pins the deterministic event count
        // (identical under Noop and Memory recorders: recording adds no
        // events unless sampling is enabled, and it is not here).
        let memory = Arc::new(MemoryRecorder::new());
        let report = simulate(
            &SimContext::recorded(memory.clone()),
            &cluster,
            &files,
            &progs,
        );
        let events = memory.counter_value(registry::SIM_EVENTS_DISPATCHED.name, &[]);
        assert!(events > 0, "engine must dispatch events");

        let repeats = if events >= 5_000_000 {
            (scale.repeats / 4).max(2).min(scale.repeats.max(1))
        } else {
            scale.repeats
        };
        let [noop_wall, recorded_wall, traced_wall] = best_walls(
            repeats,
            [
                &mut || {
                    simulate(&SimContext::new(), &cluster, &files, &progs);
                },
                &mut || {
                    let m = Arc::new(MemoryRecorder::metrics_only());
                    simulate(&SimContext::recorded(m), &cluster, &files, &progs);
                },
                &mut || {
                    let m = Arc::new(MemoryRecorder::with_detail(TraceDetail::Hops));
                    simulate(&SimContext::recorded(m), &cluster, &files, &progs);
                },
            ],
        );
        // Best-of walls are noisy enough that the recorded run can
        // occasionally beat the no-op run on small tiers; a negative
        // overhead is measurement noise, not a speedup. Clamp to 0 and
        // flag the sample so the committed baseline stays meaningful.
        let raw_overhead_pct = (recorded_wall - noop_wall) / noop_wall.max(1e-12) * 100.0;
        let raw_traced_pct = (traced_wall - noop_wall) / noop_wall.max(1e-12) * 100.0;
        let noisy = raw_overhead_pct < 0.0 || raw_traced_pct < 0.0;
        let overhead_pct = raw_overhead_pct.max(0.0);
        let traced_pct = raw_traced_pct.max(0.0);
        max_overhead = max_overhead.max(overhead_pct);

        let rpc = scale.requests_per_client(tier);
        tiers.push(json!({
            "servers": tier.servers,
            "hservers": cluster.server_count() - (tier.servers / 4).max(1),
            "sservers": (tier.servers / 4).max(1),
            "clients": tier.clients,
            "requests_per_client": rpc,
            "requests": tier.clients * rpc,
            "requests_completed": report.requests_completed,
            "events": events,
            "noop_wall_s": noop_wall,
            "recorded_wall_s": recorded_wall,
            "traced_wall_s": traced_wall,
            "events_per_s": events as f64 / noop_wall.max(1e-12),
            "recorder_overhead_pct": overhead_pct,
            "traced_overhead_pct": traced_pct,
            "noise": noisy,
        }));
    }
    json!({
        "schema": SIM_SCHEMA,
        "mode": if quick { "quick" } else { "full" },
        "tiers": tiers,
        "max_recorder_overhead_pct": max_overhead,
    })
}

/// Maximum tolerated events/s drop versus the committed baseline: the
/// ci.sh regression guard fails any tier measuring below 80% of
/// `BENCH_sim.json`.
pub const GUARD_MAX_DROP_PCT: f64 = 20.0;

/// The ci.sh throughput regression guard (`harl-cli bench-sim --guard`).
///
/// Runs every tier at **full** scale but in noop mode only (best of two
/// timed repeats after a warm-up — the cheapest measurement that is
/// still apples-to-apples with the committed baseline; quick-scale runs
/// are dominated by per-run cluster construction and undershoot by up to
/// 2×). Fails if any tier's event count drifts from the baseline (the
/// workload changed — regenerate) or its events/s drops more than
/// [`GUARD_MAX_DROP_PCT`] below the baseline. Returns one summary line
/// per tier on success.
pub fn run_sim_guard(baseline: &Value) -> Result<String, String> {
    let scale = SimScale::full();
    let base_tiers = baseline["tiers"]
        .as_array()
        .ok_or("baseline has no tiers array")?;
    let mut lines = String::new();
    let mut breaches = Vec::new();
    for tier in &SIM_TIERS {
        let base = base_tiers
            .iter()
            .find(|t| t["servers"].as_u64() == Some(tier.servers as u64))
            .ok_or_else(|| {
                format!(
                    "baseline has no {}-server tier; regenerate BENCH_sim.json",
                    tier.servers
                )
            })?;
        let base_eps = base["events_per_s"].as_f64().unwrap_or(0.0);
        if base_eps <= 0.0 {
            return Err(format!(
                "baseline {}-server events_per_s is not positive",
                tier.servers
            ));
        }
        let base_events = base["events"].as_u64().unwrap_or(0);

        let cluster = tier_cluster(tier.servers);
        let (file, progs) = tier_workload(tier, &scale);
        let files = [file];
        let memory = Arc::new(MemoryRecorder::new());
        simulate(
            &SimContext::recorded(memory.clone()),
            &cluster,
            &files,
            &progs,
        );
        let events = memory.counter_value(registry::SIM_EVENTS_DISPATCHED.name, &[]);
        if events != base_events {
            return Err(format!(
                "{}-server tier dispatches {events} events but the baseline records \
                 {base_events}; the workload changed — regenerate BENCH_sim.json",
                tier.servers
            ));
        }

        // Small tiers have millisecond walls where scheduler noise can
        // alone exceed the budget; buy them more repeats (still < ~0.2 s
        // per tier) so best-of converges.
        let repeats = usize::try_from(4_000_000 / events.max(1))
            .unwrap_or(2)
            .clamp(2, 8);
        let [noop] = best_walls(
            repeats,
            [&mut || {
                simulate(&SimContext::new(), &cluster, &files, &progs);
            }],
        );
        let eps = events as f64 / noop.max(1e-12);
        let ratio = eps / base_eps;
        lines.push_str(&format!(
            "{:>5} servers  {eps:>12.0} events/s  ({:.0}% of baseline)\n",
            tier.servers,
            ratio * 100.0
        ));
        if ratio < 1.0 - GUARD_MAX_DROP_PCT / 100.0 {
            breaches.push(format!(
                "{} servers at {:.0}% of baseline ({eps:.0} vs {base_eps:.0} events/s)",
                tier.servers,
                ratio * 100.0
            ));
        }
    }
    if breaches.is_empty() {
        Ok(lines)
    } else {
        Err(format!(
            "events/s regression beyond {GUARD_MAX_DROP_PCT}% of the committed baseline:\n  {}",
            breaches.join("\n  ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_clusters_keep_the_ratio() {
        for tier in &SIM_TIERS {
            let c = tier_cluster(tier.servers);
            assert_eq!(c.server_count(), tier.servers);
        }
        // The smallest tier is exactly the paper's 6+2 testbed shape.
        assert_eq!(tier_cluster(8).server_count(), 8);
    }

    #[test]
    fn tiers_scale_requests_not_just_width() {
        let full = SimScale::full();
        let requests: Vec<usize> = SIM_TIERS
            .iter()
            .map(|t| t.clients * full.requests_per_client(t))
            .collect();
        // The request axis must actually vary across tiers (the pre-v2
        // bench pinned every tier at 384 requests).
        assert!(requests.windows(2).any(|w| w[0] != w[1]), "{requests:?}");
        // The wide tier must clear ten million events: 3·servers + 3
        // events per whole-round read request.
        let wide = &SIM_TIERS[3];
        let events = wide.clients as u64
            * full.requests_per_client(wide) as u64
            * (3 * wide.servers as u64 + 3);
        assert!(events >= 10_000_000, "wide tier only schedules {events}");
    }

    #[test]
    fn tier_workload_requests_span_every_server() {
        let tier = &SIM_TIERS[0];
        let scale = SimScale::quick();
        let (file, progs) = tier_workload(tier, &scale);
        assert_eq!(progs.len(), tier.clients);
        let cluster = tier_cluster(tier.servers);
        let memory = Arc::new(MemoryRecorder::new());
        let report = simulate(
            &SimContext::recorded(memory.clone()),
            &cluster,
            &[file],
            &progs,
        );
        assert_eq!(
            report.requests_completed,
            (tier.clients * scale.requests_per_client(tier)) as u64
        );
        // Whole-round reads touch every server.
        for s in &report.servers {
            assert!(s.bytes > 0, "server {} saw no bytes", s.id);
        }
    }

    #[test]
    fn quick_bench_document_has_the_schema_shape() {
        // An extra-small instance (debug-build CI runs this in-process).
        let scale = SimScale {
            request_div: 48,
            repeats: 1,
        };
        let doc = run_sim_bench(scale, true);
        assert_eq!(doc["schema"].as_str(), Some(SIM_SCHEMA));
        assert_eq!(doc["mode"].as_str(), Some("quick"));
        let tiers = doc["tiers"].as_array().expect("tiers array");
        assert_eq!(tiers.len(), SIM_TIERS.len());
        for (tier, spec) in tiers.iter().zip(&SIM_TIERS) {
            assert_eq!(tier["servers"].as_u64(), Some(spec.servers as u64));
            assert_eq!(tier["clients"].as_u64(), Some(spec.clients as u64));
            assert!(tier["events"].as_u64().unwrap_or(0) > 0);
            assert!(tier["events_per_s"].as_f64().unwrap_or(0.0) > 0.0);
        }
        assert!(doc["max_recorder_overhead_pct"].as_f64().is_some());
    }

    #[test]
    fn event_counts_are_deterministic() {
        let scale = SimScale::quick();
        let count = |_: ()| {
            let tier = &SIM_TIERS[0];
            let (file, progs) = tier_workload(tier, &scale);
            let cluster = tier_cluster(tier.servers);
            let memory = Arc::new(MemoryRecorder::new());
            simulate(
                &SimContext::recorded(memory.clone()),
                &cluster,
                &[file],
                &progs,
            );
            memory.counter_value(registry::SIM_EVENTS_DISPATCHED.name, &[])
        };
        assert_eq!(count(()), count(()));
    }
}
