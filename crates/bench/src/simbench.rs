//! Engine benchmark: raw event throughput and recorder overhead.
//!
//! The flight-recorder work (phase profiler, sampled time-series, batched
//! histograms) only pays off if observability stays off the critical
//! path. This module pins that down with two numbers per cluster tier:
//!
//! * **events/s** — how fast [`harl_pfs::simulate`] drains its event
//!   queue with a [`NoopRecorder`](harl_simcore::metrics::NoopRecorder)
//!   (the production default), at 8, 256 and 1024 servers;
//! * **recorder overhead** — the wall-time delta of the same run under a
//!   live metrics-mode [`MemoryRecorder`]
//!   ([`TraceDetail::Metrics`]), as a percentage. The budget is < 5%;
//!   the batched per-server histograms and per-op request counters in
//!   `harl_pfs::sim` exist to keep the per-event recorder cost at zero.
//!   The full flight-recorder mode ([`TraceDetail::Hops`]: one span per
//!   request plus per-hop queueing detail on every sub-request) is
//!   reported separately as `traced_overhead_pct` — it buys a Chrome
//!   trace of every request and is priced accordingly, with no budget.
//!
//! The same workload builders feed the `harl-cli bench-sim` command
//! (which writes `BENCH_sim.json`) and the ci.sh smoke test, so the JSON
//! schema cannot rot unnoticed. Event counts are deterministic (the
//! engine dispatch count for a given cluster and workload is seeded
//! simulation state, not wall time), so `events` in the committed
//! baseline is exactly reproducible; only the `*_wall_s` fields are
//! machine-dependent.

use harl_pfs::{simulate, ClientProgram, ClusterConfig, FileLayout, PhysRequest};
use harl_simcore::metrics::{MemoryRecorder, TraceDetail};
use harl_simcore::{registry, SimContext};
use serde_json::{json, Value};
use std::sync::Arc;
use std::time::Instant;

/// Schema tag written into `BENCH_sim.json`; ci.sh greps for it.
pub const SIM_SCHEMA: &str = "harl.bench.sim.v1";

/// Cluster sizes exercised by the benchmark (3:1 HServer:SServer split).
pub const SERVER_TIERS: [usize; 3] = [8, 256, 1024];

/// Fixed stripe width; every request spans one full round-robin pass, so
/// the per-request fan-out equals the server count and the event mix is
/// dominated by per-sub-request device events — the engine hot path.
const STRIPE: u64 = 64 * 1024;

/// Instance sizes for one benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct SimScale {
    /// Concurrent client programs.
    pub clients: usize,
    /// Synchronous whole-stripe reads per client.
    pub requests_per_client: usize,
    /// Timed repetitions per configuration (best-of wall time).
    pub repeats: usize,
}

impl SimScale {
    /// Seconds-scale instance for CI smoke tests.
    pub fn quick() -> Self {
        SimScale {
            clients: 2,
            requests_per_client: 16,
            repeats: 1,
        }
    }

    /// The tracked-baseline instance (`BENCH_sim.json`).
    pub fn full() -> Self {
        SimScale {
            clients: 4,
            requests_per_client: 96,
            repeats: 16,
        }
    }
}

/// A hybrid cluster with `servers` total servers (3:1 H:S, minimum one
/// SServer — the paper's 6+2 testbed ratio carried up the tiers).
pub fn tier_cluster(servers: usize) -> ClusterConfig {
    let sservers = (servers / 4).max(1);
    ClusterConfig::hybrid(servers - sservers, sservers)
}

/// The benchmark workload for `cluster`: each client issues sequential
/// whole-stripe-round reads over a disjoint slice of one shared file.
pub fn tier_workload(
    cluster: &ClusterConfig,
    scale: &SimScale,
) -> (FileLayout, Vec<ClientProgram>) {
    let file = FileLayout::fixed(cluster, STRIPE);
    let span = STRIPE * cluster.server_count() as u64;
    let progs = (0..scale.clients)
        .map(|c| {
            let mut p = ClientProgram::new();
            for i in 0..scale.requests_per_client as u64 {
                let offset = (c as u64 * scale.requests_per_client as u64 + i) * span;
                p.push_request(PhysRequest::read(0, offset, span));
            }
            p
        })
        .collect();
    (file, progs)
}

/// Best-of-`repeats` wall time of each mode, in seconds.
///
/// The modes are interleaved round-robin (noop, recorded, traced, noop,
/// …) rather than timed back-to-back, so slow drift in machine state
/// (frequency scaling, cache pressure from a neighbour) perturbs every
/// mode equally instead of biasing whichever ran last; an untimed warm-up
/// run absorbs first-touch page faults. Overhead percentages are ratios
/// of these minima.
fn best_walls<const N: usize>(repeats: usize, mut modes: [&mut dyn FnMut(); N]) -> [f64; N] {
    for run in modes.iter_mut() {
        run();
    }
    let mut best = [f64::INFINITY; N];
    for _ in 0..repeats.max(1) {
        for (slot, run) in best.iter_mut().zip(modes.iter_mut()) {
            let start = Instant::now();
            run();
            *slot = slot.min(start.elapsed().as_secs_f64());
        }
    }
    best
}

/// Run every tier at the given scale, returning the `BENCH_sim.json`
/// document.
pub fn run_sim_bench(scale: SimScale, quick: bool) -> Value {
    let mut tiers = Vec::new();
    let mut max_overhead = 0.0f64;
    for &servers in &SERVER_TIERS {
        let cluster = tier_cluster(servers);
        let (file, progs) = tier_workload(&cluster, &scale);
        let files = [file];

        // One recorded run up front pins the deterministic event count
        // (identical under Noop and Memory recorders: recording adds no
        // events unless sampling is enabled, and it is not here).
        let memory = Arc::new(MemoryRecorder::new());
        let report = simulate(
            &SimContext::recorded(memory.clone()),
            &cluster,
            &files,
            &progs,
        );
        let events = memory.counter_value(registry::SIM_EVENTS_DISPATCHED.name, &[]);
        assert!(events > 0, "engine must dispatch events");

        let [noop_wall, recorded_wall, traced_wall] = best_walls(
            scale.repeats,
            [
                &mut || {
                    simulate(&SimContext::new(), &cluster, &files, &progs);
                },
                &mut || {
                    let m = Arc::new(MemoryRecorder::metrics_only());
                    simulate(&SimContext::recorded(m), &cluster, &files, &progs);
                },
                &mut || {
                    let m = Arc::new(MemoryRecorder::with_detail(TraceDetail::Hops));
                    simulate(&SimContext::recorded(m), &cluster, &files, &progs);
                },
            ],
        );
        let overhead_pct = (recorded_wall - noop_wall) / noop_wall.max(1e-12) * 100.0;
        let traced_pct = (traced_wall - noop_wall) / noop_wall.max(1e-12) * 100.0;
        max_overhead = max_overhead.max(overhead_pct);

        tiers.push(json!({
            "servers": servers,
            "hservers": cluster.server_count() - (servers / 4).max(1),
            "sservers": (servers / 4).max(1),
            "requests": scale.clients * scale.requests_per_client,
            "requests_completed": report.requests_completed,
            "events": events,
            "noop_wall_s": noop_wall,
            "recorded_wall_s": recorded_wall,
            "traced_wall_s": traced_wall,
            "events_per_s": events as f64 / noop_wall.max(1e-12),
            "recorder_overhead_pct": overhead_pct,
            "traced_overhead_pct": traced_pct,
        }));
    }
    json!({
        "schema": SIM_SCHEMA,
        "mode": if quick { "quick" } else { "full" },
        "tiers": tiers,
        "max_recorder_overhead_pct": max_overhead,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_clusters_keep_the_ratio() {
        for &n in &SERVER_TIERS {
            let c = tier_cluster(n);
            assert_eq!(c.server_count(), n);
        }
        // The smallest tier is exactly the paper's 6+2 testbed shape.
        assert_eq!(tier_cluster(8).server_count(), 8);
    }

    #[test]
    fn tier_workload_requests_span_every_server() {
        let cluster = tier_cluster(8);
        let scale = SimScale::quick();
        let (file, progs) = tier_workload(&cluster, &scale);
        assert_eq!(progs.len(), scale.clients);
        let memory = Arc::new(MemoryRecorder::new());
        let report = simulate(
            &SimContext::recorded(memory.clone()),
            &cluster,
            &[file],
            &progs,
        );
        assert_eq!(
            report.requests_completed,
            (scale.clients * scale.requests_per_client) as u64
        );
        // Whole-round reads touch every server.
        for s in &report.servers {
            assert!(s.bytes > 0, "server {} saw no bytes", s.id);
        }
    }

    #[test]
    fn quick_bench_document_has_the_schema_shape() {
        let doc = run_sim_bench(SimScale::quick(), true);
        assert_eq!(doc["schema"].as_str(), Some(SIM_SCHEMA));
        assert_eq!(doc["mode"].as_str(), Some("quick"));
        let tiers = doc["tiers"].as_array().expect("tiers array");
        assert_eq!(tiers.len(), SERVER_TIERS.len());
        for (tier, &servers) in tiers.iter().zip(&SERVER_TIERS) {
            assert_eq!(tier["servers"].as_u64(), Some(servers as u64));
            assert!(tier["events"].as_u64().unwrap_or(0) > 0);
            assert!(tier["events_per_s"].as_f64().unwrap_or(0.0) > 0.0);
        }
        assert!(doc["max_recorder_overhead_pct"].as_f64().is_some());
    }

    #[test]
    fn event_counts_are_deterministic() {
        let scale = SimScale::quick();
        let count = |_: ()| {
            let cluster = tier_cluster(8);
            let (file, progs) = tier_workload(&cluster, &scale);
            let memory = Arc::new(MemoryRecorder::new());
            simulate(
                &SimContext::recorded(memory.clone()),
                &cluster,
                &[file],
                &progs,
            );
            memory.counter_value(registry::SIM_EVENTS_DISPATCHED.name, &[])
        };
        assert_eq!(count(()), count(()));
    }
}
