//! Fig. 12 benchmark: BTIO with collective I/O.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use harl_bench::support::{plan_for, run_once};
use harl_core::RegionStripeTable;
use harl_pfs::ClusterConfig;
use harl_workloads::BtioConfig;
use std::hint::black_box;

fn fig12(c: &mut Criterion) {
    let cluster = ClusterConfig::paper_default();
    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);

    for procs in [4usize, 16] {
        let mut cfg = BtioConfig::paper_default(procs);
        cfg.grid = 32; // miniature grid for bench iterations
        let w = cfg.build();
        let default = RegionStripeTable::single(cfg.file_size(), 64 * 1024, 64 * 1024);
        let harl_rst = plan_for(&cluster, &w);
        group.bench_with_input(BenchmarkId::new("default", procs), &w, |b, w| {
            b.iter(|| black_box(run_once(&cluster, &default, w)))
        });
        group.bench_with_input(BenchmarkId::new("harl", procs), &w, |b, w| {
            b.iter(|| black_box(run_once(&cluster, &harl_rst, w)))
        });
    }
    group.finish();
}

criterion_group!(benches, fig12);
criterion_main!(benches);
