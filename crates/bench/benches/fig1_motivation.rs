//! Fig. 1 benchmark: the motivation runs — per-server imbalance under the
//! 64 KiB default (a) and the request-size x stripe-size sweep (b).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use harl_bench::support::{bench_ior, run_once};
use harl_core::RegionStripeTable;
use harl_devices::OpKind;
use harl_pfs::ClusterConfig;
use std::hint::black_box;

fn fig1(c: &mut Criterion) {
    let cluster = ClusterConfig::paper_default();
    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);

    // (a) default layout, 512 KiB requests.
    let w = bench_ior(OpKind::Read, 16, 512 * 1024);
    let rst = RegionStripeTable::single(64 << 20, 64 * 1024, 64 * 1024);
    group.bench_function("a_default_64K", |b| {
        b.iter(|| black_box(run_once(&cluster, &rst, &w)))
    });

    // (b) one representative cell per sweep axis.
    for (req_k, stripe_k) in [(128u64, 16u64), (512, 64), (2048, 2048)] {
        let w = bench_ior(OpKind::Read, 16, req_k * 1024);
        let rst = RegionStripeTable::single(64 << 20, stripe_k * 1024, stripe_k * 1024);
        group.bench_with_input(
            BenchmarkId::new("b_sweep", format!("req{req_k}K_stripe{stripe_k}K")),
            &(w, rst),
            |b, (w, rst)| b.iter(|| black_box(run_once(&cluster, rst, w))),
        );
    }
    group.finish();
}

criterion_group!(benches, fig1);
criterion_main!(benches);
