//! Fig. 11 benchmark: the non-uniform four-region workload, including the
//! region-division pass it exercises.

use criterion::{criterion_group, criterion_main, Criterion};
use harl_bench::support::{bench_harl, plan_for, run_once};
use harl_core::{LayoutPolicy, RegionStripeTable};
use harl_devices::OpKind;
use harl_middleware::{collect_trace_lowered, CollectiveConfig};
use harl_pfs::ClusterConfig;
use harl_simcore::SimContext;
use harl_workloads::MultiRegionIorConfig;
use std::hint::black_box;

fn fig11(c: &mut Criterion) {
    let cluster = ClusterConfig::paper_default();
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);

    // 1/128 of paper scale keeps each simulated run around 100 ms.
    let w = MultiRegionIorConfig::paper_default(OpKind::Read, 1.0 / 128.0).build();
    let file_size = w.extent().max(1);
    let default = RegionStripeTable::single(file_size, 64 * 1024, 64 * 1024);
    let harl_rst = plan_for(&cluster, &w);

    group.bench_function("default_64K", |b| {
        b.iter(|| black_box(run_once(&cluster, &default, &w)))
    });
    group.bench_function("harl", |b| {
        b.iter(|| black_box(run_once(&cluster, &harl_rst, &w)))
    });

    let trace = collect_trace_lowered(&cluster, &w, &CollectiveConfig::default());
    let mut policy = bench_harl(&cluster);
    policy.division.fixed_region_size = 2 << 20;
    group.bench_function("region_division_and_planning", |b| {
        b.iter(|| black_box(policy.plan(&SimContext::new(), &trace, file_size)))
    });
    group.finish();
}

criterion_group!(benches, fig11);
criterion_main!(benches);
