//! Component bench: the Sec. III-D cost model evaluation (the inner loop
//! of Algorithm 2 — millions of calls per plan).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use harl_core::{server_loads, CostModelParams};
use harl_devices::OpKind;
use harl_pfs::ClusterConfig;
use std::hint::black_box;

fn costmodel(c: &mut Criterion) {
    let model = CostModelParams::from_cluster(&ClusterConfig::paper_default());
    let mut group = c.benchmark_group("costmodel");

    group.throughput(Throughput::Elements(1));
    for (h_k, s_k) in [(32u64, 160u64), (0, 64), (2048, 2048)] {
        group.bench_with_input(
            BenchmarkId::new("request_cost", format!("{h_k}K_{s_k}K")),
            &(h_k * 1024, s_k * 1024),
            |b, &(h, s)| {
                let mut offset = 0u64;
                b.iter(|| {
                    offset = (offset + 512 * 1024) % (1 << 30);
                    black_box(model.request_cost(offset, 512 * 1024, OpKind::Read, h, s))
                })
            },
        );
    }

    group.bench_function("server_loads", |b| {
        let mut offset = 0u64;
        b.iter(|| {
            offset = (offset + 512 * 1024) % (1 << 30);
            black_box(server_loads(
                offset,
                512 * 1024,
                6,
                32 * 1024,
                2,
                160 * 1024,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, costmodel);
criterion_main!(benches);
