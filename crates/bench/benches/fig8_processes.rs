//! Fig. 8 benchmark: scaling the process count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use harl_bench::support::{bench_ior, plan_for, run_once, BENCH_FILE};
use harl_core::RegionStripeTable;
use harl_devices::OpKind;
use harl_pfs::ClusterConfig;
use std::hint::black_box;

fn fig8(c: &mut Criterion) {
    let cluster = ClusterConfig::paper_default();
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(BENCH_FILE));

    for procs in [8usize, 32, 128] {
        let w = bench_ior(OpKind::Read, procs, 512 * 1024);
        let default = RegionStripeTable::single(BENCH_FILE, 64 * 1024, 64 * 1024);
        let harl_rst = plan_for(&cluster, &w);
        group.bench_with_input(BenchmarkId::new("default", procs), &w, |b, w| {
            b.iter(|| black_box(run_once(&cluster, &default, w)))
        });
        group.bench_with_input(BenchmarkId::new("harl", procs), &w, |b, w| {
            b.iter(|| black_box(run_once(&cluster, &harl_rst, w)))
        });
    }
    group.finish();
}

criterion_group!(benches, fig8);
criterion_main!(benches);
