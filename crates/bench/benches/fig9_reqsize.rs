//! Fig. 9 benchmark: request-size sensitivity (128 KiB vs 1024 KiB).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use harl_bench::support::{bench_ior, plan_for, run_once, BENCH_FILE};
use harl_core::RegionStripeTable;
use harl_devices::OpKind;
use harl_pfs::ClusterConfig;
use std::hint::black_box;

fn fig9(c: &mut Criterion) {
    let cluster = ClusterConfig::paper_default();
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);

    for req_k in [128u64, 1024] {
        let w = bench_ior(OpKind::Read, 16, req_k * 1024);
        let default = RegionStripeTable::single(BENCH_FILE, 64 * 1024, 64 * 1024);
        let harl_rst = plan_for(&cluster, &w);
        group.bench_with_input(BenchmarkId::new("default", req_k), &w, |b, w| {
            b.iter(|| black_box(run_once(&cluster, &default, w)))
        });
        group.bench_with_input(BenchmarkId::new("harl", req_k), &w, |b, w| {
            b.iter(|| black_box(run_once(&cluster, &harl_rst, w)))
        });
    }
    group.finish();
}

criterion_group!(benches, fig9);
criterion_main!(benches);
