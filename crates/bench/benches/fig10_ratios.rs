//! Fig. 10 benchmark: HServer:SServer ratio sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use harl_bench::support::{bench_ior, plan_for, run_once, BENCH_FILE};
use harl_core::RegionStripeTable;
use harl_devices::OpKind;
use harl_pfs::ClusterConfig;
use std::hint::black_box;

fn fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);

    for (m, n) in [(7usize, 1usize), (6, 2), (2, 6)] {
        let cluster = ClusterConfig::hybrid(m, n);
        let w = bench_ior(OpKind::Read, 16, 512 * 1024);
        let default = RegionStripeTable::single(BENCH_FILE, 64 * 1024, 64 * 1024);
        let harl_rst = plan_for(&cluster, &w);
        let label = format!("{m}H{n}S");
        group.bench_with_input(BenchmarkId::new("default", &label), &w, |b, w| {
            b.iter(|| black_box(run_once(&cluster, &default, w)))
        });
        group.bench_with_input(BenchmarkId::new("harl", &label), &w, |b, w| {
            b.iter(|| black_box(run_once(&cluster, &harl_rst, w)))
        });
    }
    group.finish();
}

criterion_group!(benches, fig10);
criterion_main!(benches);
