//! Component bench: the planning hot path end to end — one region's grid
//! search, a 64-region whole-file plan, and an on-line re-plan sweep.
//!
//! The tracked wall-time trajectory lives in `BENCH_planning.json`
//! (`harl-cli bench-planning --json`); this group gives the statistically
//! robust per-phase numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use harl_bench::planning::{
    online_setup, planning_model, single_region_records, whole_file_policy, whole_file_trace,
    PlanningScale,
};
use harl_core::{optimize_region, LayoutPolicy, OptimizerConfig, RegionRequests};
use harl_simcore::SimContext;
use std::hint::black_box;

fn planning(c: &mut Criterion) {
    let scale = PlanningScale::quick();
    let model = planning_model();
    let mut group = c.benchmark_group("planning");
    group.sample_size(10);

    let records = single_region_records(scale.single_region_requests);
    let reqs = RegionRequests::new(&records, 0);
    for threads in [1usize, 4] {
        let cfg = OptimizerConfig {
            threads,
            ..OptimizerConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("single_region_grid", threads),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    black_box(optimize_region(
                        &SimContext::new(),
                        &model,
                        &reqs,
                        512 * 1024,
                        cfg,
                        0,
                    ))
                })
            },
        );
    }

    let (trace, file_size) = whole_file_trace(scale.regions, scale.requests_per_region);
    for threads in [1usize, 4] {
        let policy = whole_file_policy(file_size, scale.regions, threads);
        group.bench_with_input(
            BenchmarkId::new("whole_file_plan_64", threads),
            &policy,
            |b, policy| b.iter(|| black_box(policy.plan(&SimContext::new(), &trace, file_size))),
        );
    }

    group.bench_function("online_replan_64", |b| {
        b.iter(|| {
            let (mut monitor, stream) = online_setup(scale.regions, scale.online_rounds, 1);
            let mut adaptations = 0usize;
            for r in &stream {
                adaptations += monitor.observe(*r).len();
            }
            black_box(adaptations)
        })
    });
    group.finish();
}

criterion_group!(benches, planning);
criterion_main!(benches);
