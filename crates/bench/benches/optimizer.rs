//! Component bench: Algorithm 2's grid search (sequential vs parallel) and
//! Algorithm 1's region division.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use harl_core::{
    divide_regions, optimize_region, CostModelParams, OptimizerConfig, RegionDivisionConfig,
    RegionRequests, TraceRecord,
};
use harl_devices::OpKind;
use harl_pfs::ClusterConfig;
use harl_simcore::{MemoryRecorder, SimContext, SimNanos};
use std::hint::black_box;
use std::sync::Arc;

fn records(n: usize, size: u64) -> Vec<TraceRecord> {
    (0..n)
        .map(|i| TraceRecord {
            rank: (i % 16) as u32,
            fd: 0,
            op: OpKind::Read,
            offset: i as u64 * size,
            size,
            timestamp: SimNanos::from_nanos(i as u64),
        })
        .collect()
}

fn optimizer(c: &mut Criterion) {
    let model = CostModelParams::from_cluster(&ClusterConfig::paper_default());
    let mut group = c.benchmark_group("optimizer");
    group.sample_size(10);

    let recs = records(1024, 512 * 1024);
    let reqs = RegionRequests::new(&recs, 0);
    for threads in [1usize, 4] {
        let cfg = OptimizerConfig {
            threads,
            max_requests_per_eval: 256,
            ..OptimizerConfig::default()
        };
        let ctx = SimContext::new();
        group.bench_with_input(BenchmarkId::new("grid_512K", threads), &cfg, |b, cfg| {
            b.iter(|| black_box(optimize_region(&ctx, &model, &reqs, 512 * 1024, cfg, 0)))
        });
        // Same search under an enabled in-memory recorder: the instrumented
        // path must track grid_512K within noise (the observability
        // acceptance bar — instrumentation stays off the hot loop).
        let recorded = SimContext::recorded(Arc::new(MemoryRecorder::new()));
        group.bench_with_input(
            BenchmarkId::new("grid_512K_memory_recorder", threads),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    black_box(optimize_region(
                        &recorded,
                        &model,
                        &reqs,
                        512 * 1024,
                        cfg,
                        0,
                    ))
                })
            },
        );
    }

    // Region division over a large trace.
    let mut mixed = records(4096, 128 * 1024);
    let base = mixed.last().map_or(0, |r| r.offset + r.size);
    mixed.extend(records(4096, 1024 * 1024).into_iter().map(|mut r| {
        r.offset += base;
        r
    }));
    group.bench_function("region_division_8k_requests", |b| {
        b.iter(|| {
            black_box(divide_regions(
                &mixed,
                base * 10,
                &RegionDivisionConfig::default(),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, optimizer);
criterion_main!(benches);
