//! Fig. 7 benchmark: IOR under the default, the best fixed stripe, and the
//! HARL plan (plus the cost of planning itself).

use criterion::{criterion_group, criterion_main, Criterion};
use harl_bench::support::{bench_harl, bench_ior, plan_for, run_once};
use harl_core::{LayoutPolicy, RegionStripeTable};
use harl_devices::OpKind;
use harl_middleware::{collect_trace_lowered, CollectiveConfig};
use harl_pfs::ClusterConfig;
use harl_simcore::SimContext;
use std::hint::black_box;

fn fig7(c: &mut Criterion) {
    let cluster = ClusterConfig::paper_default();
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);

    for op in [OpKind::Read, OpKind::Write] {
        let w = bench_ior(op, 16, 512 * 1024);
        let default = RegionStripeTable::single(64 << 20, 64 * 1024, 64 * 1024);
        let harl_rst = plan_for(&cluster, &w);
        group.bench_function(format!("{op}_default_64K"), |b| {
            b.iter(|| black_box(run_once(&cluster, &default, &w)))
        });
        group.bench_function(format!("{op}_harl"), |b| {
            b.iter(|| black_box(run_once(&cluster, &harl_rst, &w)))
        });
    }

    // The off-line Analysis Phase itself (trace -> regions -> grid search).
    let w = bench_ior(OpKind::Read, 16, 512 * 1024);
    let trace = collect_trace_lowered(&cluster, &w, &CollectiveConfig::default());
    let policy = bench_harl(&cluster);
    group.bench_function("analysis_phase", |b| {
        b.iter(|| black_box(policy.plan(&SimContext::new(), &trace, 64 << 20)))
    });
    group.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
