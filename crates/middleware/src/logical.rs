//! Logical-file workloads: what an MPI application sees.
//!
//! Applications address one shared *logical* file through
//! `MPI_File_read/write`-style calls; the middleware (this crate) translates
//! those into physical sub-files behind the scenes. A [`RankProgram`] is
//! one MPI rank's ordered behaviour; a [`Workload`] is the whole job.

use harl_devices::OpKind;
use harl_simcore::SimNanos;
use serde::{Deserialize, Serialize};

/// One logical file request (offset within the shared logical file).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogicalRequest {
    /// Read or write.
    pub op: OpKind,
    /// Offset within the logical file.
    pub offset: u64,
    /// Size in bytes.
    pub size: u64,
}

impl LogicalRequest {
    /// A logical read.
    pub fn read(offset: u64, size: u64) -> Self {
        LogicalRequest {
            op: OpKind::Read,
            offset,
            size,
        }
    }

    /// A logical write.
    pub fn write(offset: u64, size: u64) -> Self {
        LogicalRequest {
            op: OpKind::Write,
            offset,
            size,
        }
    }
}

/// One step of a rank's program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogicalStep {
    /// Independent I/O: requests issued synchronously, one after another
    /// (POSIX-style, what IOR does by default).
    Independent(Vec<LogicalRequest>),
    /// Collective I/O: all ranks arrive at this call together and the
    /// middleware performs two-phase optimisation across them (what BTIO
    /// does). The k-th collective call of every rank is matched up.
    Collective(Vec<LogicalRequest>),
    /// Local computation.
    Compute(SimNanos),
}

/// One rank's ordered program.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RankProgram {
    /// Steps in execution order.
    pub steps: Vec<LogicalStep>,
}

impl RankProgram {
    /// An empty program.
    pub fn new() -> Self {
        RankProgram::default()
    }

    /// Append an independent synchronous request.
    pub fn push_request(&mut self, req: LogicalRequest) {
        self.steps.push(LogicalStep::Independent(vec![req]));
    }

    /// Append an independent batch.
    pub fn push_independent(&mut self, reqs: Vec<LogicalRequest>) {
        assert!(!reqs.is_empty(), "empty independent batch");
        self.steps.push(LogicalStep::Independent(reqs));
    }

    /// Append a collective call contributing `reqs` from this rank.
    ///
    /// An empty contribution is allowed — collectives are matched by call
    /// index across ranks and a rank may contribute nothing to one call.
    pub fn push_collective(&mut self, reqs: Vec<LogicalRequest>) {
        self.steps.push(LogicalStep::Collective(reqs));
    }

    /// Append a compute phase.
    pub fn push_compute(&mut self, d: SimNanos) {
        self.steps.push(LogicalStep::Compute(d));
    }

    /// Number of collective calls in this program.
    pub fn collective_calls(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, LogicalStep::Collective(_)))
            .count()
    }
}

/// A whole parallel job: one program per rank.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// `ranks[i]` is rank i's program.
    pub ranks: Vec<RankProgram>,
}

impl Workload {
    /// A workload of `n` empty rank programs.
    pub fn with_ranks(n: usize) -> Self {
        Workload {
            ranks: vec![RankProgram::new(); n],
        }
    }

    /// Number of ranks.
    pub fn rank_count(&self) -> usize {
        self.ranks.len()
    }

    /// Total bytes `(read, written)` across all ranks.
    pub fn total_bytes(&self) -> (u64, u64) {
        let mut read = 0;
        let mut written = 0;
        for rank in &self.ranks {
            for step in &rank.steps {
                let reqs = match step {
                    LogicalStep::Independent(r) | LogicalStep::Collective(r) => r,
                    LogicalStep::Compute(_) => continue,
                };
                for r in reqs {
                    match r.op {
                        OpKind::Read => read += r.size,
                        OpKind::Write => written += r.size,
                    }
                }
            }
        }
        (read, written)
    }

    /// Largest logical byte touched (the implied logical file size).
    pub fn extent(&self) -> u64 {
        self.ranks
            .iter()
            .flat_map(|r| &r.steps)
            .filter_map(|s| match s {
                LogicalStep::Independent(r) | LogicalStep::Collective(r) => {
                    r.iter().map(|q| q.offset + q.size).max()
                }
                LogicalStep::Compute(_) => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Validation: every rank must have the same number of collective
    /// calls, or the job would deadlock in a real MPI run.
    pub fn validate_collectives(&self) -> Result<(), String> {
        let counts: Vec<usize> = self.ranks.iter().map(|r| r.collective_calls()).collect();
        if let Some((first, rest)) = counts.split_first() {
            if let Some(pos) = rest.iter().position(|c| c != first) {
                return Err(format!(
                    "rank 0 makes {first} collective calls but rank {} makes {}",
                    pos + 1,
                    rest[pos]
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_and_extent_accounting() {
        let mut w = Workload::with_ranks(2);
        w.ranks[0].push_request(LogicalRequest::write(0, 100));
        w.ranks[1].push_request(LogicalRequest::read(1000, 50));
        assert_eq!(w.total_bytes(), (50, 100));
        assert_eq!(w.extent(), 1050);
    }

    #[test]
    fn collective_count_validation() {
        let mut w = Workload::with_ranks(2);
        w.ranks[0].push_collective(vec![LogicalRequest::write(0, 10)]);
        assert!(w.validate_collectives().is_err());
        w.ranks[1].push_collective(vec![]);
        assert!(w.validate_collectives().is_ok());
    }

    #[test]
    fn empty_workload_is_valid() {
        let w = Workload::with_ranks(4);
        assert_eq!(w.total_bytes(), (0, 0));
        assert_eq!(w.extent(), 0);
        assert!(w.validate_collectives().is_ok());
    }

    #[test]
    #[should_panic(expected = "empty independent batch")]
    fn empty_independent_rejected() {
        RankProgram::new().push_independent(vec![]);
    }
}
