//! Multiple applications sharing one hybrid PFS — the paper's Sec. IV-D
//! discussion: *"While HARL is currently implemented for a single
//! application, it can also apply to multiple applications with varying
//! I/O workloads … we may apply our method on different workloads
//! separately to find their individual data access patterns."*
//!
//! [`run_shared`] places each application's RST on its own logical file
//! (physical file ids are offset per app) and runs all rank programs
//! concurrently on one cluster, so the applications contend for the same
//! servers, NICs and MDS. Per-app throughput is reported separately.
//!
//! Restriction: collective I/O synchronises over *all* clients of a
//! simulation, so shared runs accept independent-I/O workloads only
//! (asserted); that matches the IOR-style scenario the paper discusses.

use crate::collective::CollectiveConfig;
use crate::logical::{LogicalStep, Workload};
use crate::placement::place;
use crate::runtime::translate_workload;
use harl_core::RegionStripeTable;
use harl_pfs::{simulate, ClusterConfig, FileLayout, SimReport};
use harl_simcore::{throughput_mib_s, SimContext, SimNanos};
use serde::{Deserialize, Serialize};

/// Per-application outcome of a shared run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppStats {
    /// Bytes the app moved (read + written).
    pub bytes: u64,
    /// When the app's last rank finished.
    pub finish: SimNanos,
    /// The app's own throughput: its bytes over its finish time.
    pub throughput_mib_s: f64,
}

/// Outcome of a multi-application shared run.
#[derive(Debug, Clone)]
pub struct MultiAppReport {
    /// The combined simulation report (cluster-wide view).
    pub combined: SimReport,
    /// Per-application statistics, in input order.
    pub per_app: Vec<AppStats>,
}

/// Run several `(layout, workload)` pairs concurrently on one cluster.
///
/// # Panics
/// Panics if any workload contains collective steps (see module docs) or
/// the input is empty.
pub fn run_shared(
    ctx: &SimContext,
    cluster: &ClusterConfig,
    apps: &[(&RegionStripeTable, &Workload)],
    ccfg: &CollectiveConfig,
) -> MultiAppReport {
    assert!(!apps.is_empty(), "no applications to run");
    for (i, (_, w)) in apps.iter().enumerate() {
        let has_collectives = w.ranks.iter().any(|r| {
            r.steps
                .iter()
                .any(|s| matches!(s, LogicalStep::Collective(_)))
        });
        assert!(
            !has_collectives,
            "shared runs support independent I/O only (app {i} uses collectives)"
        );
    }

    let mut files: Vec<FileLayout> = Vec::new();
    let mut programs = Vec::new();
    let mut app_client_ranges = Vec::with_capacity(apps.len());
    for (rst, workload) in apps {
        let placed = place(cluster, rst, files.len());
        let mut app_programs = translate_workload(ctx, cluster, &placed, workload, ccfg);
        files.extend(placed.files);
        let start = programs.len();
        programs.append(&mut app_programs);
        app_client_ranges.push(start..programs.len());
    }

    let combined = simulate(ctx, cluster, &files, &programs);

    let per_app = apps
        .iter()
        .zip(&app_client_ranges)
        .map(|((_, workload), range)| {
            let (read, written) = workload.total_bytes();
            let bytes = read + written;
            let finish = combined.client_finish[range.clone()]
                .iter()
                .copied()
                .max()
                .unwrap_or(SimNanos::ZERO);
            AppStats {
                bytes,
                finish,
                throughput_mib_s: throughput_mib_s(bytes, finish),
            }
        })
        .collect();

    MultiAppReport { combined, per_app }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::LogicalRequest;
    use harl_devices::OpKind;

    const KB: u64 = 1024;
    const MB: u64 = 1024 * 1024;

    fn ior_like(procs: usize, request: u64, total: u64, op: OpKind) -> Workload {
        let mut w = Workload::with_ranks(procs);
        let per_rank = total / procs as u64 / request;
        for (r, prog) in w.ranks.iter_mut().enumerate() {
            let base = r as u64 * (total / procs as u64);
            for i in 0..per_rank {
                prog.push_request(LogicalRequest {
                    op,
                    offset: base + i * request,
                    size: request,
                });
            }
        }
        w
    }

    #[test]
    fn two_apps_share_the_cluster() {
        let cluster = ClusterConfig::paper_default();
        let a = ior_like(4, 512 * KB, 32 * MB, OpKind::Read);
        let b = ior_like(4, 128 * KB, 16 * MB, OpKind::Read);
        let rst_a = RegionStripeTable::single(32 * MB, 32 * KB, 160 * KB);
        let rst_b = RegionStripeTable::single(16 * MB, 0, 64 * KB);
        let report = run_shared(
            &SimContext::new(),
            &cluster,
            &[(&rst_a, &a), (&rst_b, &b)],
            &CollectiveConfig::default(),
        );
        assert_eq!(report.per_app.len(), 2);
        assert_eq!(report.per_app[0].bytes, 32 * MB);
        assert_eq!(report.per_app[1].bytes, 16 * MB);
        assert_eq!(report.combined.bytes_read, 48 * MB);
        assert!(report.per_app.iter().all(|a| a.throughput_mib_s > 0.0));
    }

    #[test]
    fn contention_slows_both_apps() {
        let cluster = ClusterConfig::paper_default();
        let a = ior_like(8, 512 * KB, 64 * MB, OpKind::Read);
        let rst = RegionStripeTable::single(64 * MB, 64 * KB, 64 * KB);
        let ccfg = CollectiveConfig::default();
        let alone = run_shared(&SimContext::new(), &cluster, &[(&rst, &a)], &ccfg);
        let shared = run_shared(
            &SimContext::new(),
            &cluster,
            &[(&rst, &a), (&rst, &a)],
            &ccfg,
        );
        assert!(
            shared.per_app[0].finish > alone.per_app[0].finish,
            "competition must slow the app: {} vs {}",
            shared.per_app[0].finish,
            alone.per_app[0].finish
        );
    }

    #[test]
    fn separate_files_do_not_alias() {
        // Both apps write their whole files; total device bytes must be the
        // sum (no accidental sharing of physical file ids).
        let cluster = ClusterConfig::paper_default();
        let a = ior_like(2, 256 * KB, 8 * MB, OpKind::Write);
        let b = ior_like(2, 256 * KB, 8 * MB, OpKind::Write);
        let rst = RegionStripeTable::single(8 * MB, 16 * KB, 64 * KB);
        let report = run_shared(
            &SimContext::new(),
            &cluster,
            &[(&rst, &a), (&rst, &b)],
            &CollectiveConfig::default(),
        );
        let device_bytes: u64 = report.combined.servers.iter().map(|s| s.bytes).sum();
        assert_eq!(device_bytes, 16 * MB);
    }

    #[test]
    #[should_panic(expected = "independent I/O only")]
    fn collectives_rejected() {
        let cluster = ClusterConfig::paper_default();
        let mut w = Workload::with_ranks(2);
        w.ranks[0].push_collective(vec![LogicalRequest::write(0, 1024)]);
        w.ranks[1].push_collective(vec![]);
        let rst = RegionStripeTable::single(MB, 4 * KB, 8 * KB);
        run_shared(
            &SimContext::new(),
            &cluster,
            &[(&rst, &w)],
            &CollectiveConfig::default(),
        );
    }

    #[test]
    #[should_panic(expected = "no applications")]
    fn empty_input_rejected() {
        run_shared(
            &SimContext::new(),
            &ClusterConfig::paper_default(),
            &[],
            &CollectiveConfig::default(),
        );
    }
}
