//! The multi-tenant planning service — `multiapp.rs` promoted from a test
//! fixture into a long-running front-end.
//!
//! Many concurrent applications (tenants) submit traces for their own
//! logical files and receive RST/R2F layouts. Three performance layers sit
//! between a submission and a grid search, each deterministic (see
//! `harl_core::cache`):
//!
//! 1. **Plan cache** — submissions are fingerprinted
//!    ([`harl_core::fingerprint`]); a fingerprint hit returns the cached
//!    whole-file plan without touching the optimizer. Eviction is LRU by
//!    the service's logical clock, capacity from [`ServeConfig`].
//!    Matching at this tier is *approximate* workload matching: the
//!    fingerprint is deliberately lossy (bucketed size histogram, 5%
//!    write buckets, grid-rounded averages), so resubmitting the same
//!    trace always hits and returns the identical plan, but two
//!    *different* traces that bucket identically share one cached plan,
//!    which need not equal what planning the second trace from scratch
//!    would have produced.
//! 2. **Incremental re-planning** — on a miss (or a stale hit after
//!    online adaptation), per-region grid results are recycled from the
//!    stale entry, the tenant's previous plan, and a cross-tenant region
//!    pool; only regions whose exact search input changed re-run
//!    Algorithm 2. Unlike tier 1, reuse here is bit-identical to the
//!    uncached computation by construction — the region key is the exact
//!    grid-search input.
//! 3. **Batched RST updates** — online-drift adaptations from concurrent
//!    tenants are enqueued, then coalesced (last-writer-wins per tenant ×
//!    region) and applied in canonical order once per service tick
//!    ([`PlanningService::tick`]), so served-table churn is O(dirty
//!    regions), not O(tenants × regions).
//!
//! The service is part of the deterministic data path: no wall clock, no
//! map-iteration nondeterminism (every map is a `BTreeMap`), and the same
//! submission sequence replays bit-identically at any thread count.
//! Wall-clock latency accounting therefore lives in the bench crate
//! (`harl-cli bench-serve`), never here.

// Index/iteration hygiene, ratcheted to deny: the batching and merge
// paths in this module are exactly where an indexed loop can silently
// reorder a deterministic merge.
#![deny(
    clippy::explicit_iter_loop,
    clippy::explicit_into_iter_loop,
    clippy::needless_range_loop,
    clippy::range_plus_one,
    clippy::range_minus_one
)]

use harl_core::{
    fingerprint_sorted, plan_file_with, CacheLookup, CacheStats, CachedPlan, MultiProfileModel,
    OnlineConfig, OnlineMonitor, OptimizerConfig, PlanCache, PlanReuse, RegionDivisionConfig,
    RegionPlanCache, RegionStripeTable, Trace, TraceRecord, WorkloadFingerprint,
};
use harl_simcore::{registry, SimContext};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Service tuning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Whole-plan cache capacity (plans; 0 disables plan caching).
    pub plan_cache_capacity: usize,
    /// Cross-tenant per-region grid-result pool capacity. 0 disables
    /// incremental re-planning entirely (every reuse tier, including a
    /// tenant's own previous plan) — the cold baseline `bench-serve`
    /// measures against.
    pub region_cache_capacity: usize,
    /// Algorithm 1 tuning shared by fingerprinting and planning (the two
    /// must agree, or fingerprint regions would not match plan regions).
    pub division: RegionDivisionConfig,
    /// Algorithm 2 tuning.
    pub optimizer: OptimizerConfig,
    /// Per-tenant online-drift monitoring.
    pub online: OnlineConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            plan_cache_capacity: 256,
            region_cache_capacity: 4096,
            division: RegionDivisionConfig::default(),
            optimizer: OptimizerConfig::default(),
            online: OnlineConfig::default(),
        }
    }
}

/// How a submission was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanOutcome {
    /// Whole plan served from the cache.
    CacheHit,
    /// A cached plan existed but was invalidated by online adaptation;
    /// re-planned with its per-region results recycled.
    StaleRefresh,
    /// No cached plan; planned (with any available per-region reuse).
    Miss,
}

impl PlanOutcome {
    fn label(self) -> &'static str {
        match self {
            PlanOutcome::CacheHit => "hit",
            PlanOutcome::StaleRefresh => "stale",
            PlanOutcome::Miss => "miss",
        }
    }
}

/// The service's answer to one submission.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanTicket {
    /// The layout to place the tenant's file with.
    pub rst: RegionStripeTable,
    /// How the plan was produced.
    pub outcome: PlanOutcome,
    /// Regions answered from cached grid results (0 on a cache hit: no
    /// region was even considered).
    pub reused_regions: usize,
    /// Regions whose grid search ran.
    pub planned_regions: usize,
}

/// One tenant's resident state.
#[derive(Debug)]
struct Tenant {
    /// The layout the tenant is currently served with (updated only at
    /// tick boundaries — the batched-apply semantic).
    rst: RegionStripeTable,
    /// Fingerprint of the workload the layout was planned for.
    fingerprint: WorkloadFingerprint,
    /// The tenant's own per-region grid results (reuse on its next
    /// re-plan).
    region_plans: PlanReuse,
    /// Drift monitor over the live stream.
    monitor: OnlineMonitor,
}

/// One tick's coalesced `(region, widths)` batch for a single tenant, in
/// ascending region order (the canonical apply order).
type RegionUpdates = Vec<(usize, Vec<u64>)>;

/// A pending per-region width update awaiting the next tick.
#[derive(Debug, Clone)]
struct PendingUpdate {
    tenant: u64,
    region: usize,
    widths: Vec<u64>,
    seq: u64,
}

/// Counters the service accumulates (all deterministic).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServeStats {
    /// Plan submissions served.
    pub submits: u64,
    /// Ticks executed.
    pub ticks: u64,
    /// Plan-cache accounting.
    pub cache: CacheStats,
    /// Plans currently cached.
    pub cache_len: usize,
    /// Regions answered from cached grid results across all submissions.
    pub regions_reused: u64,
    /// Regions whose grid search ran across all submissions.
    pub regions_planned: u64,
    /// Cross-tenant region-pool `(hits, misses)` (pool lookups only;
    /// reuse answered by a stale entry or the tenant's own plan does not
    /// reach the pool).
    pub region_pool: (u64, u64),
    /// Adaptation updates enqueued by online drift.
    pub batch_enqueued: u64,
    /// Updates actually applied to served tables at ticks.
    pub batch_applied: u64,
    /// Updates coalesced away before apply: superseded by a later write
    /// to the same cell, no-ops, or retired because a re-plan replaced
    /// the tenant's table (and with it the region geometry they indexed).
    pub batch_coalesced: u64,
    /// Adaptation events observed.
    pub adaptations: u64,
    /// Tenants resident.
    pub tenants: usize,
}

/// Outcome of one tick's batched apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickReport {
    /// Updates pending when the tick started.
    pub enqueued: usize,
    /// Region rows actually rewritten.
    pub applied: usize,
    /// Updates coalesced away.
    pub coalesced: usize,
}

/// The long-running planning front-end behind `harl-cli serve`.
pub struct PlanningService {
    model: MultiProfileModel,
    cfg: ServeConfig,
    cache: PlanCache,
    region_cache: RegionPlanCache,
    tenants: BTreeMap<u64, Tenant>,
    pending: Vec<PendingUpdate>,
    seq: u64,
    submits: u64,
    ticks: u64,
    regions_reused: u64,
    regions_planned: u64,
    batch_enqueued: u64,
    batch_applied: u64,
    batch_coalesced: u64,
    adaptations: u64,
    recorded_evictions: u64,
}

impl std::fmt::Debug for PlanningService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanningService")
            .field("cfg", &self.cfg)
            .field("tenants", &self.tenants.len())
            .field("cached_plans", &self.cache.len())
            .field("pending", &self.pending.len())
            .finish_non_exhaustive()
    }
}

impl PlanningService {
    /// A service planning against one platform model.
    pub fn new(model: impl Into<MultiProfileModel>, cfg: ServeConfig) -> Self {
        let cache = PlanCache::new(cfg.plan_cache_capacity);
        let region_cache = RegionPlanCache::new(cfg.region_cache_capacity);
        PlanningService {
            model: model.into(),
            cfg,
            cache,
            region_cache,
            tenants: BTreeMap::new(),
            pending: Vec::new(),
            seq: 0,
            submits: 0,
            ticks: 0,
            regions_reused: 0,
            regions_planned: 0,
            batch_enqueued: 0,
            batch_applied: 0,
            batch_coalesced: 0,
            adaptations: 0,
            recorded_evictions: 0,
        }
    }

    /// Accumulated counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            submits: self.submits,
            ticks: self.ticks,
            cache: self.cache.stats(),
            cache_len: self.cache.len(),
            regions_reused: self.regions_reused,
            regions_planned: self.regions_planned,
            region_pool: self.region_cache.stats(),
            batch_enqueued: self.batch_enqueued,
            batch_applied: self.batch_applied,
            batch_coalesced: self.batch_coalesced,
            adaptations: self.adaptations,
            tenants: self.tenants.len(),
        }
    }

    /// The layout a tenant is currently served with.
    pub fn tenant_rst(&self, tenant: u64) -> Option<&RegionStripeTable> {
        self.tenants.get(&tenant).map(|t| &t.rst)
    }

    /// Submit one tenant's trace for planning.
    ///
    /// Fingerprint → cache lookup → (on miss/stale) incremental plan with
    /// every available reuse tier. Adopting the returned layout replaces
    /// the tenant's monitored state unless the submission is a cache hit
    /// of the workload the tenant already runs (then the live monitor —
    /// drift evidence included — is kept).
    pub fn submit(
        &mut self,
        ctx: &SimContext,
        tenant: u64,
        trace: &Trace,
        file_size: u64,
    ) -> PlanTicket {
        let sorted = trace.sorted_by_offset();
        let fp = fingerprint_sorted(&sorted, file_size, &self.cfg.division, &self.model);
        self.submits += 1;
        let (ticket, region_pool_delta) = match self.cache.lookup(&fp) {
            CacheLookup::Hit(plan) => {
                let keep = self
                    .tenants
                    .get(&tenant)
                    .is_some_and(|t| t.fingerprint == fp);
                let rst = if keep {
                    // Same tenant, same workload: keep the live monitor
                    // (its drift evidence) and the served table as-is.
                    self.tenants[&tenant].rst.clone()
                } else {
                    self.install_tenant(ctx, tenant, fp.clone(), &plan, &sorted);
                    plan.rst
                };
                (
                    PlanTicket {
                        rst,
                        outcome: PlanOutcome::CacheHit,
                        reused_regions: 0,
                        planned_regions: 0,
                    },
                    (0, 0),
                )
            }
            CacheLookup::Stale(old) => self.plan_submission(
                ctx,
                tenant,
                fp,
                &sorted,
                file_size,
                old.region_plans.into_iter().collect(),
                PlanOutcome::StaleRefresh,
            ),
            CacheLookup::Miss => self.plan_submission(
                ctx,
                tenant,
                fp,
                &sorted,
                file_size,
                PlanReuse::new(),
                PlanOutcome::Miss,
            ),
        };
        self.regions_reused += ticket.reused_regions as u64;
        self.regions_planned += ticket.planned_regions as u64;
        self.record_submit(ctx, &ticket, region_pool_delta);
        ticket
    }

    /// The miss/stale path: plan with chained reuse (donor entry → the
    /// tenant's previous plan → the cross-tenant pool), then cache and
    /// adopt the result.
    #[allow(clippy::too_many_arguments)]
    fn plan_submission(
        &mut self,
        ctx: &SimContext,
        tenant: u64,
        fp: WorkloadFingerprint,
        sorted: &[TraceRecord],
        file_size: u64,
        donor: PlanReuse,
        outcome: PlanOutcome,
    ) -> (PlanTicket, (u64, u64)) {
        let reuse_enabled = self.cfg.region_cache_capacity > 0;
        let donor = if reuse_enabled {
            donor
        } else {
            PlanReuse::new()
        };
        let tenant_reuse = if reuse_enabled {
            self.tenants
                .get(&tenant)
                .map(|t| t.region_plans.clone())
                .unwrap_or_default()
        } else {
            PlanReuse::new()
        };
        let region_cache = &mut self.region_cache;
        let mut pool_hits = 0u64;
        let mut pool_misses = 0u64;
        let planned = plan_file_with(
            ctx,
            &self.model,
            sorted,
            file_size,
            &self.cfg.division,
            &self.cfg.optimizer,
            |key| {
                if let Some(choice) = donor.get(key) {
                    return Some(choice.clone());
                }
                if let Some(choice) = tenant_reuse.get(key) {
                    return Some(choice.clone());
                }
                match region_cache.get(key) {
                    Some(choice) => {
                        pool_hits += 1;
                        Some(choice)
                    }
                    None => {
                        pool_misses += 1;
                        None
                    }
                }
            },
        );
        // Bank every per-region result (inserting reused keys refreshes
        // their recency) and memoise the whole plan.
        for (key, choice) in &planned.region_plans {
            self.region_cache.insert(key.clone(), choice.clone());
        }
        let cached = CachedPlan {
            rst: planned.rst.clone(),
            region_plans: planned.region_plans.clone(),
        };
        self.cache.insert(fp.clone(), cached.clone());
        self.install_tenant(ctx, tenant, fp, &cached, sorted);
        (
            PlanTicket {
                rst: planned.rst,
                outcome,
                reused_regions: planned.reused,
                planned_regions: planned.planned,
            },
            (pool_hits, pool_misses),
        )
    }

    /// Adopt a plan for a tenant: served table, reuse set, fresh monitor.
    fn install_tenant(
        &mut self,
        ctx: &SimContext,
        tenant: u64,
        fp: WorkloadFingerprint,
        plan: &CachedPlan,
        sorted: &[TraceRecord],
    ) {
        // A new plan replaces the tenant's table (and monitor) wholesale:
        // queued width updates were computed against the *old* table's
        // region geometry, so applying them to the new one at the next
        // tick would rewrite the wrong rows — or index past the end if
        // the new plan merged to fewer regions. Retire them as coalesced
        // (superseded before apply).
        let before = self.pending.len();
        self.pending.retain(|u| u.tenant != tenant);
        self.batch_coalesced += (before - self.pending.len()) as u64;
        let planned_avg = planned_averages(&plan.rst, sorted);
        let monitor = OnlineMonitor::new(
            self.model.clone(),
            plan.rst.clone(),
            planned_avg,
            self.cfg.online.clone(),
        )
        .with_context(ctx)
        .with_region_cache(self.cfg.region_cache_capacity);
        let region_plans = if self.cfg.region_cache_capacity > 0 {
            plan.region_plans.iter().cloned().collect()
        } else {
            PlanReuse::new()
        };
        self.tenants.insert(
            tenant,
            Tenant {
                rst: plan.rst.clone(),
                fingerprint: fp,
                region_plans,
                monitor,
            },
        );
    }

    /// Feed one served request (with its observed latency, seconds) into
    /// the tenant's drift monitor. Confirmed adaptations are *enqueued*
    /// for the next [`tick`](Self::tick), not applied to the served table
    /// immediately. Returns how many updates were enqueued.
    pub fn observe_served(&mut self, tenant: u64, rec: TraceRecord, actual_s: f64) -> usize {
        let Some(t) = self.tenants.get_mut(&tenant) else {
            return 0;
        };
        let events = t.monitor.observe_served(rec, actual_s);
        let n = events.len();
        for event in events {
            self.seq += 1;
            self.pending.push(PendingUpdate {
                tenant,
                region: event.region,
                widths: event.new,
                seq: self.seq,
            });
        }
        self.adaptations += n as u64;
        self.batch_enqueued += n as u64;
        n
    }

    /// Close one service tick: coalesce all pending per-region updates
    /// (last writer wins per tenant × region), apply each tenant's batch
    /// in canonical `(tenant, region)` order, and invalidate the cached
    /// plan of each tenant whose served table actually changed (a batch
    /// of pure no-ops leaves the cached plan accurate, hence valid).
    pub fn tick(&mut self, ctx: &SimContext) -> TickReport {
        self.ticks += 1;
        let mut batch = std::mem::take(&mut self.pending);
        let enqueued = batch.len();
        batch.sort_by_key(|u| (u.tenant, u.region, u.seq));
        // Last writer wins per (tenant, region): the BTreeMap insert of
        // each successive seq overwrites its predecessor.
        let mut winners: BTreeMap<(u64, usize), Vec<u64>> = BTreeMap::new();
        for update in batch {
            winners.insert((update.tenant, update.region), update.widths);
        }
        let mut per_tenant: BTreeMap<u64, RegionUpdates> = BTreeMap::new();
        for ((tenant, region), widths) in winners {
            per_tenant.entry(tenant).or_default().push((region, widths));
        }
        let mut applied = 0usize;
        for (tenant, updates) in per_tenant {
            let Some(t) = self.tenants.get_mut(&tenant) else {
                continue;
            };
            // Defence in depth: install_tenant purges a re-planned
            // tenant's queue, so every surviving region index should be
            // in range for the served table — but an out-of-range index
            // must degrade to a dropped update, never an apply_batch
            // panic or a rewrite of an unrelated region.
            let regions = t.rst.entries().len();
            let in_range: RegionUpdates = updates
                .into_iter()
                .filter(|(region, _)| *region < regions)
                .collect();
            let rewritten = t.rst.apply_batch(&in_range);
            if rewritten > 0 {
                // The tenant's served layout no longer matches the plan
                // its fingerprint cached.
                self.cache.invalidate(&t.fingerprint);
            }
            applied += rewritten;
        }
        let coalesced = enqueued - applied;
        self.batch_applied += applied as u64;
        self.batch_coalesced += coalesced as u64;
        if ctx.recorder().is_enabled() {
            let r = ctx.recorder();
            r.counter_add(registry::MW_SERVE_TICKS.name, &[], 1);
            r.counter_add(registry::MW_SERVE_BATCH_APPLIED.name, &[], applied as u64);
            r.counter_add(
                registry::MW_SERVE_BATCH_COALESCED.name,
                &[],
                coalesced as u64,
            );
        }
        TickReport {
            enqueued,
            applied,
            coalesced,
        }
    }

    /// Emit the per-submission metrics (recorder-gated).
    fn record_submit(&mut self, ctx: &SimContext, ticket: &PlanTicket, pool: (u64, u64)) {
        if !ctx.recorder().is_enabled() {
            return;
        }
        let r = ctx.recorder();
        let labels = [("outcome", ticket.outcome.label().to_string())];
        r.counter_add(registry::MW_SERVE_PLANS.name, &labels, 1);
        let cache_metric = match ticket.outcome {
            PlanOutcome::CacheHit => registry::HARL_CACHE_HITS,
            PlanOutcome::StaleRefresh => registry::HARL_CACHE_STALE,
            PlanOutcome::Miss => registry::HARL_CACHE_MISSES,
        };
        r.counter_add(cache_metric.name, &[], 1);
        if ticket.reused_regions > 0 {
            r.counter_add(
                registry::MW_SERVE_REGIONS_REUSED.name,
                &[],
                ticket.reused_regions as u64,
            );
        }
        if ticket.planned_regions > 0 {
            r.counter_add(
                registry::MW_SERVE_REGIONS_PLANNED.name,
                &[],
                ticket.planned_regions as u64,
            );
        }
        if pool.0 > 0 {
            r.counter_add(registry::HARL_CACHE_REGION_HITS.name, &[], pool.0);
        }
        if pool.1 > 0 {
            r.counter_add(registry::HARL_CACHE_REGION_MISSES.name, &[], pool.1);
        }
        let evictions = self.cache.stats().evictions;
        if evictions > self.recorded_evictions {
            r.counter_add(
                registry::HARL_CACHE_EVICTIONS.name,
                &[],
                evictions - self.recorded_evictions,
            );
            self.recorded_evictions = evictions;
        }
        r.gauge_set(registry::HARL_CACHE_SIZE.name, &[], self.cache.len() as f64);
        r.gauge_set(
            registry::MW_SERVE_TENANTS.name,
            &[],
            self.tenants.len() as f64,
        );
    }
}

/// Mean request size per merged RST region (what each region's layout was
/// planned for) — the monitor's `planned_avg`. Idle regions get 0; the
/// monitor clamps to ≥ 1 at comparison time.
fn planned_averages(rst: &RegionStripeTable, sorted: &[TraceRecord]) -> Vec<u64> {
    rst.entries()
        .iter()
        .map(|entry| {
            let lo = sorted.partition_point(|r| r.offset < entry.offset);
            let hi = sorted.partition_point(|r| r.offset < entry.end());
            let segment = &sorted[lo..hi];
            if segment.is_empty() {
                0
            } else {
                (segment.iter().map(|r| r.size).sum::<u64>() / segment.len() as u64).max(1)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::collect_trace;
    use harl_core::{CostModelParams, HarlPolicy, LayoutPolicy};
    use harl_devices::OpKind;
    use harl_pfs::ClusterConfig;
    use harl_simcore::SimNanos;

    const KB: u64 = 1024;
    const MB: u64 = 1024 * 1024;

    fn model() -> MultiProfileModel {
        CostModelParams::from_cluster(&ClusterConfig::paper_default()).into()
    }

    fn service() -> PlanningService {
        PlanningService::new(model(), ServeConfig::default())
    }

    fn phased_trace(seed: u64) -> (Trace, u64) {
        let mut records = Vec::new();
        for phase in 0..4u64 {
            let base = phase * 16 * MB;
            let size = ((phase + seed) % 3 + 1) * 128 * KB;
            for i in 0..24u64 {
                records.push(TraceRecord {
                    rank: (i % 4) as u32,
                    fd: 0,
                    op: if phase % 2 == 0 {
                        OpKind::Read
                    } else {
                        OpKind::Write
                    },
                    offset: base + i * size,
                    size,
                    timestamp: SimNanos::from_nanos(phase * 1000 + i),
                });
            }
        }
        (Trace::from_records(records), 4 * 16 * MB)
    }

    #[test]
    fn first_submit_misses_then_identical_resubmit_hits() {
        let mut svc = service();
        let ctx = SimContext::new();
        let (trace, size) = phased_trace(0);
        let first = svc.submit(&ctx, 1, &trace, size);
        assert_eq!(first.outcome, PlanOutcome::Miss);
        let second = svc.submit(&ctx, 1, &trace, size);
        assert_eq!(second.outcome, PlanOutcome::CacheHit);
        assert_eq!(second.rst, first.rst, "hit must be bit-identical");
        let stats = svc.stats();
        assert_eq!((stats.cache.hits, stats.cache.misses), (1, 1));
    }

    #[test]
    fn cache_hit_matches_direct_policy_plan() {
        // The serve path (fingerprint + cache + plan_file_with) must hand
        // out exactly what HarlPolicy::plan computes for the same inputs.
        let mut svc = service();
        let ctx = SimContext::new();
        let (trace, size) = phased_trace(1);
        let ticket = svc.submit(&ctx, 7, &trace, size);
        let direct = HarlPolicy::new(model()).plan(&ctx, &trace, size);
        assert_eq!(ticket.rst, direct);
        let hit = svc.submit(&ctx, 8, &trace, size);
        assert_eq!(hit.rst, direct);
    }

    #[test]
    fn tenants_sharing_a_workload_share_the_plan() {
        let mut svc = service();
        let ctx = SimContext::new();
        let (trace, size) = phased_trace(0);
        svc.submit(&ctx, 1, &trace, size);
        let other = svc.submit(&ctx, 2, &trace, size);
        assert_eq!(other.outcome, PlanOutcome::CacheHit);
        assert_eq!(svc.stats().tenants, 2);
    }

    #[test]
    fn adaptation_invalidates_and_stale_refresh_reuses_regions() {
        let mut svc = PlanningService::new(
            model(),
            ServeConfig {
                online: OnlineConfig {
                    window: 32,
                    patience: 1,
                    ..OnlineConfig::default()
                },
                ..ServeConfig::default()
            },
        );
        let ctx = SimContext::new();
        let (trace, size) = phased_trace(0);
        let first = svc.submit(&ctx, 1, &trace, size);
        // Drive drift: small requests into the first region, far off the
        // planned average, with punishing latencies.
        let mut enqueued = 0;
        for i in 0..64u64 {
            enqueued += svc.observe_served(
                1,
                TraceRecord {
                    rank: 0,
                    fd: 0,
                    op: OpKind::Read,
                    offset: (i % 16) * 4 * KB,
                    size: 4 * KB,
                    timestamp: SimNanos::from_nanos(i),
                },
                0.5,
            );
        }
        assert!(enqueued > 0, "drift should enqueue at least one update");
        let report = svc.tick(&ctx);
        assert!(report.applied > 0);
        // The tenant's served table diverged from the plan.
        assert_ne!(svc.tenant_rst(1), Some(&first.rst));
        // Resubmitting the original workload now sees a stale entry and
        // recycles its per-region results.
        let refresh = svc.submit(&ctx, 1, &trace, size);
        assert_eq!(refresh.outcome, PlanOutcome::StaleRefresh);
        assert_eq!(refresh.rst, first.rst, "same workload, same plan");
        assert_eq!(refresh.planned_regions, 0, "all regions recycled");
        assert!(refresh.reused_regions > 0);
    }

    #[test]
    fn replan_purges_stale_pending_updates() {
        // A drifted tenant that re-submits (a different workload) before
        // the next tick gets a fresh table; the updates still queued
        // against the old table must be retired, not applied to the new
        // one.
        let mut svc = PlanningService::new(
            model(),
            ServeConfig {
                online: OnlineConfig {
                    window: 32,
                    patience: 1,
                    ..OnlineConfig::default()
                },
                ..ServeConfig::default()
            },
        );
        let ctx = SimContext::new();
        let (trace_a, size_a) = phased_trace(0);
        svc.submit(&ctx, 1, &trace_a, size_a);
        let mut enqueued = 0;
        for i in 0..64u64 {
            enqueued += svc.observe_served(
                1,
                TraceRecord {
                    rank: 0,
                    fd: 0,
                    op: OpKind::Read,
                    offset: (i % 16) * 4 * KB,
                    size: 4 * KB,
                    timestamp: SimNanos::from_nanos(i),
                },
                0.5,
            );
        }
        assert!(enqueued > 0, "drift should enqueue at least one update");
        // Re-submit a different workload before the tick: new fingerprint,
        // new plan, new table — the queued updates are now meaningless.
        let (trace_b, size_b) = phased_trace(1);
        let fresh = svc.submit(&ctx, 1, &trace_b, size_b);
        assert!(svc.pending.is_empty(), "re-install must purge the queue");
        let report = svc.tick(&ctx);
        assert_eq!(report.applied, 0, "no stale update may reach the table");
        assert_eq!(svc.tenant_rst(1), Some(&fresh.rst));
        let stats = svc.stats();
        assert_eq!(
            stats.batch_enqueued,
            stats.batch_applied + stats.batch_coalesced,
            "purged updates must be accounted as coalesced"
        );
    }

    #[test]
    fn tick_drops_out_of_range_region_updates() {
        // Even if a stale index slips past the install-time purge, tick
        // must drop it (counted as coalesced), not panic or rewrite an
        // unrelated region.
        let mut svc = service();
        let ctx = SimContext::new();
        let (trace, size) = phased_trace(0);
        let first = svc.submit(&ctx, 1, &trace, size);
        svc.seq += 1;
        let seq = svc.seq;
        svc.pending.push(PendingUpdate {
            tenant: 1,
            region: 999,
            widths: vec![64 * KB; 2],
            seq,
        });
        let report = svc.tick(&ctx);
        assert_eq!((report.applied, report.coalesced), (0, 1));
        assert_eq!(svc.tenant_rst(1), Some(&first.rst));
    }

    #[test]
    fn noop_tick_keeps_cached_plan_valid() {
        // A batch of pure no-ops leaves the served table equal to the
        // cached plan, so the next identical submission must still hit.
        let mut svc = service();
        let ctx = SimContext::new();
        let (trace, size) = phased_trace(0);
        svc.submit(&ctx, 1, &trace, size);
        let current = svc
            .tenant_rst(1)
            .map(|r| r.entries()[0].widths().to_vec())
            .unwrap_or_default();
        svc.seq += 1;
        let seq = svc.seq;
        svc.pending.push(PendingUpdate {
            tenant: 1,
            region: 0,
            widths: current,
            seq,
        });
        let report = svc.tick(&ctx);
        assert_eq!(report.applied, 0);
        let again = svc.submit(&ctx, 1, &trace, size);
        assert_eq!(again.outcome, PlanOutcome::CacheHit);
    }

    #[test]
    fn tick_coalesces_duplicate_updates_last_writer_wins() {
        let mut svc = service();
        let ctx = SimContext::new();
        let (trace, size) = phased_trace(0);
        svc.submit(&ctx, 1, &trace, size);
        let classes = svc.tenant_rst(1).map(|r| r.classes()).unwrap_or(2);
        // Enqueue three updates for the same region by hand; only the last
        // may be applied.
        for w in [64 * KB, 128 * KB, 256 * KB] {
            svc.seq += 1;
            let seq = svc.seq;
            svc.pending.push(PendingUpdate {
                tenant: 1,
                region: 0,
                widths: vec![w; classes],
                seq,
            });
        }
        let report = svc.tick(&ctx);
        assert_eq!(report.enqueued, 3);
        assert_eq!(report.applied, 1);
        assert_eq!(report.coalesced, 2);
        let rst = svc.tenant_rst(1).expect("tenant placed");
        assert_eq!(rst.entries()[0].widths(), &vec![256 * KB; classes][..]);
    }

    #[test]
    fn zero_capacity_service_never_hits() {
        let mut svc = PlanningService::new(
            model(),
            ServeConfig {
                plan_cache_capacity: 0,
                region_cache_capacity: 0,
                ..ServeConfig::default()
            },
        );
        let ctx = SimContext::new();
        let (trace, size) = phased_trace(0);
        for _ in 0..3 {
            let t = svc.submit(&ctx, 1, &trace, size);
            assert_eq!(t.outcome, PlanOutcome::Miss);
            assert_eq!(t.reused_regions, 0, "no reuse tier is available");
        }
        assert_eq!(svc.stats().cache.hits, 0);
    }

    #[test]
    fn service_is_deterministic_across_thread_counts() {
        let run = |threads: usize| {
            let mut svc = service();
            let ctx = SimContext::new().with_threads(threads);
            let cfg = harl_workloads_free_traffic();
            let mut outcomes = Vec::new();
            for (tenant, trace, size) in &cfg {
                let t = svc.submit(&ctx, *tenant, trace, *size);
                outcomes.push((t.outcome, t.rst));
            }
            (outcomes, svc.stats())
        };
        let (ref_outcomes, ref_stats) = run(1);
        for threads in [2, 8] {
            let (outcomes, stats) = run(threads);
            assert_eq!(outcomes, ref_outcomes, "{threads} threads diverged");
            assert_eq!(stats, ref_stats);
        }
    }

    /// A small deterministic submission mix (avoids a dev-dependency on
    /// harl-workloads: middleware sits below it in the crate graph).
    fn harl_workloads_free_traffic() -> Vec<(u64, Trace, u64)> {
        let mut subs = Vec::new();
        for tenant in 0..6u64 {
            let (trace, size) = phased_trace(tenant % 3);
            subs.push((tenant, trace, size));
        }
        subs
    }

    #[test]
    fn btio_style_collective_trace_plans_fine() {
        // The service is plan-only: collective workloads trace through
        // collect_trace (identity lowering) and plan like any other.
        let mut svc = service();
        let ctx = SimContext::new();
        let w = harl_workloads_stub_btio();
        let trace = collect_trace(&w);
        let size = w.extent().max(1);
        let t = svc.submit(&ctx, 9, &trace, size);
        assert!(!t.rst.is_empty());
        assert_eq!(t.rst.file_size(), size);
    }

    /// Minimal collective workload (again avoiding an upward dependency).
    fn harl_workloads_stub_btio() -> crate::logical::Workload {
        let mut w = crate::logical::Workload::with_ranks(4);
        for (rank, prog) in w.ranks.iter_mut().enumerate() {
            prog.push_collective(vec![crate::logical::LogicalRequest {
                op: OpKind::Write,
                offset: rank as u64 * MB,
                size: MB,
            }]);
        }
        w
    }
}
