//! The Placing Phase: materialise an RST onto a cluster.
//!
//! Paper Sec. III-G: *"HARL logically maps a large file into multiple
//! OrangeFS files, each representing a separate file region … a
//! region-to-file mapping table (R2F) is used to record the translation
//! from a logical file region to a physical OrangeFS file."*
//!
//! [`place`] turns each RST region into one physical [`FileLayout`] with
//! that region's per-class stripe widths and records the mapping in an
//! [`R2f`].

use harl_core::{LoadError, RegionStripeTable};
use harl_pfs::{ClusterConfig, FileId, FileLayout};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Region-to-file mapping: `file_of[i]` is the physical file backing
/// RST region `i`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct R2f {
    file_of: Vec<FileId>,
}

impl R2f {
    /// Build from an explicit mapping.
    pub fn new(file_of: Vec<FileId>) -> Self {
        R2f { file_of }
    }

    /// The physical file backing region `region`.
    ///
    /// # Panics
    /// Panics for an unknown region index.
    pub fn file_of(&self, region: usize) -> FileId {
        self.file_of[region]
    }

    /// Number of mapped regions.
    pub fn len(&self) -> usize {
        self.file_of.len()
    }

    /// True when no regions are mapped.
    pub fn is_empty(&self) -> bool {
        self.file_of.is_empty()
    }

    /// Persist as JSON (stored next to the application, like the paper's
    /// R2F).
    pub fn save_to_path(&self, path: &Path) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, json)
    }

    /// Load from JSON; errors carry the file, the line (for syntax
    /// errors) and the reason.
    pub fn load_from_path(path: &Path) -> Result<Self, LoadError> {
        harl_core::errors::read_json(path)
    }
}

/// A placed logical file: the RST, the physical layouts, and the R2F
/// mapping between them.
#[derive(Debug, Clone)]
pub struct PlacedFile {
    /// The layout decision being materialised.
    pub rst: RegionStripeTable,
    /// Physical file layouts, indexable by [`FileId`].
    pub files: Vec<FileLayout>,
    /// Region → physical file mapping.
    pub r2f: R2f,
}

/// Materialise `rst` on `cluster`: one physical file per region, striped
/// with the region's per-class widths.
///
/// `first_file_id` allows placing several logical files in one simulation
/// (physical ids are global).
pub fn place(
    cluster: &ClusterConfig,
    rst: &RegionStripeTable,
    first_file_id: FileId,
) -> PlacedFile {
    let mut files = Vec::with_capacity(rst.len());
    let mut mapping = Vec::with_capacity(rst.len());
    for (i, entry) in rst.entries().iter().enumerate() {
        files.push(FileLayout::for_classes(cluster, entry.widths()));
        mapping.push(first_file_id + i);
    }
    PlacedFile {
        rst: rst.clone(),
        files,
        r2f: R2f::new(mapping),
    }
}

/// Projected bytes stored per server for a file of `file_size` bytes under
/// `rst` — used by the space-balancing migration extension and by tests
/// asserting where data lands.
pub fn bytes_per_server(
    cluster: &ClusterConfig,
    rst: &RegionStripeTable,
    file_size: u64,
) -> Vec<u64> {
    let mut totals = vec![0u64; cluster.server_count()];
    for entry in rst.entries() {
        let len = entry.len.min(file_size.saturating_sub(entry.offset));
        if len == 0 {
            continue;
        }
        let layout = FileLayout::for_classes(cluster, entry.widths());
        for (server, bytes) in layout.split(0, len) {
            totals[server] += bytes;
        }
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use harl_core::RstEntry;

    const KB: u64 = 1024;
    const MB: u64 = 1024 * 1024;

    fn rst() -> RegionStripeTable {
        RegionStripeTable::new(vec![
            RstEntry::two(0, 8 * MB, 16 * KB, 64 * KB),
            RstEntry::two(8 * MB, 8 * MB, 0, 64 * KB),
        ])
    }

    #[test]
    fn one_file_per_region() {
        let cluster = ClusterConfig::paper_default();
        let placed = place(&cluster, &rst(), 0);
        assert_eq!(placed.files.len(), 2);
        assert_eq!(placed.r2f.len(), 2);
        assert_eq!(placed.r2f.file_of(0), 0);
        assert_eq!(placed.r2f.file_of(1), 1);
        // Region 1 has h = 0: its physical file lives on SServers only.
        assert_eq!(placed.files[1].servers(), &[6, 7]);
    }

    #[test]
    fn first_file_id_offsets_mapping() {
        let cluster = ClusterConfig::paper_default();
        let placed = place(&cluster, &rst(), 10);
        assert_eq!(placed.r2f.file_of(0), 10);
        assert_eq!(placed.r2f.file_of(1), 11);
    }

    #[test]
    fn bytes_per_server_conserve() {
        let cluster = ClusterConfig::paper_default();
        let table = rst();
        let file_size = table.file_size();
        let per = bytes_per_server(&cluster, &table, file_size);
        assert_eq!(per.iter().sum::<u64>(), file_size);
        // Region 1 contributes nothing to HServers.
        let layout0 = FileLayout::two_class(&cluster, 16 * KB, 64 * KB);
        let h_expect: u64 = layout0
            .split(0, 8 * MB)
            .iter()
            .filter(|&&(srv, _)| srv < 6)
            .map(|&(_, b)| b)
            .sum();
        assert_eq!(per[..6].iter().sum::<u64>(), h_expect);
    }

    #[test]
    fn r2f_round_trip() {
        let r = R2f::new(vec![3, 4, 5]);
        let dir = std::env::temp_dir().join("harl-r2f-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r2f.json");
        r.save_to_path(&path).unwrap();
        assert_eq!(R2f::load_from_path(&path).unwrap(), r);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn r2f_malformed_file_reports_line() {
        let dir = std::env::temp_dir().join("harl-r2f-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r2f-malformed.json");
        std::fs::write(&path, "{\n  \"file_of\": [1, 2,\n}").unwrap();
        let err = R2f::load_from_path(&path).unwrap_err();
        assert_eq!(err.path, path);
        assert!(
            err.line.is_some(),
            "parse errors should carry a line: {err}"
        );
        std::fs::remove_file(&path).ok();
    }
}
