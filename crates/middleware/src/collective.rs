//! Two-phase collective I/O (ROMIO-style), used by BTIO's
//! `MPI_File_write_all`/`read_all`.
//!
//! When all ranks enter a collective call, the middleware:
//!
//! 1. computes the union extent of everyone's requests and partitions it
//!    into contiguous *file domains*, one per aggregator (one aggregator
//!    per compute node, as ROMIO defaults to);
//! 2. ships each rank's data to the aggregator owning it (the *exchange
//!    phase* — charged as local time proportional to the bytes a rank
//!    contributes, since the exchange crosses the same client NICs);
//! 3. has each aggregator issue large contiguous file requests over its
//!    domain, chunked by the collective buffer size (ROMIO's `cb_buffer`,
//!    4 MiB by default).
//!
//! The result is the classic collective-I/O effect: many small strided
//! requests become a few large contiguous ones. The transformation output
//! is expressed as logical steps (exchange compute + barrier + aggregator
//! I/O + barrier) which the [`crate::runtime`] translates onto physical
//! region files.

use crate::logical::LogicalRequest;
use harl_devices::OpKind;
use harl_simcore::SimNanos;
use serde::{Deserialize, Serialize};

/// Collective-I/O tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollectiveConfig {
    /// Aggregator chunk size (ROMIO `cb_buffer_size`; default 4 MiB).
    pub cb_buffer: u64,
    /// Per-byte cost of the exchange phase in seconds (client network).
    pub exchange_s_per_byte: f64,
}

impl Default for CollectiveConfig {
    fn default() -> Self {
        CollectiveConfig {
            cb_buffer: 4 * 1024 * 1024,
            exchange_s_per_byte: 4e-9,
        }
    }
}

/// The plan for one matched collective call.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectivePlan {
    /// Per-rank exchange time (phase 2 of two-phase I/O).
    pub exchange: Vec<SimNanos>,
    /// Per-rank aggregated file requests (empty for non-aggregators).
    pub aggregated: Vec<Vec<LogicalRequest>>,
    /// The operation of this call.
    pub op: OpKind,
}

/// Merge per-rank interval lists into a sorted list of disjoint intervals.
fn coalesce(mut intervals: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    intervals.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(intervals.len());
    for (lo, hi) in intervals {
        match out.last_mut() {
            Some(last) if lo <= last.1 => last.1 = last.1.max(hi),
            _ => out.push((lo, hi)),
        }
    }
    out
}

/// Build the two-phase plan for one collective call.
///
/// `contributions[r]` is rank r's request list; all non-empty contributions
/// must share one [`OpKind`] (MPI collectives are single-direction).
/// `aggregators` is the list of rank ids acting as aggregators (typically
/// one per node). Returns `None` for a call where nobody contributes data
/// (a pure synchronisation point).
pub fn plan_collective(
    contributions: &[Vec<LogicalRequest>],
    aggregators: &[usize],
    cfg: &CollectiveConfig,
) -> Option<CollectivePlan> {
    assert!(!aggregators.is_empty(), "need at least one aggregator");
    let all: Vec<LogicalRequest> = contributions.iter().flatten().copied().collect();
    if all.is_empty() {
        return None;
    }
    let op = all[0].op;
    assert!(
        all.iter().all(|r| r.op == op),
        "mixed read/write in one collective call"
    );

    // Union extent and covered intervals.
    let covered = coalesce(
        all.iter()
            .filter(|r| r.size > 0)
            .map(|r| (r.offset, r.offset + r.size))
            .collect(),
    );
    let (lo, hi) = match (covered.first(), covered.last()) {
        (Some(first), Some(last)) => (first.0, last.1),
        _ => return None,
    };

    // Contiguous file domains, one per aggregator, sliced from the extent.
    let n_agg = aggregators.len() as u64;
    let span = hi - lo;
    let domain = span.div_ceil(n_agg).max(1);

    // Exchange cost: every rank ships the bytes it contributes.
    let exchange: Vec<SimNanos> = contributions
        .iter()
        .map(|reqs| {
            let bytes: u64 = reqs.iter().map(|r| r.size).sum();
            SimNanos::from_secs_f64(bytes as f64 * cfg.exchange_s_per_byte)
        })
        .collect();

    // Aggregator requests: covered intervals clipped to the domain, then
    // chunked by cb_buffer.
    let mut aggregated: Vec<Vec<LogicalRequest>> = vec![Vec::new(); contributions.len()];
    for (k, &agg_rank) in aggregators.iter().enumerate() {
        let d_lo = lo + k as u64 * domain;
        let d_hi = (d_lo + domain).min(hi);
        if d_lo >= d_hi {
            continue;
        }
        let out = &mut aggregated[agg_rank];
        for &(c_lo, c_hi) in &covered {
            let s = c_lo.max(d_lo);
            let e = c_hi.min(d_hi);
            let mut pos = s;
            while pos < e {
                let len = cfg.cb_buffer.min(e - pos);
                out.push(LogicalRequest {
                    op,
                    offset: pos,
                    size: len,
                });
                pos += len;
            }
        }
    }

    Some(CollectivePlan {
        exchange,
        aggregated,
        op,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const KB: u64 = 1024;
    const MB: u64 = 1024 * 1024;

    /// BTIO-like strided contributions: rank r owns every n-th block.
    fn strided(ranks: usize, block: u64, blocks_per_rank: usize) -> Vec<Vec<LogicalRequest>> {
        (0..ranks)
            .map(|r| {
                (0..blocks_per_rank)
                    .map(|b| LogicalRequest::write((b * ranks + r) as u64 * block, block))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn coalesce_merges_touching() {
        let merged = coalesce(vec![(10, 20), (0, 10), (30, 40), (15, 25)]);
        assert_eq!(merged, vec![(0, 25), (30, 40)]);
    }

    #[test]
    fn strided_writes_become_contiguous() {
        // 4 ranks × 64 blocks of 64 KiB interleaved: fully covering 16 MiB.
        let contributions = strided(4, 64 * KB, 64);
        let plan = plan_collective(&contributions, &[0, 1], &CollectiveConfig::default()).unwrap();
        let total: u64 = plan.aggregated.iter().flatten().map(|r| r.size).sum();
        assert_eq!(total, 16 * MB, "aggregation conserves bytes");
        // Each aggregator issues 8 MiB as two 4 MiB chunks.
        assert_eq!(plan.aggregated[0].len(), 2);
        assert_eq!(plan.aggregated[1].len(), 2);
        assert!(plan.aggregated[2].is_empty());
        // Chunks are contiguous and in order.
        for reqs in &plan.aggregated {
            for w in reqs.windows(2) {
                assert_eq!(w[0].offset + w[0].size, w[1].offset);
            }
        }
    }

    #[test]
    fn gaps_are_not_fabricated() {
        // Two disjoint covered areas: the hole must not be read/written.
        let contributions = vec![
            vec![LogicalRequest::read(0, MB)],
            vec![LogicalRequest::read(8 * MB, MB)],
        ];
        let plan = plan_collective(&contributions, &[0], &CollectiveConfig::default()).unwrap();
        let total: u64 = plan.aggregated[0].iter().map(|r| r.size).sum();
        assert_eq!(total, 2 * MB);
        assert!(plan.aggregated[0]
            .iter()
            .all(|r| r.offset + r.size <= MB || r.offset >= 8 * MB));
    }

    #[test]
    fn exchange_proportional_to_contribution() {
        let contributions = vec![
            vec![LogicalRequest::write(0, 2 * MB)],
            vec![LogicalRequest::write(2 * MB, MB)],
            vec![],
        ];
        let plan = plan_collective(&contributions, &[0], &CollectiveConfig::default()).unwrap();
        assert_eq!(plan.exchange[0], plan.exchange[1] * 2);
        assert_eq!(plan.exchange[2], SimNanos::ZERO);
    }

    #[test]
    fn empty_call_is_none() {
        let contributions: Vec<Vec<LogicalRequest>> = vec![vec![], vec![]];
        assert!(plan_collective(&contributions, &[0], &CollectiveConfig::default()).is_none());
    }

    #[test]
    #[should_panic(expected = "mixed read/write")]
    fn mixed_ops_rejected() {
        let contributions = vec![
            vec![LogicalRequest::read(0, KB)],
            vec![LogicalRequest::write(KB, KB)],
        ];
        plan_collective(&contributions, &[0], &CollectiveConfig::default());
    }
}
