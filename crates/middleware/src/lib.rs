//! # harl-middleware — the MPI-IO layer above the simulated PFS
//!
//! The paper implements HARL inside MPICH2, above OrangeFS, so applications
//! need no modification (Sec. III-G). This crate plays that role for the
//! simulation:
//!
//! * [`logical`] — what applications see: one shared logical file,
//!   independent and collective read/write calls, compute phases.
//! * [`placement`] — the Placing Phase: one physical region file per RST
//!   row, plus the R2F region-to-file mapping.
//! * [`collective`] — ROMIO-style two-phase collective I/O.
//! * [`runtime`] — trace collection (Tracing Phase), logical→physical
//!   translation (the modified `MPI_File_read/write`), and end-to-end
//!   execution of a workload under any layout policy.
//! * [`serve`] — the long-running multi-tenant planning service
//!   (fingerprint plan cache, incremental re-planning, batched RST
//!   updates) behind `harl-cli serve`.

// missing_docs / rust_2018_idioms come from [workspace.lints]. The
// cfg_attr tier mirrors harl-lint's panic-hygiene rule at compile time
// for library code; unit tests compile under cfg(test) and stay exempt.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod collective;
pub mod logical;
pub mod multiapp;
pub mod placement;
pub mod runtime;
pub mod serve;

pub use collective::{plan_collective, CollectiveConfig, CollectivePlan};
pub use logical::{LogicalRequest, LogicalStep, RankProgram, Workload};
pub use multiapp::{run_shared, AppStats, MultiAppReport};
pub use placement::{bytes_per_server, place, PlacedFile, R2f};
pub use runtime::{
    collect_trace, collect_trace_lowered, run_workload, trace_plan_run, translate_workload,
};
pub use serve::{PlanOutcome, PlanTicket, PlanningService, ServeConfig, ServeStats, TickReport};
