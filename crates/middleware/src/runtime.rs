//! The MPI-IO runtime: tracing, translation, and end-to-end execution.
//!
//! This module ties the pipeline of the paper's Fig. 3 together:
//!
//! * **Tracing Phase** — [`collect_trace`] records a workload's logical
//!   requests as a [`Trace`] (the IOSIG role).
//! * **Analysis Phase** — happens in `harl-core` ([`LayoutPolicy::plan`]).
//! * **Placing Phase** — [`run_workload`] materialises the RST
//!   ([`crate::placement::place`]), translates every logical request onto
//!   the per-region physical files (the modified `MPI_File_read/write` of
//!   Sec. III-G), lowers collective calls through two-phase I/O, and runs
//!   the discrete-event simulation.
//!
//! Every entry point takes a [`SimContext`] first: it carries the metrics
//! [`Recorder`], the seed and thread-budget
//! overrides, and any injected fault plan, so observability and experiment
//! control are orthogonal to the pipeline itself.

use crate::collective::{plan_collective, CollectiveConfig};
use crate::logical::{LogicalRequest, LogicalStep, Workload};
use crate::placement::{place, PlacedFile};
use harl_core::{LayoutPolicy, RegionStripeTable, Trace, TraceRecord};
use harl_pfs::{simulate, ClientProgram, ClusterConfig, PhysRequest, SimReport};
use harl_simcore::metrics::Recorder;
use harl_simcore::{registry, SimContext, SimNanos};

/// How collective calls appear in a collected trace.
enum Lowering<'a> {
    /// Record each rank's collective contributions verbatim.
    Identity,
    /// Lower collectives through two-phase I/O and record the aggregators'
    /// combined requests (what an MPI-IO-level tracer actually observes).
    TwoPhase {
        cluster: &'a ClusterConfig,
        ccfg: &'a CollectiveConfig,
    },
}

/// Tracing Phase: record the logical requests a workload will issue.
///
/// Timestamps are synthetic issue-order counters — region division uses
/// only offsets, sizes and operation types. Collective contributions are
/// recorded verbatim (identity lowering); use [`collect_trace_lowered`]
/// for the post-aggregation view.
pub fn collect_trace(workload: &Workload) -> Trace {
    collect_trace_with(workload, Lowering::Identity)
}

/// Tracing Phase at the PFS boundary: record the requests the middleware
/// actually issues, with collective calls lowered through two-phase I/O.
///
/// This is where IOSIG sits in the paper's stack (a pluggable MPI-IO
/// library): what it observes for a collective application like BTIO are
/// the *aggregators'* large contiguous requests, not each rank's tiny
/// strided contributions — and that is the pattern the layout must serve.
pub fn collect_trace_lowered(
    cluster: &ClusterConfig,
    workload: &Workload,
    ccfg: &CollectiveConfig,
) -> Trace {
    collect_trace_with(workload, Lowering::TwoPhase { cluster, ccfg })
}

/// Single implementation behind both trace collectors: independents pass
/// through unchanged, collectives go through the chosen [`Lowering`].
fn collect_trace_with(workload: &Workload, lowering: Lowering<'_>) -> Trace {
    if matches!(lowering, Lowering::TwoPhase { .. }) {
        let collectives = workload.validate_collectives();
        assert!(
            collectives.is_ok(),
            "collective call counts must match across ranks: {collectives:?}"
        );
    }
    let mut trace = Trace::new();
    let mut clock = 0u64;
    let record = |trace: &mut Trace, clock: &mut u64, rank: usize, r: &LogicalRequest| {
        trace.record(TraceRecord {
            rank: rank as u32,
            fd: 0,
            op: r.op,
            offset: r.offset,
            size: r.size,
            timestamp: SimNanos::from_nanos(*clock),
        });
        *clock += 1;
    };

    // Independent requests pass through unchanged under either lowering.
    for (rank, prog) in workload.ranks.iter().enumerate() {
        for step in &prog.steps {
            if let LogicalStep::Independent(reqs) = step {
                for r in reqs {
                    record(&mut trace, &mut clock, rank, r);
                }
            }
        }
    }
    match lowering {
        Lowering::Identity => {
            for (rank, prog) in workload.ranks.iter().enumerate() {
                for step in &prog.steps {
                    if let LogicalStep::Collective(reqs) = step {
                        for r in reqs {
                            record(&mut trace, &mut clock, rank, r);
                        }
                    }
                }
            }
        }
        Lowering::TwoPhase { cluster, ccfg } => {
            let aggregators = default_aggregators(cluster, workload.rank_count());
            let max_collectives = workload.ranks.first().map_or(0, |r| r.collective_calls());
            for k in 0..max_collectives {
                let contributions: Vec<Vec<LogicalRequest>> = workload
                    .ranks
                    .iter()
                    .map(|prog| {
                        prog.steps
                            .iter()
                            .filter_map(|s| match s {
                                LogicalStep::Collective(r) => Some(r.clone()),
                                _ => None,
                            })
                            .nth(k)
                            .unwrap_or_default()
                    })
                    .collect();
                if let Some(plan) = plan_collective(&contributions, &aggregators, ccfg) {
                    for (rank, reqs) in plan.aggregated.iter().enumerate() {
                        for r in reqs {
                            record(&mut trace, &mut clock, rank, r);
                        }
                    }
                }
            }
        }
    }
    trace
}

/// Translate one logical request into physical per-region requests, with
/// routing observability when the context's recorder is enabled: counts
/// every routing decision per region (`mw.region.requests`,
/// `mw.region.bytes`) and the fan-out of each logical request
/// (`mw.request.fanout` — how many region pieces one call split into).
fn translate_request(
    placed: &PlacedFile,
    req: LogicalRequest,
    recorder: &dyn Recorder,
) -> Vec<PhysRequest> {
    let rec_on = recorder.is_enabled();
    if req.size == 0 {
        // Zero-byte requests still hit the MDS; route to the owning region.
        let region = placed.rst.region_of(req.offset);
        let entry = &placed.rst.entries()[region];
        if rec_on {
            let labels = [("region", region.to_string()), ("op", req.op.to_string())];
            recorder.counter_add(registry::MW_REGION_REQUESTS.name, &labels, 1);
            recorder.observe(
                registry::MW_REQUEST_FANOUT.name,
                &[("op", req.op.to_string())],
                1,
            );
        }
        return vec![PhysRequest {
            file: placed.r2f.file_of(region),
            op: req.op,
            offset: req.offset - entry.offset,
            size: 0,
        }];
    }
    let pieces = placed.rst.split_request(req.offset, req.size);
    if rec_on {
        recorder.observe(
            registry::MW_REQUEST_FANOUT.name,
            &[("op", req.op.to_string())],
            pieces.len() as u64,
        );
        for (region, _, len) in &pieces {
            let labels = [("region", region.to_string()), ("op", req.op.to_string())];
            recorder.counter_add(registry::MW_REGION_REQUESTS.name, &labels, 1);
            recorder.counter_add(registry::MW_REGION_BYTES.name, &labels, *len);
        }
    }
    pieces
        .into_iter()
        .map(|(region, rel_offset, len)| PhysRequest {
            file: placed.r2f.file_of(region),
            op: req.op,
            offset: rel_offset,
            size: len,
        })
        .collect()
}

/// Default aggregator choice: the first rank on each compute node.
fn default_aggregators(cluster: &ClusterConfig, ranks: usize) -> Vec<usize> {
    (0..ranks.min(cluster.compute_nodes)).collect()
}

/// Translate a whole workload into physical client programs.
///
/// Independent requests become synchronous per-request batches of their
/// region pieces. Collective calls are lowered through two-phase I/O:
/// exchange compute → barrier → aggregator I/O → barrier (every rank gets
/// the same barrier structure, so the simulation cannot deadlock).
///
/// When `ctx` carries an enabled recorder, every routing decision is
/// counted (see `translate_request`).
pub fn translate_workload(
    ctx: &SimContext,
    cluster: &ClusterConfig,
    placed: &PlacedFile,
    workload: &Workload,
    ccfg: &CollectiveConfig,
) -> Vec<ClientProgram> {
    let recorder = ctx.recorder();
    let collectives = workload.validate_collectives();
    assert!(
        collectives.is_ok(),
        "collective call counts must match across ranks: {collectives:?}"
    );
    let n_ranks = workload.rank_count();
    let aggregators = default_aggregators(cluster, n_ranks);
    let mut programs: Vec<ClientProgram> = vec![ClientProgram::new(); n_ranks];

    // Collect the k-th collective call of every rank.
    let max_collectives = workload.ranks.first().map_or(0, |r| r.collective_calls());
    let mut collective_plans = Vec::with_capacity(max_collectives);
    for k in 0..max_collectives {
        let contributions: Vec<Vec<LogicalRequest>> = workload
            .ranks
            .iter()
            .map(|prog| {
                prog.steps
                    .iter()
                    .filter_map(|s| match s {
                        LogicalStep::Collective(r) => Some(r.clone()),
                        _ => None,
                    })
                    .nth(k)
                    .unwrap_or_default()
            })
            .collect();
        collective_plans.push(plan_collective(&contributions, &aggregators, ccfg));
    }

    for (rank, prog) in workload.ranks.iter().enumerate() {
        let out = &mut programs[rank];
        let mut next_collective = 0usize;
        for step in &prog.steps {
            match step {
                LogicalStep::Compute(d) => out.push_compute(*d),
                LogicalStep::Independent(reqs) => {
                    for req in reqs {
                        let phys = translate_request(placed, *req, recorder);
                        out.push_batch(phys);
                    }
                }
                LogicalStep::Collective(_) => {
                    let plan = &collective_plans[next_collective];
                    next_collective += 1;
                    match plan {
                        None => {
                            // Pure synchronisation: a single barrier.
                            out.push_barrier();
                        }
                        Some(plan) => {
                            let is_write = plan.op == harl_devices::OpKind::Write;
                            // Write: exchange first, then aggregate I/O.
                            if is_write && !plan.exchange[rank].is_zero() {
                                out.push_compute(plan.exchange[rank]);
                            }
                            out.push_barrier();
                            let mine: Vec<PhysRequest> = plan.aggregated[rank]
                                .iter()
                                .flat_map(|r| translate_request(placed, *r, recorder))
                                .collect();
                            if !mine.is_empty() {
                                out.push_batch(mine);
                            }
                            out.push_barrier();
                            // Read: data fans back out after the I/O.
                            if !is_write && !plan.exchange[rank].is_zero() {
                                out.push_compute(plan.exchange[rank]);
                            }
                        }
                    }
                }
            }
        }
    }
    programs
}

/// Placing Phase + execution: materialise `rst`, translate `workload`, and
/// simulate it on `cluster`.
///
/// With an enabled recorder on `ctx`, the planned per-region stripes land
/// as gauges (`mw.region.stripe_h` / `mw.region.stripe_s`), translation
/// records routing counters, and the simulation records per-server
/// histograms plus one span per request. Seed and fault overrides on `ctx`
/// apply to the simulation.
pub fn run_workload(
    ctx: &SimContext,
    cluster: &ClusterConfig,
    rst: &RegionStripeTable,
    workload: &Workload,
    ccfg: &CollectiveConfig,
) -> SimReport {
    let recorder = ctx.recorder();
    if recorder.is_enabled() {
        for (region, entry) in rst.entries().iter().enumerate() {
            let labels = [("region", region.to_string())];
            if let [h, s] = entry.widths() {
                // Two-tier plans keep the paper's named gauges.
                recorder.gauge_set(registry::MW_REGION_STRIPE_H.name, &labels, *h as f64);
                recorder.gauge_set(registry::MW_REGION_STRIPE_S.name, &labels, *s as f64);
            } else {
                for (class, &w) in entry.widths().iter().enumerate() {
                    let labels = [("region", region.to_string()), ("class", class.to_string())];
                    recorder.gauge_set(registry::MW_REGION_STRIPE_WIDTH.name, &labels, w as f64);
                }
            }
            recorder.gauge_set(registry::MW_REGION_LEN.name, &labels, entry.len as f64);
        }
    }
    let placed = place(cluster, rst, 0);
    let programs = translate_workload(ctx, cluster, &placed, workload, ccfg);
    simulate(ctx, cluster, &placed.files, &programs)
}

/// The full paper pipeline for one workload: trace it, plan a layout with
/// `policy`, place it, run it. Returns the plan and the simulation report.
///
/// `ctx` threads through every phase: the planner obeys its thread budget,
/// the simulation obeys its seed/fault overrides, and an enabled recorder
/// observes tracing, planning, translation and execution.
pub fn trace_plan_run(
    ctx: &SimContext,
    cluster: &ClusterConfig,
    policy: &dyn LayoutPolicy,
    workload: &Workload,
    ccfg: &CollectiveConfig,
) -> (RegionStripeTable, SimReport) {
    let trace = collect_trace_lowered(cluster, workload, ccfg);
    let recorder = ctx.recorder();
    if recorder.is_enabled() {
        recorder.counter_add(registry::MW_TRACE_RECORDS.name, &[], trace.len() as u64);
    }
    let file_size = workload.extent().max(1);
    let rst = policy.plan(ctx, &trace, file_size);
    let report = run_workload(ctx, cluster, &rst, workload, ccfg);
    (rst, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use harl_core::{CostModelParams, FixedPolicy, HarlPolicy, RstEntry};
    use harl_simcore::metrics::NoopRecorder;

    const KB: u64 = 1024;
    const MB: u64 = 1024 * 1024;

    fn ctx() -> SimContext {
        SimContext::new()
    }

    fn two_region_rst() -> RegionStripeTable {
        RegionStripeTable::new(vec![
            RstEntry::two(0, 4 * MB, 64 * KB, 64 * KB),
            RstEntry::two(4 * MB, 4 * MB, 0, 128 * KB),
        ])
    }

    #[test]
    fn trace_collection_covers_all_requests() {
        let mut w = Workload::with_ranks(2);
        w.ranks[0].push_request(LogicalRequest::write(0, KB));
        w.ranks[1].push_collective(vec![LogicalRequest::write(KB, KB)]);
        w.ranks[0].push_collective(vec![]);
        let trace = collect_trace(&w);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.total_bytes(), (0, 2 * KB));
    }

    #[test]
    fn translation_splits_on_region_boundary() {
        let cluster = ClusterConfig::paper_default();
        let placed = place(&cluster, &two_region_rst(), 0);
        let phys = translate_request(
            &placed,
            LogicalRequest::read(4 * MB - KB, 2 * KB),
            &NoopRecorder,
        );
        assert_eq!(phys.len(), 2);
        assert_eq!(phys[0].file, 0);
        assert_eq!(phys[0].offset, 4 * MB - KB);
        assert_eq!(phys[0].size, KB);
        assert_eq!(phys[1].file, 1);
        assert_eq!(phys[1].offset, 0);
        assert_eq!(phys[1].size, KB);
    }

    #[test]
    fn zero_byte_request_routes_to_region() {
        let cluster = ClusterConfig::paper_default();
        let placed = place(&cluster, &two_region_rst(), 0);
        let phys = translate_request(&placed, LogicalRequest::read(5 * MB, 0), &NoopRecorder);
        assert_eq!(phys.len(), 1);
        assert_eq!(phys[0].file, 1);
        assert_eq!(phys[0].size, 0);
    }

    #[test]
    fn independent_workload_end_to_end() {
        let cluster = ClusterConfig::paper_default();
        let mut w = Workload::with_ranks(4);
        for (r, prog) in w.ranks.iter_mut().enumerate() {
            for i in 0..4u64 {
                prog.push_request(LogicalRequest::write(
                    (r as u64 * 4 + i) * 512 * KB,
                    512 * KB,
                ));
            }
        }
        let report = run_workload(
            &ctx(),
            &cluster,
            &two_region_rst(),
            &w,
            &CollectiveConfig::default(),
        );
        assert_eq!(report.requests_completed, 16);
        assert_eq!(report.bytes_written, 8 * MB);
    }

    #[test]
    fn collective_workload_end_to_end() {
        let cluster = ClusterConfig::paper_default();
        // 4 ranks, each contributing an interleaved quarter of 8 MiB.
        let mut w = Workload::with_ranks(4);
        for (r, prog) in w.ranks.iter_mut().enumerate() {
            let reqs: Vec<LogicalRequest> = (0..8u64)
                .map(|b| LogicalRequest::write((b * 4 + r as u64) * 256 * KB, 256 * KB))
                .collect();
            prog.push_collective(reqs);
        }
        let report = run_workload(
            &ctx(),
            &cluster,
            &two_region_rst(),
            &w,
            &CollectiveConfig::default(),
        );
        assert_eq!(report.bytes_written, 8 * MB);
        // Aggregators (≤ 4) issue the actual file requests.
        assert!(report.requests_completed >= 2);
    }

    #[test]
    fn collective_read_round_trips() {
        // Read collectives take the reverse path: barrier, aggregator I/O,
        // barrier, then the fan-out exchange. Bytes must balance and every
        // rank must pass both barriers.
        let cluster = ClusterConfig::paper_default();
        let mut w = Workload::with_ranks(4);
        for (r, prog) in w.ranks.iter_mut().enumerate() {
            let reqs: Vec<LogicalRequest> = (0..8u64)
                .map(|b| LogicalRequest::read((b * 4 + r as u64) * 256 * KB, 256 * KB))
                .collect();
            prog.push_collective(reqs);
        }
        let rst = RegionStripeTable::single(8 * MB, 64 * KB, 64 * KB);
        let report = run_workload(&ctx(), &cluster, &rst, &w, &CollectiveConfig::default());
        assert_eq!(report.bytes_read, 8 * MB);
        assert_eq!(report.bytes_written, 0);
        assert!(report.read_latency.count() >= 2);
    }

    #[test]
    fn collective_beats_naive_strided_independent() {
        // The reason BTIO uses collective I/O: interleaved small blocks
        // as independent requests are far slower than two-phase.
        let cluster = ClusterConfig::paper_default();
        let rst = RegionStripeTable::single(64 * MB, 64 * KB, 64 * KB);
        let block = 64 * KB;
        let ranks = 4usize;
        let blocks = 32u64;
        let mut coll = Workload::with_ranks(ranks);
        let mut indep = Workload::with_ranks(ranks);
        for r in 0..ranks {
            let reqs: Vec<LogicalRequest> = (0..blocks)
                .map(|b| LogicalRequest::write((b * ranks as u64 + r as u64) * block, block))
                .collect();
            coll.ranks[r].push_collective(reqs.clone());
            for q in reqs {
                indep.ranks[r].push_request(q);
            }
        }
        let ccfg = CollectiveConfig::default();
        let rc = run_workload(&ctx(), &cluster, &rst, &coll, &ccfg);
        let ri = run_workload(&ctx(), &cluster, &rst, &indep, &ccfg);
        assert!(
            rc.makespan < ri.makespan,
            "collective {c} should beat independent {i}",
            c = rc.makespan,
            i = ri.makespan
        );
    }

    #[test]
    fn lowered_trace_matches_plain_on_independent_workloads() {
        // The two collectors are one implementation; on a workload with no
        // collectives they must produce identical traces.
        let cluster = ClusterConfig::paper_default();
        let mut w = Workload::with_ranks(3);
        for (r, prog) in w.ranks.iter_mut().enumerate() {
            for i in 0..4u64 {
                prog.push_request(LogicalRequest::read(
                    (r as u64 * 4 + i) * 256 * KB,
                    256 * KB,
                ));
            }
        }
        let plain = collect_trace(&w);
        let lowered = collect_trace_lowered(&cluster, &w, &CollectiveConfig::default());
        assert_eq!(plain.records(), lowered.records());
    }

    #[test]
    fn recorded_run_counts_region_routing() {
        use harl_simcore::MemoryRecorder;
        use std::sync::Arc;
        let cluster = ClusterConfig::paper_default();
        let mut w = Workload::with_ranks(2);
        // Rank 0 stays inside region 0; rank 1 straddles the 4 MiB boundary.
        w.ranks[0].push_request(LogicalRequest::write(0, 512 * KB));
        w.ranks[1].push_request(LogicalRequest::write(4 * MB - KB, 2 * KB));
        let rec = Arc::new(MemoryRecorder::new());
        let report = run_workload(
            &SimContext::recorded(rec.clone()),
            &cluster,
            &two_region_rst(),
            &w,
            &CollectiveConfig::default(),
        );
        assert_eq!(report.requests_completed, 3, "straddler splits in two");
        let r0 = [("region", "0".to_string()), ("op", "write".to_string())];
        let r1 = [("region", "1".to_string()), ("op", "write".to_string())];
        assert_eq!(rec.counter_value("mw.region.requests", &r0), 2);
        assert_eq!(rec.counter_value("mw.region.requests", &r1), 1);
        assert_eq!(rec.counter_value("mw.region.bytes", &r1), KB);
        // Fan-out histogram: one single-piece request, one two-piece.
        let fanout = rec
            .histogram_snapshot("mw.request.fanout", &[("op", "write".to_string())])
            .unwrap();
        assert_eq!(fanout.count(), 2);
        assert_eq!(fanout.bucket_for(1), 1);
        assert_eq!(fanout.bucket_for(2), 1);
        // Planned stripes exported as gauges.
        assert_eq!(
            rec.gauge_value("mw.region.stripe_h", &[("region", "0".to_string())]),
            Some((64 * KB) as f64)
        );
        // The downstream simulation recorded spans through the same recorder.
        assert_eq!(rec.spans().len(), 3);
    }

    #[test]
    fn trace_plan_run_with_harl() {
        let cluster = ClusterConfig::paper_default();
        let mut w = Workload::with_ranks(4);
        for (r, prog) in w.ranks.iter_mut().enumerate() {
            for i in 0..4u64 {
                prog.push_request(LogicalRequest::read(
                    (r as u64 * 4 + i) * 512 * KB,
                    512 * KB,
                ));
            }
        }
        let policy = HarlPolicy::new(CostModelParams::from_cluster(&cluster));
        let (rst, report) =
            trace_plan_run(&ctx(), &cluster, &policy, &w, &CollectiveConfig::default());
        assert!(!rst.is_empty());
        assert_eq!(report.bytes_read, 8 * MB);

        // Sanity: HARL at least matches the 64K default on this workload.
        let fixed = FixedPolicy::new(64 * KB);
        let (_, fixed_report) =
            trace_plan_run(&ctx(), &cluster, &fixed, &w, &CollectiveConfig::default());
        assert!(
            report.makespan <= fixed_report.makespan,
            "HARL {h} worse than default {f}",
            h = report.makespan,
            f = fixed_report.makespan
        );
    }
}
