//! IOR-like synthetic benchmark (paper Sec. IV-B).
//!
//! The paper's IOR runs: P processes share one file; each process owns the
//! contiguous 1/P of the file and "continuously issues requests with random
//! offsets" of a fixed request size within its segment. Reads and writes
//! are measured as separate runs. This module generates exactly those
//! request streams (random mode shuffles the segment's blocks so each block
//! is touched once — IOR's `-z` behaviour — keeping total bytes fixed).

use harl_devices::OpKind;
use harl_middleware::{LogicalRequest, Workload};
use harl_simcore::SimRng;
use serde::{Deserialize, Serialize};

/// Offset ordering within each process's segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessOrder {
    /// Ascending offsets.
    Sequential,
    /// Random permutation of the segment's blocks (IOR `-z`).
    Random,
}

/// Configuration of one IOR run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IorConfig {
    /// Number of processes (the paper uses 8–256; default 16).
    pub processes: usize,
    /// Request size in bytes (default 512 KiB).
    pub request_size: u64,
    /// Shared file size in bytes (the paper uses 16 GiB; scale down for
    /// quick runs — throughput is bytes/makespan either way).
    pub file_size: u64,
    /// Read or write run.
    pub op: OpKind,
    /// Offset ordering.
    pub order: AccessOrder,
    /// Seed for the random ordering.
    pub seed: u64,
}

impl IorConfig {
    /// The paper's default setup: 16 processes, 512 KiB requests, shared
    /// file, random offsets — at a scaled-down file size chosen by the
    /// caller.
    pub fn paper_default(op: OpKind, file_size: u64) -> Self {
        IorConfig {
            processes: 16,
            request_size: 512 * 1024,
            file_size,
            op,
            order: AccessOrder::Random,
            seed: 0x10,
        }
    }

    /// Requests each process issues.
    pub fn requests_per_process(&self) -> u64 {
        let segment = self.file_size / self.processes as u64;
        segment / self.request_size
    }

    /// Generate the workload.
    ///
    /// # Panics
    /// Panics if the file cannot hold at least one request per process.
    pub fn build(&self) -> Workload {
        assert!(self.processes > 0, "need at least one process");
        assert!(self.request_size > 0, "request size must be positive");
        let segment = self.file_size / self.processes as u64;
        let blocks = segment / self.request_size;
        assert!(
            blocks > 0,
            "file of {} too small for {} processes at request size {}",
            self.file_size,
            self.processes,
            self.request_size
        );

        let mut workload = Workload::with_ranks(self.processes);
        for (rank, prog) in workload.ranks.iter_mut().enumerate() {
            let base = rank as u64 * segment;
            let mut order: Vec<u64> = (0..blocks).collect();
            if self.order == AccessOrder::Random {
                let mut rng = SimRng::derived(self.seed, &format!("ior-rank-{rank}"));
                rng.shuffle(&mut order);
            }
            for block in order {
                let offset = base + block * self.request_size;
                prog.push_request(LogicalRequest {
                    op: self.op,
                    offset,
                    size: self.request_size,
                });
            }
        }
        workload
    }
}

/// The paper's Fig. 11 workload: a modified IOR accessing a four-region
/// file, each region with its own size and request size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiRegionIorConfig {
    /// `(region_size, request_size)` per region, in file order.
    pub regions: Vec<(u64, u64)>,
    /// Number of processes.
    pub processes: usize,
    /// Read or write run.
    pub op: OpKind,
    /// Seed for the random ordering.
    pub seed: u64,
}

impl MultiRegionIorConfig {
    /// The paper's four regions (256 MiB / 1 GiB / 2 GiB / 4 GiB), scaled
    /// by `scale` (1.0 = paper size). The paper does not state the four
    /// request sizes; we use 64 KiB / 256 KiB / 1 MiB / 2 MiB, spanning the
    /// same range as its Fig. 1(b) sweep.
    pub fn paper_default(op: OpKind, scale: f64) -> Self {
        const MIB: u64 = 1024 * 1024;
        let sz = |mib: u64| ((mib as f64 * scale) as u64).max(8) * MIB;
        MultiRegionIorConfig {
            regions: vec![
                (sz(256), 64 * 1024),
                (sz(1024), 256 * 1024),
                (sz(2048), 1024 * 1024),
                (sz(4096), 2 * 1024 * 1024),
            ],
            processes: 16,
            op,
            seed: 0x11,
        }
    }

    /// Total file size.
    pub fn file_size(&self) -> u64 {
        self.regions.iter().map(|&(len, _)| len).sum()
    }

    /// Generate the workload: within each region, processes share the
    /// region IOR-style (each owns 1/P, random block order).
    pub fn build(&self) -> Workload {
        assert!(self.processes > 0, "need at least one process");
        let mut workload = Workload::with_ranks(self.processes);
        let mut region_base = 0u64;
        for (ridx, &(region_len, request_size)) in self.regions.iter().enumerate() {
            assert!(request_size > 0, "request size must be positive");
            let segment = region_len / self.processes as u64;
            let blocks = segment / request_size;
            for (rank, prog) in workload.ranks.iter_mut().enumerate() {
                let base = region_base + rank as u64 * segment;
                let mut order: Vec<u64> = (0..blocks).collect();
                let mut rng = SimRng::derived(self.seed, &format!("mr-ior-{ridx}-rank-{rank}"));
                rng.shuffle(&mut order);
                for block in order {
                    prog.push_request(LogicalRequest {
                        op: self.op,
                        offset: base + block * request_size,
                        size: request_size,
                    });
                }
            }
            region_base += region_len;
        }
        workload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KB: u64 = 1024;
    const MB: u64 = 1024 * 1024;

    #[test]
    fn paper_default_shape() {
        let cfg = IorConfig::paper_default(OpKind::Read, 256 * MB);
        let w = cfg.build();
        assert_eq!(w.rank_count(), 16);
        let (read, written) = w.total_bytes();
        assert_eq!(read, 256 * MB);
        assert_eq!(written, 0);
        assert_eq!(cfg.requests_per_process(), 32);
    }

    #[test]
    fn segments_are_disjoint() {
        let cfg = IorConfig {
            processes: 4,
            request_size: 64 * KB,
            file_size: 16 * MB,
            op: OpKind::Write,
            order: AccessOrder::Sequential,
            seed: 0,
        };
        let w = cfg.build();
        let segment = 4 * MB;
        for (rank, prog) in w.ranks.iter().enumerate() {
            for step in &prog.steps {
                if let harl_middleware::LogicalStep::Independent(reqs) = step {
                    for r in reqs {
                        assert!(r.offset >= rank as u64 * segment);
                        assert!(r.offset + r.size <= (rank as u64 + 1) * segment);
                    }
                }
            }
        }
    }

    #[test]
    fn random_order_is_permutation() {
        let cfg = IorConfig {
            processes: 1,
            request_size: MB,
            file_size: 32 * MB,
            op: OpKind::Read,
            order: AccessOrder::Random,
            seed: 3,
        };
        let w = cfg.build();
        let mut offsets: Vec<u64> = w.ranks[0]
            .steps
            .iter()
            .filter_map(|s| match s {
                harl_middleware::LogicalStep::Independent(r) => Some(r[0].offset),
                _ => None,
            })
            .collect();
        let sequential: Vec<u64> = (0..32).map(|i| i * MB).collect();
        assert_ne!(offsets, sequential, "random order should differ");
        offsets.sort_unstable();
        assert_eq!(offsets, sequential, "every block touched exactly once");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = IorConfig::paper_default(OpKind::Read, 64 * MB);
        assert_eq!(cfg.build(), cfg.build());
    }

    #[test]
    fn multi_region_covers_all_regions() {
        let cfg = MultiRegionIorConfig::paper_default(OpKind::Write, 1.0 / 64.0);
        let w = cfg.build();
        let (_, written) = w.total_bytes();
        assert!(written > 0);
        assert!(w.extent() <= cfg.file_size());
        // Requests in the last region are 2 MiB; in the first, 64 KiB.
        let first_region_len = cfg.regions[0].0;
        let mut seen_small = false;
        let mut seen_large = false;
        for prog in &w.ranks {
            for step in &prog.steps {
                if let harl_middleware::LogicalStep::Independent(reqs) = step {
                    for r in reqs {
                        if r.offset < first_region_len {
                            assert_eq!(r.size, 64 * KB);
                            seen_small = true;
                        }
                        if r.size == 2 * MB {
                            seen_large = true;
                        }
                    }
                }
            }
        }
        assert!(seen_small && seen_large);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_file_rejected() {
        IorConfig {
            processes: 16,
            request_size: MB,
            file_size: MB,
            op: OpKind::Read,
            order: AccessOrder::Sequential,
            seed: 0,
        }
        .build();
    }
}
