//! Trace replay: turn a recorded [`Trace`] back into a runnable workload.
//!
//! This closes the paper's loop — *"the program often run many times and
//! these patterns do not fluctuate significantly"* — the trace from the
//! first execution both drives the Analysis Phase and can be replayed to
//! measure later runs under the optimised layout.

use harl_core::Trace;
use harl_middleware::{LogicalRequest, Workload};

/// Rebuild a workload from a trace: each record becomes a synchronous
/// independent request on its original rank, in timestamp order per rank.
///
/// Ranks are assumed dense from 0; a trace whose highest rank is `r`
/// produces `r + 1` rank programs (possibly some empty).
pub fn replay(trace: &Trace) -> Workload {
    let max_rank = trace.records().iter().map(|r| r.rank).max().unwrap_or(0);
    let mut workload = Workload::with_ranks(max_rank as usize + 1);
    // Per-rank records in recorded order (Trace preserves issue order).
    for rec in trace.records() {
        workload.ranks[rec.rank as usize].push_request(LogicalRequest {
            op: rec.op,
            offset: rec.offset,
            size: rec.size,
        });
    }
    workload
}

#[cfg(test)]
mod tests {
    use super::*;
    use harl_core::TraceRecord;
    use harl_devices::OpKind;
    use harl_middleware::collect_trace;
    use harl_simcore::SimNanos;

    #[test]
    fn replay_round_trips_through_collect() {
        // collect_trace(replay(t)) contains the same requests as t.
        let trace = Trace::from_records(vec![
            TraceRecord {
                rank: 0,
                fd: 0,
                op: OpKind::Write,
                offset: 0,
                size: 100,
                timestamp: SimNanos::ZERO,
            },
            TraceRecord {
                rank: 2,
                fd: 0,
                op: OpKind::Read,
                offset: 500,
                size: 50,
                timestamp: SimNanos::from_nanos(1),
            },
        ]);
        let workload = replay(&trace);
        assert_eq!(workload.rank_count(), 3);
        let again = collect_trace(&workload);
        assert_eq!(again.total_bytes(), trace.total_bytes());
        assert_eq!(again.extent(), trace.extent());
        assert_eq!(again.len(), trace.len());
    }

    #[test]
    fn empty_trace_single_empty_rank() {
        let w = replay(&Trace::new());
        assert_eq!(w.rank_count(), 1);
        assert_eq!(w.total_bytes(), (0, 0));
    }
}
