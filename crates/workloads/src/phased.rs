//! Phased workloads: arbitrary sequences of I/O phases.
//!
//! The paper's motivation (Sec. I) is that *"request sizes can be large at
//! one chunk of the file but small at another; request types can be read
//! operation in one I/O phase but write in another."* This generator
//! composes such behaviour explicitly — a list of [`Phase`]s, each with
//! its own file area, request size, operation and access order — and is
//! the workhorse for drift scenarios (feed phase 1 to the planner, phase 2
//! to the on-line monitor) and for region-division stress tests beyond the
//! fixed four-region IOR of Fig. 11.

use crate::ior::AccessOrder;
use harl_devices::OpKind;
use harl_middleware::{LogicalRequest, Workload};
use harl_simcore::{SimNanos, SimRng};
use serde::{Deserialize, Serialize};

/// One I/O phase over a contiguous file area.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// First byte of the area this phase touches.
    pub offset: u64,
    /// Length of the area; must be a positive multiple that fits at least
    /// one request per process.
    pub len: u64,
    /// Request size.
    pub request_size: u64,
    /// Read or write.
    pub op: OpKind,
    /// Offset ordering within each process's slice.
    pub order: AccessOrder,
    /// Optional compute pause every process takes before the phase.
    pub think: SimNanos,
}

impl Phase {
    /// A convenience phase with sequential order and no think time.
    pub fn new(offset: u64, len: u64, request_size: u64, op: OpKind) -> Self {
        Phase {
            offset,
            len,
            request_size,
            op,
            order: AccessOrder::Sequential,
            think: SimNanos::ZERO,
        }
    }
}

/// A phased workload over one shared logical file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhasedConfig {
    /// Phases executed in order by every process.
    pub phases: Vec<Phase>,
    /// Number of processes.
    pub processes: usize,
    /// Seed for random orders.
    pub seed: u64,
}

impl PhasedConfig {
    /// Total bytes `(read, written)` the workload will move.
    pub fn total_bytes(&self) -> (u64, u64) {
        let mut read = 0;
        let mut written = 0;
        for p in &self.phases {
            let per_proc = p.len / self.processes as u64 / p.request_size * p.request_size;
            let total = per_proc * self.processes as u64;
            match p.op {
                OpKind::Read => read += total,
                OpKind::Write => written += total,
            }
        }
        (read, written)
    }

    /// Generate the workload. Each phase splits its area evenly over the
    /// processes (IOR-style segments).
    ///
    /// # Panics
    /// Panics if any phase cannot give every process at least one request.
    pub fn build(&self) -> Workload {
        assert!(self.processes > 0, "need at least one process");
        let mut workload = Workload::with_ranks(self.processes);
        for (pidx, phase) in self.phases.iter().enumerate() {
            assert!(phase.request_size > 0, "phase {pidx}: zero request size");
            let segment = phase.len / self.processes as u64;
            let blocks = segment / phase.request_size;
            assert!(
                blocks > 0,
                "phase {pidx}: area {} too small for {} processes at {} per request",
                phase.len,
                self.processes,
                phase.request_size
            );
            for (rank, prog) in workload.ranks.iter_mut().enumerate() {
                if !phase.think.is_zero() {
                    prog.push_compute(phase.think);
                }
                let base = phase.offset + rank as u64 * segment;
                let mut order: Vec<u64> = (0..blocks).collect();
                if phase.order == AccessOrder::Random {
                    let mut rng = SimRng::derived(self.seed, &format!("phase-{pidx}-rank-{rank}"));
                    rng.shuffle(&mut order);
                }
                for block in order {
                    prog.push_request(LogicalRequest {
                        op: phase.op,
                        offset: base + block * phase.request_size,
                        size: phase.request_size,
                    });
                }
            }
        }
        workload
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harl_middleware::LogicalStep;

    const KB: u64 = 1024;
    const MB: u64 = 1024 * 1024;

    #[test]
    fn write_then_read_same_area() {
        // The classic checkpoint/restart shape: write a file, read it back.
        let cfg = PhasedConfig {
            phases: vec![
                Phase::new(0, 64 * MB, 512 * KB, OpKind::Write),
                Phase::new(0, 64 * MB, 512 * KB, OpKind::Read),
            ],
            processes: 4,
            seed: 1,
        };
        let w = cfg.build();
        let (read, written) = w.total_bytes();
        assert_eq!(read, 64 * MB);
        assert_eq!(written, 64 * MB);
        assert_eq!(cfg.total_bytes(), (64 * MB, 64 * MB));
    }

    #[test]
    fn phases_respect_their_areas() {
        let cfg = PhasedConfig {
            phases: vec![
                Phase::new(0, 16 * MB, 64 * KB, OpKind::Read),
                Phase::new(16 * MB, 32 * MB, MB, OpKind::Read),
            ],
            processes: 2,
            seed: 2,
        };
        let w = cfg.build();
        for prog in &w.ranks {
            for step in &prog.steps {
                if let LogicalStep::Independent(reqs) = step {
                    for r in reqs {
                        if r.size == 64 * KB {
                            assert!(r.offset + r.size <= 16 * MB);
                        } else {
                            assert!(r.offset >= 16 * MB);
                            assert!(r.offset + r.size <= 48 * MB);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn think_time_becomes_compute_steps() {
        let cfg = PhasedConfig {
            phases: vec![Phase {
                think: SimNanos::from_millis(5),
                ..Phase::new(0, 8 * MB, MB, OpKind::Write)
            }],
            processes: 2,
            seed: 3,
        };
        let w = cfg.build();
        assert!(
            matches!(w.ranks[0].steps[0], LogicalStep::Compute(d) if d == SimNanos::from_millis(5))
        );
    }

    #[test]
    fn random_order_is_per_phase_permutation() {
        let cfg = PhasedConfig {
            phases: vec![Phase {
                order: AccessOrder::Random,
                ..Phase::new(0, 16 * MB, MB, OpKind::Read)
            }],
            processes: 1,
            seed: 4,
        };
        let w = cfg.build();
        let mut offsets: Vec<u64> = w.ranks[0]
            .steps
            .iter()
            .filter_map(|s| match s {
                LogicalStep::Independent(r) => Some(r[0].offset),
                _ => None,
            })
            .collect();
        offsets.sort_unstable();
        assert_eq!(offsets, (0..16).map(|i| i * MB).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn undersized_phase_rejected() {
        PhasedConfig {
            phases: vec![Phase::new(0, MB, MB, OpKind::Read)],
            processes: 4,
            seed: 0,
        }
        .build();
    }
}
