//! # harl-workloads — the benchmarks of the paper's evaluation
//!
//! * [`ior`] — the IOR-like generator (uniform runs and the Fig. 11
//!   four-region non-uniform variant).
//! * [`btio`] — the BTIO-like generator (NAS BT, full subtype: collective
//!   nested-strided dumps + verification read-back).
//! * [`phased`] — arbitrary multi-phase workloads (drift scenarios,
//!   checkpoint/restart shapes).
//! * [`mod@replay`] — rebuild a workload from a recorded trace.

// missing_docs / rust_2018_idioms come from [workspace.lints]. The
// cfg_attr tier mirrors harl-lint's panic-hygiene rule at compile time
// for library code; unit tests compile under cfg(test) and stay exempt.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod btio;
pub mod ior;
pub mod phased;
pub mod replay;
pub mod traffic;

pub use btio::BtioConfig;
pub use ior::{AccessOrder, IorConfig, MultiRegionIorConfig};
pub use phased::{Phase, PhasedConfig};
pub use replay::replay;
pub use traffic::{TrafficConfig, TrafficJob};
