//! BTIO-like workload (NAS Parallel Benchmarks BT, I/O subtype "full").
//!
//! BTIO solves the 3-D compressible Navier–Stokes equations with a
//! block-tridiagonal scheme and, every `write_interval` time steps,
//! collectively appends the full solution array (5 doubles per grid cell)
//! to a shared file; after the time loop, the file is read back for
//! verification. The "full" subtype uses MPI collective I/O
//! (`MPI_File_write_all`), which is where two-phase optimisation matters:
//! each rank's contribution is a *nested-strided* pattern of short runs.
//!
//! Decomposition: the official BT uses a square process grid (P must be a
//! perfect square) over a diagonal cell decomposition. We reproduce the
//! resulting *file access pattern* with a 2-D block decomposition of the
//! (x, y) plane: rank (i, j) owns `x ∈ [x0, x1)` × `y ∈ [y0, y1)` for all
//! z, so each dump contributes `grid × ny_local` runs of `nx_local` cells —
//! the same many-short-runs shape that makes BTIO hard on a PFS.
//!
//! Sizing: the paper reports "Class A, full subtype … writes and reads a
//! total size of 1.69 GB". We size the default grid/steps to hit that
//! total (grid 104³ × 40 B/cell ≈ 45 MiB per dump, 20 dumps ⇒ ≈0.88 GiB
//! written and the same read back ≈ 1.76 GB total, the closest divisible
//! geometry).

use harl_devices::OpKind;
use harl_middleware::{LogicalRequest, Workload};
use harl_simcore::SimNanos;
use serde::{Deserialize, Serialize};

/// Bytes per grid cell: 5 solution components × 8-byte doubles.
pub const BYTES_PER_CELL: u64 = 40;

/// Configuration of one BTIO run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BtioConfig {
    /// Grid points per dimension (the solution array is `grid³` cells).
    pub grid: usize,
    /// Number of time steps.
    pub steps: usize,
    /// Dump the solution every this many steps (BTIO's `wr_interval`).
    pub write_interval: usize,
    /// Number of processes; must be a perfect square (BTIO requirement).
    pub processes: usize,
    /// Computation time per time step (0 to measure pure I/O, as the
    /// paper's aggregate-I/O-throughput numbers do).
    pub compute_per_step: SimNanos,
}

impl BtioConfig {
    /// The paper's workload: class-A-labelled full-subtype run totalling
    /// ≈1.7 GB of file I/O (see module docs), at the given process count
    /// (4, 16 or 64 in the paper).
    pub fn paper_default(processes: usize) -> Self {
        BtioConfig {
            grid: 104,
            steps: 40,
            write_interval: 2,
            processes,
            compute_per_step: SimNanos::ZERO,
        }
    }

    /// A small configuration for tests.
    pub fn tiny(processes: usize) -> Self {
        BtioConfig {
            grid: 16,
            steps: 4,
            write_interval: 2,
            processes,
            compute_per_step: SimNanos::ZERO,
        }
    }

    /// Size of one solution dump in bytes.
    pub fn dump_size(&self) -> u64 {
        (self.grid as u64).pow(3) * BYTES_PER_CELL
    }

    /// Number of dumps over the run.
    pub fn dump_count(&self) -> usize {
        self.steps / self.write_interval
    }

    /// Final output file size.
    pub fn file_size(&self) -> u64 {
        self.dump_size() * self.dump_count() as u64
    }

    /// Total bytes moved (writes + verification read-back).
    pub fn total_io_bytes(&self) -> u64 {
        2 * self.file_size()
    }

    /// The block-distributed interval `[lo, hi)` of `n` items over `parts`
    /// parts for part `k` (first `n % parts` parts get one extra).
    fn block(n: usize, parts: usize, k: usize) -> (usize, usize) {
        let base = n / parts;
        let extra = n % parts;
        let lo = k * base + k.min(extra);
        let hi = lo + base + usize::from(k < extra);
        (lo, hi)
    }

    /// One rank's contribution to a dump at file offset `dump_base`.
    fn rank_requests(&self, rank: usize, dump_base: u64, op: OpKind) -> Vec<LogicalRequest> {
        let side = (self.processes as f64).sqrt() as usize;
        let (pi, pj) = (rank % side, rank / side);
        let n = self.grid;
        let (x0, x1) = Self::block(n, side, pi);
        let (y0, y1) = Self::block(n, side, pj);
        let mut reqs = Vec::with_capacity(n * (y1 - y0));
        for z in 0..n {
            for y in y0..y1 {
                let cell_index = (z * n + y) * n + x0;
                let offset = dump_base + cell_index as u64 * BYTES_PER_CELL;
                let size = (x1 - x0) as u64 * BYTES_PER_CELL;
                reqs.push(LogicalRequest { op, offset, size });
            }
        }
        reqs
    }

    /// Generate the workload: the interleaved compute/collective-write time
    /// loop, then the collective verification read.
    ///
    /// # Panics
    /// Panics unless `processes` is a positive perfect square and the
    /// step/interval combination produces at least one dump.
    pub fn build(&self) -> Workload {
        let side = (self.processes as f64).sqrt() as usize;
        assert!(
            side > 0 && side * side == self.processes,
            "BTIO requires a square number of processes, got {}",
            self.processes
        );
        assert!(
            self.write_interval > 0 && self.dump_count() > 0,
            "no dumps: steps {} interval {}",
            self.steps,
            self.write_interval
        );

        let mut workload = Workload::with_ranks(self.processes);
        for step in 1..=self.steps {
            let is_dump = step % self.write_interval == 0;
            for (rank, prog) in workload.ranks.iter_mut().enumerate() {
                if !self.compute_per_step.is_zero() {
                    prog.push_compute(self.compute_per_step);
                }
                if is_dump {
                    let dump_index = (step / self.write_interval - 1) as u64;
                    let base = dump_index * self.dump_size();
                    prog.push_collective(self.rank_requests(rank, base, OpKind::Write));
                }
            }
        }
        // Verification read-back of the whole file, dump by dump.
        for dump in 0..self.dump_count() as u64 {
            let base = dump * self.dump_size();
            for (rank, prog) in workload.ranks.iter_mut().enumerate() {
                prog.push_collective(self.rank_requests(rank, base, OpKind::Read));
            }
        }
        workload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_totals_about_1_7_gb() {
        let cfg = BtioConfig::paper_default(16);
        let total = cfg.total_io_bytes() as f64 / 1e9;
        assert!(
            (1.5..2.0).contains(&total),
            "total I/O {total:.2} GB should approximate the paper's 1.69 GB"
        );
    }

    #[test]
    fn bytes_conserved_across_ranks() {
        let cfg = BtioConfig::tiny(4);
        let w = cfg.build();
        let (read, written) = w.total_bytes();
        assert_eq!(written, cfg.file_size());
        assert_eq!(read, cfg.file_size());
        assert_eq!(w.extent(), cfg.file_size());
    }

    #[test]
    fn dump_partition_is_exact_and_disjoint() {
        // Every cell of one dump is written exactly once across ranks.
        let cfg = BtioConfig::tiny(4);
        let mut covered = vec![false; cfg.dump_size() as usize / BYTES_PER_CELL as usize];
        for rank in 0..4 {
            for req in cfg.rank_requests(rank, 0, OpKind::Write) {
                let first = (req.offset / BYTES_PER_CELL) as usize;
                let cells = (req.size / BYTES_PER_CELL) as usize;
                for (c, slot) in covered.iter_mut().enumerate().skip(first).take(cells) {
                    assert!(!slot.to_owned(), "cell {c} written twice");
                    *slot = true;
                }
            }
        }
        assert!(covered.iter().all(|&c| c), "dump not fully covered");
    }

    #[test]
    fn runs_are_nested_strided() {
        // Rank 0 of a 4-process run owns half of each row plane: its run
        // length is nx_local cells and runs repeat every grid cells.
        let cfg = BtioConfig::tiny(4);
        let reqs = cfg.rank_requests(0, 0, OpKind::Write);
        assert_eq!(reqs.len(), cfg.grid * cfg.grid / 2);
        let run = reqs[0].size;
        assert_eq!(run, (cfg.grid as u64 / 2) * BYTES_PER_CELL);
        assert_eq!(
            reqs[1].offset - reqs[0].offset,
            cfg.grid as u64 * BYTES_PER_CELL
        );
    }

    #[test]
    fn collective_calls_match_across_ranks() {
        let w = BtioConfig::tiny(9).build();
        assert!(w.validate_collectives().is_ok());
        assert_eq!(
            w.ranks[0].collective_calls(),
            BtioConfig::tiny(9).dump_count() * 2
        );
    }

    #[test]
    fn uneven_grid_split_still_covers() {
        // grid 10 over 9 processes (side 3): blocks of 4/3/3.
        let cfg = BtioConfig {
            grid: 10,
            steps: 2,
            write_interval: 2,
            processes: 9,
            compute_per_step: SimNanos::ZERO,
        };
        let w = cfg.build();
        let (_, written) = w.total_bytes();
        assert_eq!(written, cfg.file_size());
    }

    #[test]
    #[should_panic(expected = "square number")]
    fn non_square_process_count_rejected() {
        BtioConfig::tiny(6).build();
    }

    #[test]
    fn compute_steps_included_when_configured() {
        let mut cfg = BtioConfig::tiny(4);
        cfg.compute_per_step = SimNanos::from_millis(10);
        let w = cfg.build();
        let computes = w.ranks[0]
            .steps
            .iter()
            .filter(|s| matches!(s, harl_middleware::LogicalStep::Compute(_)))
            .count();
        assert_eq!(computes, cfg.steps);
    }
}
