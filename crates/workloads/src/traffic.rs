//! Replayable multi-tenant traffic: heavy-tailed arrivals of IOR, BTIO
//! and phased jobs for the planning service.
//!
//! Real cloud PFS front-ends see many small concurrent tenants whose
//! workloads *repeat* (the same application resubmitted) and occasionally
//! *drift* (a new input deck changes one phase). [`TrafficConfig`]
//! captures that shape deterministically: a seeded arrival schedule of
//! [`TrafficJob`]s, where tenant popularity is heavy-tailed (min-of-three
//! uniform draws — low tenant ids dominate, a long tail of rare ones),
//! each tenant runs one home template, and a coin per arrival mutates the
//! template's final phase (drift). Everything is a pure function of the
//! config: the same seed replays the exact same fleet, so plan-cache hit
//! rates and service benchmarks are reproducible bit for bit.

use crate::btio::BtioConfig;
use crate::ior::{AccessOrder, IorConfig};
use crate::phased::{Phase, PhasedConfig};
use harl_devices::OpKind;
use harl_middleware::Workload;
use harl_simcore::SimRng;
use serde::{Deserialize, Serialize};

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// A deterministic multi-tenant traffic specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// Distinct tenants (files) in the fleet.
    pub tenants: usize,
    /// Service ticks the schedule spans.
    pub ticks: usize,
    /// Plan submissions arriving per tick.
    pub arrivals_per_tick: usize,
    /// Distinct job templates; tenant `t` runs template `t % templates`.
    pub templates: usize,
    /// Percent chance (0–100) that an arrival drifts its template's final
    /// phase (doubled request size) — the incremental re-plan trigger.
    pub drift_pct: u64,
    /// Processes per job.
    pub processes: usize,
    /// File area per template phase (floor 4 MiB).
    pub base_bytes: u64,
    /// Master seed; every draw derives from it.
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            tenants: 16,
            ticks: 8,
            arrivals_per_tick: 4,
            templates: 4,
            drift_pct: 0,
            processes: 4,
            base_bytes: 8 * MB,
            seed: 0x07EA_FF1C,
        }
    }
}

/// One plan submission in the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficJob {
    /// Service tick the job arrives in.
    pub tick: usize,
    /// Submitting tenant (also selects the file and the home template).
    pub tenant: u64,
    /// Job template index.
    pub template: usize,
    /// Whether this arrival drifts the template's final phase.
    pub drifted: bool,
}

impl TrafficConfig {
    /// The full deterministic arrival schedule, in (tick, arrival) order.
    pub fn jobs(&self) -> Vec<TrafficJob> {
        assert!(self.tenants > 0, "need at least one tenant");
        assert!(self.templates > 0, "need at least one template");
        let mut out = Vec::with_capacity(self.ticks * self.arrivals_per_tick);
        for tick in 0..self.ticks {
            let mut rng = SimRng::derived(self.seed, &format!("traffic-tick-{tick}"));
            for _ in 0..self.arrivals_per_tick {
                // Heavy tail: min of three uniform draws skews the mass
                // onto low tenant ids (P(tenant = t) ∝ roughly (1 - t/N)²).
                let hi = self.tenants as u64 - 1;
                let tenant = rng
                    .uniform_u64(0, hi)
                    .min(rng.uniform_u64(0, hi))
                    .min(rng.uniform_u64(0, hi));
                let template = (tenant as usize) % self.templates;
                // BTIO templates are collective dumps with a fixed
                // geometry; they never drift.
                let drifted =
                    rng.uniform_u64(0, 99) < self.drift_pct && template % BTIO_EVERY != BTIO_SLOT;
                out.push(TrafficJob {
                    tick,
                    tenant,
                    template,
                    drifted,
                });
            }
        }
        out
    }

    /// Materialise one job: the workload its tenant submits plus the
    /// logical file size to plan for. Pure in `(self, job.template,
    /// job.drifted)` — re-arrivals of the same template replay the exact
    /// same trace (that is what makes plan caching pay).
    ///
    /// Drift only touches the *final* phase of a phased template (request
    /// size doubled) and leaves the file size alone, so a drifted arrival
    /// changes the tail regions' fingerprint buckets while every earlier
    /// region keeps its exact per-region search key — the incremental
    /// re-plan sweet spot.
    pub fn build_workload(&self, job: &TrafficJob) -> (Workload, u64) {
        let t = job.template;
        let unit = self.base_bytes.max(4 * MB);
        let processes = self.processes.max(1);
        if t % BTIO_EVERY == BTIO_SLOT {
            // Collective BTIO-style dump (plan-only traffic: the tracing
            // phase records the per-rank requests as issued).
            let side = (1..=8).rev().find(|s| s * s <= processes).unwrap_or(1);
            let w = BtioConfig::tiny(side * side).build();
            let size = w.extent().max(1);
            return (w, size);
        }
        if t % 3 == 1 {
            // Single-phase IOR job.
            let rs = if job.drifted { 512 * KB } else { 256 * KB };
            let file_size = (2 * unit).max(processes as u64 * rs);
            let cfg = IorConfig {
                processes,
                request_size: rs,
                file_size,
                op: if t.is_multiple_of(2) {
                    OpKind::Read
                } else {
                    OpKind::Write
                },
                order: AccessOrder::Sequential,
                seed: self.seed ^ t as u64,
            };
            return (cfg.build(), file_size);
        }
        // Multi-phase template: 2–4 phases of varying size and op mix.
        let nphases = 2 + t % 3;
        let segment = unit / processes as u64;
        let mut phases = Vec::with_capacity(nphases);
        for p in 0..nphases {
            let mut rs = (64 * KB) << ((t + p) % 4);
            if job.drifted && p == nphases - 1 {
                rs *= 2;
            }
            // Every process must fit at least one request in its segment.
            rs = rs.min(segment.max(4 * KB));
            let op = if (t + p).is_multiple_of(2) {
                OpKind::Read
            } else {
                OpKind::Write
            };
            phases.push(Phase::new(p as u64 * unit, unit, rs, op));
        }
        let span = nphases as u64 * unit;
        let cfg = PhasedConfig {
            phases,
            processes,
            seed: self.seed ^ (t as u64).rotate_left(17),
        };
        let w = cfg.build();
        let size = span.max(w.extent());
        (w, size)
    }
}

/// Every `BTIO_EVERY`-th template starting at `BTIO_SLOT` is a BTIO dump.
const BTIO_EVERY: usize = 7;
const BTIO_SLOT: usize = 3;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_replayable() {
        let cfg = TrafficConfig {
            tenants: 32,
            ticks: 4,
            arrivals_per_tick: 8,
            drift_pct: 25,
            ..TrafficConfig::default()
        };
        let a = cfg.jobs();
        let b = cfg.jobs();
        assert_eq!(a, b);
        assert_eq!(a.len(), 32);
        assert!(a.iter().all(|j| (j.tenant as usize) < 32));
    }

    #[test]
    fn arrivals_are_heavy_tailed() {
        let cfg = TrafficConfig {
            tenants: 64,
            ticks: 64,
            arrivals_per_tick: 8,
            ..TrafficConfig::default()
        };
        let jobs = cfg.jobs();
        let low: usize = jobs.iter().filter(|j| j.tenant < 16).count();
        assert!(
            low * 2 > jobs.len(),
            "bottom quartile of tenant ids should carry most arrivals \
             ({low}/{} went low)",
            jobs.len()
        );
    }

    #[test]
    fn workloads_replay_identically_per_template() {
        let cfg = TrafficConfig::default();
        for template in 0..8 {
            let job = TrafficJob {
                tick: 0,
                tenant: template as u64,
                template,
                drifted: false,
            };
            let later = TrafficJob { tick: 5, ..job };
            let (a, sa) = cfg.build_workload(&job);
            let (b, sb) = cfg.build_workload(&later);
            assert_eq!(sa, sb);
            assert_eq!(
                harl_middleware::collect_trace(&a).records(),
                harl_middleware::collect_trace(&b).records(),
                "template {template} must replay bit-identically"
            );
        }
    }

    #[test]
    fn drift_changes_only_the_tail_of_phased_templates() {
        let cfg = TrafficConfig::default();
        let base = TrafficJob {
            tick: 0,
            tenant: 0,
            template: 0,
            drifted: false,
        };
        let drifted = TrafficJob {
            drifted: true,
            ..base
        };
        let (wa, sa) = cfg.build_workload(&base);
        let (wb, sb) = cfg.build_workload(&drifted);
        assert_eq!(sa, sb, "drift must not change the file size");
        let ta = harl_middleware::collect_trace(&wa);
        let tb = harl_middleware::collect_trace(&wb);
        assert_ne!(ta.records(), tb.records(), "drift must change the trace");
        // Everything before the final phase is untouched.
        let span = sa;
        let nphases = 2; // template 0: 2 + 0 % 3
        let tail_start = (nphases - 1) as u64 * (span / nphases as u64);
        let head = |t: &harl_core::Trace| {
            let mut v: Vec<_> = t
                .records()
                .iter()
                .filter(|r| r.offset < tail_start)
                .map(|r| (r.offset, r.size, r.op == OpKind::Write))
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(head(&ta), head(&tb), "pre-tail phases must be identical");
    }

    #[test]
    fn every_template_builds_without_panicking() {
        let cfg = TrafficConfig {
            processes: 9,
            ..TrafficConfig::default()
        };
        for template in 0..16 {
            for drifted in [false, true] {
                let job = TrafficJob {
                    tick: 0,
                    tenant: 0,
                    template,
                    drifted,
                };
                let (w, size) = cfg.build_workload(&job);
                assert!(size >= w.extent());
                assert!(w.extent() > 0);
            }
        }
    }
}
