//! The paper's *Analysis Phase* measurement step.
//!
//! From Sec. III-G: *"we use one file server in the parallel file system to
//! test the startup time α and data transfer time β for HServers and
//! SServers with read/write patterns … We repeat the tests thousands of
//! times (the number is configurable), and then calculate their average
//! values."*
//!
//! We reproduce that step against the *simulated* device: issue probe
//! accesses at several request sizes, observe total service times, and
//! recover `(α_min, α_max, β)` by ordinary least squares — the slope of
//! time-vs-bytes estimates `β`, and the spread of residuals at the
//! intercept estimates the startup range. The HARL optimizer consumes
//! these estimates, so the whole pipeline (measure → model → optimise)
//! matches the paper rather than cheating with ground-truth parameters.

use crate::network::NetworkProfile;
use crate::profile::{OpKind, OpParams, StorageProfile};
use harl_simcore::SimRng;
use serde::{Deserialize, Serialize};

/// How many probes to run and at which sizes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CalibrationConfig {
    /// Probe request sizes in bytes. Must contain at least two distinct
    /// sizes so the slope (β) is identifiable.
    pub probe_sizes: Vec<u64>,
    /// Probes per size ("thousands of times" in the paper; configurable).
    pub repetitions: usize,
    /// RNG seed for the probe run.
    pub seed: u64,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            probe_sizes: vec![4 * 1024, 64 * 1024, 256 * 1024, 1024 * 1024],
            repetitions: 1000,
            seed: 0x00CA_11B8,
        }
    }
}

/// Ordinary least squares fit of `y = a + b x`. Returns `(a, b)`.
fn least_squares(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    debug_assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
    }
    let b = if sxx == 0.0 { 0.0 } else { sxy / sxx };
    let a = my - b * mx;
    (a, b)
}

/// Estimate one operation's `(α_min, α_max, β)` from probe observations.
fn estimate_op(device: &StorageProfile, op: OpKind, cfg: &CalibrationConfig) -> OpParams {
    assert!(
        cfg.probe_sizes
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len()
            >= 2,
        "calibration needs at least two distinct probe sizes"
    );
    assert!(
        cfg.repetitions > 0,
        "calibration needs at least one repetition"
    );

    let mut rng = SimRng::derived(cfg.seed, &format!("calibrate-{}-{op}", device.name));
    let mut xs = Vec::with_capacity(cfg.probe_sizes.len() * cfg.repetitions);
    let mut ys = Vec::with_capacity(xs.capacity());
    for &size in &cfg.probe_sizes {
        for _ in 0..cfg.repetitions {
            xs.push(size as f64);
            ys.push(device.service_time(op, size, &mut rng).as_secs_f64());
        }
    }
    let (_, beta) = least_squares(&xs, &ys);
    let beta = beta.max(0.0);

    // Residual startup component per observation; its extremes estimate the
    // uniform range. Clamp at zero: noise can push residuals negative.
    let mut alpha_min = f64::INFINITY;
    let mut alpha_max = 0.0_f64;
    for (&x, &y) in xs.iter().zip(&ys) {
        let startup = (y - beta * x).max(0.0);
        alpha_min = alpha_min.min(startup);
        alpha_max = alpha_max.max(startup);
    }
    OpParams {
        alpha_min_s: alpha_min.min(alpha_max),
        alpha_max_s: alpha_max,
        beta_s_per_byte: beta,
    }
    .validated()
}

/// Calibrate a full storage profile (read and write paths) by probing the
/// simulated device, as the paper's Analysis Phase does against one real
/// file server.
pub fn calibrate_storage(device: &StorageProfile, cfg: &CalibrationConfig) -> StorageProfile {
    StorageProfile::new(
        format!("{}-measured", device.name),
        device.kind,
        estimate_op(device, OpKind::Read, cfg),
        estimate_op(device, OpKind::Write, cfg),
    )
}

/// Estimate the network per-byte time `t` from probe transfers between a
/// client/server pair (paper: "we use a pair of nodes … to estimate the
/// network transfer time t").
pub fn calibrate_network(net: &NetworkProfile, cfg: &CalibrationConfig) -> NetworkProfile {
    let xs: Vec<f64> = cfg.probe_sizes.iter().map(|&s| s as f64).collect();
    let ys: Vec<f64> = cfg
        .probe_sizes
        .iter()
        .map(|&s| net.transfer_time(s).as_secs_f64())
        .collect();
    let (latency, t) = least_squares(&xs, &ys);
    NetworkProfile::new(t.max(0.0), latency.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{hdd_2015_preset, ssd_2015_preset};

    #[test]
    fn least_squares_recovers_exact_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
        let (a, b) = least_squares(&xs, &ys);
        assert!((a - 3.0).abs() < 1e-12);
        assert!((b - 2.0).abs() < 1e-12);
    }

    #[test]
    fn least_squares_degenerate_x() {
        let (a, b) = least_squares(&[2.0, 2.0], &[5.0, 7.0]);
        assert_eq!(b, 0.0);
        assert!((a - 6.0).abs() < 1e-12);
    }

    #[test]
    fn calibration_recovers_hdd_parameters() {
        let truth = hdd_2015_preset();
        let measured = calibrate_storage(&truth, &CalibrationConfig::default());
        let t = truth.read;
        let m = measured.read;
        assert!(
            (m.beta_s_per_byte - t.beta_s_per_byte).abs() / t.beta_s_per_byte < 0.05,
            "beta estimate off: {} vs {}",
            m.beta_s_per_byte,
            t.beta_s_per_byte
        );
        assert!((m.alpha_min_s - t.alpha_min_s).abs() / t.alpha_min_s < 0.15);
        assert!((m.alpha_max_s - t.alpha_max_s).abs() / t.alpha_max_s < 0.15);
    }

    #[test]
    fn calibration_preserves_ssd_asymmetry() {
        let measured = calibrate_storage(&ssd_2015_preset(), &CalibrationConfig::default());
        let bytes = 256 * 1024;
        assert!(
            measured.write.expected_service_s(bytes) > measured.read.expected_service_s(bytes),
            "measured profile lost the read/write asymmetry"
        );
    }

    #[test]
    fn calibration_is_deterministic() {
        let cfg = CalibrationConfig::default();
        let a = calibrate_storage(&hdd_2015_preset(), &cfg);
        let b = calibrate_storage(&hdd_2015_preset(), &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn network_calibration_recovers_t() {
        let truth = NetworkProfile::gigabit_ethernet();
        let measured = calibrate_network(&truth, &CalibrationConfig::default());
        assert!((measured.t_s_per_byte - truth.t_s_per_byte).abs() / truth.t_s_per_byte < 1e-6);
        assert!((measured.latency_s - truth.latency_s).abs() / truth.latency_s < 1e-6);
    }

    #[test]
    #[should_panic(expected = "two distinct probe sizes")]
    fn single_probe_size_rejected() {
        let cfg = CalibrationConfig {
            probe_sizes: vec![4096, 4096],
            repetitions: 10,
            seed: 1,
        };
        calibrate_storage(&hdd_2015_preset(), &cfg);
    }
}
