//! Storage device profiles: the `(α_min, α_max, β)` parameter family of the
//! paper's Table I, per operation kind.
//!
//! A profile answers two questions:
//!
//! * **Simulation** — "how long does *this particular* access take?":
//!   [`StorageProfile::service_time`] draws a startup time uniformly from
//!   `[α_min, α_max]` and adds `bytes × β`.
//! * **Analysis** — "what are the parameters?": the accessors feed the HARL
//!   cost model (usually via [`crate::calibration`] estimates rather than
//!   ground truth).

use harl_simcore::{SimNanos, SimRng};
use serde::{Deserialize, Serialize};

/// Whether an access is a read or a write.
///
/// SSDs serve writes slower than reads (garbage collection, wear levelling —
/// paper Sec. III-D), so every parameter is operation-specific.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// A read access.
    Read,
    /// A write access.
    Write,
}

impl OpKind {
    /// Both operation kinds, for sweeps.
    pub const ALL: [OpKind; 2] = [OpKind::Read, OpKind::Write];
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpKind::Read => write!(f, "read"),
            OpKind::Write => write!(f, "write"),
        }
    }
}

/// Broad device class, used for labelling servers and choosing defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Rotational disk ("HServer" backing device).
    Hdd,
    /// Flash solid-state drive ("SServer" backing device).
    Ssd,
    /// Remote object store (high latency, high bandwidth, priced per GB
    /// and per request) — the cost-aware third tier.
    Object,
    /// Anything else (used by the K-profile extension experiments).
    Other,
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceKind::Hdd => write!(f, "HDD"),
            DeviceKind::Ssd => write!(f, "SSD"),
            DeviceKind::Object => write!(f, "OBJECT"),
            DeviceKind::Other => write!(f, "OTHER"),
        }
    }
}

/// Dollar cost of keeping and touching data on a device class.
///
/// On-prem tiers default to all-zero (their capital cost is sunk and does
/// not vary with the layout); cloud object tiers carry a capacity price
/// plus per-request charges, which is exactly the axis that makes the
/// object tier a *cost* decision rather than a pure performance one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostProfile {
    /// Capacity price in USD per GB-month.
    pub usd_per_gb_month: f64,
    /// Price of one read request (GET), in USD.
    pub usd_per_get: f64,
    /// Price of one write request (PUT), in USD.
    pub usd_per_put: f64,
}

impl CostProfile {
    /// The free (on-prem) cost profile.
    pub const FREE: CostProfile = CostProfile {
        usd_per_gb_month: 0.0,
        usd_per_get: 0.0,
        usd_per_put: 0.0,
    };

    /// True when every component is zero (the on-prem default).
    pub fn is_free(&self) -> bool {
        *self == CostProfile::FREE
    }

    /// Validate the price triple (no negative or non-finite prices).
    ///
    /// # Panics
    /// Panics on a negative or non-finite price; cost profiles are
    /// configuration, so failing loudly at construction beats silently
    /// optimising against a nonsensical bill.
    pub fn validated(self) -> Self {
        for (label, v) in [
            ("usd_per_gb_month", self.usd_per_gb_month),
            ("usd_per_get", self.usd_per_get),
            ("usd_per_put", self.usd_per_put),
        ] {
            assert!(v.is_finite() && v >= 0.0, "invalid price {label} = {v}");
        }
        self
    }
}

impl Default for CostProfile {
    fn default() -> Self {
        CostProfile::FREE
    }
}

/// Per-operation `(α_min, α_max, β)` parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpParams {
    /// Minimum startup time (paper: `α^min`), in seconds.
    pub alpha_min_s: f64,
    /// Maximum startup time (paper: `α^max`), in seconds.
    pub alpha_max_s: f64,
    /// Per-byte transfer time (paper: `β`), in seconds per byte.
    pub beta_s_per_byte: f64,
}

impl OpParams {
    /// Validate the parameter triple.
    ///
    /// # Panics
    /// Panics on negative values or an inverted startup range; profiles are
    /// configuration, so failing loudly at construction beats producing a
    /// silently nonsensical simulation.
    pub fn validated(self) -> Self {
        assert!(
            self.alpha_min_s >= 0.0 && self.alpha_max_s >= self.alpha_min_s,
            "startup range invalid: [{}, {}]",
            self.alpha_min_s,
            self.alpha_max_s
        );
        assert!(
            self.beta_s_per_byte >= 0.0,
            "negative transfer time {}",
            self.beta_s_per_byte
        );
        self
    }

    /// Mean startup time of the uniform distribution.
    #[inline]
    pub fn alpha_mean_s(&self) -> f64 {
        0.5 * (self.alpha_min_s + self.alpha_max_s)
    }

    /// Expected service time for `bytes` (mean startup + transfer).
    #[inline]
    pub fn expected_service_s(&self, bytes: u64) -> f64 {
        self.alpha_mean_s() + bytes as f64 * self.beta_s_per_byte
    }

    /// Sustained bandwidth implied by `β`, in MiB/s (infinite for β = 0).
    pub fn bandwidth_mib_s(&self) -> f64 {
        if self.beta_s_per_byte == 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.beta_s_per_byte / (1024.0 * 1024.0)
        }
    }
}

/// A storage device's full performance profile.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct StorageProfile {
    /// Human-readable name for reports ("hdd-2015", "ssd-2015", …).
    pub name: String,
    /// Device class.
    pub kind: DeviceKind,
    /// Read-path parameters.
    pub read: OpParams,
    /// Write-path parameters.
    pub write: OpParams,
    /// Dollar cost of the class (defaults to free, the on-prem case).
    #[serde(default)]
    pub cost: CostProfile,
}

// Hand-written so free-tier profiles keep their pre-cost JSON shape: the
// `cost` key is emitted only when some price is non-zero, which keeps all
// committed two-tier goldens byte-identical.
impl serde::Serialize for StorageProfile {
    fn serialize(&self) -> serde::Value {
        let mut map = serde::Map::new();
        map.insert("name".to_string(), self.name.serialize());
        map.insert("kind".to_string(), self.kind.serialize());
        map.insert("read".to_string(), self.read.serialize());
        map.insert("write".to_string(), self.write.serialize());
        if !self.cost.is_free() {
            map.insert("cost".to_string(), self.cost.serialize());
        }
        serde::Value::Object(map)
    }
}

impl StorageProfile {
    /// Build a free-tier profile, validating all parameters.
    pub fn new(name: impl Into<String>, kind: DeviceKind, read: OpParams, write: OpParams) -> Self {
        StorageProfile {
            name: name.into(),
            kind,
            read: read.validated(),
            write: write.validated(),
            cost: CostProfile::FREE,
        }
    }

    /// Builder-style dollar-cost override.
    pub fn with_cost(mut self, cost: CostProfile) -> Self {
        self.cost = cost.validated();
        self
    }

    /// The parameters for one operation kind.
    #[inline]
    pub fn params(&self, op: OpKind) -> &OpParams {
        match op {
            OpKind::Read => &self.read,
            OpKind::Write => &self.write,
        }
    }

    /// Sample the service time for one access of `bytes` bytes.
    ///
    /// The startup component is drawn uniformly from `[α_min, α_max]`
    /// (the distribution the paper's order-statistics derivation assumes);
    /// the transfer component is deterministic `bytes × β`.
    pub fn service_time(&self, op: OpKind, bytes: u64, rng: &mut SimRng) -> SimNanos {
        let p = self.params(op);
        let startup = rng.uniform_f64(p.alpha_min_s, p.alpha_max_s);
        SimNanos::from_secs_f64(startup + bytes as f64 * p.beta_s_per_byte)
    }

    /// Expected (mean) service time for one access — used by analytical
    /// sanity checks and tests, never by the simulator itself.
    pub fn expected_service_time(&self, op: OpKind, bytes: u64) -> SimNanos {
        SimNanos::from_secs_f64(self.params(op).expected_service_s(bytes))
    }

    /// True if write parameters differ from read parameters.
    pub fn is_asymmetric(&self) -> bool {
        self.read != self.write
    }
}

/// 2015-era 7200 RPM SATA HDD behind a PFS server, as in the paper's
/// testbed (250 GB disks).
///
/// Calibration rationale: a PFS data server fields interleaved 10s–100s KiB
/// sub-requests from many clients at once, so the head seeks between
/// streams on almost every access — startup is several hundred µs and the
/// *effective* transfer rate is far below the drive's sequential rating
/// (≈50 MiB/s reads, slightly worse for synchronous writes through the
/// journal). With the default 64 KiB stripe this yields an
/// HServer/SServer service-time ratio of ≈4.2×, matching the ≈350 %
/// imbalance of the paper's Fig. 1(a), and reproduces the paper's measured
/// HARL optima (read ≈ {32 KiB, 160 KiB} on 6H+2S at 512 KiB requests).
pub fn hdd_2015_preset() -> StorageProfile {
    let read = OpParams {
        alpha_min_s: 300e-6,
        alpha_max_s: 700e-6,
        beta_s_per_byte: 1.0 / (40.0 * 1024.0 * 1024.0),
    };
    let write = OpParams {
        alpha_min_s: 400e-6,
        alpha_max_s: 900e-6,
        beta_s_per_byte: 1.0 / (36.0 * 1024.0 * 1024.0),
    };
    StorageProfile::new("hdd-2015", DeviceKind::Hdd, read, write)
}

/// 2015-era PCIe X4 flash SSD behind a PFS server (the paper's 100 GB
/// PCI-E X4 devices): reads ≈ 200 MiB/s with ~0.1 ms startup, writes
/// slower (≈ 150 MiB/s) with a wider startup range due to garbage
/// collection and wear levelling (paper Sec. III-D).
pub fn ssd_2015_preset() -> StorageProfile {
    let read = OpParams {
        alpha_min_s: 50e-6,
        alpha_max_s: 150e-6,
        beta_s_per_byte: 1.0 / (200.0 * 1024.0 * 1024.0),
    };
    // Sustained write bandwidth matches reads (PCIe SSDs of the era were
    // near-symmetric in bandwidth); the GC/wear-levelling penalty shows up
    // as the doubled, wider startup range.
    let write = OpParams {
        alpha_min_s: 100e-6,
        alpha_max_s: 300e-6,
        beta_s_per_byte: 1.0 / (200.0 * 1024.0 * 1024.0),
    };
    StorageProfile::new("ssd-2015", DeviceKind::Ssd, read, write)
}

/// S3-class remote object store behind a gateway server — the cost-aware
/// third tier.
///
/// Performance shape: first-byte latency dominated by the request
/// round-trip (tens of milliseconds of startup), but high sustained
/// streaming bandwidth once flowing, so it only wins on large sequential
/// stripes. Prices follow the standard-tier public-cloud shape:
/// ~$0.023/GB-month capacity, $0.40 per million GETs, $5 per million PUTs.
/// The break-even arithmetic (DESIGN.md Appendix G) falls out of these
/// numbers: per byte the request charge is `usd_per_get / stripe`, so GET
/// pricing punishes small stripes exactly like the latency term does.
pub fn object_store_preset() -> StorageProfile {
    let read = OpParams {
        alpha_min_s: 15e-3,
        alpha_max_s: 45e-3,
        beta_s_per_byte: 1.0 / (750.0 * 1024.0 * 1024.0),
    };
    let write = OpParams {
        alpha_min_s: 20e-3,
        alpha_max_s: 60e-3,
        beta_s_per_byte: 1.0 / (500.0 * 1024.0 * 1024.0),
    };
    StorageProfile::new("object-store", DeviceKind::Object, read, write).with_cost(CostProfile {
        usd_per_gb_month: 0.023,
        usd_per_get: 0.40e-6,
        usd_per_put: 5.0e-6,
    })
}

/// A faster third profile used by the K-profile extension experiments
/// (the paper's future work: "extend our cost model to accommodate more
/// than two server performance profiles").
pub fn nvme_2020_preset() -> StorageProfile {
    let read = OpParams {
        alpha_min_s: 8e-6,
        alpha_max_s: 15e-6,
        beta_s_per_byte: 1.0 / (1800.0 * 1024.0 * 1024.0),
    };
    let write = OpParams {
        alpha_min_s: 10e-6,
        alpha_max_s: 30e-6,
        beta_s_per_byte: 1.0 / (1200.0 * 1024.0 * 1024.0),
    };
    StorageProfile::new("nvme-2020", DeviceKind::Other, read, write)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for p in [
            hdd_2015_preset(),
            ssd_2015_preset(),
            nvme_2020_preset(),
            object_store_preset(),
        ] {
            assert!(p.read.alpha_max_s >= p.read.alpha_min_s);
            assert!(p.write.alpha_max_s >= p.write.alpha_min_s);
        }
    }

    #[test]
    fn on_prem_presets_are_free_and_object_is_priced() {
        assert!(hdd_2015_preset().cost.is_free());
        assert!(ssd_2015_preset().cost.is_free());
        assert!(nvme_2020_preset().cost.is_free());
        let obj = object_store_preset();
        assert!(!obj.cost.is_free());
        assert_eq!(obj.kind, DeviceKind::Object);
        assert!(obj.cost.usd_per_put > obj.cost.usd_per_get);
    }

    #[test]
    fn object_store_is_high_latency_high_bandwidth() {
        let obj = object_store_preset();
        let ssd = ssd_2015_preset();
        // Startup dwarfs the SSD's...
        assert!(obj.read.alpha_min_s > 50.0 * ssd.read.alpha_max_s);
        // ...but sustained streaming bandwidth beats it.
        assert!(obj.read.bandwidth_mib_s() > ssd.read.bandwidth_mib_s());
    }

    #[test]
    fn free_cost_key_is_omitted_from_json() {
        // Two-tier goldens predate the cost axis; a free tier must
        // serialise exactly as it did before the field existed.
        let free = serde_json::to_string(&hdd_2015_preset()).unwrap();
        assert!(!free.contains("cost"), "free profile leaked a cost key");
        let priced = serde_json::to_string(&object_store_preset()).unwrap();
        assert!(priced.contains("usd_per_gb_month"));
        let back: StorageProfile = serde_json::from_str(&priced).unwrap();
        assert_eq!(back.cost, object_store_preset().cost);
        let round: StorageProfile = serde_json::from_str(&free).unwrap();
        assert!(round.cost.is_free());
    }

    #[test]
    #[should_panic(expected = "invalid price")]
    fn negative_price_rejected() {
        CostProfile {
            usd_per_gb_month: -1.0,
            usd_per_get: 0.0,
            usd_per_put: 0.0,
        }
        .validated();
    }

    #[test]
    fn presets_are_read_write_asymmetric() {
        // Synchronous PFS writes are slower than reads on both device
        // classes (journal on HDD, GC/wear-levelling on SSD).
        assert!(hdd_2015_preset().is_asymmetric());
        assert!(ssd_2015_preset().is_asymmetric());
    }

    #[test]
    fn ssd_write_slower_than_read() {
        let ssd = ssd_2015_preset();
        let bytes = 256 * 1024;
        assert!(
            ssd.write.expected_service_s(bytes) > ssd.read.expected_service_s(bytes),
            "paper Sec III-D: SServer writes must be slower than reads"
        );
    }

    #[test]
    fn fig1a_service_ratio_matches_calibration() {
        // 64 KiB stripe: the motivating imbalance of Fig. 1(a). The paper
        // measures ~3.5x; our calibration (chosen to also reproduce the
        // HARL optima and improvement factors) sits at ~5x — same order,
        // documented in EXPERIMENTS.md.
        let hdd = hdd_2015_preset();
        let ssd = ssd_2015_preset();
        let bytes = 64 * 1024;
        let ratio = hdd.read.expected_service_s(bytes) / ssd.read.expected_service_s(bytes);
        assert!(
            (3.5..6.0).contains(&ratio),
            "HServer/SServer ratio {ratio:.2} outside the expected band"
        );
    }

    #[test]
    fn service_time_within_bounds() {
        let hdd = hdd_2015_preset();
        let mut rng = SimRng::new(1);
        let bytes = 128 * 1024;
        let transfer = bytes as f64 * hdd.read.beta_s_per_byte;
        for _ in 0..500 {
            let t = hdd
                .service_time(OpKind::Read, bytes, &mut rng)
                .as_secs_f64();
            assert!(t >= hdd.read.alpha_min_s + transfer - 1e-9);
            assert!(t <= hdd.read.alpha_max_s + transfer + 1e-9);
        }
    }

    #[test]
    fn service_time_mean_converges() {
        let ssd = ssd_2015_preset();
        let mut rng = SimRng::new(2);
        let bytes = 64 * 1024;
        let n = 20_000;
        let sum: f64 = (0..n)
            .map(|_| {
                ssd.service_time(OpKind::Write, bytes, &mut rng)
                    .as_secs_f64()
            })
            .sum();
        let mean = sum / n as f64;
        let expected = ssd.write.expected_service_s(bytes);
        assert!(
            (mean - expected).abs() / expected < 0.02,
            "empirical mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn bandwidth_derivation() {
        let hdd = hdd_2015_preset();
        assert!((hdd.read.bandwidth_mib_s() - 40.0).abs() < 1e-6);
        let zero = OpParams {
            alpha_min_s: 0.0,
            alpha_max_s: 0.0,
            beta_s_per_byte: 0.0,
        };
        assert!(zero.bandwidth_mib_s().is_infinite());
    }

    #[test]
    #[should_panic(expected = "startup range invalid")]
    fn inverted_alpha_range_rejected() {
        OpParams {
            alpha_min_s: 2.0,
            alpha_max_s: 1.0,
            beta_s_per_byte: 0.0,
        }
        .validated();
    }

    #[test]
    fn zero_byte_access_costs_only_startup() {
        let hdd = hdd_2015_preset();
        let t = hdd.expected_service_time(OpKind::Read, 0);
        assert_eq!(t, SimNanos::from_secs_f64(hdd.read.alpha_mean_s()));
    }

    #[test]
    fn serde_round_trip() {
        let p = ssd_2015_preset();
        let json = serde_json::to_string(&p).unwrap();
        let back: StorageProfile = serde_json::from_str(&json).unwrap();
        // serde_json floats round-trip to within 1 ulp-ish without the
        // `float_roundtrip` feature; exact identity is not required here.
        assert_eq!(p.name, back.name);
        assert_eq!(p.kind, back.kind);
        for (a, b) in [(p.read, back.read), (p.write, back.write)] {
            assert!((a.alpha_min_s - b.alpha_min_s).abs() < 1e-15);
            assert!((a.alpha_max_s - b.alpha_max_s).abs() < 1e-15);
            assert!((a.beta_s_per_byte - b.beta_s_per_byte).abs() < 1e-18);
        }
    }
}
