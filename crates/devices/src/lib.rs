//! # harl-devices — storage and network device performance models
//!
//! The HARL paper's cost model (Table I) characterises every file server by
//! a *startup time* drawn uniformly from `[α_min, α_max]` plus a *per-byte
//! transfer time* `β`, with SSD servers having separate read and write
//! profiles; the network contributes a per-byte time `t`. This crate
//! provides exactly those parameter families:
//!
//! * [`StorageProfile`] — one device's `(α, β)` parameters per operation,
//!   with [presets](hdd_2015_preset) calibrated to the paper's 2015-era
//!   testbed (250 GB SATA HDDs, PCIe X4 100 GB SSDs).
//! * [`NetworkProfile`] — Gigabit-Ethernet-like per-byte cost and a small
//!   per-message latency.
//! * [`calibration`] — a reproduction of the paper's *Analysis Phase*
//!   measurement step: probe a device with repeated requests of varied
//!   sizes and *estimate* `(α_min, α_max, β)` from the observations. The
//!   HARL optimizer is fed these estimates, not the ground-truth simulator
//!   parameters, mirroring how the real system can only measure its disks.

// missing_docs / rust_2018_idioms come from [workspace.lints]. The
// cfg_attr tier mirrors harl-lint's panic-hygiene rule at compile time
// for library code; unit tests compile under cfg(test) and stay exempt.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod calibration;
pub mod network;
pub mod profile;

pub use calibration::{calibrate_network, calibrate_storage, CalibrationConfig};
pub use network::NetworkProfile;
pub use profile::{
    hdd_2015_preset, nvme_2020_preset, object_store_preset, ssd_2015_preset, CostProfile,
    DeviceKind, OpKind, OpParams, StorageProfile,
};
