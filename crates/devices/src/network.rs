//! Network link model.
//!
//! The paper's testbed interconnect is Gigabit Ethernet and its cost model
//! charges the network a per-byte time `t` (Table I, Eq. 1). The simulator
//! additionally charges a small per-message latency, which the analytical
//! model ignores — one of the deliberate gaps that keeps the model an
//! *approximation* of the simulated system, as it is of the real one.

use harl_simcore::SimNanos;
use serde::{Deserialize, Serialize};

/// Performance parameters of one network link (a node's NIC).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkProfile {
    /// Per-byte transfer time `t`, in seconds (paper Table I).
    pub t_s_per_byte: f64,
    /// Fixed per-message latency in seconds (propagation + protocol stack).
    pub latency_s: f64,
}

impl NetworkProfile {
    /// Build a profile.
    ///
    /// # Panics
    /// Panics on negative parameters.
    pub fn new(t_s_per_byte: f64, latency_s: f64) -> Self {
        assert!(
            t_s_per_byte >= 0.0 && latency_s >= 0.0,
            "network parameters must be non-negative"
        );
        NetworkProfile {
            t_s_per_byte,
            latency_s,
        }
    }

    /// Gigabit Ethernet as in the paper's cluster, expressed as a *per-hop*
    /// charge.
    ///
    /// The simulator charges payload at two NICs (client and server) in a
    /// store-and-forward fashion, while a real GbE path pipelines the two
    /// hops — charging the full 8 ns/B at each hop would double-count the
    /// wire. The per-hop `t` is therefore 4 ns/B so an un-pipelined
    /// two-hop transfer costs the honest GbE 8 ns/B end to end.
    pub fn gigabit_ethernet() -> Self {
        NetworkProfile::new(4e-9, 20e-6)
    }

    /// Raw single-hop Gigabit Ethernet (8 ns per byte) for experiments that
    /// model only one NIC on the path.
    pub fn gigabit_ethernet_single_hop() -> Self {
        NetworkProfile::new(8e-9, 20e-6)
    }

    /// A 10 GbE profile for sensitivity experiments.
    pub fn ten_gigabit_ethernet() -> Self {
        NetworkProfile::new(0.8e-9, 10e-6)
    }

    /// An effectively free network, to isolate storage effects in tests.
    pub fn infinitely_fast() -> Self {
        NetworkProfile::new(0.0, 0.0)
    }

    /// Time to push `bytes` through the link (latency + serialisation).
    pub fn transfer_time(&self, bytes: u64) -> SimNanos {
        SimNanos::from_secs_f64(self.latency_s + bytes as f64 * self.t_s_per_byte)
    }

    /// Link bandwidth implied by `t`, in MiB/s.
    pub fn bandwidth_mib_s(&self) -> f64 {
        if self.t_s_per_byte == 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.t_s_per_byte / (1024.0 * 1024.0)
        }
    }
}

impl Default for NetworkProfile {
    fn default() -> Self {
        NetworkProfile::gigabit_ethernet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gige_bandwidth_reasonable() {
        // Per-hop charge: twice the wire rate so two hops sum to GbE.
        let hop = NetworkProfile::gigabit_ethernet().bandwidth_mib_s();
        assert!(
            (230.0..250.0).contains(&hop),
            "per-hop bandwidth {hop} MiB/s"
        );
        let wire = NetworkProfile::gigabit_ethernet_single_hop().bandwidth_mib_s();
        assert!(
            (115.0..125.0).contains(&wire),
            "GbE wire bandwidth {wire} MiB/s"
        );
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let net = NetworkProfile::new(1e-9, 0.0);
        let t1 = net.transfer_time(1000);
        let t2 = net.transfer_time(2000);
        assert_eq!(t2.as_nanos(), 2 * t1.as_nanos());
    }

    #[test]
    fn latency_charged_even_for_empty_message() {
        let net = NetworkProfile::gigabit_ethernet();
        assert_eq!(net.transfer_time(0), SimNanos::from_micros(20));
    }

    #[test]
    fn free_network_is_free() {
        let net = NetworkProfile::infinitely_fast();
        assert_eq!(net.transfer_time(1 << 30), SimNanos::ZERO);
        assert!(net.bandwidth_mib_s().is_infinite());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_parameters_rejected() {
        NetworkProfile::new(-1.0, 0.0);
    }
}
