//! Fixture corpus: every rule must both fire on its trigger snippet and
//! stay quiet on its counter-example. Fixtures live in `tests/fixtures/`
//! and are never compiled — they are data for the token scanner — so they
//! may freely contain the constructs the rules ban.

use harl_lint::scan_source;
use std::fs;
use std::path::Path;

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

/// Scan a fixture as if it lived at `path` (scoping is path-based) and
/// return the rule names of all findings.
fn rules_at(path: &str, name: &str) -> Vec<String> {
    scan_source(path, &fixture(name))
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

fn count(rules: &[String], rule: &str) -> usize {
    rules.iter().filter(|r| *r == rule).count()
}

// A path inside the determinism + panic scopes but not the cost-model
// files, and one inside the cost-model scope.
const LIB_PATH: &str = "crates/middleware/src/fixture.rs";
const MODEL_PATH: &str = "crates/harl/src/model.rs";

#[test]
fn determinism_fires() {
    let rules = rules_at(LIB_PATH, "determinism_fire.rs");
    // Instant (type + now site), env::var, SystemTime (type + now site).
    assert!(count(&rules, "determinism") >= 3, "{rules:?}");
}

#[test]
fn determinism_stays_quiet() {
    let rules = rules_at(LIB_PATH, "determinism_quiet.rs");
    assert_eq!(count(&rules, "determinism"), 0, "{rules:?}");
}

#[test]
fn determinism_is_scoped_to_simulated_time_code() {
    // The same trigger snippet in the bench harness is out of scope.
    let rules = rules_at("crates/bench/src/fixture.rs", "determinism_fire.rs");
    assert_eq!(count(&rules, "determinism"), 0, "{rules:?}");
}

#[test]
fn panic_hygiene_fires() {
    let rules = rules_at(LIB_PATH, "panic_fire.rs");
    assert_eq!(count(&rules, "panic-hygiene"), 3, "{rules:?}");
}

#[test]
fn panic_hygiene_stays_quiet() {
    let rules = rules_at(LIB_PATH, "panic_quiet.rs");
    assert_eq!(count(&rules, "panic-hygiene"), 0, "{rules:?}");
}

#[test]
fn cast_hygiene_fires() {
    let rules = rules_at(MODEL_PATH, "cast_fire.rs");
    assert_eq!(count(&rules, "cast-hygiene"), 2, "{rules:?}");
}

#[test]
fn cast_hygiene_stays_quiet() {
    let rules = rules_at(MODEL_PATH, "cast_quiet.rs");
    assert_eq!(count(&rules, "cast-hygiene"), 0, "{rules:?}");
}

#[test]
fn cast_hygiene_is_scoped_to_cost_model_files() {
    let rules = rules_at(LIB_PATH, "cast_fire.rs");
    assert_eq!(count(&rules, "cast-hygiene"), 0, "{rules:?}");
}

#[test]
fn float_eq_fires() {
    let rules = rules_at(MODEL_PATH, "float_eq_fire.rs");
    assert_eq!(count(&rules, "float-eq"), 2, "{rules:?}");
}

#[test]
fn float_eq_stays_quiet() {
    let rules = rules_at(MODEL_PATH, "float_eq_quiet.rs");
    assert_eq!(count(&rules, "float-eq"), 0, "{rules:?}");
}

#[test]
fn simcontext_first_fires() {
    let rules = rules_at(LIB_PATH, "simcontext_fire.rs");
    assert_eq!(count(&rules, "simcontext-first"), 2, "{rules:?}");
}

#[test]
fn simcontext_first_stays_quiet() {
    let rules = rules_at(LIB_PATH, "simcontext_quiet.rs");
    assert_eq!(count(&rules, "simcontext-first"), 0, "{rules:?}");
}

#[test]
fn recorded_twins_fires() {
    let rules = rules_at(LIB_PATH, "recorded_fire.rs");
    assert_eq!(count(&rules, "recorded-twins"), 1, "{rules:?}");
}

#[test]
fn recorded_twins_stays_quiet() {
    let rules = rules_at(LIB_PATH, "recorded_quiet.rs");
    assert_eq!(count(&rules, "recorded-twins"), 0, "{rules:?}");
}

#[test]
fn metric_registry_fires() {
    let rules = rules_at(LIB_PATH, "metric_fire.rs");
    // sim./pfs./mw. writes, a series point, and a read-side counter_value.
    assert_eq!(count(&rules, "metric-registry"), 5, "{rules:?}");
}

#[test]
fn metric_registry_stays_quiet() {
    let rules = rules_at(LIB_PATH, "metric_quiet.rs");
    assert_eq!(count(&rules, "metric-registry"), 0, "{rules:?}");
}

#[test]
fn metric_registry_skips_the_registry_itself() {
    // registry.rs is where the literals are supposed to live.
    let rules = rules_at("crates/simcore/src/registry.rs", "metric_fire.rs");
    assert_eq!(count(&rules, "metric-registry"), 0, "{rules:?}");
}

#[test]
fn findings_carry_location_and_snippet() {
    let findings = scan_source(MODEL_PATH, &fixture("cast_fire.rs"));
    let f = findings
        .iter()
        .find(|f| f.rule == "cast-hygiene")
        .expect("cast finding");
    assert_eq!(f.path, MODEL_PATH);
    assert!(f.line > 1);
    assert!(f.snippet.contains("as usize"), "{}", f.snippet);
}

#[test]
fn two_tier_hygiene_fires() {
    let rules = rules_at(LIB_PATH, "two_tier_fire.rs");
    // A free fn and a &mut self method, each with the adjacent pair.
    assert_eq!(count(&rules, "two-tier-hygiene"), 2, "{rules:?}");
}

#[test]
fn two_tier_hygiene_stays_quiet() {
    let rules = rules_at(LIB_PATH, "two_tier_quiet.rs");
    assert_eq!(count(&rules, "two-tier-hygiene"), 0, "{rules:?}");
}

#[test]
fn two_tier_hygiene_skips_the_compat_modules() {
    // compat.rs is where the legacy pair form is supposed to live.
    let rules = rules_at("crates/harl/src/compat.rs", "two_tier_fire.rs");
    assert_eq!(count(&rules, "two-tier-hygiene"), 0, "{rules:?}");
}

// A path inside the float-accumulation scope (crates/harl/src/, any file
// but fold.rs itself).
const FLOAT_PATH: &str = "crates/harl/src/fixture.rs";

#[test]
fn map_iteration_order_fires() {
    let rules = rules_at(LIB_PATH, "map_iter_fire.rs");
    // A for-loop over a HashMap local, `.iter()` on a HashSet parameter,
    // and an unsorted `.keys().collect()`.
    assert_eq!(count(&rules, "map-iteration-order"), 3, "{rules:?}");
}

#[test]
fn map_iteration_order_stays_quiet() {
    let rules = rules_at(LIB_PATH, "map_iter_quiet.rs");
    assert_eq!(count(&rules, "map-iteration-order"), 0, "{rules:?}");
}

#[test]
fn map_iteration_order_is_scoped_to_determinism_crates() {
    let rules = rules_at("crates/bench/src/fixture.rs", "map_iter_fire.rs");
    assert_eq!(count(&rules, "map-iteration-order"), 0, "{rules:?}");
}

#[test]
fn unordered_parallel_merge_fires() {
    let rules = rules_at(LIB_PATH, "merge_fire.rs");
    // A channel-draining push loop and a spawned worker pushing under a
    // lock.
    assert_eq!(count(&rules, "unordered-parallel-merge"), 2, "{rules:?}");
}

#[test]
fn unordered_parallel_merge_stays_quiet() {
    // Indexed-store consumer, sort-after-drain, lock-free private buffer,
    // and innermost-loop attribution of the recv.
    let rules = rules_at(LIB_PATH, "merge_quiet.rs");
    assert_eq!(count(&rules, "unordered-parallel-merge"), 0, "{rules:?}");
}

#[test]
fn float_accumulation_fires() {
    let rules = rules_at(FLOAT_PATH, "float_acc_fire.rs");
    // `+=` in a loop, a `sum::<f64>()` turbofish, a `let …: f64` sum, and
    // a tail-position sum in a `-> f64` fn.
    assert_eq!(count(&rules, "float-accumulation"), 4, "{rules:?}");
}

#[test]
fn float_accumulation_stays_quiet() {
    let rules = rules_at(FLOAT_PATH, "float_acc_quiet.rs");
    assert_eq!(count(&rules, "float-accumulation"), 0, "{rules:?}");
}

#[test]
fn float_accumulation_is_scoped_to_model_code() {
    // The same triggers outside crates/harl/src/ are out of scope, and
    // fold.rs itself (which defines the helpers) is exempt.
    let rules = rules_at(LIB_PATH, "float_acc_fire.rs");
    assert_eq!(count(&rules, "float-accumulation"), 0, "{rules:?}");
    let rules = rules_at("crates/harl/src/fold.rs", "float_acc_fire.rs");
    assert_eq!(count(&rules, "float-accumulation"), 0, "{rules:?}");
}

#[test]
fn cfg_test_mask_silences_semantic_rules() {
    // Triggers inside a `#[cfg(test)]` impl and a nested mod under
    // `#[cfg(test)] mod tests` are masked; the one unmasked trigger at
    // the bottom of the fixture still fires.
    let rules = rules_at(FLOAT_PATH, "cfg_mask_quiet.rs");
    assert_eq!(count(&rules, "float-accumulation"), 1, "{rules:?}");
    assert_eq!(count(&rules, "map-iteration-order"), 0, "{rules:?}");
}
