//! Self-check: the shipped workspace must be lint-clean under its own
//! allowlist, and the allowlist must carry no stale entries. This is the
//! ratchet: a PR that reintroduces a violation (or fixes one without
//! pruning its allow entry) fails `cargo test` as well as ci.sh.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let report = harl_lint::run(&root, &root.join("lint.allow.toml")).expect("lint runs");
    let violations: Vec<String> = report
        .violations()
        .map(|f| format!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message))
        .collect();
    assert!(
        violations.is_empty(),
        "workspace has lint violations:\n{}",
        violations.join("\n")
    );
    // The nine documented exceptions (DESIGN.md Appendix D) and nothing
    // else; growing this list is a reviewed decision, not a drive-by.
    assert_eq!(
        report.allow_entries, 9,
        "allowlist should hold exactly the nine documented exceptions"
    );
    assert!(
        report.findings.iter().filter(|f| f.allowed).count() >= 9,
        "every allow entry should match at least one finding"
    );
    assert!(
        report.files_scanned > 50,
        "workspace walk looks truncated: {} files",
        report.files_scanned
    );
}
