// Fixture: must NOT trigger `metric-registry`. Registry constants at
// Recorder calls, schema tags outside Recorder calls, and non-namespaced
// literals are all fine.

pub fn record(recorder: &dyn Recorder) {
    recorder.counter_add(registry::SIM_EVENTS_DISPATCHED.name, &[], 1);
    recorder.gauge_set(registry::PFS_SERVER_UTIL.name, &[], 0.5);
    recorder.observe(name, &[], 42);
}

pub fn document() -> serde_json::Value {
    // A schema tag is a JSON document marker, not a metric name: it never
    // reaches a Recorder method.
    serde_json::json!({ "schema": "harl.bench.sim.v1" })
}

pub fn unrelated(recorder: &dyn Recorder) {
    // Literals outside the registry namespaces stay quiet even at a
    // Recorder call (fixture-local scratch metrics in tests use these).
    recorder.observe("x", &[], 1);
}
