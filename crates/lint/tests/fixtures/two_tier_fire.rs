// Fixture: the legacy adjacent (h: u64, s: u64) pair in fn signatures.
// Never compiled — data for the token scanner.

fn region_cost(offset: u64, size: u64, h: u64, s: u64) -> f64 {
    (offset + size + h + s) as f64
}

impl Planner {
    pub fn replan(&mut self, h: u64, s: u64) {
        self.h = h;
        self.s = s;
    }
}
