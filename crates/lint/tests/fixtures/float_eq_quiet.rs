// Fixture: must NOT trigger `float-eq`: tolerance comparison, integer
// equality, and ranges that look float-adjacent.

pub fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}

pub fn ints(a: u64, b: u64) -> bool {
    a == b
}

pub fn in_range(x: u64) -> bool {
    (0..10).contains(&x) && x == 3
}
