// Fixture: must NOT trigger `simcontext-first`: context leads (after
// self), or is absent.

pub fn plan(ctx: &SimContext, label: &str) -> usize {
    label.len() + ctx.threads()
}

pub struct Runner;

impl Runner {
    pub fn go<T: Clone>(&mut self, ctx: &SimContext, n: u64) -> u64 {
        n + ctx.seed()
    }

    pub fn no_ctx(&self, a: u64, b: u64) -> u64 {
        a + b
    }
}
