// Fixture: constructs the two-tier-hygiene rule must NOT flag.
// Never compiled — data for the token scanner.

// Per-class widths: the canonical representation.
fn region_cost(offset: u64, size: u64, widths: &[u64]) -> f64 {
    (offset + size + widths.iter().sum::<u64>()) as f64
}

// Interleaved class signature: (m, h) and (n, s) travel as class pairs,
// not as a bare width pair.
fn sserver_fraction(m: usize, h: u64, n: usize, s: u64) -> f64 {
    (n as u64 * s) as f64 / (m as u64 * h + n as u64 * s) as f64
}

// Struct fields are not fn parameters.
struct StripeChoice {
    h: u64,
    s: u64,
}

// Closures are not fn items.
fn search() -> u64 {
    let consider = |h: u64, s: u64| h + s;
    consider(1, 2)
}

// Adjacent pair, but not both u64: out of pattern.
fn scaled(h: u64, s: f64) -> f64 {
    h as f64 * s
}

#[cfg(test)]
mod tests {
    // Test code may still exercise the legacy pair form.
    fn legacy_probe(h: u64, s: u64) -> u64 {
        h + s
    }
}
