// Fixture: must trigger `simcontext-first`: the context trails another
// argument in both a free function and a method.

pub fn run(label: &str, ctx: &SimContext) -> usize {
    label.len() + ctx.threads()
}

pub struct Runner;

impl Runner {
    pub fn go(&self, n: u64, ctx: &SimContext) -> u64 {
        n + ctx.seed()
    }
}
