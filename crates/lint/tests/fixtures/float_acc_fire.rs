// HL011 triggers: f64 accumulation with implicit order. Four shapes —
// `+=` on a floaty local in a loop, a `sum::<f64>()` turbofish, a
// `let …: f64 = ….sum();` annotation, and a bare `.sum()` in tail
// position of a `-> f64` function.

pub fn plus_eq(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in xs {
        acc += *x;
    }
    acc
}

pub fn turbo(xs: &[f64]) -> f64 {
    xs.iter().copied().sum::<f64>()
}

pub fn annotated(xs: &[f64]) {
    let total: f64 = xs.iter().copied().sum();
    let _ = total;
}

pub fn tail(xs: &[f64]) -> f64 {
    xs.iter().copied().sum()
}
