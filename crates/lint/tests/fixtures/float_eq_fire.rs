// Fixture: must trigger `float-eq` twice when scanned as a cost-model
// file: once on a known f64 field name, once on a float literal.

pub struct Choice {
    pub cost: f64,
}

pub fn tie(a: &Choice, b: &Choice) -> bool {
    b.cost == a.cost
}

pub fn is_half(x: f64) -> bool {
    x != 0.5
}
