// Fixture: must trigger `recorded-twins`.

pub fn run_scenario_recorded(seed: u64) -> u64 {
    seed
}
