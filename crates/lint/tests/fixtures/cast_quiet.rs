// Fixture: must NOT trigger `cast-hygiene`: `as f64` is exempt (exact
// below 2^53) and try_from conversions are the sanctioned idiom.

pub fn widen(x: u64) -> f64 {
    x as f64
}

pub fn checked(x: usize) -> u64 {
    u64::try_from(x).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_cast() {
        assert_eq!(3usize as u64, 3);
    }
}
