// Fixture: must NOT trigger `recorded-twins`: "recorder" names are fine,
// only the `*_recorded` twin suffix is banned.

pub fn run_with_recorder(seed: u64) -> u64 {
    seed
}

pub struct RecordedNot;
