// HL010 counter-examples: canonical-order merges. The indexed-store
// consumer (the pfs/shard.rs shape), a sort immediately after the drain
// loop (the middleware/serve.rs shape), a spawned worker with a private
// buffer and no lock, and a recv loop whose only appends live in a
// *different* (earlier) loop — innermost-loop attribution must not blame
// them.
use std::sync::mpsc::Receiver;

pub fn consume(rx: &Receiver<(usize, u64)>, n: usize) -> Vec<u64> {
    let mut grants = vec![0u64; n];
    for _ in 0..n {
        let (i, g) = rx.recv().unwrap();
        grants[i] = g;
    }
    grants
}

pub fn drain_sorted(rx: &Receiver<(u32, u64)>) -> Vec<(u32, u64)> {
    let mut out = Vec::new();
    while let Ok(pair) = rx.recv() {
        out.push(pair);
    }
    out.sort_unstable_by_key(|p| p.0);
    out
}

pub fn per_worker(jobs: &mut Vec<u64>) {
    std::thread::scope(|s| {
        s.spawn(|| {
            let mut local = Vec::new();
            local.push(1u64);
            local.len()
        });
    });
    jobs.push(7);
}

pub fn fan_out(n: usize, rx: &Receiver<u64>) -> u64 {
    let mut handles = Vec::new();
    for w in 0..n {
        handles.push(w);
    }
    let mut total = 0u64;
    for _ in 0..n {
        total += rx.recv().unwrap();
    }
    total
}
