// Fixture: must NOT trigger `panic-hygiene`: asserts state invariants,
// unwrap_or/map_or are total, and test code is exempt.

pub fn first(v: &[u64]) -> u64 {
    assert!(!v.is_empty(), "caller contract");
    v.first().map_or(0, |&x| x)
}

pub fn saturating_double(n: u64) -> u64 {
    n.checked_mul(2).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u64> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let r: Result<u64, ()> = Ok(2);
        assert_eq!(r.expect("ok"), 2);
    }
}
