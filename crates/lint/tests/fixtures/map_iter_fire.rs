// HL009 triggers: hash-container iteration reaching an output path with
// no ordering step. Three shapes: a for-loop over a local, an `.iter()`
// chain on a parameter, and an unsorted `.keys().collect()` binding.
use std::collections::{HashMap, HashSet};

pub fn emit(order: &mut Vec<u64>) {
    let m: HashMap<u64, u64> = HashMap::new();
    for (k, _v) in &m {
        order.push(*k);
    }
}

pub fn from_param(seen: &HashSet<u64>, out: &mut Vec<u64>) {
    out.extend(seen.iter().copied());
}

pub fn chained() -> Vec<u64> {
    let m: HashMap<u64, u64> = HashMap::new();
    let ks: Vec<u64> = m.keys().copied().collect();
    ks
}
