// Fixture: must trigger `cast-hygiene` twice when scanned as a
// cost-model file.

pub fn shrink(x: u64) -> usize {
    x as usize
}

pub fn sign_flip(x: i64) -> u64 {
    x as u64
}
