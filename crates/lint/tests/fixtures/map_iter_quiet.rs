// HL009 counter-examples: every hash-container iteration here is
// order-safe — sorted right after collecting, reduced by an
// order-insensitive aggregate, rehomed into a BTreeMap, or not a hash
// container at all.
use std::collections::{BTreeMap, HashMap, HashSet};

pub fn sorted_emit(order: &mut Vec<u64>) {
    let m: HashMap<u64, u64> = HashMap::new();
    let mut ks: Vec<u64> = m.keys().copied().collect();
    ks.sort_unstable();
    order.extend(ks);
}

pub fn aggregate(m: &HashMap<u64, u64>) -> usize {
    m.values().count()
}

pub fn rehomed(m: &HashMap<u64, u64>) -> BTreeMap<u64, u64> {
    m.iter().map(|(k, v)| (*k, *v)).collect::<BTreeMap<u64, u64>>()
}

pub fn ordered(b: &BTreeMap<u64, u64>, out: &mut Vec<u64>) {
    let _present: HashSet<u64> = HashSet::new();
    for (k, _v) in b {
        out.push(*k);
    }
}
