// Fixture: must trigger `panic-hygiene` three times.

pub fn first(v: &[u64]) -> u64 {
    *v.first().unwrap()
}

pub fn must(v: Option<u64>) -> u64 {
    v.expect("present")
}

pub fn boom() -> ! {
    panic!("library code must not panic")
}
