// HL011 counter-examples: accumulation through the fixed-order fold
// helpers, integer accumulation (including the `0usize`-style suffix that
// once tripped the float heuristic), and `+=` outside any loop.

pub fn pinned(xs: &[f64]) -> f64 {
    crate::fold::sum_f64(xs.iter().copied())
}

pub fn ordered(xs: &[f64]) -> f64 {
    let mut acc = crate::fold::OrderedSum::new();
    for x in xs {
        acc.add(*x);
    }
    acc.value()
}

pub fn int_sum(xs: &[u64]) -> u64 {
    let mut total = 0u64;
    let mut count = 0usize;
    for x in xs {
        total += *x;
        count += 1;
    }
    xs.iter().copied().sum::<u64>() + total + count as u64
}

pub fn not_in_loop(a: f64, b: f64) -> f64 {
    let mut acc = 0.0;
    acc += a;
    acc += b;
    acc
}
