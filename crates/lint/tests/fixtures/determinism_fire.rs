// Fixture: must trigger `determinism` (wall clock + env lookup).

pub fn timestamp() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn from_env() -> Option<String> {
    std::env::var("HARL_SEED").ok()
}

pub fn epoch() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
