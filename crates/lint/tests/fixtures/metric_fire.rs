// Fixture: must trigger `metric-registry` (quoted metric names at
// Recorder call sites — write side, read side, and series points).

pub fn record(recorder: &dyn Recorder) {
    recorder.counter_add("sim.events.dispatched", &[], 1);
    recorder.gauge_set("pfs.server.util", &[("server", "0".into())], 0.5);
    recorder.observe("mw.request.latency_ns", &[], 42);
    recorder.series_point("pfs.server.queue_depth", &[], 0, 3.0);
}

pub fn inspect(memory: &MemoryRecorder) -> u64 {
    memory.counter_value("harl.plan.requests_folded", &[])
}
