// The cfg(test) mask must silence the semantic rules inside a
// `#[cfg(test)]` impl block and inside a nested mod under
// `#[cfg(test)] mod tests` — the two shapes the old flat attribute scan
// got wrong. The single unmasked trigger at the bottom proves the rules
// still run on the rest of the file.
use std::collections::HashMap;

pub struct T;

#[cfg(test)]
impl T {
    fn helper(xs: &[f64]) -> f64 {
        let mut acc = 0.0;
        for x in xs {
            acc += *x;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    mod nested {
        use std::collections::HashMap;

        pub fn leak(m: &HashMap<u64, u64>, out: &mut Vec<u64>) {
            for k in m.keys() {
                out.push(*k);
            }
        }
    }
}

pub fn unmasked(xs: &[f64]) -> f64 {
    xs.iter().copied().sum::<f64>()
}
