//! Fixture: must NOT trigger `determinism`. Instant::now() here is in a
//! doc comment; below it appears in a string and in #[cfg(test)] code.

pub fn now_label() -> &'static str {
    "Instant::now and SystemTime are just words in a string"
}

/* block comment mentioning Instant and env::var too */
pub fn double(x: u64) -> u64 {
    x * 2
}

#[cfg(test)]
mod tests {
    #[test]
    fn wall_clock_in_tests_is_fine() {
        let _ = std::time::Instant::now();
    }
}
