// HL010 triggers: parallel results merged in arrival order. Two shapes —
// a channel-draining loop that appends, and a spawned worker pushing to a
// shared locked collection.
use std::sync::mpsc::Receiver;
use std::sync::Mutex;

pub fn drain(rx: &Receiver<(u32, u64)>) -> Vec<(u32, u64)> {
    let mut out = Vec::new();
    while let Ok(pair) = rx.recv() {
        out.push(pair);
    }
    out
}

pub fn gather(results: &Mutex<Vec<u64>>) {
    std::thread::scope(|s| {
        for w in 0..4u64 {
            s.spawn(move || {
                results.lock().unwrap().push(w);
            });
        }
    });
}
